/root/repo/target/debug/examples/system_tradeoffs-8a1912392a01aca5.d: examples/system_tradeoffs.rs

/root/repo/target/debug/examples/system_tradeoffs-8a1912392a01aca5: examples/system_tradeoffs.rs

examples/system_tradeoffs.rs:
