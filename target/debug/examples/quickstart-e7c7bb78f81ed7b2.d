/root/repo/target/debug/examples/quickstart-e7c7bb78f81ed7b2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e7c7bb78f81ed7b2: examples/quickstart.rs

examples/quickstart.rs:
