/root/repo/target/debug/examples/system_tradeoffs-b05f6444d6d4f1a4.d: examples/system_tradeoffs.rs Cargo.toml

/root/repo/target/debug/examples/libsystem_tradeoffs-b05f6444d6d4f1a4.rmeta: examples/system_tradeoffs.rs Cargo.toml

examples/system_tradeoffs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
