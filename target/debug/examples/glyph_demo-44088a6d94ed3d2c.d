/root/repo/target/debug/examples/glyph_demo-44088a6d94ed3d2c.d: examples/glyph_demo.rs

/root/repo/target/debug/examples/glyph_demo-44088a6d94ed3d2c: examples/glyph_demo.rs

examples/glyph_demo.rs:
