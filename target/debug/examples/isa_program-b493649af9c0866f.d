/root/repo/target/debug/examples/isa_program-b493649af9c0866f.d: examples/isa_program.rs Cargo.toml

/root/repo/target/debug/examples/libisa_program-b493649af9c0866f.rmeta: examples/isa_program.rs Cargo.toml

examples/isa_program.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
