/root/repo/target/debug/examples/isa_program-6da36833a5e61dab.d: examples/isa_program.rs

/root/repo/target/debug/examples/isa_program-6da36833a5e61dab: examples/isa_program.rs

examples/isa_program.rs:
