/root/repo/target/debug/examples/crawling_bytes-ce7d232828e1ba8e.d: examples/crawling_bytes.rs

/root/repo/target/debug/examples/crawling_bytes-ce7d232828e1ba8e: examples/crawling_bytes.rs

examples/crawling_bytes.rs:
