/root/repo/target/debug/examples/quickstart-6d41a08b17c3d3d6.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-6d41a08b17c3d3d6.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
