/root/repo/target/debug/examples/edge_inference-d9e797c6e1ba18ce.d: examples/edge_inference.rs

/root/repo/target/debug/examples/edge_inference-d9e797c6e1ba18ce: examples/edge_inference.rs

examples/edge_inference.rs:
