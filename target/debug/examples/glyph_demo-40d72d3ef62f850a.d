/root/repo/target/debug/examples/glyph_demo-40d72d3ef62f850a.d: examples/glyph_demo.rs Cargo.toml

/root/repo/target/debug/examples/libglyph_demo-40d72d3ef62f850a.rmeta: examples/glyph_demo.rs Cargo.toml

examples/glyph_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
