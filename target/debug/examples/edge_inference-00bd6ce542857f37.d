/root/repo/target/debug/examples/edge_inference-00bd6ce542857f37.d: examples/edge_inference.rs Cargo.toml

/root/repo/target/debug/examples/libedge_inference-00bd6ce542857f37.rmeta: examples/edge_inference.rs Cargo.toml

examples/edge_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
