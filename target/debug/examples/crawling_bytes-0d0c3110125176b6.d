/root/repo/target/debug/examples/crawling_bytes-0d0c3110125176b6.d: examples/crawling_bytes.rs Cargo.toml

/root/repo/target/debug/examples/libcrawling_bytes-0d0c3110125176b6.rmeta: examples/crawling_bytes.rs Cargo.toml

examples/crawling_bytes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
