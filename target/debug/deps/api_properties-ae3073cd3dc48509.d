/root/repo/target/debug/deps/api_properties-ae3073cd3dc48509.d: tests/api_properties.rs Cargo.toml

/root/repo/target/debug/deps/libapi_properties-ae3073cd3dc48509.rmeta: tests/api_properties.rs Cargo.toml

tests/api_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
