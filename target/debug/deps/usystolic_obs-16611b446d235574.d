/root/repo/target/debug/deps/usystolic_obs-16611b446d235574.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libusystolic_obs-16611b446d235574.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libusystolic_obs-16611b446d235574.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
