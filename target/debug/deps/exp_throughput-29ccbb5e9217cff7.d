/root/repo/target/debug/deps/exp_throughput-29ccbb5e9217cff7.d: crates/bench/src/bin/exp_throughput.rs

/root/repo/target/debug/deps/libexp_throughput-29ccbb5e9217cff7.rmeta: crates/bench/src/bin/exp_throughput.rs

crates/bench/src/bin/exp_throughput.rs:
