/root/repo/target/debug/deps/usystolic_obs-cf11cf4b3a46b030.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libusystolic_obs-cf11cf4b3a46b030.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
