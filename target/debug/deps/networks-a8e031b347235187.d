/root/repo/target/debug/deps/networks-a8e031b347235187.d: tests/networks.rs Cargo.toml

/root/repo/target/debug/deps/libnetworks-a8e031b347235187.rmeta: tests/networks.rs Cargo.toml

tests/networks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
