/root/repo/target/debug/deps/golden-6c9c585b3a016384.d: tests/golden.rs Cargo.toml

/root/repo/target/debug/deps/libgolden-6c9c585b3a016384.rmeta: tests/golden.rs Cargo.toml

tests/golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
