/root/repo/target/debug/deps/exp_energy-fe0358c7934178b4.d: crates/bench/src/bin/exp_energy.rs Cargo.toml

/root/repo/target/debug/deps/libexp_energy-fe0358c7934178b4.rmeta: crates/bench/src/bin/exp_energy.rs Cargo.toml

crates/bench/src/bin/exp_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
