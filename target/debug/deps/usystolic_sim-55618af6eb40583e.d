/root/repo/target/debug/deps/usystolic_sim-55618af6eb40583e.d: crates/sim/src/lib.rs crates/sim/src/dataflow.rs crates/sim/src/dram_model.rs crates/sim/src/jitter.rs crates/sim/src/memory.rs crates/sim/src/multi.rs crates/sim/src/report.rs crates/sim/src/runtime.rs crates/sim/src/trace.rs crates/sim/src/traffic.rs

/root/repo/target/debug/deps/libusystolic_sim-55618af6eb40583e.rmeta: crates/sim/src/lib.rs crates/sim/src/dataflow.rs crates/sim/src/dram_model.rs crates/sim/src/jitter.rs crates/sim/src/memory.rs crates/sim/src/multi.rs crates/sim/src/report.rs crates/sim/src/runtime.rs crates/sim/src/trace.rs crates/sim/src/traffic.rs

crates/sim/src/lib.rs:
crates/sim/src/dataflow.rs:
crates/sim/src/dram_model.rs:
crates/sim/src/jitter.rs:
crates/sim/src/memory.rs:
crates/sim/src/multi.rs:
crates/sim/src/report.rs:
crates/sim/src/runtime.rs:
crates/sim/src/trace.rs:
crates/sim/src/traffic.rs:
