/root/repo/target/debug/deps/exhaustive-a73faa8f51141023.d: tests/exhaustive.rs Cargo.toml

/root/repo/target/debug/deps/libexhaustive-a73faa8f51141023.rmeta: tests/exhaustive.rs Cargo.toml

tests/exhaustive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
