/root/repo/target/debug/deps/exp_energy-929e21c667fb5888.d: crates/bench/src/bin/exp_energy.rs

/root/repo/target/debug/deps/libexp_energy-929e21c667fb5888.rmeta: crates/bench/src/bin/exp_energy.rs

crates/bench/src/bin/exp_energy.rs:
