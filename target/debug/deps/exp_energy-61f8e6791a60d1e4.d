/root/repo/target/debug/deps/exp_energy-61f8e6791a60d1e4.d: crates/bench/src/bin/exp_energy.rs Cargo.toml

/root/repo/target/debug/deps/libexp_energy-61f8e6791a60d1e4.rmeta: crates/bench/src/bin/exp_energy.rs Cargo.toml

crates/bench/src/bin/exp_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
