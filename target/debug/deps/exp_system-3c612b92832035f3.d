/root/repo/target/debug/deps/exp_system-3c612b92832035f3.d: crates/bench/src/bin/exp_system.rs

/root/repo/target/debug/deps/exp_system-3c612b92832035f3: crates/bench/src/bin/exp_system.rs

crates/bench/src/bin/exp_system.rs:
