/root/repo/target/debug/deps/exp_efficiency-245d11ec15daad69.d: crates/bench/src/bin/exp_efficiency.rs Cargo.toml

/root/repo/target/debug/deps/libexp_efficiency-245d11ec15daad69.rmeta: crates/bench/src/bin/exp_efficiency.rs Cargo.toml

crates/bench/src/bin/exp_efficiency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
