/root/repo/target/debug/deps/exp_accuracy-86de132416a09670.d: crates/bench/src/bin/exp_accuracy.rs

/root/repo/target/debug/deps/exp_accuracy-86de132416a09670: crates/bench/src/bin/exp_accuracy.rs

crates/bench/src/bin/exp_accuracy.rs:
