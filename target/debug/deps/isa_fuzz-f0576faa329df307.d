/root/repo/target/debug/deps/isa_fuzz-f0576faa329df307.d: tests/isa_fuzz.rs

/root/repo/target/debug/deps/isa_fuzz-f0576faa329df307: tests/isa_fuzz.rs

tests/isa_fuzz.rs:
