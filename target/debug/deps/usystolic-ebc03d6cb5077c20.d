/root/repo/target/debug/deps/usystolic-ebc03d6cb5077c20.d: src/lib.rs

/root/repo/target/debug/deps/libusystolic-ebc03d6cb5077c20.rmeta: src/lib.rs

src/lib.rs:
