/root/repo/target/debug/deps/exp_bandwidth-520df80bb16a9af3.d: crates/bench/src/bin/exp_bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libexp_bandwidth-520df80bb16a9af3.rmeta: crates/bench/src/bin/exp_bandwidth.rs Cargo.toml

crates/bench/src/bin/exp_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
