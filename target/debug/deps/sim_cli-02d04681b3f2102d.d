/root/repo/target/debug/deps/sim_cli-02d04681b3f2102d.d: crates/bench/src/bin/sim_cli.rs Cargo.toml

/root/repo/target/debug/deps/libsim_cli-02d04681b3f2102d.rmeta: crates/bench/src/bin/sim_cli.rs Cargo.toml

crates/bench/src/bin/sim_cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
