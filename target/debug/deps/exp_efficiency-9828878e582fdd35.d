/root/repo/target/debug/deps/exp_efficiency-9828878e582fdd35.d: crates/bench/src/bin/exp_efficiency.rs

/root/repo/target/debug/deps/exp_efficiency-9828878e582fdd35: crates/bench/src/bin/exp_efficiency.rs

crates/bench/src/bin/exp_efficiency.rs:
