/root/repo/target/debug/deps/exp_power-d03aa8590e591cbe.d: crates/bench/src/bin/exp_power.rs

/root/repo/target/debug/deps/exp_power-d03aa8590e591cbe: crates/bench/src/bin/exp_power.rs

crates/bench/src/bin/exp_power.rs:
