/root/repo/target/debug/deps/usystolic_core-b2d9a596dd2d9c2b.d: crates/core/src/lib.rs crates/core/src/array.rs crates/core/src/array2d.rs crates/core/src/baselines.rs crates/core/src/check.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/fifo.rs crates/core/src/fsu.rs crates/core/src/isa.rs crates/core/src/mapping.rs crates/core/src/pe.rs crates/core/src/scheme.rs Cargo.toml

/root/repo/target/debug/deps/libusystolic_core-b2d9a596dd2d9c2b.rmeta: crates/core/src/lib.rs crates/core/src/array.rs crates/core/src/array2d.rs crates/core/src/baselines.rs crates/core/src/check.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/fifo.rs crates/core/src/fsu.rs crates/core/src/isa.rs crates/core/src/mapping.rs crates/core/src/pe.rs crates/core/src/scheme.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/array.rs:
crates/core/src/array2d.rs:
crates/core/src/baselines.rs:
crates/core/src/check.rs:
crates/core/src/config.rs:
crates/core/src/exec.rs:
crates/core/src/fifo.rs:
crates/core/src/fsu.rs:
crates/core/src/isa.rs:
crates/core/src/mapping.rs:
crates/core/src/pe.rs:
crates/core/src/scheme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
