/root/repo/target/debug/deps/serde_roundtrip-f69047a68e50defc.d: tests/serde_roundtrip.rs

/root/repo/target/debug/deps/serde_roundtrip-f69047a68e50defc: tests/serde_roundtrip.rs

tests/serde_roundtrip.rs:
