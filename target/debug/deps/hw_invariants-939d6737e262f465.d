/root/repo/target/debug/deps/hw_invariants-939d6737e262f465.d: tests/hw_invariants.rs

/root/repo/target/debug/deps/hw_invariants-939d6737e262f465: tests/hw_invariants.rs

tests/hw_invariants.rs:
