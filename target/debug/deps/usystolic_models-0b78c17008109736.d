/root/repo/target/debug/deps/usystolic_models-0b78c17008109736.d: crates/models/src/lib.rs crates/models/src/dataset.rs crates/models/src/mlp.rs crates/models/src/mlperf.rs crates/models/src/trainer.rs crates/models/src/zoo.rs Cargo.toml

/root/repo/target/debug/deps/libusystolic_models-0b78c17008109736.rmeta: crates/models/src/lib.rs crates/models/src/dataset.rs crates/models/src/mlp.rs crates/models/src/mlperf.rs crates/models/src/trainer.rs crates/models/src/zoo.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/dataset.rs:
crates/models/src/mlp.rs:
crates/models/src/mlperf.rs:
crates/models/src/trainer.rs:
crates/models/src/zoo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
