/root/repo/target/debug/deps/more_properties-513c2c9e65c2a3b6.d: tests/more_properties.rs

/root/repo/target/debug/deps/more_properties-513c2c9e65c2a3b6: tests/more_properties.rs

tests/more_properties.rs:
