/root/repo/target/debug/deps/exp_ablation-dedebda0d88bc0ce.d: crates/bench/src/bin/exp_ablation.rs

/root/repo/target/debug/deps/exp_ablation-dedebda0d88bc0ce: crates/bench/src/bin/exp_ablation.rs

crates/bench/src/bin/exp_ablation.rs:
