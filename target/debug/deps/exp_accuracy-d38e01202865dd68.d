/root/repo/target/debug/deps/exp_accuracy-d38e01202865dd68.d: crates/bench/src/bin/exp_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libexp_accuracy-d38e01202865dd68.rmeta: crates/bench/src/bin/exp_accuracy.rs Cargo.toml

crates/bench/src/bin/exp_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
