/root/repo/target/debug/deps/usystolic_bench-09dffca53ddd7652.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/accuracy.rs crates/bench/src/area.rs crates/bench/src/bandwidth.rs crates/bench/src/design.rs crates/bench/src/design_space.rs crates/bench/src/efficiency.rs crates/bench/src/energy.rs crates/bench/src/power.rs crates/bench/src/system.rs crates/bench/src/table.rs crates/bench/src/table1.rs crates/bench/src/throughput.rs

/root/repo/target/debug/deps/libusystolic_bench-09dffca53ddd7652.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/accuracy.rs crates/bench/src/area.rs crates/bench/src/bandwidth.rs crates/bench/src/design.rs crates/bench/src/design_space.rs crates/bench/src/efficiency.rs crates/bench/src/energy.rs crates/bench/src/power.rs crates/bench/src/system.rs crates/bench/src/table.rs crates/bench/src/table1.rs crates/bench/src/throughput.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/accuracy.rs:
crates/bench/src/area.rs:
crates/bench/src/bandwidth.rs:
crates/bench/src/design.rs:
crates/bench/src/design_space.rs:
crates/bench/src/efficiency.rs:
crates/bench/src/energy.rs:
crates/bench/src/power.rs:
crates/bench/src/system.rs:
crates/bench/src/table.rs:
crates/bench/src/table1.rs:
crates/bench/src/throughput.rs:
