/root/repo/target/debug/deps/hw_invariants-ea72b20126725b54.d: tests/hw_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libhw_invariants-ea72b20126725b54.rmeta: tests/hw_invariants.rs Cargo.toml

tests/hw_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
