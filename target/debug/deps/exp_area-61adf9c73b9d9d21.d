/root/repo/target/debug/deps/exp_area-61adf9c73b9d9d21.d: crates/bench/src/bin/exp_area.rs Cargo.toml

/root/repo/target/debug/deps/libexp_area-61adf9c73b9d9d21.rmeta: crates/bench/src/bin/exp_area.rs Cargo.toml

crates/bench/src/bin/exp_area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
