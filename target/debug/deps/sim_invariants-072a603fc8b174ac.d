/root/repo/target/debug/deps/sim_invariants-072a603fc8b174ac.d: tests/sim_invariants.rs

/root/repo/target/debug/deps/sim_invariants-072a603fc8b174ac: tests/sim_invariants.rs

tests/sim_invariants.rs:
