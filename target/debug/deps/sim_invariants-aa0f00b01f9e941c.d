/root/repo/target/debug/deps/sim_invariants-aa0f00b01f9e941c.d: tests/sim_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libsim_invariants-aa0f00b01f9e941c.rmeta: tests/sim_invariants.rs Cargo.toml

tests/sim_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
