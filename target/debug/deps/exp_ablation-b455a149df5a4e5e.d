/root/repo/target/debug/deps/exp_ablation-b455a149df5a4e5e.d: crates/bench/src/bin/exp_ablation.rs

/root/repo/target/debug/deps/libexp_ablation-b455a149df5a4e5e.rmeta: crates/bench/src/bin/exp_ablation.rs

crates/bench/src/bin/exp_ablation.rs:
