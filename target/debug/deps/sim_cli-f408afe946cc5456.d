/root/repo/target/debug/deps/sim_cli-f408afe946cc5456.d: crates/bench/src/bin/sim_cli.rs

/root/repo/target/debug/deps/sim_cli-f408afe946cc5456: crates/bench/src/bin/sim_cli.rs

crates/bench/src/bin/sim_cli.rs:
