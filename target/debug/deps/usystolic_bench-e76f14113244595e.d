/root/repo/target/debug/deps/usystolic_bench-e76f14113244595e.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/accuracy.rs crates/bench/src/area.rs crates/bench/src/bandwidth.rs crates/bench/src/design.rs crates/bench/src/design_space.rs crates/bench/src/efficiency.rs crates/bench/src/energy.rs crates/bench/src/power.rs crates/bench/src/system.rs crates/bench/src/table.rs crates/bench/src/table1.rs crates/bench/src/throughput.rs Cargo.toml

/root/repo/target/debug/deps/libusystolic_bench-e76f14113244595e.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/accuracy.rs crates/bench/src/area.rs crates/bench/src/bandwidth.rs crates/bench/src/design.rs crates/bench/src/design_space.rs crates/bench/src/efficiency.rs crates/bench/src/energy.rs crates/bench/src/power.rs crates/bench/src/system.rs crates/bench/src/table.rs crates/bench/src/table1.rs crates/bench/src/throughput.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/accuracy.rs:
crates/bench/src/area.rs:
crates/bench/src/bandwidth.rs:
crates/bench/src/design.rs:
crates/bench/src/design_space.rs:
crates/bench/src/efficiency.rs:
crates/bench/src/energy.rs:
crates/bench/src/power.rs:
crates/bench/src/system.rs:
crates/bench/src/table.rs:
crates/bench/src/table1.rs:
crates/bench/src/throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
