/root/repo/target/debug/deps/usystolic_obs-e36487d17234cdb1.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libusystolic_obs-e36487d17234cdb1.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
