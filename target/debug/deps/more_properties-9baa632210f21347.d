/root/repo/target/debug/deps/more_properties-9baa632210f21347.d: tests/more_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmore_properties-9baa632210f21347.rmeta: tests/more_properties.rs Cargo.toml

tests/more_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
