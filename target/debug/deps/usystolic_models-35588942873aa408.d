/root/repo/target/debug/deps/usystolic_models-35588942873aa408.d: crates/models/src/lib.rs crates/models/src/dataset.rs crates/models/src/mlp.rs crates/models/src/mlperf.rs crates/models/src/trainer.rs crates/models/src/zoo.rs

/root/repo/target/debug/deps/usystolic_models-35588942873aa408: crates/models/src/lib.rs crates/models/src/dataset.rs crates/models/src/mlp.rs crates/models/src/mlperf.rs crates/models/src/trainer.rs crates/models/src/zoo.rs

crates/models/src/lib.rs:
crates/models/src/dataset.rs:
crates/models/src/mlp.rs:
crates/models/src/mlperf.rs:
crates/models/src/trainer.rs:
crates/models/src/zoo.rs:
