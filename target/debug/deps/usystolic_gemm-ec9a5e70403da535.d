/root/repo/target/debug/deps/usystolic_gemm-ec9a5e70403da535.d: crates/gemm/src/lib.rs crates/gemm/src/config.rs crates/gemm/src/im2col.rs crates/gemm/src/loopnest.rs crates/gemm/src/pad.rs crates/gemm/src/quant.rs crates/gemm/src/stats.rs crates/gemm/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libusystolic_gemm-ec9a5e70403da535.rmeta: crates/gemm/src/lib.rs crates/gemm/src/config.rs crates/gemm/src/im2col.rs crates/gemm/src/loopnest.rs crates/gemm/src/pad.rs crates/gemm/src/quant.rs crates/gemm/src/stats.rs crates/gemm/src/tensor.rs Cargo.toml

crates/gemm/src/lib.rs:
crates/gemm/src/config.rs:
crates/gemm/src/im2col.rs:
crates/gemm/src/loopnest.rs:
crates/gemm/src/pad.rs:
crates/gemm/src/quant.rs:
crates/gemm/src/stats.rs:
crates/gemm/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
