/root/repo/target/debug/deps/exp_efficiency-a177624d1888d08e.d: crates/bench/src/bin/exp_efficiency.rs Cargo.toml

/root/repo/target/debug/deps/libexp_efficiency-a177624d1888d08e.rmeta: crates/bench/src/bin/exp_efficiency.rs Cargo.toml

crates/bench/src/bin/exp_efficiency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
