/root/repo/target/debug/deps/exp_efficiency-71440b195b04888e.d: crates/bench/src/bin/exp_efficiency.rs

/root/repo/target/debug/deps/libexp_efficiency-71440b195b04888e.rmeta: crates/bench/src/bin/exp_efficiency.rs

crates/bench/src/bin/exp_efficiency.rs:
