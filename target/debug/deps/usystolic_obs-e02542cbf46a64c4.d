/root/repo/target/debug/deps/usystolic_obs-e02542cbf46a64c4.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/usystolic_obs-e02542cbf46a64c4: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
