/root/repo/target/debug/deps/exp_design_space-22724a8c65e0c35a.d: crates/bench/src/bin/exp_design_space.rs

/root/repo/target/debug/deps/libexp_design_space-22724a8c65e0c35a.rmeta: crates/bench/src/bin/exp_design_space.rs

crates/bench/src/bin/exp_design_space.rs:
