/root/repo/target/debug/deps/observability-4651095baabfc384.d: tests/observability.rs

/root/repo/target/debug/deps/observability-4651095baabfc384: tests/observability.rs

tests/observability.rs:
