/root/repo/target/debug/deps/exp_design_space-37bdd597bccb06f5.d: crates/bench/src/bin/exp_design_space.rs Cargo.toml

/root/repo/target/debug/deps/libexp_design_space-37bdd597bccb06f5.rmeta: crates/bench/src/bin/exp_design_space.rs Cargo.toml

crates/bench/src/bin/exp_design_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
