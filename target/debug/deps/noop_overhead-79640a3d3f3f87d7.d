/root/repo/target/debug/deps/noop_overhead-79640a3d3f3f87d7.d: crates/obs/tests/noop_overhead.rs

/root/repo/target/debug/deps/noop_overhead-79640a3d3f3f87d7: crates/obs/tests/noop_overhead.rs

crates/obs/tests/noop_overhead.rs:
