/root/repo/target/debug/deps/exp_power-3b5533e794fb865d.d: crates/bench/src/bin/exp_power.rs Cargo.toml

/root/repo/target/debug/deps/libexp_power-3b5533e794fb865d.rmeta: crates/bench/src/bin/exp_power.rs Cargo.toml

crates/bench/src/bin/exp_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
