/root/repo/target/debug/deps/exp_system-50d978097f250780.d: crates/bench/src/bin/exp_system.rs Cargo.toml

/root/repo/target/debug/deps/libexp_system-50d978097f250780.rmeta: crates/bench/src/bin/exp_system.rs Cargo.toml

crates/bench/src/bin/exp_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
