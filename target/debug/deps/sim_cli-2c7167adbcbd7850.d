/root/repo/target/debug/deps/sim_cli-2c7167adbcbd7850.d: crates/bench/src/bin/sim_cli.rs Cargo.toml

/root/repo/target/debug/deps/libsim_cli-2c7167adbcbd7850.rmeta: crates/bench/src/bin/sim_cli.rs Cargo.toml

crates/bench/src/bin/sim_cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
