/root/repo/target/debug/deps/exp_power-d24412eb266e1a9c.d: crates/bench/src/bin/exp_power.rs

/root/repo/target/debug/deps/libexp_power-d24412eb266e1a9c.rmeta: crates/bench/src/bin/exp_power.rs

crates/bench/src/bin/exp_power.rs:
