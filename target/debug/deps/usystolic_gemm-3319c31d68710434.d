/root/repo/target/debug/deps/usystolic_gemm-3319c31d68710434.d: crates/gemm/src/lib.rs crates/gemm/src/config.rs crates/gemm/src/im2col.rs crates/gemm/src/loopnest.rs crates/gemm/src/pad.rs crates/gemm/src/quant.rs crates/gemm/src/stats.rs crates/gemm/src/tensor.rs

/root/repo/target/debug/deps/libusystolic_gemm-3319c31d68710434.rmeta: crates/gemm/src/lib.rs crates/gemm/src/config.rs crates/gemm/src/im2col.rs crates/gemm/src/loopnest.rs crates/gemm/src/pad.rs crates/gemm/src/quant.rs crates/gemm/src/stats.rs crates/gemm/src/tensor.rs

crates/gemm/src/lib.rs:
crates/gemm/src/config.rs:
crates/gemm/src/im2col.rs:
crates/gemm/src/loopnest.rs:
crates/gemm/src/pad.rs:
crates/gemm/src/quant.rs:
crates/gemm/src/stats.rs:
crates/gemm/src/tensor.rs:
