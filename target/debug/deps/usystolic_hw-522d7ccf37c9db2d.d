/root/repo/target/debug/deps/usystolic_hw-522d7ccf37c9db2d.d: crates/hw/src/lib.rs crates/hw/src/area.rs crates/hw/src/energy.rs crates/hw/src/evaluate.rs crates/hw/src/pe_area.rs crates/hw/src/power.rs crates/hw/src/summary.rs crates/hw/src/tech.rs Cargo.toml

/root/repo/target/debug/deps/libusystolic_hw-522d7ccf37c9db2d.rmeta: crates/hw/src/lib.rs crates/hw/src/area.rs crates/hw/src/energy.rs crates/hw/src/evaluate.rs crates/hw/src/pe_area.rs crates/hw/src/power.rs crates/hw/src/summary.rs crates/hw/src/tech.rs Cargo.toml

crates/hw/src/lib.rs:
crates/hw/src/area.rs:
crates/hw/src/energy.rs:
crates/hw/src/evaluate.rs:
crates/hw/src/pe_area.rs:
crates/hw/src/power.rs:
crates/hw/src/summary.rs:
crates/hw/src/tech.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
