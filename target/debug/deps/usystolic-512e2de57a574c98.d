/root/repo/target/debug/deps/usystolic-512e2de57a574c98.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libusystolic-512e2de57a574c98.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
