/root/repo/target/debug/deps/exhaustive-d591ef2573a559f4.d: tests/exhaustive.rs

/root/repo/target/debug/deps/exhaustive-d591ef2573a559f4: tests/exhaustive.rs

tests/exhaustive.rs:
