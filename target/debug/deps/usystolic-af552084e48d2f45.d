/root/repo/target/debug/deps/usystolic-af552084e48d2f45.d: src/lib.rs

/root/repo/target/debug/deps/usystolic-af552084e48d2f45: src/lib.rs

src/lib.rs:
