/root/repo/target/debug/deps/noop_overhead-a0451442d8f71be8.d: crates/obs/tests/noop_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libnoop_overhead-a0451442d8f71be8.rmeta: crates/obs/tests/noop_overhead.rs Cargo.toml

crates/obs/tests/noop_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
