/root/repo/target/debug/deps/usystolic_obs-8989ea95e5033d80.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libusystolic_obs-8989ea95e5033d80.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
