/root/repo/target/debug/deps/exp_energy-6e50850e28d71f19.d: crates/bench/src/bin/exp_energy.rs

/root/repo/target/debug/deps/exp_energy-6e50850e28d71f19: crates/bench/src/bin/exp_energy.rs

crates/bench/src/bin/exp_energy.rs:
