/root/repo/target/debug/deps/isa_fuzz-ef3ce9047e28b5ca.d: tests/isa_fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libisa_fuzz-ef3ce9047e28b5ca.rmeta: tests/isa_fuzz.rs Cargo.toml

tests/isa_fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
