/root/repo/target/debug/deps/exp_system-81bae2ac76214d00.d: crates/bench/src/bin/exp_system.rs

/root/repo/target/debug/deps/libexp_system-81bae2ac76214d00.rmeta: crates/bench/src/bin/exp_system.rs

crates/bench/src/bin/exp_system.rs:
