/root/repo/target/debug/deps/usystolic_models-7cd4a4d33e60a5d6.d: crates/models/src/lib.rs crates/models/src/dataset.rs crates/models/src/mlp.rs crates/models/src/mlperf.rs crates/models/src/trainer.rs crates/models/src/zoo.rs Cargo.toml

/root/repo/target/debug/deps/libusystolic_models-7cd4a4d33e60a5d6.rmeta: crates/models/src/lib.rs crates/models/src/dataset.rs crates/models/src/mlp.rs crates/models/src/mlperf.rs crates/models/src/trainer.rs crates/models/src/zoo.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/dataset.rs:
crates/models/src/mlp.rs:
crates/models/src/mlperf.rs:
crates/models/src/trainer.rs:
crates/models/src/zoo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
