/root/repo/target/debug/deps/exp_bandwidth-8422dce77aaa1b3e.d: crates/bench/src/bin/exp_bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libexp_bandwidth-8422dce77aaa1b3e.rmeta: crates/bench/src/bin/exp_bandwidth.rs Cargo.toml

crates/bench/src/bin/exp_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
