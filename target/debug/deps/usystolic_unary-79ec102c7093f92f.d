/root/repo/target/debug/deps/usystolic_unary-79ec102c7093f92f.d: crates/unary/src/lib.rs crates/unary/src/add.rs crates/unary/src/bitstream.rs crates/unary/src/bsg.rs crates/unary/src/coding.rs crates/unary/src/div.rs crates/unary/src/et.rs crates/unary/src/mul.rs crates/unary/src/rng.rs crates/unary/src/scc.rs crates/unary/src/sign.rs crates/unary/src/stability.rs Cargo.toml

/root/repo/target/debug/deps/libusystolic_unary-79ec102c7093f92f.rmeta: crates/unary/src/lib.rs crates/unary/src/add.rs crates/unary/src/bitstream.rs crates/unary/src/bsg.rs crates/unary/src/coding.rs crates/unary/src/div.rs crates/unary/src/et.rs crates/unary/src/mul.rs crates/unary/src/rng.rs crates/unary/src/scc.rs crates/unary/src/sign.rs crates/unary/src/stability.rs Cargo.toml

crates/unary/src/lib.rs:
crates/unary/src/add.rs:
crates/unary/src/bitstream.rs:
crates/unary/src/bsg.rs:
crates/unary/src/coding.rs:
crates/unary/src/div.rs:
crates/unary/src/et.rs:
crates/unary/src/mul.rs:
crates/unary/src/rng.rs:
crates/unary/src/scc.rs:
crates/unary/src/sign.rs:
crates/unary/src/stability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
