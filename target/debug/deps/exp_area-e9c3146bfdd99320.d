/root/repo/target/debug/deps/exp_area-e9c3146bfdd99320.d: crates/bench/src/bin/exp_area.rs

/root/repo/target/debug/deps/exp_area-e9c3146bfdd99320: crates/bench/src/bin/exp_area.rs

crates/bench/src/bin/exp_area.rs:
