/root/repo/target/debug/deps/properties-6e40e11b3eeb0a26.d: tests/properties.rs

/root/repo/target/debug/deps/properties-6e40e11b3eeb0a26: tests/properties.rs

tests/properties.rs:
