/root/repo/target/debug/deps/exp_table1-68c5db80ebf38f65.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/debug/deps/exp_table1-68c5db80ebf38f65: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
