/root/repo/target/debug/deps/exp_area-1c4fc101f304dde1.d: crates/bench/src/bin/exp_area.rs

/root/repo/target/debug/deps/libexp_area-1c4fc101f304dde1.rmeta: crates/bench/src/bin/exp_area.rs

crates/bench/src/bin/exp_area.rs:
