/root/repo/target/debug/deps/exp_accuracy-3828e40b593f9412.d: crates/bench/src/bin/exp_accuracy.rs

/root/repo/target/debug/deps/libexp_accuracy-3828e40b593f9412.rmeta: crates/bench/src/bin/exp_accuracy.rs

crates/bench/src/bin/exp_accuracy.rs:
