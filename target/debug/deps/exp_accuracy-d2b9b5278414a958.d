/root/repo/target/debug/deps/exp_accuracy-d2b9b5278414a958.d: crates/bench/src/bin/exp_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libexp_accuracy-d2b9b5278414a958.rmeta: crates/bench/src/bin/exp_accuracy.rs Cargo.toml

crates/bench/src/bin/exp_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
