/root/repo/target/debug/deps/exp_design_space-0b15ccf6f25542f1.d: crates/bench/src/bin/exp_design_space.rs

/root/repo/target/debug/deps/exp_design_space-0b15ccf6f25542f1: crates/bench/src/bin/exp_design_space.rs

crates/bench/src/bin/exp_design_space.rs:
