/root/repo/target/debug/deps/usystolic_models-4a8a7c3e65a6185a.d: crates/models/src/lib.rs crates/models/src/dataset.rs crates/models/src/mlp.rs crates/models/src/mlperf.rs crates/models/src/trainer.rs crates/models/src/zoo.rs

/root/repo/target/debug/deps/libusystolic_models-4a8a7c3e65a6185a.rlib: crates/models/src/lib.rs crates/models/src/dataset.rs crates/models/src/mlp.rs crates/models/src/mlperf.rs crates/models/src/trainer.rs crates/models/src/zoo.rs

/root/repo/target/debug/deps/libusystolic_models-4a8a7c3e65a6185a.rmeta: crates/models/src/lib.rs crates/models/src/dataset.rs crates/models/src/mlp.rs crates/models/src/mlperf.rs crates/models/src/trainer.rs crates/models/src/zoo.rs

crates/models/src/lib.rs:
crates/models/src/dataset.rs:
crates/models/src/mlp.rs:
crates/models/src/mlperf.rs:
crates/models/src/trainer.rs:
crates/models/src/zoo.rs:
