/root/repo/target/debug/deps/api_properties-71b36df0a409caa9.d: tests/api_properties.rs

/root/repo/target/debug/deps/api_properties-71b36df0a409caa9: tests/api_properties.rs

tests/api_properties.rs:
