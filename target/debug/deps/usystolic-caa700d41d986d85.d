/root/repo/target/debug/deps/usystolic-caa700d41d986d85.d: src/lib.rs

/root/repo/target/debug/deps/libusystolic-caa700d41d986d85.rlib: src/lib.rs

/root/repo/target/debug/deps/libusystolic-caa700d41d986d85.rmeta: src/lib.rs

src/lib.rs:
