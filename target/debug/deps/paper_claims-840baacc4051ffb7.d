/root/repo/target/debug/deps/paper_claims-840baacc4051ffb7.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-840baacc4051ffb7: tests/paper_claims.rs

tests/paper_claims.rs:
