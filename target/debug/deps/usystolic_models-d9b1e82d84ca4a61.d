/root/repo/target/debug/deps/usystolic_models-d9b1e82d84ca4a61.d: crates/models/src/lib.rs crates/models/src/dataset.rs crates/models/src/mlp.rs crates/models/src/mlperf.rs crates/models/src/trainer.rs crates/models/src/zoo.rs

/root/repo/target/debug/deps/libusystolic_models-d9b1e82d84ca4a61.rmeta: crates/models/src/lib.rs crates/models/src/dataset.rs crates/models/src/mlp.rs crates/models/src/mlperf.rs crates/models/src/trainer.rs crates/models/src/zoo.rs

crates/models/src/lib.rs:
crates/models/src/dataset.rs:
crates/models/src/mlp.rs:
crates/models/src/mlperf.rs:
crates/models/src/trainer.rs:
crates/models/src/zoo.rs:
