/root/repo/target/debug/deps/golden-905f6e58c0b4c321.d: tests/golden.rs

/root/repo/target/debug/deps/golden-905f6e58c0b4c321: tests/golden.rs

tests/golden.rs:
