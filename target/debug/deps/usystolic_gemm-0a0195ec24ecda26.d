/root/repo/target/debug/deps/usystolic_gemm-0a0195ec24ecda26.d: crates/gemm/src/lib.rs crates/gemm/src/config.rs crates/gemm/src/im2col.rs crates/gemm/src/loopnest.rs crates/gemm/src/pad.rs crates/gemm/src/quant.rs crates/gemm/src/stats.rs crates/gemm/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libusystolic_gemm-0a0195ec24ecda26.rmeta: crates/gemm/src/lib.rs crates/gemm/src/config.rs crates/gemm/src/im2col.rs crates/gemm/src/loopnest.rs crates/gemm/src/pad.rs crates/gemm/src/quant.rs crates/gemm/src/stats.rs crates/gemm/src/tensor.rs Cargo.toml

crates/gemm/src/lib.rs:
crates/gemm/src/config.rs:
crates/gemm/src/im2col.rs:
crates/gemm/src/loopnest.rs:
crates/gemm/src/pad.rs:
crates/gemm/src/quant.rs:
crates/gemm/src/stats.rs:
crates/gemm/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
