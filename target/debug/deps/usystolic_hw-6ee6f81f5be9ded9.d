/root/repo/target/debug/deps/usystolic_hw-6ee6f81f5be9ded9.d: crates/hw/src/lib.rs crates/hw/src/area.rs crates/hw/src/energy.rs crates/hw/src/evaluate.rs crates/hw/src/pe_area.rs crates/hw/src/power.rs crates/hw/src/summary.rs crates/hw/src/tech.rs

/root/repo/target/debug/deps/libusystolic_hw-6ee6f81f5be9ded9.rmeta: crates/hw/src/lib.rs crates/hw/src/area.rs crates/hw/src/energy.rs crates/hw/src/evaluate.rs crates/hw/src/pe_area.rs crates/hw/src/power.rs crates/hw/src/summary.rs crates/hw/src/tech.rs

crates/hw/src/lib.rs:
crates/hw/src/area.rs:
crates/hw/src/energy.rs:
crates/hw/src/evaluate.rs:
crates/hw/src/pe_area.rs:
crates/hw/src/power.rs:
crates/hw/src/summary.rs:
crates/hw/src/tech.rs:
