/root/repo/target/debug/deps/exp_bandwidth-c7cb35d7bfb29398.d: crates/bench/src/bin/exp_bandwidth.rs

/root/repo/target/debug/deps/exp_bandwidth-c7cb35d7bfb29398: crates/bench/src/bin/exp_bandwidth.rs

crates/bench/src/bin/exp_bandwidth.rs:
