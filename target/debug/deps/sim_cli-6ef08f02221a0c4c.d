/root/repo/target/debug/deps/sim_cli-6ef08f02221a0c4c.d: crates/bench/src/bin/sim_cli.rs

/root/repo/target/debug/deps/libsim_cli-6ef08f02221a0c4c.rmeta: crates/bench/src/bin/sim_cli.rs

crates/bench/src/bin/sim_cli.rs:
