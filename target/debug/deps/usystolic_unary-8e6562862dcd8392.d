/root/repo/target/debug/deps/usystolic_unary-8e6562862dcd8392.d: crates/unary/src/lib.rs crates/unary/src/add.rs crates/unary/src/bitstream.rs crates/unary/src/bsg.rs crates/unary/src/coding.rs crates/unary/src/div.rs crates/unary/src/et.rs crates/unary/src/mul.rs crates/unary/src/rng.rs crates/unary/src/scc.rs crates/unary/src/sign.rs crates/unary/src/stability.rs

/root/repo/target/debug/deps/libusystolic_unary-8e6562862dcd8392.rmeta: crates/unary/src/lib.rs crates/unary/src/add.rs crates/unary/src/bitstream.rs crates/unary/src/bsg.rs crates/unary/src/coding.rs crates/unary/src/div.rs crates/unary/src/et.rs crates/unary/src/mul.rs crates/unary/src/rng.rs crates/unary/src/scc.rs crates/unary/src/sign.rs crates/unary/src/stability.rs

crates/unary/src/lib.rs:
crates/unary/src/add.rs:
crates/unary/src/bitstream.rs:
crates/unary/src/bsg.rs:
crates/unary/src/coding.rs:
crates/unary/src/div.rs:
crates/unary/src/et.rs:
crates/unary/src/mul.rs:
crates/unary/src/rng.rs:
crates/unary/src/scc.rs:
crates/unary/src/sign.rs:
crates/unary/src/stability.rs:
