/root/repo/target/debug/deps/exp_throughput-ca3b9de146428b9c.d: crates/bench/src/bin/exp_throughput.rs

/root/repo/target/debug/deps/exp_throughput-ca3b9de146428b9c: crates/bench/src/bin/exp_throughput.rs

crates/bench/src/bin/exp_throughput.rs:
