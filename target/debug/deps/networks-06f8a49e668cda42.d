/root/repo/target/debug/deps/networks-06f8a49e668cda42.d: tests/networks.rs

/root/repo/target/debug/deps/networks-06f8a49e668cda42: tests/networks.rs

tests/networks.rs:
