/root/repo/target/debug/deps/exp_table1-8792b1f065c0830a.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/debug/deps/libexp_table1-8792b1f065c0830a.rmeta: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
