/root/repo/target/debug/deps/exp_all-077054785d9bc22d.d: crates/bench/src/bin/exp_all.rs

/root/repo/target/debug/deps/exp_all-077054785d9bc22d: crates/bench/src/bin/exp_all.rs

crates/bench/src/bin/exp_all.rs:
