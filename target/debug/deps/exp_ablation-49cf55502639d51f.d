/root/repo/target/debug/deps/exp_ablation-49cf55502639d51f.d: crates/bench/src/bin/exp_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ablation-49cf55502639d51f.rmeta: crates/bench/src/bin/exp_ablation.rs Cargo.toml

crates/bench/src/bin/exp_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
