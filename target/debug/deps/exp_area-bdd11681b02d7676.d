/root/repo/target/debug/deps/exp_area-bdd11681b02d7676.d: crates/bench/src/bin/exp_area.rs Cargo.toml

/root/repo/target/debug/deps/libexp_area-bdd11681b02d7676.rmeta: crates/bench/src/bin/exp_area.rs Cargo.toml

crates/bench/src/bin/exp_area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
