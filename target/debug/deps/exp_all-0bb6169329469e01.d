/root/repo/target/debug/deps/exp_all-0bb6169329469e01.d: crates/bench/src/bin/exp_all.rs

/root/repo/target/debug/deps/libexp_all-0bb6169329469e01.rmeta: crates/bench/src/bin/exp_all.rs

crates/bench/src/bin/exp_all.rs:
