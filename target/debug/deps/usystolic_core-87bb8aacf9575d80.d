/root/repo/target/debug/deps/usystolic_core-87bb8aacf9575d80.d: crates/core/src/lib.rs crates/core/src/array.rs crates/core/src/array2d.rs crates/core/src/baselines.rs crates/core/src/check.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/fifo.rs crates/core/src/fsu.rs crates/core/src/isa.rs crates/core/src/mapping.rs crates/core/src/pe.rs crates/core/src/scheme.rs

/root/repo/target/debug/deps/libusystolic_core-87bb8aacf9575d80.rmeta: crates/core/src/lib.rs crates/core/src/array.rs crates/core/src/array2d.rs crates/core/src/baselines.rs crates/core/src/check.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/fifo.rs crates/core/src/fsu.rs crates/core/src/isa.rs crates/core/src/mapping.rs crates/core/src/pe.rs crates/core/src/scheme.rs

crates/core/src/lib.rs:
crates/core/src/array.rs:
crates/core/src/array2d.rs:
crates/core/src/baselines.rs:
crates/core/src/check.rs:
crates/core/src/config.rs:
crates/core/src/exec.rs:
crates/core/src/fifo.rs:
crates/core/src/fsu.rs:
crates/core/src/isa.rs:
crates/core/src/mapping.rs:
crates/core/src/pe.rs:
crates/core/src/scheme.rs:
