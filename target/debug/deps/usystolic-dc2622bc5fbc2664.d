/root/repo/target/debug/deps/usystolic-dc2622bc5fbc2664.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libusystolic-dc2622bc5fbc2664.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
