/root/repo/target/debug/deps/usystolic_sim-2a1c43317a049987.d: crates/sim/src/lib.rs crates/sim/src/dataflow.rs crates/sim/src/dram_model.rs crates/sim/src/jitter.rs crates/sim/src/memory.rs crates/sim/src/multi.rs crates/sim/src/report.rs crates/sim/src/runtime.rs crates/sim/src/trace.rs crates/sim/src/traffic.rs Cargo.toml

/root/repo/target/debug/deps/libusystolic_sim-2a1c43317a049987.rmeta: crates/sim/src/lib.rs crates/sim/src/dataflow.rs crates/sim/src/dram_model.rs crates/sim/src/jitter.rs crates/sim/src/memory.rs crates/sim/src/multi.rs crates/sim/src/report.rs crates/sim/src/runtime.rs crates/sim/src/trace.rs crates/sim/src/traffic.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/dataflow.rs:
crates/sim/src/dram_model.rs:
crates/sim/src/jitter.rs:
crates/sim/src/memory.rs:
crates/sim/src/multi.rs:
crates/sim/src/report.rs:
crates/sim/src/runtime.rs:
crates/sim/src/trace.rs:
crates/sim/src/traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
