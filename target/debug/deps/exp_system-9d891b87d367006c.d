/root/repo/target/debug/deps/exp_system-9d891b87d367006c.d: crates/bench/src/bin/exp_system.rs Cargo.toml

/root/repo/target/debug/deps/libexp_system-9d891b87d367006c.rmeta: crates/bench/src/bin/exp_system.rs Cargo.toml

crates/bench/src/bin/exp_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
