/root/repo/target/debug/deps/end_to_end-1cdf5c2005d25bd5.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-1cdf5c2005d25bd5: tests/end_to_end.rs

tests/end_to_end.rs:
