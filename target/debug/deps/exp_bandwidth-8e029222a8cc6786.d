/root/repo/target/debug/deps/exp_bandwidth-8e029222a8cc6786.d: crates/bench/src/bin/exp_bandwidth.rs

/root/repo/target/debug/deps/libexp_bandwidth-8e029222a8cc6786.rmeta: crates/bench/src/bin/exp_bandwidth.rs

crates/bench/src/bin/exp_bandwidth.rs:
