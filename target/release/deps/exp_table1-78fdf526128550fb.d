/root/repo/target/release/deps/exp_table1-78fdf526128550fb.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/release/deps/exp_table1-78fdf526128550fb: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
