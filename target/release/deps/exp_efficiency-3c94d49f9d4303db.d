/root/repo/target/release/deps/exp_efficiency-3c94d49f9d4303db.d: crates/bench/src/bin/exp_efficiency.rs

/root/repo/target/release/deps/exp_efficiency-3c94d49f9d4303db: crates/bench/src/bin/exp_efficiency.rs

crates/bench/src/bin/exp_efficiency.rs:
