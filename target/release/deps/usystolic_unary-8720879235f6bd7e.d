/root/repo/target/release/deps/usystolic_unary-8720879235f6bd7e.d: crates/unary/src/lib.rs crates/unary/src/add.rs crates/unary/src/bitstream.rs crates/unary/src/bsg.rs crates/unary/src/coding.rs crates/unary/src/div.rs crates/unary/src/et.rs crates/unary/src/mul.rs crates/unary/src/rng.rs crates/unary/src/scc.rs crates/unary/src/sign.rs crates/unary/src/stability.rs

/root/repo/target/release/deps/libusystolic_unary-8720879235f6bd7e.rlib: crates/unary/src/lib.rs crates/unary/src/add.rs crates/unary/src/bitstream.rs crates/unary/src/bsg.rs crates/unary/src/coding.rs crates/unary/src/div.rs crates/unary/src/et.rs crates/unary/src/mul.rs crates/unary/src/rng.rs crates/unary/src/scc.rs crates/unary/src/sign.rs crates/unary/src/stability.rs

/root/repo/target/release/deps/libusystolic_unary-8720879235f6bd7e.rmeta: crates/unary/src/lib.rs crates/unary/src/add.rs crates/unary/src/bitstream.rs crates/unary/src/bsg.rs crates/unary/src/coding.rs crates/unary/src/div.rs crates/unary/src/et.rs crates/unary/src/mul.rs crates/unary/src/rng.rs crates/unary/src/scc.rs crates/unary/src/sign.rs crates/unary/src/stability.rs

crates/unary/src/lib.rs:
crates/unary/src/add.rs:
crates/unary/src/bitstream.rs:
crates/unary/src/bsg.rs:
crates/unary/src/coding.rs:
crates/unary/src/div.rs:
crates/unary/src/et.rs:
crates/unary/src/mul.rs:
crates/unary/src/rng.rs:
crates/unary/src/scc.rs:
crates/unary/src/sign.rs:
crates/unary/src/stability.rs:
