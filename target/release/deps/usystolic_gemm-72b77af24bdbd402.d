/root/repo/target/release/deps/usystolic_gemm-72b77af24bdbd402.d: crates/gemm/src/lib.rs crates/gemm/src/config.rs crates/gemm/src/im2col.rs crates/gemm/src/loopnest.rs crates/gemm/src/pad.rs crates/gemm/src/quant.rs crates/gemm/src/stats.rs crates/gemm/src/tensor.rs

/root/repo/target/release/deps/libusystolic_gemm-72b77af24bdbd402.rlib: crates/gemm/src/lib.rs crates/gemm/src/config.rs crates/gemm/src/im2col.rs crates/gemm/src/loopnest.rs crates/gemm/src/pad.rs crates/gemm/src/quant.rs crates/gemm/src/stats.rs crates/gemm/src/tensor.rs

/root/repo/target/release/deps/libusystolic_gemm-72b77af24bdbd402.rmeta: crates/gemm/src/lib.rs crates/gemm/src/config.rs crates/gemm/src/im2col.rs crates/gemm/src/loopnest.rs crates/gemm/src/pad.rs crates/gemm/src/quant.rs crates/gemm/src/stats.rs crates/gemm/src/tensor.rs

crates/gemm/src/lib.rs:
crates/gemm/src/config.rs:
crates/gemm/src/im2col.rs:
crates/gemm/src/loopnest.rs:
crates/gemm/src/pad.rs:
crates/gemm/src/quant.rs:
crates/gemm/src/stats.rs:
crates/gemm/src/tensor.rs:
