/root/repo/target/release/deps/exp_power-6f3760ea52d71438.d: crates/bench/src/bin/exp_power.rs

/root/repo/target/release/deps/exp_power-6f3760ea52d71438: crates/bench/src/bin/exp_power.rs

crates/bench/src/bin/exp_power.rs:
