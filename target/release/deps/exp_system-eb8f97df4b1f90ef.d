/root/repo/target/release/deps/exp_system-eb8f97df4b1f90ef.d: crates/bench/src/bin/exp_system.rs

/root/repo/target/release/deps/exp_system-eb8f97df4b1f90ef: crates/bench/src/bin/exp_system.rs

crates/bench/src/bin/exp_system.rs:
