/root/repo/target/release/deps/exp_design_space-2e184d90335ba5e5.d: crates/bench/src/bin/exp_design_space.rs

/root/repo/target/release/deps/exp_design_space-2e184d90335ba5e5: crates/bench/src/bin/exp_design_space.rs

crates/bench/src/bin/exp_design_space.rs:
