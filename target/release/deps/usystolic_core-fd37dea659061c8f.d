/root/repo/target/release/deps/usystolic_core-fd37dea659061c8f.d: crates/core/src/lib.rs crates/core/src/array.rs crates/core/src/array2d.rs crates/core/src/baselines.rs crates/core/src/check.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/fifo.rs crates/core/src/fsu.rs crates/core/src/isa.rs crates/core/src/mapping.rs crates/core/src/pe.rs crates/core/src/scheme.rs

/root/repo/target/release/deps/libusystolic_core-fd37dea659061c8f.rlib: crates/core/src/lib.rs crates/core/src/array.rs crates/core/src/array2d.rs crates/core/src/baselines.rs crates/core/src/check.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/fifo.rs crates/core/src/fsu.rs crates/core/src/isa.rs crates/core/src/mapping.rs crates/core/src/pe.rs crates/core/src/scheme.rs

/root/repo/target/release/deps/libusystolic_core-fd37dea659061c8f.rmeta: crates/core/src/lib.rs crates/core/src/array.rs crates/core/src/array2d.rs crates/core/src/baselines.rs crates/core/src/check.rs crates/core/src/config.rs crates/core/src/exec.rs crates/core/src/fifo.rs crates/core/src/fsu.rs crates/core/src/isa.rs crates/core/src/mapping.rs crates/core/src/pe.rs crates/core/src/scheme.rs

crates/core/src/lib.rs:
crates/core/src/array.rs:
crates/core/src/array2d.rs:
crates/core/src/baselines.rs:
crates/core/src/check.rs:
crates/core/src/config.rs:
crates/core/src/exec.rs:
crates/core/src/fifo.rs:
crates/core/src/fsu.rs:
crates/core/src/isa.rs:
crates/core/src/mapping.rs:
crates/core/src/pe.rs:
crates/core/src/scheme.rs:
