/root/repo/target/release/deps/usystolic_obs-5942226dee4d6cd3.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libusystolic_obs-5942226dee4d6cd3.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libusystolic_obs-5942226dee4d6cd3.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
