/root/repo/target/release/deps/sim_cli-55ebd539dd361551.d: crates/bench/src/bin/sim_cli.rs

/root/repo/target/release/deps/sim_cli-55ebd539dd361551: crates/bench/src/bin/sim_cli.rs

crates/bench/src/bin/sim_cli.rs:
