/root/repo/target/release/deps/exp_energy-a28d53a7b081f809.d: crates/bench/src/bin/exp_energy.rs

/root/repo/target/release/deps/exp_energy-a28d53a7b081f809: crates/bench/src/bin/exp_energy.rs

crates/bench/src/bin/exp_energy.rs:
