/root/repo/target/release/deps/exp_ablation-8a69923ec2f51767.d: crates/bench/src/bin/exp_ablation.rs

/root/repo/target/release/deps/exp_ablation-8a69923ec2f51767: crates/bench/src/bin/exp_ablation.rs

crates/bench/src/bin/exp_ablation.rs:
