/root/repo/target/release/deps/usystolic_models-7b5ae476c8d645ca.d: crates/models/src/lib.rs crates/models/src/dataset.rs crates/models/src/mlp.rs crates/models/src/mlperf.rs crates/models/src/trainer.rs crates/models/src/zoo.rs

/root/repo/target/release/deps/libusystolic_models-7b5ae476c8d645ca.rlib: crates/models/src/lib.rs crates/models/src/dataset.rs crates/models/src/mlp.rs crates/models/src/mlperf.rs crates/models/src/trainer.rs crates/models/src/zoo.rs

/root/repo/target/release/deps/libusystolic_models-7b5ae476c8d645ca.rmeta: crates/models/src/lib.rs crates/models/src/dataset.rs crates/models/src/mlp.rs crates/models/src/mlperf.rs crates/models/src/trainer.rs crates/models/src/zoo.rs

crates/models/src/lib.rs:
crates/models/src/dataset.rs:
crates/models/src/mlp.rs:
crates/models/src/mlperf.rs:
crates/models/src/trainer.rs:
crates/models/src/zoo.rs:
