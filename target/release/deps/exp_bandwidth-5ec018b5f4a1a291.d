/root/repo/target/release/deps/exp_bandwidth-5ec018b5f4a1a291.d: crates/bench/src/bin/exp_bandwidth.rs

/root/repo/target/release/deps/exp_bandwidth-5ec018b5f4a1a291: crates/bench/src/bin/exp_bandwidth.rs

crates/bench/src/bin/exp_bandwidth.rs:
