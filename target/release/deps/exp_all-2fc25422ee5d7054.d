/root/repo/target/release/deps/exp_all-2fc25422ee5d7054.d: crates/bench/src/bin/exp_all.rs

/root/repo/target/release/deps/exp_all-2fc25422ee5d7054: crates/bench/src/bin/exp_all.rs

crates/bench/src/bin/exp_all.rs:
