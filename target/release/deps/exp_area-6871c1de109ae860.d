/root/repo/target/release/deps/exp_area-6871c1de109ae860.d: crates/bench/src/bin/exp_area.rs

/root/repo/target/release/deps/exp_area-6871c1de109ae860: crates/bench/src/bin/exp_area.rs

crates/bench/src/bin/exp_area.rs:
