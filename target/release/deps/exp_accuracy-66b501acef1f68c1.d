/root/repo/target/release/deps/exp_accuracy-66b501acef1f68c1.d: crates/bench/src/bin/exp_accuracy.rs

/root/repo/target/release/deps/exp_accuracy-66b501acef1f68c1: crates/bench/src/bin/exp_accuracy.rs

crates/bench/src/bin/exp_accuracy.rs:
