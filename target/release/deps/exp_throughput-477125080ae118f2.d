/root/repo/target/release/deps/exp_throughput-477125080ae118f2.d: crates/bench/src/bin/exp_throughput.rs

/root/repo/target/release/deps/exp_throughput-477125080ae118f2: crates/bench/src/bin/exp_throughput.rs

crates/bench/src/bin/exp_throughput.rs:
