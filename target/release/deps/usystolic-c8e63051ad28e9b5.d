/root/repo/target/release/deps/usystolic-c8e63051ad28e9b5.d: src/lib.rs

/root/repo/target/release/deps/libusystolic-c8e63051ad28e9b5.rlib: src/lib.rs

/root/repo/target/release/deps/libusystolic-c8e63051ad28e9b5.rmeta: src/lib.rs

src/lib.rs:
