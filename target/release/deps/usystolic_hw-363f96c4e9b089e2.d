/root/repo/target/release/deps/usystolic_hw-363f96c4e9b089e2.d: crates/hw/src/lib.rs crates/hw/src/area.rs crates/hw/src/energy.rs crates/hw/src/evaluate.rs crates/hw/src/pe_area.rs crates/hw/src/power.rs crates/hw/src/summary.rs crates/hw/src/tech.rs

/root/repo/target/release/deps/libusystolic_hw-363f96c4e9b089e2.rlib: crates/hw/src/lib.rs crates/hw/src/area.rs crates/hw/src/energy.rs crates/hw/src/evaluate.rs crates/hw/src/pe_area.rs crates/hw/src/power.rs crates/hw/src/summary.rs crates/hw/src/tech.rs

/root/repo/target/release/deps/libusystolic_hw-363f96c4e9b089e2.rmeta: crates/hw/src/lib.rs crates/hw/src/area.rs crates/hw/src/energy.rs crates/hw/src/evaluate.rs crates/hw/src/pe_area.rs crates/hw/src/power.rs crates/hw/src/summary.rs crates/hw/src/tech.rs

crates/hw/src/lib.rs:
crates/hw/src/area.rs:
crates/hw/src/energy.rs:
crates/hw/src/evaluate.rs:
crates/hw/src/pe_area.rs:
crates/hw/src/power.rs:
crates/hw/src/summary.rs:
crates/hw/src/tech.rs:
