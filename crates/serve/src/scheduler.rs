//! Deadline- and priority-aware batching dispatch.
//!
//! Whenever an instance is free and the admission queue is non-empty, the
//! scheduler picks the *leader* — the queued request with the smallest
//! [`dispatch_key`](crate::request::Request::dispatch_key) (highest
//! priority, then earliest deadline, then earliest arrival, then id; a
//! priority-tiered EDF) — and then packs up to `max_batch − 1` further
//! requests **of the same workload class** behind it, again in key order.
//! Same-class batching is what amortises the weight preload: the batch
//! pays the class's weight DRAM traffic once and streams each member's
//! inputs through the resident weights (see
//! [`WorkloadProfile::service_cycles`]).
//!
//! The scheduler never pre-empts an in-flight batch and never migrates a
//! dispatched request; all decisions happen at event boundaries, so the
//! dispatch sequence is a deterministic function of the queue contents.
//!
//! [`WorkloadProfile::service_cycles`]: crate::workload::WorkloadProfile::service_cycles

use crate::admission::AdmissionController;
use crate::request::Request;

/// The batching policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduler {
    /// Largest batch one dispatch may carry (≥ 1).
    pub max_batch: usize,
}

impl Scheduler {
    /// Creates a scheduler with the given batch bound.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    #[must_use]
    pub fn new(max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be at least 1");
        Self { max_batch }
    }

    /// Removes and returns the next batch to dispatch, or `None` when the
    /// queue is empty. All returned requests share one workload class;
    /// the first element is the leader.
    pub fn next_batch(&self, queue: &mut AdmissionController) -> Option<Vec<Request>> {
        let queued = queue.queued();
        if queued.is_empty() {
            return None;
        }
        // Leader: smallest dispatch key across the whole queue.
        let leader_pos = queued
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.dispatch_key())
            .map(|(i, _)| i)?;
        let class = queued[leader_pos].class;
        // Followers: same class, in key order, up to the batch bound.
        let mut members: Vec<usize> = queued
            .iter()
            .enumerate()
            .filter(|(i, r)| *i != leader_pos && r.class == class)
            .map(|(i, _)| i)
            .collect();
        members.sort_by_key(|&i| queued[i].dispatch_key());
        members.truncate(self.max_batch - 1);
        members.push(leader_pos);
        members.sort_unstable();
        let mut batch = queue.take(&members);
        // Leader first, followers in key order behind it.
        batch.sort_by_key(Request::dispatch_key);
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;

    fn req(id: u64, class: usize) -> Request {
        Request {
            id,
            class,
            arrival: id,
            priority: Priority::Normal,
            deadline: None,
            client: None,
        }
    }

    fn filled(reqs: &[Request]) -> AdmissionController {
        let mut q = AdmissionController::new(64);
        for &r in reqs {
            q.offer(r);
        }
        q
    }

    #[test]
    fn empty_queue_yields_no_batch() {
        let mut q = AdmissionController::new(4);
        assert!(Scheduler::new(4).next_batch(&mut q).is_none());
    }

    #[test]
    fn leader_is_edf_within_priority() {
        let mut a = req(1, 0);
        a.deadline = Some(500);
        let mut b = req(2, 0);
        b.deadline = Some(300);
        let mut hi = req(3, 1);
        hi.priority = Priority::High;
        hi.deadline = Some(900);
        let mut q = filled(&[a, b, hi]);
        // High priority wins even with the latest deadline.
        let batch = Scheduler::new(1).next_batch(&mut q).expect("non-empty");
        assert_eq!(batch[0].id, 3);
        // Then EDF among the normals.
        let batch = Scheduler::new(1).next_batch(&mut q).expect("non-empty");
        assert_eq!(batch[0].id, 2);
    }

    #[test]
    fn batch_packs_only_the_leader_class() {
        let reqs = [req(1, 0), req(2, 1), req(3, 0), req(4, 0), req(5, 1)];
        let mut q = filled(&reqs);
        let batch = Scheduler::new(8).next_batch(&mut q).expect("non-empty");
        let ids: Vec<u64> = batch.iter().map(|r| r.id).collect();
        assert_eq!(ids, [1, 3, 4]);
        let left: Vec<u64> = q.queued().iter().map(|r| r.id).collect();
        assert_eq!(left, [2, 5]);
    }

    #[test]
    fn max_batch_bounds_the_pack() {
        let reqs: Vec<Request> = (1..=6).map(|id| req(id, 0)).collect();
        let mut q = filled(&reqs);
        let batch = Scheduler::new(4).next_batch(&mut q).expect("non-empty");
        assert_eq!(batch.len(), 4);
        let ids: Vec<u64> = batch.iter().map(|r| r.id).collect();
        assert_eq!(ids, [1, 2, 3, 4]);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn followers_ride_in_key_order() {
        let mut urgent = req(9, 0);
        urgent.deadline = Some(100);
        let reqs = [req(1, 0), urgent, req(3, 0)];
        let mut q = filled(&reqs);
        let batch = Scheduler::new(8).next_batch(&mut q).expect("non-empty");
        let ids: Vec<u64> = batch.iter().map(|r| r.id).collect();
        // Leader has the tightest deadline; followers by arrival.
        assert_eq!(ids, [9, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_batch_bound_rejected() {
        let _ = Scheduler::new(0);
    }
}
