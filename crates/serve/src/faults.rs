//! Fleet-level fault plan: shard crashes, slowdowns, timeouts, retries
//! and brown-out degradation.
//!
//! A [`FleetFaultPlan`] scripts every fleet fault of a serving run as
//! plain data: which shard fails or slows at which cycle, how long a
//! request may wait before timing out, how many retries a crashed
//! shard's in-flight requests get (with deterministic exponential
//! backoff and seeded jitter), and whether overload browns the fleet
//! out — degrading service quality (raised early termination, shorter
//! unary streams) instead of rejecting requests.
//!
//! Everything is an integer — cycles, percent, permille — so the plan
//! derives `Eq` and every scheduled event stays exactly comparable. The
//! only randomness is retry jitter, drawn from a `SplitMix64` keyed by
//! `(seed, request id, attempt)`: the same plan replays the same
//! backoff schedule whatever the host worker count.

use crate::report::ServeError;
use usystolic_obs::{JsonValue, ToJson};
use usystolic_unary::rng::SplitMix64;

/// A shard that fail-stops at a given cycle.
///
/// The shard stops accepting work; the batch it is running (if any) is
/// lost and its requests are retried on the survivors or recorded as
/// failed, per the plan's [`RetryPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFailure {
    /// Cycle at which the shard dies.
    pub at: u64,
    /// Instance index, 1-based (matching trace `tid`s and reports).
    pub instance: usize,
}

/// A shard that degrades to a fraction of its nominal speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSlowdown {
    /// Cycle from which the slowdown applies (to subsequent dispatches;
    /// the batch already in flight keeps its original completion time).
    pub at: u64,
    /// Instance index, 1-based.
    pub instance: usize,
    /// Service-time multiplier in percent (`100` = nominal, `300` =
    /// three times slower). Must be at least 100.
    pub factor_percent: u32,
}

/// Bounded retry with exponential backoff and seeded jitter for the
/// in-flight requests of a crashed shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries each request gets before it is recorded as failed.
    /// Zero disables retry: a crash fails its whole in-flight batch.
    pub max_retries: u32,
    /// Backoff before attempt `n` is `base << n` cycles, plus jitter.
    pub backoff_base_cycles: u64,
    /// Upper bound of the uniform jitter, as permille of the backoff
    /// (`250` adds up to 25%). Zero disables jitter.
    pub jitter_permille: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 0,
            backoff_base_cycles: 1024,
            jitter_permille: 0,
        }
    }
}

/// Brown-out: under overload, degrade quality instead of rejecting.
///
/// When the admission queue is at least `depth_permille` of its
/// capacity, dispatches run at `service_permille` of their nominal
/// compute and traffic — the serving analogue of raising early
/// termination: shorter unary streams, fewer crawled bytes, lower
/// precision — and arrivals that would be rejected are force-admitted
/// up to twice the configured queue capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutPolicy {
    /// Queue-depth threshold as permille of capacity at or above which
    /// dispatches degrade (e.g. `800` = 80% full).
    pub depth_permille: u32,
    /// Compute/traffic scale of degraded service in permille (e.g.
    /// `500` = half the cycles). Must be in `1..=1000`.
    pub service_permille: u32,
}

/// The complete fleet fault plan for one serving run.
///
/// [`FleetFaultPlan::default`] is the quiet plan: no failures, no
/// slowdowns, no timeouts, no retries, no brown-out — the engine under
/// a quiet plan is bit-identical to the fault-free engine.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FleetFaultPlan {
    /// Seed for retry jitter (the only randomness at fleet level).
    pub seed: u64,
    /// Scripted shard crashes.
    pub failures: Vec<ShardFailure>,
    /// Scripted shard slowdowns.
    pub slowdowns: Vec<ShardSlowdown>,
    /// Queue-wait budget: a request still queued this many cycles after
    /// (re)submission times out. `None` disables timeouts.
    pub timeout_cycles: Option<u64>,
    /// Shed queued requests whose absolute deadline has passed instead
    /// of serving them late (they record as timed out, reason
    /// `deadline`).
    pub shed_expired: bool,
    /// Retry policy for in-flight requests lost to a crash.
    pub retry: RetryPolicy,
    /// Optional brown-out mode.
    pub brownout: Option<BrownoutPolicy>,
}

impl FleetFaultPlan {
    /// Whether this plan injects nothing (the engine behaves exactly
    /// like the fault-free engine).
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.failures.is_empty()
            && self.slowdowns.is_empty()
            && self.timeout_cycles.is_none()
            && !self.shed_expired
            && self.brownout.is_none()
    }

    /// Checks the plan against the fleet size.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when an event names an
    /// instance outside `1..=instances`, a slowdown factor is below
    /// 100%, a timeout is zero, or a brown-out permille is out of range.
    pub fn validate(&self, instances: usize) -> Result<(), ServeError> {
        for f in &self.failures {
            if f.instance == 0 || f.instance > instances {
                return Err(ServeError::InvalidConfig(
                    "shard failure names an instance outside the fleet",
                ));
            }
        }
        for s in &self.slowdowns {
            if s.instance == 0 || s.instance > instances {
                return Err(ServeError::InvalidConfig(
                    "shard slowdown names an instance outside the fleet",
                ));
            }
            if s.factor_percent < 100 {
                return Err(ServeError::InvalidConfig(
                    "slowdown factor must be at least 100 percent",
                ));
            }
        }
        if self.timeout_cycles == Some(0) {
            return Err(ServeError::InvalidConfig(
                "timeout_cycles must be at least 1",
            ));
        }
        if self.retry.max_retries > 0 && self.retry.backoff_base_cycles == 0 {
            return Err(ServeError::InvalidConfig(
                "retry backoff base must be at least 1 cycle",
            ));
        }
        if self.retry.jitter_permille > 1000 {
            return Err(ServeError::InvalidConfig(
                "retry jitter must be at most 1000 permille",
            ));
        }
        if let Some(b) = &self.brownout {
            if b.service_permille == 0 || b.service_permille > 1000 {
                return Err(ServeError::InvalidConfig(
                    "brownout service_permille must be in 1..=1000",
                ));
            }
            if b.depth_permille == 0 {
                return Err(ServeError::InvalidConfig(
                    "brownout depth_permille must be at least 1",
                ));
            }
        }
        Ok(())
    }

    /// Backoff before retry `attempt` (0-based) of request `id`:
    /// `base << attempt` plus uniform jitter in
    /// `[0, backoff * jitter_permille / 1000]`, drawn from a SplitMix64
    /// keyed by `(seed, id, attempt)` — a pure function of the plan, so
    /// replays are exact for any worker count.
    #[must_use]
    pub fn backoff_cycles(&self, id: u64, attempt: u32) -> u64 {
        let shift = attempt.min(20);
        let base = self.retry.backoff_base_cycles.saturating_mul(1 << shift);
        if self.retry.jitter_permille == 0 {
            return base;
        }
        let mut rng = SplitMix64::new(
            self.seed
                ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ u64::from(attempt).wrapping_mul(0xBF58_476D_1CE4_E5B9),
        );
        let span = base / 1000 * u64::from(self.retry.jitter_permille)
            + base % 1000 * u64::from(self.retry.jitter_permille) / 1000;
        base.saturating_add(rng.below(span + 1))
    }
}

impl ToJson for FleetFaultPlan {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("seed", self.seed.to_json()),
            (
                "failures",
                JsonValue::Array(
                    self.failures
                        .iter()
                        .map(|f| {
                            JsonValue::object(vec![
                                ("at", f.at.to_json()),
                                ("instance", f.instance.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "slowdowns",
                JsonValue::Array(
                    self.slowdowns
                        .iter()
                        .map(|s| {
                            JsonValue::object(vec![
                                ("at", s.at.to_json()),
                                ("instance", s.instance.to_json()),
                                ("factor_percent", u64::from(s.factor_percent).to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("timeout_cycles", self.timeout_cycles.to_json()),
            ("shed_expired", self.shed_expired.to_json()),
            (
                "retry",
                JsonValue::object(vec![
                    ("max_retries", u64::from(self.retry.max_retries).to_json()),
                    (
                        "backoff_base_cycles",
                        self.retry.backoff_base_cycles.to_json(),
                    ),
                    (
                        "jitter_permille",
                        u64::from(self.retry.jitter_permille).to_json(),
                    ),
                ]),
            ),
            (
                "brownout",
                match &self.brownout {
                    None => JsonValue::Null,
                    Some(b) => JsonValue::object(vec![
                        ("depth_permille", u64::from(b.depth_permille).to_json()),
                        ("service_permille", u64::from(b.service_permille).to_json()),
                    ]),
                },
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_quiet_and_valid() {
        let p = FleetFaultPlan::default();
        assert!(p.is_quiet());
        assert!(p.validate(1).is_ok());
    }

    #[test]
    fn validation_catches_bad_plans() {
        let mut p = FleetFaultPlan {
            failures: vec![ShardFailure {
                at: 10,
                instance: 3,
            }],
            ..FleetFaultPlan::default()
        };
        assert!(p.validate(2).is_err());
        assert!(p.validate(3).is_ok());
        p.failures[0].instance = 0;
        assert!(p.validate(3).is_err());

        let p = FleetFaultPlan {
            slowdowns: vec![ShardSlowdown {
                at: 5,
                instance: 1,
                factor_percent: 50,
            }],
            ..FleetFaultPlan::default()
        };
        assert!(p.validate(1).is_err());

        let p = FleetFaultPlan {
            timeout_cycles: Some(0),
            ..FleetFaultPlan::default()
        };
        assert!(p.validate(1).is_err());

        let p = FleetFaultPlan {
            brownout: Some(BrownoutPolicy {
                depth_permille: 800,
                service_permille: 0,
            }),
            ..FleetFaultPlan::default()
        };
        assert!(p.validate(1).is_err());
    }

    #[test]
    fn backoff_doubles_per_attempt_without_jitter() {
        let p = FleetFaultPlan {
            retry: RetryPolicy {
                max_retries: 3,
                backoff_base_cycles: 100,
                jitter_permille: 0,
            },
            ..FleetFaultPlan::default()
        };
        assert_eq!(p.backoff_cycles(7, 0), 100);
        assert_eq!(p.backoff_cycles(7, 1), 200);
        assert_eq!(p.backoff_cycles(7, 2), 400);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = FleetFaultPlan {
            seed: 42,
            retry: RetryPolicy {
                max_retries: 2,
                backoff_base_cycles: 1000,
                jitter_permille: 250,
            },
            ..FleetFaultPlan::default()
        };
        for id in 0..50u64 {
            let b = p.backoff_cycles(id, 0);
            assert!((1000..=1250).contains(&b), "{b}");
            assert_eq!(b, p.backoff_cycles(id, 0));
        }
        // Different requests see different jitter under a healthy seed.
        let distinct: std::collections::BTreeSet<u64> =
            (0..50).map(|id| p.backoff_cycles(id, 0)).collect();
        assert!(distinct.len() > 10);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let p = FleetFaultPlan {
            retry: RetryPolicy {
                max_retries: u32::MAX,
                backoff_base_cycles: u64::MAX / 2,
                jitter_permille: 0,
            },
            ..FleetFaultPlan::default()
        };
        assert_eq!(p.backoff_cycles(1, 63), u64::MAX);
    }

    #[test]
    fn plan_renders_to_json() {
        let p = FleetFaultPlan {
            seed: 9,
            failures: vec![ShardFailure {
                at: 100,
                instance: 1,
            }],
            timeout_cycles: Some(5000),
            brownout: Some(BrownoutPolicy {
                depth_permille: 800,
                service_permille: 500,
            }),
            ..FleetFaultPlan::default()
        };
        let j = p.to_json();
        assert_eq!(j.get("seed"), Some(&JsonValue::UInt(9)));
        assert!(matches!(j.get("failures"), Some(JsonValue::Array(a)) if a.len() == 1));
        assert!(matches!(j.get("brownout"), Some(JsonValue::Object(_))));
        let quiet = FleetFaultPlan::default().to_json();
        assert_eq!(quiet.get("brownout"), Some(&JsonValue::Null));
        assert_eq!(quiet.get("timeout_cycles"), Some(&JsonValue::Null));
    }
}
