//! Command-line load harness for the serving simulator.
//!
//! ```sh
//! cargo run --release -p usystolic-serve --bin serve_cli -- \
//!     --seed 7 --workers 4 --instances 4 \
//!     --arrival-rate 2000000 --duration 0.002
//! cargo run --release -p usystolic-serve --bin serve_cli -- \
//!     --network mnist --instances 8 --arrival-rate 2000 --duration 0.5 \
//!     --deadline 2.0 --json
//! cargo run --release -p usystolic-serve --bin serve_cli -- \
//!     --closed-loop 16 --think 0.1 --duration 0.01 --max-batch 8
//! ```
//!
//! The run is **bit-for-bit deterministic**: the same seed and
//! configuration print the same report (including `--json`) on every run
//! and for every `--workers` value — the worker pool only parallelises
//! pure phases. Under overload the bounded admission queue rejects
//! explicitly; rejections, deadline misses and exact p50/p95/p99
//! latencies all land in the report. `--trace`/`--metrics` export the
//! observability session (per-batch spans on the simulated-cycle lane,
//! queue-depth gauges, stage histograms).

use usystolic_analyze::{check_serving, Report, ServingSpec};
use usystolic_core::{ComputingScheme, SystolicConfig};
use usystolic_gemm::GemmConfig;
use usystolic_models::zoo;
use usystolic_obs::{JsonValue, ToJson};
use usystolic_serve::loadgen::{ArrivalProcess, LoadGenConfig};
use usystolic_serve::workload::{LayerProfile, WorkloadProfile};
use usystolic_serve::{
    serve, BrownoutPolicy, Fidelity, FleetFaultPlan, LatencySummary, RetryPolicy, ServeConfig,
    ServeReport, ShardFailure, ShardSlowdown, Workload,
};
use usystolic_sim::{MemoryHierarchy, CLOCK_HZ};

#[derive(Debug)]
struct Args {
    scheme: ComputingScheme,
    cycles: Option<u64>,
    bitwidth: u32,
    cloud: bool,
    no_sram: Option<bool>,
    workloads: Vec<Workload>,
    workers: usize,
    instances: usize,
    queue_depth: usize,
    max_batch: usize,
    arrival_rate: Option<f64>,
    closed_loop: Option<usize>,
    think_s: f64,
    duration_s: f64,
    deadline_ms: Option<f64>,
    hi_frac: f64,
    seed: u64,
    trace: Option<std::path::PathBuf>,
    metrics: Option<std::path::PathBuf>,
    metrics_format: MetricsFormat,
    report_html: Option<std::path::PathBuf>,
    json: bool,
    check: bool,
    shard_fails: Vec<ShardFailure>,
    shard_slows: Vec<ShardSlowdown>,
    timeout_ms: Option<f64>,
    retry_max: u32,
    retry_backoff_ms: f64,
    retry_jitter_permille: u32,
    brownout: Option<BrownoutPolicy>,
    shed_expired: bool,
    fault_seed: Option<u64>,
    fidelity: Fidelity,
}

/// On-disk encoding for `--metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Json,
    Prom,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_cli [--workers N] [--instances N] [--arrival-rate REQ_PER_S]
                 [--closed-loop CLIENTS] [--think S] [--duration S]
                 [--deadline MS] [--seed N] [--queue-depth N] [--max-batch N]
                 [--hi-frac F] [--scheme BP|BS|UG|UR|UT] [--cycles N] [--bits N]
                 [--shape edge|cloud] [--sram|--no-sram]
                 [--network alexnet|resnet18|vgg16|mnist]... [--matmul M,K,N]...
                 [--conv IH,IW,IC,WH,WW,S,OC]... [--trace FILE] [--metrics FILE]
                 [--metrics-format json|prom] [--report FILE.html] [--json]
                 [--check]
                 [--shard-fail MS[,IDX]]... [--shard-slow MS,PCT[,IDX]]...
                 [--timeout MS] [--retry-max N] [--retry-backoff MS]
                 [--retry-jitter PERMILLE] [--brownout DEPTH,SERVICE]
                 [--shed-expired] [--fault-seed N]
                 [--fidelity cycle|packed|analytic]

Each --network/--matmul/--conv adds one workload class; requests draw a
class uniformly. With no workload flags a 64x64x64 matmul is served.
Open-loop Poisson arrivals by default (--arrival-rate, requests per
second of simulated time); --closed-loop switches to a fixed client
population with --think seconds between completion and re-issue.

Fleet faults (all deterministic under --fault-seed, default --seed):
--shard-fail kills instance IDX (default 1) at MS milliseconds of
simulated time; its in-flight requests retry on the survivors up to
--retry-max times with exponential backoff (--retry-backoff base,
--retry-jitter permille of seeded jitter). --shard-slow multiplies
instance IDX's service times by PCT percent from MS on. --timeout bounds
queue wait; --shed-expired drops queued requests past their deadline;
--brownout DEPTH,SERVICE (permille) degrades service to SERVICE/1000 of
nominal once the queue passes DEPTH/1000 of capacity, admitting overflow
up to twice the queue instead of rejecting.

--fidelity picks the service-time model resolution: cycle (default)
re-derives every layer timing from first principles at each dispatch,
packed uses the precomputed exact totals (identical numbers, faster),
analytic interpolates the closed-form feasibility estimate (approximate,
fleet-scale fast).

--check runs the static serving-feasibility analysis instead of the
event simulation: USY070 (provable overload), USY071 (near-saturation
utilisation), USY072 (deadline below the minimum possible latency),
USY073 (DRAM-limited operating point). Exit 0 when feasible, 1 when any
error fires."
    );
    std::process::exit(2);
}

/// Exits with a clear diagnostic (code 2) instead of a panic/backtrace.
fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("serve_cli: error: {message}");
    std::process::exit(2);
}

fn parse_dims(flag: &str, s: &str, expected: usize) -> Vec<usize> {
    let dims: Vec<usize> = s
        .split(',')
        .map(|p| {
            p.trim().parse().unwrap_or_else(|_| {
                fail(format!(
                    "{flag} {s}: '{}' is not a non-negative integer",
                    p.trim()
                ))
            })
        })
        .collect();
    if dims.len() != expected {
        fail(format!(
            "{flag} {s}: expected {expected} comma-separated dimensions, got {}",
            dims.len()
        ));
    }
    dims
}

/// Parses a milliseconds-of-simulated-time value into array cycles.
fn parse_ms_cycles(flag: &str, s: &str) -> u64 {
    let ms: f64 = s
        .trim()
        .parse()
        .unwrap_or_else(|_| fail(format!("{flag}: '{}' is not a number", s.trim())));
    if !ms.is_finite() || ms < 0.0 {
        fail(format!(
            "{flag}: '{}' must be a non-negative time",
            s.trim()
        ));
    }
    (ms * 1.0e-3 * CLOCK_HZ).round() as u64
}

fn network_by_name(name: &str) -> zoo::Network {
    match name {
        "alexnet" => zoo::alexnet(),
        "resnet18" => zoo::resnet18(),
        "vgg16" => zoo::vgg16(),
        "mnist" => zoo::mnist_cnn4(),
        other => fail(format!(
            "--network {other}: expected alexnet, resnet18, vgg16 or mnist"
        )),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        scheme: ComputingScheme::UnaryRate,
        cycles: None,
        bitwidth: 8,
        cloud: false,
        no_sram: None,
        workloads: Vec::new(),
        workers: 1,
        instances: 1,
        queue_depth: 64,
        max_batch: 8,
        arrival_rate: None,
        closed_loop: None,
        think_s: 0.0,
        duration_s: 0.01,
        deadline_ms: None,
        hi_frac: 0.0,
        seed: 1,
        trace: None,
        metrics: None,
        metrics_format: MetricsFormat::Json,
        report_html: None,
        json: false,
        check: false,
        shard_fails: Vec::new(),
        shard_slows: Vec::new(),
        timeout_ms: None,
        retry_max: 0,
        retry_backoff_ms: 0.01,
        retry_jitter_permille: 0,
        brownout: None,
        shed_expired: false,
        fault_seed: None,
        fidelity: Fidelity::CycleAccurate,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| fail(format!("{flag} requires a value")))
        };
        match flag.as_str() {
            "--scheme" => {
                let v = value();
                args.scheme = match v.as_str() {
                    "BP" => ComputingScheme::BinaryParallel,
                    "BS" => ComputingScheme::BinarySerial,
                    "UG" => ComputingScheme::UGemmHybrid,
                    "UR" => ComputingScheme::UnaryRate,
                    "UT" => ComputingScheme::UnaryTemporal,
                    _ => fail(format!("--scheme {v}: expected BP, BS, UG, UR or UT")),
                }
            }
            "--cycles" => {
                let v = value();
                args.cycles = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(format!("--cycles {v}: not an integer"))),
                );
            }
            "--bits" => {
                let v = value();
                args.bitwidth = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--bits {v}: not an integer")));
            }
            "--shape" => {
                let v = value();
                args.cloud = match v.as_str() {
                    "edge" => false,
                    "cloud" => true,
                    _ => fail(format!("--shape {v}: expected edge or cloud")),
                }
            }
            "--sram" => args.no_sram = Some(false),
            "--no-sram" => args.no_sram = Some(true),
            "--network" => {
                let net = network_by_name(&value());
                args.workloads.push(Workload::from_network(&net));
            }
            "--matmul" => {
                let v = value();
                let d = parse_dims("--matmul", &v, 3);
                let gemm = GemmConfig::matmul(d[0], d[1], d[2])
                    .unwrap_or_else(|e| fail(format!("--matmul {v}: {e}")));
                args.workloads
                    .push(Workload::from_gemm(&format!("matmul{v}"), gemm));
            }
            "--conv" => {
                let v = value();
                let d = parse_dims("--conv", &v, 7);
                let gemm = GemmConfig::conv(d[0], d[1], d[2], d[3], d[4], d[5], d[6])
                    .unwrap_or_else(|e| fail(format!("--conv {v}: {e}")));
                args.workloads
                    .push(Workload::from_gemm(&format!("conv{v}"), gemm));
            }
            "--workers" => {
                let v = value();
                args.workers = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--workers {v}: not an integer")));
            }
            "--instances" => {
                let v = value();
                args.instances = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--instances {v}: not an integer")));
            }
            "--queue-depth" => {
                let v = value();
                args.queue_depth = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--queue-depth {v}: not an integer")));
            }
            "--max-batch" => {
                let v = value();
                args.max_batch = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--max-batch {v}: not an integer")));
            }
            "--arrival-rate" => {
                let v = value();
                args.arrival_rate = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(format!("--arrival-rate {v}: not a number"))),
                );
            }
            "--closed-loop" => {
                let v = value();
                args.closed_loop = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(format!("--closed-loop {v}: not an integer"))),
                );
            }
            "--think" => {
                let v = value();
                args.think_s = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--think {v}: not a number")));
            }
            "--duration" => {
                let v = value();
                args.duration_s = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--duration {v}: not a number")));
            }
            "--deadline" => {
                let v = value();
                args.deadline_ms = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(format!("--deadline {v}: not a number"))),
                );
            }
            "--hi-frac" => {
                let v = value();
                args.hi_frac = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--hi-frac {v}: not a number")));
            }
            "--seed" => {
                let v = value();
                args.seed = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--seed {v}: not an integer")));
            }
            "--shard-fail" => {
                let v = value();
                let parts: Vec<&str> = v.split(',').collect();
                if parts.is_empty() || parts.len() > 2 {
                    fail(format!("--shard-fail {v}: expected MS or MS,IDX"));
                }
                let at = parse_ms_cycles("--shard-fail", parts[0]);
                let instance = if parts.len() == 2 {
                    parts[1].trim().parse().unwrap_or_else(|_| {
                        fail(format!("--shard-fail {v}: IDX is not an integer"))
                    })
                } else {
                    1
                };
                args.shard_fails.push(ShardFailure { at, instance });
            }
            "--shard-slow" => {
                let v = value();
                let parts: Vec<&str> = v.split(',').collect();
                if parts.len() < 2 || parts.len() > 3 {
                    fail(format!("--shard-slow {v}: expected MS,PCT or MS,PCT,IDX"));
                }
                let at = parse_ms_cycles("--shard-slow", parts[0]);
                let factor_percent = parts[1]
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--shard-slow {v}: PCT is not an integer")));
                let instance = if parts.len() == 3 {
                    parts[2].trim().parse().unwrap_or_else(|_| {
                        fail(format!("--shard-slow {v}: IDX is not an integer"))
                    })
                } else {
                    1
                };
                args.shard_slows.push(ShardSlowdown {
                    at,
                    instance,
                    factor_percent,
                });
            }
            "--timeout" => {
                let v = value();
                let ms: f64 = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--timeout {v}: not a number")));
                if !ms.is_finite() || ms <= 0.0 {
                    fail(format!("--timeout {v}: must be positive"));
                }
                args.timeout_ms = Some(ms);
            }
            "--retry-max" => {
                let v = value();
                args.retry_max = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--retry-max {v}: not an integer")));
            }
            "--retry-backoff" => {
                let v = value();
                let ms: f64 = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--retry-backoff {v}: not a number")));
                if !ms.is_finite() || ms <= 0.0 {
                    fail(format!("--retry-backoff {v}: must be positive"));
                }
                args.retry_backoff_ms = ms;
            }
            "--retry-jitter" => {
                let v = value();
                args.retry_jitter_permille = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--retry-jitter {v}: not an integer")));
            }
            "--brownout" => {
                let v = value();
                let parts: Vec<&str> = v.split(',').collect();
                if parts.len() != 2 {
                    fail(format!(
                        "--brownout {v}: expected DEPTH,SERVICE (both permille)"
                    ));
                }
                let depth_permille = parts[0]
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--brownout {v}: DEPTH is not an integer")));
                let service_permille = parts[1]
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--brownout {v}: SERVICE is not an integer")));
                args.brownout = Some(BrownoutPolicy {
                    depth_permille,
                    service_permille,
                });
            }
            "--fidelity" => {
                let v = value();
                args.fidelity = v
                    .parse()
                    .unwrap_or_else(|e| fail(format!("--fidelity {v}: {e}")));
            }
            "--shed-expired" => args.shed_expired = true,
            "--fault-seed" => {
                let v = value();
                args.fault_seed = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(format!("--fault-seed {v}: not an integer"))),
                );
            }
            "--trace" => args.trace = Some(value().into()),
            "--metrics" => args.metrics = Some(value().into()),
            "--metrics-format" => {
                let v = value();
                args.metrics_format = match v.as_str() {
                    "json" => MetricsFormat::Json,
                    "prom" => MetricsFormat::Prom,
                    _ => fail(format!("--metrics-format {v}: expected json or prom")),
                }
            }
            "--report" => args.report_html = Some(value().into()),
            "--json" => args.json = true,
            "--check" => args.check = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.closed_loop.is_some() && args.arrival_rate.is_some() {
        fail("--closed-loop and --arrival-rate are mutually exclusive");
    }
    if !args.duration_s.is_finite() || args.duration_s <= 0.0 {
        fail(format!("--duration {}: must be positive", args.duration_s));
    }
    if !(0.0..=1.0).contains(&args.hi_frac) {
        fail(format!("--hi-frac {}: must be in [0, 1]", args.hi_frac));
    }
    args
}

fn build_config(args: &Args) -> (ServeConfig, Vec<Workload>) {
    let mut array = if args.cloud {
        SystolicConfig::cloud(args.scheme, args.bitwidth)
    } else {
        SystolicConfig::edge(args.scheme, args.bitwidth)
    };
    if let Some(c) = args.cycles {
        array = array
            .with_mul_cycles(c)
            .unwrap_or_else(|e| fail(format!("--cycles: {e}")));
    }
    // Default: binary keeps SRAM, unary drops it (the paper's conclusion).
    let no_sram = args.no_sram.unwrap_or(args.scheme.is_unary());
    let memory = if no_sram {
        MemoryHierarchy::no_sram()
    } else if args.cloud {
        MemoryHierarchy::cloud_with_sram()
    } else {
        MemoryHierarchy::edge_with_sram()
    };

    let workloads = if args.workloads.is_empty() {
        let gemm = GemmConfig::matmul(64, 64, 64)
            .unwrap_or_else(|e| fail(format!("default workload: {e}")));
        vec![Workload::from_gemm("matmul64,64,64", gemm)]
    } else {
        args.workloads.clone()
    };

    let process = match args.closed_loop {
        Some(clients) => ArrivalProcess::ClosedLoop {
            clients,
            think_cycles: (args.think_s * CLOCK_HZ).round() as u64,
        },
        None => {
            let rate = args.arrival_rate.unwrap_or(1000.0);
            if !rate.is_finite() || rate <= 0.0 {
                fail(format!("--arrival-rate {rate}: must be positive"));
            }
            ArrivalProcess::OpenPoisson {
                mean_interarrival_cycles: CLOCK_HZ / rate,
            }
        }
    };

    let config = ServeConfig {
        array,
        memory,
        instances: args.instances,
        queue_capacity: args.queue_depth,
        max_batch: args.max_batch,
        workers: args.workers,
        duration_cycles: (args.duration_s * CLOCK_HZ).ceil() as u64,
        load: LoadGenConfig {
            process,
            seed: args.seed,
            classes: workloads.len(),
            high_priority_fraction: args.hi_frac,
            deadline_cycles: args
                .deadline_ms
                .map(|ms| (ms * 1.0e-3 * CLOCK_HZ).round() as u64),
        },
        faults: FleetFaultPlan {
            seed: args.fault_seed.unwrap_or(args.seed),
            failures: args.shard_fails.clone(),
            slowdowns: args.shard_slows.clone(),
            timeout_cycles: args
                .timeout_ms
                .map(|ms| ((ms * 1.0e-3 * CLOCK_HZ).round() as u64).max(1)),
            shed_expired: args.shed_expired,
            retry: RetryPolicy {
                max_retries: args.retry_max,
                backoff_base_cycles: ((args.retry_backoff_ms * 1.0e-3 * CLOCK_HZ).round() as u64)
                    .max(1),
                jitter_permille: args.retry_jitter_permille,
            },
            brownout: args.brownout,
        },
        fidelity: args.fidelity,
    };
    (config, workloads)
}

/// Writes the observability artefacts collected during the run.
fn export_session(args: &Args, session: &usystolic_obs::Session) {
    if let Some(path) = &args.trace {
        session
            .tracer
            .write_chrome(path)
            .unwrap_or_else(|e| fail(format!("writing trace to {}: {e}", path.display())));
        if !args.json {
            eprintln!(
                "trace:  {} ({} events, {} dropped)",
                path.display(),
                session.tracer.len(),
                session.tracer.dropped()
            );
        }
    }
    if let Some(path) = &args.metrics {
        match args.metrics_format {
            MetricsFormat::Json => session
                .metrics
                .write_snapshot(path)
                .unwrap_or_else(|e| fail(format!("writing metrics to {}: {e}", path.display()))),
            MetricsFormat::Prom => {
                std::fs::write(path, usystolic_obs::prometheus_text(&session.metrics))
                    .unwrap_or_else(|e| fail(format!("writing metrics to {}: {e}", path.display())))
            }
        }
        if !args.json {
            eprintln!("metrics: {}", path.display());
        }
    }
    if let Some(path) = &args.report_html {
        let html = usystolic_obs::html_report("serve_cli observability report", &session.metrics);
        std::fs::write(path, html)
            .unwrap_or_else(|e| fail(format!("writing report to {}: {e}", path.display())));
        if !args.json {
            eprintln!("report: {}", path.display());
        }
    }
    if session.tracer.dropped() > 0 {
        eprintln!(
            "serve_cli: warning: trace ring full, {} span(s) dropped (oldest first); \
             raise the tracer capacity to keep them",
            session.tracer.dropped()
        );
    }
}

fn ms(cycles: u64) -> f64 {
    ServeReport::cycles_to_ms(cycles)
}

fn print_stage(name: &str, s: &LatencySummary) {
    println!(
        "{name:<12} p50 {:>10.4} ms   p95 {:>10.4} ms   p99 {:>10.4} ms   max {:>10.4} ms",
        ms(s.p50_cycles),
        ms(s.p95_cycles),
        ms(s.p99_cycles),
        ms(s.max_cycles)
    );
}

/// The static `USY07x` pre-flight (`--check`): feasibility verdicts from
/// the closed-form service model, without simulating a single event.
fn run_check(args: &Args, config: &ServeConfig, workloads: &[Workload]) -> i32 {
    if config.instances == 0 || config.max_batch == 0 {
        fail("--check needs at least one instance and a non-zero --max-batch");
    }
    let mean_interarrival_cycles = match config.load.process {
        ArrivalProcess::OpenPoisson {
            mean_interarrival_cycles,
        } => mean_interarrival_cycles,
        ArrivalProcess::OpenUniform { interval_cycles } => interval_cycles as f64,
        // A closed loop self-limits: it never offers more than the
        // system completes, so the overload bound is vacuous.
        ArrivalProcess::ClosedLoop { .. } => f64::INFINITY,
    };
    let spec = ServingSpec {
        mean_interarrival_cycles,
        instances: config.instances,
        max_batch: config.max_batch,
        queue_capacity: config.queue_capacity,
        deadline_cycles: config.load.deadline_cycles,
    };

    let mut report = Report::default();
    let mut estimates = Vec::new();
    for wl in workloads {
        let layers: Vec<LayerProfile> = wl
            .layers
            .iter()
            .map(|g| LayerProfile::compute(g, &config.array, &config.memory))
            .collect();
        let profile = WorkloadProfile::from_layers(&wl.name, &layers, &config.memory);
        let estimate = profile.service_estimate(config.max_batch, config.instances);
        report.merge(check_serving(&estimate, &spec));
        estimates.push(estimate);
    }

    if args.json {
        let classes: Vec<JsonValue> = estimates
            .iter()
            .map(|e| {
                let capacity_per_s = spec.instances as f64 * spec.max_batch as f64
                    / e.batch_cycles.max(1) as f64
                    * CLOCK_HZ;
                JsonValue::object(vec![
                    ("name", e.name.to_json()),
                    ("batch_cycles", e.batch_cycles.to_json()),
                    ("single_request_cycles", e.single_cycles.to_json()),
                    ("dram_limited", e.dram_limited.to_json()),
                    ("capacity_req_per_s", capacity_per_s.to_json()),
                ])
            })
            .collect();
        let record = JsonValue::object(vec![
            ("config", config.array.to_json()),
            ("memory", config.memory.to_json()),
            ("instances", spec.instances.to_json()),
            ("max_batch", spec.max_batch.to_json()),
            ("queue_capacity", spec.queue_capacity.to_json()),
            (
                "mean_interarrival_cycles",
                spec.mean_interarrival_cycles.to_json(),
            ),
            ("workloads", JsonValue::Array(classes)),
            ("report", report.to_json()),
        ]);
        println!("{}", record.render());
    } else {
        println!("array:      {}", config.array);
        println!(
            "pool:       {} instance(s), queue {} deep, batch <= {}",
            spec.instances, spec.queue_capacity, spec.max_batch
        );
        match config.load.process {
            ArrivalProcess::OpenPoisson { .. } => println!(
                "arrivals:   open Poisson, {:.1} req/s offered",
                CLOCK_HZ / mean_interarrival_cycles
            ),
            ArrivalProcess::OpenUniform { .. } => println!(
                "arrivals:   open uniform, {:.1} req/s offered",
                CLOCK_HZ / mean_interarrival_cycles
            ),
            ArrivalProcess::ClosedLoop { clients, .. } => {
                println!("arrivals:   closed loop, {clients} client(s) (cannot overload)");
            }
        }
        println!();
        println!(
            "{:<24} {:>14} {:>14} {:>14}  dram",
            "workload", "min lat (ms)", "batch (cyc)", "cap (req/s)"
        );
        for e in &estimates {
            let capacity_per_s = spec.instances as f64 * spec.max_batch as f64
                / e.batch_cycles.max(1) as f64
                * CLOCK_HZ;
            println!(
                "{:<24} {:>14.4} {:>14} {:>14.1}  {}",
                e.name,
                ServeReport::cycles_to_ms(e.single_cycles),
                e.batch_cycles,
                capacity_per_s,
                if e.dram_limited { "limited" } else { "ok" }
            );
        }
        println!();
        println!("{report}");
        println!(
            "serving plan is {}",
            if report.is_legal() {
                "FEASIBLE"
            } else {
                "INFEASIBLE"
            }
        );
    }
    i32::from(!report.is_legal())
}

fn main() {
    let args = parse_args();
    let (config, workloads) = build_config(&args);

    if args.check {
        std::process::exit(run_check(&args, &config, &workloads));
    }

    // The session also feeds the --json "metrics" section, so install it
    // unconditionally; every recorded value is simulation-derived (no
    // wall-clock), keeping the output bit-for-bit reproducible.
    usystolic_obs::install(usystolic_obs::Session::new());
    let report = match serve(&config, &workloads) {
        Ok(r) => r,
        Err(e) => fail(e),
    };
    let session = usystolic_obs::take().unwrap_or_default();
    export_session(&args, &session);

    if args.json {
        let record = JsonValue::object(vec![
            ("config", config.array.to_json()),
            ("memory", config.memory.to_json()),
            ("seed", args.seed.to_json()),
            ("faults", config.faults.to_json()),
            ("report", report.to_json()),
            ("metrics", session.metrics.to_json()),
        ]);
        println!("{}", record.render());
        return;
    }

    println!("array:      {}", config.array);
    println!(
        "pool:       {} instance(s), {} worker(s), queue {} deep, batch <= {}",
        report.instances, report.workers, report.queue_capacity, report.max_batch
    );
    println!("workloads:  {}", report.workload_names.join(", "));
    println!(
        "horizon:    {:.4} ms ({} cycles), makespan {:.4} ms",
        ms(report.duration_cycles),
        report.duration_cycles,
        ms(report.makespan_cycles)
    );
    println!();
    println!(
        "offered {}   admitted {}   rejected {}   completed {}   deadline missed {}",
        report.offered, report.admitted, report.rejected, report.completed, report.deadline_missed
    );
    println!(
        "batches {}   mean batch {:.2}   max queue depth {}   utilization {:.1}%",
        report.batches,
        report.mean_batch_size(),
        report.max_queue_depth,
        100.0 * report.mean_utilization
    );
    println!("throughput  {:.1} req/s", report.throughput_per_s);
    if !config.faults.is_quiet() {
        println!(
            "resilience  crashes {}   retries {}   failovers {}   timed out {}   failed {}   \
             brownout {}   lost {}",
            report.shard_crashes,
            report.retries,
            report.failovers,
            report.timed_out,
            report.failed,
            report.brownout_requests,
            report.lost()
        );
    }
    println!();
    print_stage("latency", &report.latency);
    print_stage("queue wait", &report.queue_wait);
    print_stage("service", &report.service);
}
