//! The serving engine: a deterministic discrete-event simulation on the
//! shared `usystolic_des` core.
//!
//! [`serve`] is the one-call entry point. It runs three phases:
//!
//! 1. **Profile** (parallel) — every `(workload, layer)` pair is profiled
//!    into the batched service-time model of
//!    [`WorkloadProfile`](crate::workload::WorkloadProfile) on the
//!    work-stealing pool. Profiling is pure, so the phase is
//!    result-identical for any worker count.
//! 2. **Event loop** (sequential, deterministic) — the whole fleet is one
//!    [`Component`] on the `usystolic_des` calendar: arrivals flow
//!    through the bounded [`AdmissionController`], the EDF/priority
//!    [`Scheduler`] packs same-class batches onto free instances, and
//!    completions free instances, record per-request timelines and (in
//!    closed-loop mode) trigger the next client request. Service times
//!    resolve at the configured [`Fidelity`]: cycle-accurate re-derives
//!    each class's layer profiles from first principles at every
//!    dispatch, packed uses the hoisted totals (same bits, faster), and
//!    analytic interpolates the `analyze` closed-form
//!    [`ServiceEstimate`] in `O(1)` per dispatch. Shared-DRAM contention
//!    scales with the number of busy instances at dispatch.
//! 3. **Reduce** (parallel) — per-request records fold into exact
//!    latency/wait/service histograms in fixed-size chunks; the merge is
//!    commutative, so again any worker count produces identical numbers.
//!
//! The caller's `usystolic_obs` session (if installed) receives queue
//! depth gauges, admission/rejection/deadline counters, batch-size and
//! latency histograms, and one Chrome-trace span per dispatched batch on
//! the simulated-cycle lane (`tid` = instance); the des engine adds
//! `des.events.*`, `des.dispatch{fidelity}` and
//! `des.queue_depth{component}` on the same sequential loop.

use crate::admission::{Admission, AdmissionController};
use crate::histogram::CycleHistogram;
use crate::loadgen::LoadGen;
use crate::pool::run_indexed;
use crate::report::{ServeConfig, ServeError, ServeReport};
use crate::request::{Disposition, Request, RequestRecord};
use crate::scheduler::Scheduler;
use crate::workload::{batched_service_cycles, LayerProfile, Workload, WorkloadProfile};
use std::collections::BTreeMap;
use usystolic_analyze::ServiceEstimate;
use usystolic_des::{Component, Context, Engine, Event, EventQueue, Fidelity, Scheduled};
use usystolic_obs::ToJson;
use usystolic_sim::CLOCK_HZ;

/// What happens when a fleet event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A batch on the given instance (1-based) finishes.
    Completion {
        /// Instance index, 1-based.
        instance: usize,
        /// The instance's crash epoch at dispatch time. A completion
        /// whose epoch no longer matches the instance is stale — the
        /// shard crashed under the batch — and is ignored.
        epoch: u64,
    },
    /// A shard fail-stops (scripted by the fleet fault plan).
    ShardFail {
        /// Instance index, 1-based.
        instance: usize,
    },
    /// A shard degrades to a fraction of its nominal speed.
    ShardSlow {
        /// Instance index, 1-based.
        instance: usize,
        /// Service multiplier in percent (100 = nominal).
        factor_percent: u32,
    },
    /// A queued request's wait budget expires (no-op if it already
    /// dispatched).
    Timeout {
        /// Request id.
        id: u64,
    },
    /// A request lost to a shard crash re-enters the queue after
    /// backoff.
    Retry(Request),
    /// A request reaches the admission controller.
    Arrival(Request),
}

impl Event for EventKind {
    /// Same-cycle tie order: completions free instances first, then
    /// fleet faults land, then timeouts expire, then retries re-enter,
    /// and fresh arrivals come last (a freed instance or queue slot can
    /// serve a same-cycle arrival; a batch finishing exactly when its
    /// shard dies still completes).
    fn class(&self) -> u8 {
        match self {
            EventKind::Completion { .. } => 0,
            EventKind::ShardFail { .. } => 1,
            EventKind::ShardSlow { .. } => 2,
            EventKind::Timeout { .. } => 3,
            EventKind::Retry(_) => 4,
            EventKind::Arrival(_) => 5,
        }
    }
}

/// A batch in flight on one instance.
#[derive(Debug, Clone)]
struct InFlight {
    dispatch: u64,
    batch: Vec<Request>,
    degraded: bool,
}

/// Per-instance bookkeeping during the event loop.
#[derive(Debug, Clone)]
struct Instance {
    /// In-flight batch, if busy.
    in_flight: Option<InFlight>,
    busy_cycles: u64,
    batches: u64,
    /// False once the shard fail-stops; a dead shard never dispatches.
    alive: bool,
    /// Bumped on every crash; stale completions (dispatched before the
    /// crash) carry the old epoch and are ignored.
    epoch: u64,
    /// Service-time multiplier in percent (100 = nominal).
    slow_percent: u32,
}

/// Terminal counters the fault paths accumulate during the event loop.
#[derive(Debug, Default)]
struct FaultTally {
    timed_out: u64,
    failed: u64,
    retries: u64,
    failovers: u64,
    brownout_requests: u64,
    shard_crashes: u64,
}

/// The whole serving fleet as one des component: admission, scheduling,
/// instances, fault handling and the request ledger.
struct Fleet<'a> {
    config: &'a ServeConfig,
    workloads: &'a [Workload],
    profiles: &'a [WorkloadProfile],
    /// Per-class `(max_batch, instances)` operating-point estimates;
    /// populated only at [`Fidelity::Analytic`].
    estimates: Vec<ServiceEstimate>,
    load: LoadGen,
    admission: AdmissionController,
    scheduler: Scheduler,
    instances: Vec<Instance>,
    busy: usize,
    records: Vec<RequestRecord>,
    offered: u64,
    tally: FaultTally,
    /// Retry attempts consumed per request id, keyed deterministically.
    retry_counts: BTreeMap<u64, u32>,
}

impl Fleet<'_> {
    /// Service cycles of a batch at the configured fidelity.
    /// `compute_permille == 1000` is nominal; lower is brown-out.
    fn service_cycles_at(
        &self,
        class: usize,
        batch: usize,
        concurrency: usize,
        compute_permille: u32,
    ) -> u64 {
        match self.config.fidelity {
            // Re-derive every layer profile from the raw GEMMs at
            // dispatch time. The integer layer sums commute, so this is
            // bit-identical to the packed totals — just slower, which is
            // the point of the reference tier. The re-derivation runs
            // with the obs session shelved: the profile phase already
            // counted this traffic once, and re-counting it per dispatch
            // would make metric snapshots depend on the fidelity tier.
            Fidelity::CycleAccurate => {
                let shelved = usystolic_obs::take();
                let totals = self.workloads[class].layers.iter().fold(
                    LayerProfile::default(),
                    |acc, gemm| {
                        acc.accumulate(LayerProfile::compute(
                            gemm,
                            &self.config.array,
                            &self.config.memory,
                        ))
                    },
                );
                if let Some(session) = shelved {
                    usystolic_obs::install(session);
                }
                batched_service_cycles(
                    &totals,
                    self.profiles[class].dram_bytes_per_cycle,
                    batch,
                    concurrency,
                    compute_permille,
                )
            }
            Fidelity::Packed => {
                self.profiles[class].service_cycles_scaled(batch, concurrency, compute_permille)
            }
            // Linear interpolation between the closed-form endpoints of
            // the `analyze` ServiceEstimate: O(1), ignores instantaneous
            // DRAM concurrency (the estimate already bakes in the
            // configured fleet width).
            Fidelity::Analytic => {
                let est = &self.estimates[class];
                let span = est.batch_cycles.saturating_sub(est.single_cycles);
                let slope = match self.config.max_batch {
                    0 | 1 => 0,
                    b => span / (b as u64 - 1),
                };
                let nominal = est.single_cycles + (batch as u64 - 1) * slope;
                nominal * u64::from(compute_permille) / 1000
            }
        }
    }

    /// Greedy dispatch: fill every free *alive* instance while the queue
    /// has work. Under brown-out (queue at or past the depth threshold)
    /// batches run degraded — scaled compute and traffic, the serving
    /// analogue of raised early termination. A slowed shard stretches
    /// its service time by its percent factor.
    fn dispatch_free_instances(&mut self, now: u64, ctx: &mut Context<'_, EventKind>) {
        loop {
            if self.admission.depth() == 0 {
                return;
            }
            let Some(free_idx) = self
                .instances
                .iter()
                .position(|i| i.alive && i.in_flight.is_none())
            else {
                return;
            };
            // Brown-out is decided on the depth seen *before* this batch
            // drains it — the signal an overloaded fleet actually has.
            let degraded = self.config.faults.brownout.filter(|b| {
                self.admission.depth() * 1000
                    >= b.depth_permille as usize * self.admission.capacity()
            });
            let Some(batch) = self.scheduler.next_batch(&mut self.admission) else {
                return;
            };
            let class = batch[0].class;
            let concurrency = self.busy + 1;
            let permille = degraded.map_or(1000, |b| b.service_permille);
            let service = self.service_cycles_at(class, batch.len(), concurrency, permille);
            // A slowed shard serves at factor_percent of nominal speed.
            let service =
                service.saturating_mul(u64::from(self.instances[free_idx].slow_percent)) / 100;
            let completion = now + service;
            if degraded.is_some() {
                self.tally.brownout_requests += batch.len() as u64;
                usystolic_obs::with(|o| {
                    o.metrics
                        .count("serve.brownout_requests", batch.len() as u64);
                });
            }
            let profiles = self.profiles;
            let admission = &self.admission;
            usystolic_obs::with(|o| {
                let class_name = profiles[class].name.as_str();
                o.metrics.count("serve.dispatched", batch.len() as u64);
                o.metrics.count_labeled(
                    "serve.dispatched",
                    &[("class", class_name)],
                    batch.len() as u64,
                );
                o.metrics.observe("serve.batch_size", batch.len() as f64);
                o.metrics.observe_labeled(
                    "serve.batch_size",
                    &[("class", class_name)],
                    batch.len() as f64,
                );
                let depth = admission.depth() as f64;
                o.metrics.gauge("serve.queue_depth", depth);
                o.metrics.series_record("serve.queue_depth", now, depth);
                o.metrics
                    .series_record("serve.dispatches", now, batch.len() as f64);
                // Correlate the batch span with the shard executing it and
                // the requests it carries, so one request's admission →
                // batch path reconstructs in Perfetto.
                o.shard_id = Some(free_idx as u64 + 1);
                o.request_id = batch.first().map(|r| r.id);
                let args = o.correlated_args(vec![
                    ("class".to_owned(), profiles[class].name.to_json()),
                    ("batch".to_owned(), (batch.len() as u64).to_json()),
                    ("concurrency".to_owned(), (concurrency as u64).to_json()),
                    (
                        "dram_limited".to_owned(),
                        profiles[class]
                            .dram_limited(batch.len(), concurrency)
                            .to_json(),
                    ),
                    (
                        "req_ids".to_owned(),
                        usystolic_obs::JsonValue::Array(
                            batch.iter().map(|r| r.id.to_json()).collect(),
                        ),
                    ),
                ]);
                o.tracer.complete(
                    format!("batch {}", profiles[class].name),
                    "serve",
                    usystolic_obs::PID_SIM,
                    free_idx as u32 + 1,
                    now as f64,
                    service as f64,
                    args,
                );
                o.request_id = None;
                o.shard_id = None;
            });
            let slot = &mut self.instances[free_idx];
            slot.in_flight = Some(InFlight {
                dispatch: now,
                batch,
                degraded: degraded.is_some(),
            });
            slot.batches += 1;
            self.busy += 1;
            ctx.schedule_at(
                completion,
                EventKind::Completion {
                    instance: free_idx + 1,
                    epoch: slot.epoch,
                },
            );
        }
    }
}

impl Component<EventKind> for Fleet<'_> {
    fn name(&self) -> &'static str {
        "fleet"
    }

    fn handle(&mut self, event: Scheduled<EventKind>, ctx: &mut Context<'_, EventKind>) {
        let now = event.at;
        match event.event {
            EventKind::Arrival(request) => {
                self.offered += 1;
                usystolic_obs::with(|o| {
                    o.metrics.series_record("serve.arrivals", now, 1.0);
                });
                // Brown-out takes the overflow path *before* `offer`
                // would count a rejection: quality degrades instead.
                let decision = if self.admission.depth() < self.admission.capacity()
                    || self.config.faults.brownout.is_none()
                {
                    self.admission.offer(request)
                } else if self.admission.depth() < self.config.queue_capacity * 2 {
                    self.admission.force_admit(request);
                    Admission::Admitted
                } else {
                    self.admission.offer(request)
                };
                match decision {
                    Admission::Admitted => {
                        if let Some(t) = self.config.faults.timeout_cycles {
                            ctx.schedule_in(t, EventKind::Timeout { id: request.id });
                        }
                        let admission = &self.admission;
                        usystolic_obs::with(|o| {
                            let depth = admission.depth() as f64;
                            o.metrics.gauge("serve.queue_depth", depth);
                            o.metrics.series_record("serve.queue_depth", now, depth);
                        });
                    }
                    Admission::Rejected => {
                        let workloads = self.workloads;
                        usystolic_obs::with(|o| {
                            o.metrics.count("serve.rejected", 1);
                            o.metrics.count_labeled(
                                "serve.rejected",
                                &[
                                    ("class", workloads[request.class].name.as_str()),
                                    ("priority", request.priority.label()),
                                ],
                                1,
                            );
                            o.metrics.count_labeled(
                                "serve.rejections",
                                &[("reason", "capacity")],
                                1,
                            );
                            o.metrics.series_record("serve.rejections", now, 1.0);
                            o.request_id = Some(request.id);
                            let args = o.correlated_args(vec![(
                                "class".to_owned(),
                                workloads[request.class].name.to_json(),
                            )]);
                            o.tracer.instant(
                                "rejected",
                                "serve",
                                usystolic_obs::PID_SIM,
                                0,
                                now as f64,
                                args,
                            );
                            o.request_id = None;
                        });
                        self.records.push(RequestRecord {
                            request,
                            disposition: Disposition::Rejected,
                            dispatch: 0,
                            completion: 0,
                            instance: 0,
                            batch_size: 0,
                            retries: 0,
                            degraded: false,
                        });
                    }
                }
            }
            EventKind::Completion { instance, epoch } => {
                let slot = &mut self.instances[instance - 1];
                // A completion from before the shard's crash is stale:
                // the batch was lost, ShardFail already re-routed it.
                if slot.epoch != epoch {
                    return;
                }
                if let Some(fl) = slot.in_flight.take() {
                    self.busy -= 1;
                    slot.busy_cycles += now - fl.dispatch;
                    let size = fl.batch.len();
                    let dispatch = fl.dispatch;
                    for request in fl.batch {
                        self.records.push(RequestRecord {
                            request,
                            disposition: Disposition::Completed,
                            dispatch,
                            completion: now,
                            instance,
                            batch_size: size,
                            retries: self.retry_counts.get(&request.id).copied().unwrap_or(0),
                            degraded: fl.degraded,
                        });
                        let workloads = self.workloads;
                        usystolic_obs::with(|o| {
                            let class = workloads[request.class].name.as_str();
                            let latency = now - request.arrival;
                            let wait = dispatch - request.arrival;
                            o.metrics.count("serve.completed", 1);
                            o.metrics.count_labeled(
                                "serve.completed",
                                &[("class", class), ("priority", request.priority.label())],
                                1,
                            );
                            o.metrics.observe("serve.latency_ms", cycles_ms(latency));
                            o.metrics.observe("serve.queue_wait_ms", cycles_ms(wait));
                            // Streaming quantiles of the same values the
                            // exact reduce-phase histograms see.
                            o.metrics
                                .record_quantile("serve.latency_cycles", latency as f64);
                            o.metrics.record_quantile_labeled(
                                "serve.latency_cycles",
                                &[("class", class)],
                                latency as f64,
                            );
                            o.metrics
                                .record_quantile("serve.queue_wait_cycles", wait as f64);
                        });
                        if let Some(client) = request.client {
                            if let Some(next) =
                                self.load
                                    .after_completion(client, now, self.config.duration_cycles)
                            {
                                ctx.schedule_at(next.arrival, EventKind::Arrival(next));
                            }
                        }
                    }
                }
            }
            EventKind::ShardFail { instance } => {
                let slot = &mut self.instances[instance - 1];
                if slot.alive {
                    slot.alive = false;
                    slot.epoch += 1;
                    self.tally.shard_crashes += 1;
                    usystolic_obs::with(|o| {
                        o.metrics
                            .count_labeled("faults.injected", &[("kind", "shard_fail")], 1);
                        o.tracer.instant(
                            "shard_fail",
                            "faults",
                            usystolic_obs::PID_SIM,
                            instance as u32,
                            now as f64,
                            Vec::new(),
                        );
                    });
                    if let Some(fl) = slot.in_flight.take() {
                        self.busy -= 1;
                        slot.busy_cycles += now - fl.dispatch;
                        for request in fl.batch {
                            let attempt = self.retry_counts.get(&request.id).copied().unwrap_or(0);
                            if attempt < self.config.faults.retry.max_retries {
                                self.retry_counts.insert(request.id, attempt + 1);
                                self.tally.retries += 1;
                                let delay = self.config.faults.backoff_cycles(request.id, attempt);
                                ctx.schedule_in(delay, EventKind::Retry(request));
                                usystolic_obs::with(|o| o.metrics.count("serve.retries", 1));
                            } else {
                                self.tally.failed += 1;
                                self.records.push(RequestRecord {
                                    request,
                                    disposition: Disposition::Failed,
                                    dispatch: 0,
                                    completion: 0,
                                    instance: 0,
                                    batch_size: 0,
                                    retries: attempt,
                                    degraded: false,
                                });
                                usystolic_obs::with(|o| {
                                    o.metrics.count("serve.failed", 1);
                                    o.metrics.count_labeled(
                                        "serve.rejections",
                                        &[("reason", "shard_down")],
                                        1,
                                    );
                                });
                            }
                        }
                    }
                }
            }
            EventKind::ShardSlow {
                instance,
                factor_percent,
            } => {
                let slot = &mut self.instances[instance - 1];
                if slot.alive {
                    slot.slow_percent = factor_percent;
                    usystolic_obs::with(|o| {
                        o.metrics
                            .count_labeled("faults.injected", &[("kind", "shard_slow")], 1);
                    });
                }
            }
            EventKind::Timeout { id } => {
                // Only bites while the request still waits in the queue;
                // dispatched or completed requests ignore stale timers.
                if let Some(request) = self.admission.remove_by_id(id) {
                    self.tally.timed_out += 1;
                    self.records.push(RequestRecord {
                        request,
                        disposition: Disposition::TimedOut,
                        dispatch: 0,
                        completion: 0,
                        instance: 0,
                        batch_size: 0,
                        retries: self.retry_counts.get(&id).copied().unwrap_or(0),
                        degraded: false,
                    });
                    usystolic_obs::with(|o| {
                        o.metrics.count("serve.timeouts", 1);
                        o.metrics
                            .count_labeled("serve.rejections", &[("reason", "timeout")], 1);
                        o.metrics.series_record("serve.rejections", now, 1.0);
                    });
                }
            }
            EventKind::Retry(request) => {
                // Failover: the shard that held it is gone; the request
                // re-enters the queue for the survivors. Its wait budget
                // restarts from this resubmission.
                self.tally.failovers += 1;
                self.admission.requeue(request);
                if let Some(t) = self.config.faults.timeout_cycles {
                    ctx.schedule_in(t, EventKind::Timeout { id: request.id });
                }
                usystolic_obs::with(|o| o.metrics.count("serve.failovers", 1));
            }
        }
        if self.config.faults.shed_expired {
            for request in self.admission.expire_before(now) {
                self.tally.timed_out += 1;
                self.records.push(RequestRecord {
                    request,
                    disposition: Disposition::TimedOut,
                    dispatch: 0,
                    completion: 0,
                    instance: 0,
                    batch_size: 0,
                    retries: self.retry_counts.get(&request.id).copied().unwrap_or(0),
                    degraded: false,
                });
                usystolic_obs::with(|o| {
                    o.metrics.count("serve.timeouts", 1);
                    o.metrics
                        .count_labeled("serve.rejections", &[("reason", "deadline")], 1);
                });
            }
        }
        self.dispatch_free_instances(now, ctx);
    }
}

/// Runs the serving simulation to completion.
///
/// # Errors
///
/// Returns a [`ServeError`] when the configuration is degenerate (no
/// workloads, an empty workload, zero instances/queue/batch/duration) or
/// when a worker thread fails.
pub fn serve(config: &ServeConfig, workloads: &[Workload]) -> Result<ServeReport, ServeError> {
    if workloads.is_empty() {
        return Err(ServeError::NoWorkloads);
    }
    if let Some(w) = workloads.iter().find(|w| w.layers.is_empty()) {
        return Err(ServeError::EmptyWorkload(w.name.clone()));
    }
    if config.instances == 0 {
        return Err(ServeError::InvalidConfig("instances must be at least 1"));
    }
    if config.queue_capacity == 0 {
        return Err(ServeError::InvalidConfig(
            "queue_capacity must be at least 1",
        ));
    }
    if config.max_batch == 0 {
        return Err(ServeError::InvalidConfig("max_batch must be at least 1"));
    }
    if config.duration_cycles == 0 {
        return Err(ServeError::InvalidConfig(
            "duration_cycles must be at least 1",
        ));
    }
    config.faults.validate(config.instances)?;

    // ---- Phase 1: profile every (workload, layer) in parallel. --------
    let profiles = profile_workloads(config, workloads)?;

    // ---- Phase 2: the deterministic event loop on the des core. -------
    // Windowed series share one bucket geometry derived from the run
    // horizon, so rolling arrival/rejection/queue-depth rates line up
    // bucket-for-bucket (the signal an autoscaler consumes).
    usystolic_obs::with(|o| {
        let width = (config.duration_cycles / 64).max(1);
        for name in [
            "serve.arrivals",
            "serve.rejections",
            "serve.dispatches",
            "serve.queue_depth",
        ] {
            o.metrics.register_series(name, &[], width, 128);
        }
    });
    let mut load = {
        let mut lc = config.load;
        lc.classes = workloads.len();
        LoadGen::new(lc)
    };
    let mut events: EventQueue<EventKind> = EventQueue::new();
    for r in load.initial_arrivals(config.duration_cycles) {
        events.schedule(r.arrival, EventKind::Arrival(r));
    }
    for f in &config.faults.failures {
        events.schedule(
            f.at,
            EventKind::ShardFail {
                instance: f.instance,
            },
        );
    }
    for s in &config.faults.slowdowns {
        events.schedule(
            s.at,
            EventKind::ShardSlow {
                instance: s.instance,
                factor_percent: s.factor_percent,
            },
        );
    }

    // Analytic operating-point endpoints; the exact tiers never look at
    // them, so skip the (cheap) derivation unless they will be used.
    let estimates = if config.fidelity == Fidelity::Analytic {
        profiles
            .iter()
            .map(|p| p.service_estimate(config.max_batch, config.instances))
            .collect()
    } else {
        Vec::new()
    };

    let mut fleet = Fleet {
        config,
        workloads,
        profiles: &profiles,
        estimates,
        load,
        admission: AdmissionController::new(config.queue_capacity),
        scheduler: Scheduler::new(config.max_batch),
        instances: vec![
            Instance {
                in_flight: None,
                busy_cycles: 0,
                batches: 0,
                alive: true,
                epoch: 0,
                slow_percent: 100,
            };
            config.instances
        ],
        busy: 0,
        records: Vec::new(),
        offered: 0,
        tally: FaultTally::default(),
        retry_counts: BTreeMap::new(),
    };

    let makespan = Engine::new(config.fidelity).run(&mut events, &mut fleet);

    // With the whole fleet down, queued requests have no instance left
    // to serve them: record each as failed so the ledger still closes.
    for request in fleet.admission.drain_remaining() {
        fleet.tally.failed += 1;
        fleet.records.push(RequestRecord {
            request,
            disposition: Disposition::Failed,
            dispatch: 0,
            completion: 0,
            instance: 0,
            batch_size: 0,
            retries: fleet.retry_counts.get(&request.id).copied().unwrap_or(0),
            degraded: false,
        });
        usystolic_obs::with(|o| {
            o.metrics.count("serve.failed", 1);
            o.metrics
                .count_labeled("serve.rejections", &[("reason", "shard_down")], 1);
        });
    }

    // ---- Phase 3: fold records into stage statistics in parallel. -----
    let stats = reduce_records(config.workers, &fleet.records, workloads.len())?;

    let makespan = makespan.max(config.duration_cycles);
    let busy_cycles: Vec<u64> = fleet.instances.iter().map(|i| i.busy_cycles).collect();
    let batches: u64 = fleet.instances.iter().map(|i| i.batches).sum();
    let elapsed_s = makespan as f64 / CLOCK_HZ;
    let total_busy: u64 = busy_cycles.iter().sum();

    let report = ServeReport {
        instances: config.instances,
        workers: config.workers.max(1),
        queue_capacity: config.queue_capacity,
        max_batch: config.max_batch,
        duration_cycles: config.duration_cycles,
        makespan_cycles: makespan,
        offered: fleet.offered,
        admitted: fleet.admission.admitted(),
        rejected: fleet.admission.rejected(),
        completed: stats.completed,
        timed_out: fleet.tally.timed_out,
        failed: fleet.tally.failed,
        retries: fleet.tally.retries,
        failovers: fleet.tally.failovers,
        brownout_requests: fleet.tally.brownout_requests,
        shard_crashes: fleet.tally.shard_crashes,
        deadline_missed: stats.deadline_missed,
        batches,
        max_queue_depth: fleet.admission.max_depth(),
        latency: stats.latency.summary(),
        queue_wait: stats.queue_wait.summary(),
        service: stats.service.summary(),
        instance_busy_cycles: busy_cycles,
        throughput_per_s: stats.completed as f64 / elapsed_s,
        mean_utilization: total_busy as f64 / (config.instances as f64 * makespan as f64),
        workload_names: workloads.iter().map(|w| w.name.clone()).collect(),
        per_class_completed: stats.per_class_completed,
        records: fleet.records,
    };

    // Request conservation is an invariant, not a statistic: every
    // offered request is admitted or rejected, and every admitted
    // request ends exactly one way — completed, timed out or failed.
    assert!(
        report.conserved(),
        "request conservation violated: offered={} admitted={} rejected={} \
         completed={} timed_out={} failed={} (lost={})",
        report.offered,
        report.admitted,
        report.rejected,
        report.completed,
        report.timed_out,
        report.failed,
        report.lost(),
    );

    usystolic_obs::with(|o| {
        o.metrics.count("serve.offered", report.offered);
        o.metrics.count("serve.admitted", report.admitted);
        o.metrics.count("serve.batches", report.batches);
        o.metrics
            .count("serve.deadline_missed", report.deadline_missed);
        o.metrics
            .gauge("serve.max_queue_depth", report.max_queue_depth as f64);
        o.metrics
            .gauge("serve.mean_utilization", report.mean_utilization);
        o.metrics
            .gauge("serve.throughput_per_s", report.throughput_per_s);
    });
    Ok(report)
}

fn cycles_ms(cycles: u64) -> f64 {
    cycles as f64 / CLOCK_HZ * 1.0e3
}

/// Phase 1: per-layer profiles on the pool, folded per workload.
fn profile_workloads(
    config: &ServeConfig,
    workloads: &[Workload],
) -> Result<Vec<WorkloadProfile>, ServeError> {
    let tasks: Vec<(usize, usize)> = workloads
        .iter()
        .enumerate()
        .flat_map(|(w, wl)| (0..wl.layers.len()).map(move |l| (w, l)))
        .collect();
    let layer_profiles = run_indexed(config.workers.max(1), tasks.len(), |i| {
        let (w, l) = tasks[i];
        LayerProfile::compute(&workloads[w].layers[l], &config.array, &config.memory)
    })
    .map_err(ServeError::Pool)?;
    Ok(workloads
        .iter()
        .enumerate()
        .map(|(w, wl)| {
            let layers: Vec<LayerProfile> = tasks
                .iter()
                .zip(&layer_profiles)
                .filter(|((tw, _), _)| *tw == w)
                .map(|(_, &p)| p)
                .collect();
            WorkloadProfile::from_layers(&wl.name, &layers, &config.memory)
        })
        .collect())
}

/// Per-chunk partial statistics (commutative merge).
struct StageStats {
    latency: CycleHistogram,
    queue_wait: CycleHistogram,
    service: CycleHistogram,
    completed: u64,
    deadline_missed: u64,
    per_class_completed: Vec<u64>,
}

/// Phase 3: fold records into histograms across the pool.
fn reduce_records(
    workers: usize,
    records: &[RequestRecord],
    classes: usize,
) -> Result<StageStats, ServeError> {
    const CHUNK: usize = 2048;
    let chunks = records.len().div_ceil(CHUNK);
    let partials = run_indexed(workers.max(1), chunks, |c| {
        let slice = &records[c * CHUNK..((c + 1) * CHUNK).min(records.len())];
        let mut s = StageStats {
            latency: CycleHistogram::new(),
            queue_wait: CycleHistogram::new(),
            service: CycleHistogram::new(),
            completed: 0,
            deadline_missed: 0,
            per_class_completed: vec![0; classes],
        };
        for r in slice {
            if r.deadline_missed() {
                s.deadline_missed += 1;
            }
            if let (Some(lat), Some(wait), Some(svc)) = (
                r.latency_cycles(),
                r.queue_wait_cycles(),
                r.service_cycles(),
            ) {
                s.latency.observe(lat);
                s.queue_wait.observe(wait);
                s.service.observe(svc);
                s.completed += 1;
                s.per_class_completed[r.request.class] += 1;
            }
        }
        s
    })
    .map_err(ServeError::Pool)?;

    let mut total = StageStats {
        latency: CycleHistogram::new(),
        queue_wait: CycleHistogram::new(),
        service: CycleHistogram::new(),
        completed: 0,
        deadline_missed: 0,
        per_class_completed: vec![0; classes],
    };
    for p in partials {
        total.latency.merge(&p.latency);
        total.queue_wait.merge(&p.queue_wait);
        total.service.merge(&p.service);
        total.completed += p.completed;
        total.deadline_missed += p.deadline_missed;
        for (t, c) in total
            .per_class_completed
            .iter_mut()
            .zip(&p.per_class_completed)
        {
            *t += c;
        }
    }
    Ok(total)
}
