//! The serving engine: a deterministic discrete-event simulation.
//!
//! [`serve`] is the one-call entry point. It runs three phases:
//!
//! 1. **Profile** (parallel) — every `(workload, layer)` pair is profiled
//!    into the batched service-time model of
//!    [`WorkloadProfile`](crate::workload::WorkloadProfile) on the
//!    work-stealing pool. Profiling is pure, so the phase is
//!    result-identical for any worker count.
//! 2. **Event loop** (sequential, deterministic) — arrivals flow through
//!    the bounded [`AdmissionController`], the EDF/priority
//!    [`Scheduler`] packs same-class batches onto free instances, and
//!    completions free instances, record per-request timelines and (in
//!    closed-loop mode) trigger the next client request. Service times
//!    come from the profiles, with shared-DRAM contention scaled by the
//!    number of busy instances at dispatch.
//! 3. **Reduce** (parallel) — per-request records fold into exact
//!    latency/wait/service histograms in fixed-size chunks; the merge is
//!    commutative, so again any worker count produces identical numbers.
//!
//! The caller's `usystolic_obs` session (if installed) receives queue
//! depth gauges, admission/rejection/deadline counters, batch-size and
//! latency histograms, and one Chrome-trace span per dispatched batch on
//! the simulated-cycle lane (`tid` = instance).

use crate::admission::{Admission, AdmissionController};
use crate::event::{EventKind, EventQueue};
use crate::faults::FleetFaultPlan;
use crate::histogram::CycleHistogram;
use crate::loadgen::LoadGen;
use crate::pool::run_indexed;
use crate::report::{ServeConfig, ServeError, ServeReport};
use crate::request::{Disposition, Request, RequestRecord};
use crate::scheduler::Scheduler;
use crate::workload::{LayerProfile, Workload, WorkloadProfile};
use std::collections::BTreeMap;
use usystolic_obs::ToJson;
use usystolic_sim::CLOCK_HZ;

/// A batch in flight on one instance.
#[derive(Debug, Clone)]
struct InFlight {
    dispatch: u64,
    batch: Vec<Request>,
    degraded: bool,
}

/// Per-instance bookkeeping during the event loop.
#[derive(Debug, Clone)]
struct Instance {
    /// In-flight batch, if busy.
    in_flight: Option<InFlight>,
    busy_cycles: u64,
    batches: u64,
    /// False once the shard fail-stops; a dead shard never dispatches.
    alive: bool,
    /// Bumped on every crash; stale completions (dispatched before the
    /// crash) carry the old epoch and are ignored.
    epoch: u64,
    /// Service-time multiplier in percent (100 = nominal).
    slow_percent: u32,
}

/// Terminal counters the fault paths accumulate during the event loop.
#[derive(Debug, Default)]
struct FaultTally {
    timed_out: u64,
    failed: u64,
    retries: u64,
    failovers: u64,
    brownout_requests: u64,
    shard_crashes: u64,
}

/// Runs the serving simulation to completion.
///
/// # Errors
///
/// Returns a [`ServeError`] when the configuration is degenerate (no
/// workloads, an empty workload, zero instances/queue/batch/duration) or
/// when a worker thread fails.
pub fn serve(config: &ServeConfig, workloads: &[Workload]) -> Result<ServeReport, ServeError> {
    if workloads.is_empty() {
        return Err(ServeError::NoWorkloads);
    }
    if let Some(w) = workloads.iter().find(|w| w.layers.is_empty()) {
        return Err(ServeError::EmptyWorkload(w.name.clone()));
    }
    if config.instances == 0 {
        return Err(ServeError::InvalidConfig("instances must be at least 1"));
    }
    if config.queue_capacity == 0 {
        return Err(ServeError::InvalidConfig(
            "queue_capacity must be at least 1",
        ));
    }
    if config.max_batch == 0 {
        return Err(ServeError::InvalidConfig("max_batch must be at least 1"));
    }
    if config.duration_cycles == 0 {
        return Err(ServeError::InvalidConfig(
            "duration_cycles must be at least 1",
        ));
    }
    config.faults.validate(config.instances)?;

    // ---- Phase 1: profile every (workload, layer) in parallel. --------
    let profiles = profile_workloads(config, workloads)?;

    // ---- Phase 2: the deterministic event loop. -----------------------
    // Windowed series share one bucket geometry derived from the run
    // horizon, so rolling arrival/rejection/queue-depth rates line up
    // bucket-for-bucket (the signal an autoscaler consumes).
    usystolic_obs::with(|o| {
        let width = (config.duration_cycles / 64).max(1);
        for name in [
            "serve.arrivals",
            "serve.rejections",
            "serve.dispatches",
            "serve.queue_depth",
        ] {
            o.metrics.register_series(name, &[], width, 128);
        }
    });
    let mut load = {
        let mut lc = config.load;
        lc.classes = workloads.len();
        LoadGen::new(lc)
    };
    let mut events = EventQueue::new();
    for r in load.initial_arrivals(config.duration_cycles) {
        events.push(r.arrival, EventKind::Arrival(r));
    }
    for f in &config.faults.failures {
        events.push(
            f.at,
            EventKind::ShardFail {
                instance: f.instance,
            },
        );
    }
    for s in &config.faults.slowdowns {
        events.push(
            s.at,
            EventKind::ShardSlow {
                instance: s.instance,
                factor_percent: s.factor_percent,
            },
        );
    }

    let mut admission = AdmissionController::new(config.queue_capacity);
    let scheduler = Scheduler::new(config.max_batch);
    let mut instances: Vec<Instance> = vec![
        Instance {
            in_flight: None,
            busy_cycles: 0,
            batches: 0,
            alive: true,
            epoch: 0,
            slow_percent: 100,
        };
        config.instances
    ];
    let mut busy = 0usize;
    let mut records: Vec<RequestRecord> = Vec::new();
    let mut offered = 0u64;
    let mut makespan = 0u64;
    let mut tally = FaultTally::default();
    // Retry attempts consumed per request id, keyed deterministically.
    let mut retry_counts: BTreeMap<u64, u32> = BTreeMap::new();

    while let Some(event) = events.pop() {
        let now = event.at;
        makespan = makespan.max(now);
        match event.kind {
            EventKind::Arrival(request) => {
                offered += 1;
                usystolic_obs::with(|o| {
                    o.metrics.series_record("serve.arrivals", now, 1.0);
                });
                // Brown-out takes the overflow path *before* `offer`
                // would count a rejection: quality degrades instead.
                let decision = if admission.depth() < admission.capacity()
                    || config.faults.brownout.is_none()
                {
                    admission.offer(request)
                } else if admission.depth() < config.queue_capacity * 2 {
                    admission.force_admit(request);
                    Admission::Admitted
                } else {
                    admission.offer(request)
                };
                match decision {
                    Admission::Admitted => {
                        if let Some(t) = config.faults.timeout_cycles {
                            events
                                .push(now.saturating_add(t), EventKind::Timeout { id: request.id });
                        }
                        usystolic_obs::with(|o| {
                            let depth = admission.depth() as f64;
                            o.metrics.gauge("serve.queue_depth", depth);
                            o.metrics.series_record("serve.queue_depth", now, depth);
                        });
                    }
                    Admission::Rejected => {
                        usystolic_obs::with(|o| {
                            o.metrics.count("serve.rejected", 1);
                            o.metrics.count_labeled(
                                "serve.rejected",
                                &[
                                    ("class", workloads[request.class].name.as_str()),
                                    ("priority", request.priority.label()),
                                ],
                                1,
                            );
                            o.metrics.count_labeled(
                                "serve.rejections",
                                &[("reason", "capacity")],
                                1,
                            );
                            o.metrics.series_record("serve.rejections", now, 1.0);
                            o.request_id = Some(request.id);
                            let args = o.correlated_args(vec![(
                                "class".to_owned(),
                                workloads[request.class].name.to_json(),
                            )]);
                            o.tracer.instant(
                                "rejected",
                                "serve",
                                usystolic_obs::PID_SIM,
                                0,
                                now as f64,
                                args,
                            );
                            o.request_id = None;
                        });
                        records.push(RequestRecord {
                            request,
                            disposition: Disposition::Rejected,
                            dispatch: 0,
                            completion: 0,
                            instance: 0,
                            batch_size: 0,
                            retries: 0,
                            degraded: false,
                        });
                    }
                }
            }
            EventKind::Completion { instance, epoch } => {
                let slot = &mut instances[instance - 1];
                // A completion from before the shard's crash is stale:
                // the batch was lost, ShardFail already re-routed it.
                if slot.epoch != epoch {
                    continue;
                }
                if let Some(fl) = slot.in_flight.take() {
                    busy -= 1;
                    slot.busy_cycles += now - fl.dispatch;
                    let size = fl.batch.len();
                    let dispatch = fl.dispatch;
                    for request in fl.batch {
                        records.push(RequestRecord {
                            request,
                            disposition: Disposition::Completed,
                            dispatch,
                            completion: now,
                            instance,
                            batch_size: size,
                            retries: retry_counts.get(&request.id).copied().unwrap_or(0),
                            degraded: fl.degraded,
                        });
                        usystolic_obs::with(|o| {
                            let class = workloads[request.class].name.as_str();
                            let latency = now - request.arrival;
                            let wait = dispatch - request.arrival;
                            o.metrics.count("serve.completed", 1);
                            o.metrics.count_labeled(
                                "serve.completed",
                                &[("class", class), ("priority", request.priority.label())],
                                1,
                            );
                            o.metrics.observe("serve.latency_ms", cycles_ms(latency));
                            o.metrics.observe("serve.queue_wait_ms", cycles_ms(wait));
                            // Streaming quantiles of the same values the
                            // exact reduce-phase histograms see.
                            o.metrics
                                .record_quantile("serve.latency_cycles", latency as f64);
                            o.metrics.record_quantile_labeled(
                                "serve.latency_cycles",
                                &[("class", class)],
                                latency as f64,
                            );
                            o.metrics
                                .record_quantile("serve.queue_wait_cycles", wait as f64);
                        });
                        if let Some(client) = request.client {
                            if let Some(next) =
                                load.after_completion(client, now, config.duration_cycles)
                            {
                                events.push(next.arrival, EventKind::Arrival(next));
                            }
                        }
                    }
                }
            }
            EventKind::ShardFail { instance } => {
                let slot = &mut instances[instance - 1];
                if slot.alive {
                    slot.alive = false;
                    slot.epoch += 1;
                    tally.shard_crashes += 1;
                    usystolic_obs::with(|o| {
                        o.metrics
                            .count_labeled("faults.injected", &[("kind", "shard_fail")], 1);
                        o.tracer.instant(
                            "shard_fail",
                            "faults",
                            usystolic_obs::PID_SIM,
                            instance as u32,
                            now as f64,
                            Vec::new(),
                        );
                    });
                    if let Some(fl) = slot.in_flight.take() {
                        busy -= 1;
                        slot.busy_cycles += now - fl.dispatch;
                        for request in fl.batch {
                            let attempt = retry_counts.get(&request.id).copied().unwrap_or(0);
                            if attempt < config.faults.retry.max_retries {
                                retry_counts.insert(request.id, attempt + 1);
                                tally.retries += 1;
                                let delay = config.faults.backoff_cycles(request.id, attempt);
                                events.push(now.saturating_add(delay), EventKind::Retry(request));
                                usystolic_obs::with(|o| o.metrics.count("serve.retries", 1));
                            } else {
                                tally.failed += 1;
                                records.push(RequestRecord {
                                    request,
                                    disposition: Disposition::Failed,
                                    dispatch: 0,
                                    completion: 0,
                                    instance: 0,
                                    batch_size: 0,
                                    retries: attempt,
                                    degraded: false,
                                });
                                usystolic_obs::with(|o| {
                                    o.metrics.count("serve.failed", 1);
                                    o.metrics.count_labeled(
                                        "serve.rejections",
                                        &[("reason", "shard_down")],
                                        1,
                                    );
                                });
                            }
                        }
                    }
                }
            }
            EventKind::ShardSlow {
                instance,
                factor_percent,
            } => {
                let slot = &mut instances[instance - 1];
                if slot.alive {
                    slot.slow_percent = factor_percent;
                    usystolic_obs::with(|o| {
                        o.metrics
                            .count_labeled("faults.injected", &[("kind", "shard_slow")], 1);
                    });
                }
            }
            EventKind::Timeout { id } => {
                // Only bites while the request still waits in the queue;
                // dispatched or completed requests ignore stale timers.
                if let Some(request) = admission.remove_by_id(id) {
                    tally.timed_out += 1;
                    records.push(RequestRecord {
                        request,
                        disposition: Disposition::TimedOut,
                        dispatch: 0,
                        completion: 0,
                        instance: 0,
                        batch_size: 0,
                        retries: retry_counts.get(&id).copied().unwrap_or(0),
                        degraded: false,
                    });
                    usystolic_obs::with(|o| {
                        o.metrics.count("serve.timeouts", 1);
                        o.metrics
                            .count_labeled("serve.rejections", &[("reason", "timeout")], 1);
                        o.metrics.series_record("serve.rejections", now, 1.0);
                    });
                }
            }
            EventKind::Retry(request) => {
                // Failover: the shard that held it is gone; the request
                // re-enters the queue for the survivors. Its wait budget
                // restarts from this resubmission.
                tally.failovers += 1;
                admission.requeue(request);
                if let Some(t) = config.faults.timeout_cycles {
                    events.push(now.saturating_add(t), EventKind::Timeout { id: request.id });
                }
                usystolic_obs::with(|o| o.metrics.count("serve.failovers", 1));
            }
        }
        if config.faults.shed_expired {
            for request in admission.expire_before(now) {
                tally.timed_out += 1;
                records.push(RequestRecord {
                    request,
                    disposition: Disposition::TimedOut,
                    dispatch: 0,
                    completion: 0,
                    instance: 0,
                    batch_size: 0,
                    retries: retry_counts.get(&request.id).copied().unwrap_or(0),
                    degraded: false,
                });
                usystolic_obs::with(|o| {
                    o.metrics.count("serve.timeouts", 1);
                    o.metrics
                        .count_labeled("serve.rejections", &[("reason", "deadline")], 1);
                });
            }
        }
        dispatch_free_instances(
            now,
            &scheduler,
            &mut admission,
            &profiles,
            &mut instances,
            &mut busy,
            &mut events,
            &config.faults,
            &mut tally,
        );
    }

    // With the whole fleet down, queued requests have no instance left
    // to serve them: record each as failed so the ledger still closes.
    for request in admission.drain_remaining() {
        tally.failed += 1;
        records.push(RequestRecord {
            request,
            disposition: Disposition::Failed,
            dispatch: 0,
            completion: 0,
            instance: 0,
            batch_size: 0,
            retries: retry_counts.get(&request.id).copied().unwrap_or(0),
            degraded: false,
        });
        usystolic_obs::with(|o| {
            o.metrics.count("serve.failed", 1);
            o.metrics
                .count_labeled("serve.rejections", &[("reason", "shard_down")], 1);
        });
    }

    // ---- Phase 3: fold records into stage statistics in parallel. -----
    let stats = reduce_records(config.workers, &records, workloads.len())?;

    let makespan = makespan.max(config.duration_cycles);
    let busy_cycles: Vec<u64> = instances.iter().map(|i| i.busy_cycles).collect();
    let batches: u64 = instances.iter().map(|i| i.batches).sum();
    let elapsed_s = makespan as f64 / CLOCK_HZ;
    let total_busy: u64 = busy_cycles.iter().sum();

    let report = ServeReport {
        instances: config.instances,
        workers: config.workers.max(1),
        queue_capacity: config.queue_capacity,
        max_batch: config.max_batch,
        duration_cycles: config.duration_cycles,
        makespan_cycles: makespan,
        offered,
        admitted: admission.admitted(),
        rejected: admission.rejected(),
        completed: stats.completed,
        timed_out: tally.timed_out,
        failed: tally.failed,
        retries: tally.retries,
        failovers: tally.failovers,
        brownout_requests: tally.brownout_requests,
        shard_crashes: tally.shard_crashes,
        deadline_missed: stats.deadline_missed,
        batches,
        max_queue_depth: admission.max_depth(),
        latency: stats.latency.summary(),
        queue_wait: stats.queue_wait.summary(),
        service: stats.service.summary(),
        instance_busy_cycles: busy_cycles,
        throughput_per_s: stats.completed as f64 / elapsed_s,
        mean_utilization: total_busy as f64 / (config.instances as f64 * makespan as f64),
        workload_names: workloads.iter().map(|w| w.name.clone()).collect(),
        per_class_completed: stats.per_class_completed,
        records,
    };

    // Request conservation is an invariant, not a statistic: every
    // offered request is admitted or rejected, and every admitted
    // request ends exactly one way — completed, timed out or failed.
    assert!(
        report.conserved(),
        "request conservation violated: offered={} admitted={} rejected={} \
         completed={} timed_out={} failed={} (lost={})",
        report.offered,
        report.admitted,
        report.rejected,
        report.completed,
        report.timed_out,
        report.failed,
        report.lost(),
    );

    usystolic_obs::with(|o| {
        o.metrics.count("serve.offered", report.offered);
        o.metrics.count("serve.admitted", report.admitted);
        o.metrics.count("serve.batches", report.batches);
        o.metrics
            .count("serve.deadline_missed", report.deadline_missed);
        o.metrics
            .gauge("serve.max_queue_depth", report.max_queue_depth as f64);
        o.metrics
            .gauge("serve.mean_utilization", report.mean_utilization);
        o.metrics
            .gauge("serve.throughput_per_s", report.throughput_per_s);
    });
    Ok(report)
}

fn cycles_ms(cycles: u64) -> f64 {
    cycles as f64 / CLOCK_HZ * 1.0e3
}

/// Phase 1: per-layer profiles on the pool, folded per workload.
fn profile_workloads(
    config: &ServeConfig,
    workloads: &[Workload],
) -> Result<Vec<WorkloadProfile>, ServeError> {
    let tasks: Vec<(usize, usize)> = workloads
        .iter()
        .enumerate()
        .flat_map(|(w, wl)| (0..wl.layers.len()).map(move |l| (w, l)))
        .collect();
    let layer_profiles = run_indexed(config.workers.max(1), tasks.len(), |i| {
        let (w, l) = tasks[i];
        LayerProfile::compute(&workloads[w].layers[l], &config.array, &config.memory)
    })
    .map_err(ServeError::Pool)?;
    Ok(workloads
        .iter()
        .enumerate()
        .map(|(w, wl)| {
            let layers: Vec<LayerProfile> = tasks
                .iter()
                .zip(&layer_profiles)
                .filter(|((tw, _), _)| *tw == w)
                .map(|(_, &p)| p)
                .collect();
            WorkloadProfile::from_layers(&wl.name, &layers, &config.memory)
        })
        .collect())
}

/// Greedy dispatch: fill every free *alive* instance while the queue
/// has work. Under brown-out (queue at or past the depth threshold)
/// batches run degraded — scaled compute and traffic, the serving
/// analogue of raised early termination. A slowed shard stretches its
/// service time by its percent factor.
#[allow(clippy::too_many_arguments)]
fn dispatch_free_instances(
    now: u64,
    scheduler: &Scheduler,
    admission: &mut AdmissionController,
    profiles: &[WorkloadProfile],
    instances: &mut [Instance],
    busy: &mut usize,
    events: &mut EventQueue,
    faults: &FleetFaultPlan,
    tally: &mut FaultTally,
) {
    loop {
        if admission.depth() == 0 {
            return;
        }
        let Some(free_idx) = instances
            .iter()
            .position(|i| i.alive && i.in_flight.is_none())
        else {
            return;
        };
        // Brown-out is decided on the depth seen *before* this batch
        // drains it — the signal an overloaded fleet actually has.
        let degraded = faults.brownout.filter(|b| {
            admission.depth() * 1000 >= b.depth_permille as usize * admission.capacity()
        });
        let Some(batch) = scheduler.next_batch(admission) else {
            return;
        };
        let class = batch[0].class;
        let concurrency = *busy + 1;
        let service = match degraded {
            Some(b) => {
                profiles[class].service_cycles_scaled(batch.len(), concurrency, b.service_permille)
            }
            None => profiles[class].service_cycles(batch.len(), concurrency),
        };
        // A slowed shard serves at factor_percent of nominal speed.
        let service = service.saturating_mul(u64::from(instances[free_idx].slow_percent)) / 100;
        let completion = now + service;
        if degraded.is_some() {
            tally.brownout_requests += batch.len() as u64;
            usystolic_obs::with(|o| {
                o.metrics
                    .count("serve.brownout_requests", batch.len() as u64);
            });
        }
        usystolic_obs::with(|o| {
            let class_name = profiles[class].name.as_str();
            o.metrics.count("serve.dispatched", batch.len() as u64);
            o.metrics.count_labeled(
                "serve.dispatched",
                &[("class", class_name)],
                batch.len() as u64,
            );
            o.metrics.observe("serve.batch_size", batch.len() as f64);
            o.metrics.observe_labeled(
                "serve.batch_size",
                &[("class", class_name)],
                batch.len() as f64,
            );
            let depth = admission.depth() as f64;
            o.metrics.gauge("serve.queue_depth", depth);
            o.metrics.series_record("serve.queue_depth", now, depth);
            o.metrics
                .series_record("serve.dispatches", now, batch.len() as f64);
            // Correlate the batch span with the shard executing it and
            // the requests it carries, so one request's admission →
            // batch path reconstructs in Perfetto.
            o.shard_id = Some(free_idx as u64 + 1);
            o.request_id = batch.first().map(|r| r.id);
            let args = o.correlated_args(vec![
                ("class".to_owned(), profiles[class].name.to_json()),
                ("batch".to_owned(), (batch.len() as u64).to_json()),
                ("concurrency".to_owned(), (concurrency as u64).to_json()),
                (
                    "dram_limited".to_owned(),
                    profiles[class]
                        .dram_limited(batch.len(), concurrency)
                        .to_json(),
                ),
                (
                    "req_ids".to_owned(),
                    usystolic_obs::JsonValue::Array(batch.iter().map(|r| r.id.to_json()).collect()),
                ),
            ]);
            o.tracer.complete(
                format!("batch {}", profiles[class].name),
                "serve",
                usystolic_obs::PID_SIM,
                free_idx as u32 + 1,
                now as f64,
                service as f64,
                args,
            );
            o.request_id = None;
            o.shard_id = None;
        });
        let slot = &mut instances[free_idx];
        slot.in_flight = Some(InFlight {
            dispatch: now,
            batch,
            degraded: degraded.is_some(),
        });
        slot.batches += 1;
        *busy += 1;
        events.push(
            completion,
            EventKind::Completion {
                instance: free_idx + 1,
                epoch: slot.epoch,
            },
        );
    }
}

/// Per-chunk partial statistics (commutative merge).
struct StageStats {
    latency: CycleHistogram,
    queue_wait: CycleHistogram,
    service: CycleHistogram,
    completed: u64,
    deadline_missed: u64,
    per_class_completed: Vec<u64>,
}

/// Phase 3: fold records into histograms across the pool.
fn reduce_records(
    workers: usize,
    records: &[RequestRecord],
    classes: usize,
) -> Result<StageStats, ServeError> {
    const CHUNK: usize = 2048;
    let chunks = records.len().div_ceil(CHUNK);
    let partials = run_indexed(workers.max(1), chunks, |c| {
        let slice = &records[c * CHUNK..((c + 1) * CHUNK).min(records.len())];
        let mut s = StageStats {
            latency: CycleHistogram::new(),
            queue_wait: CycleHistogram::new(),
            service: CycleHistogram::new(),
            completed: 0,
            deadline_missed: 0,
            per_class_completed: vec![0; classes],
        };
        for r in slice {
            if r.deadline_missed() {
                s.deadline_missed += 1;
            }
            if let (Some(lat), Some(wait), Some(svc)) = (
                r.latency_cycles(),
                r.queue_wait_cycles(),
                r.service_cycles(),
            ) {
                s.latency.observe(lat);
                s.queue_wait.observe(wait);
                s.service.observe(svc);
                s.completed += 1;
                s.per_class_completed[r.request.class] += 1;
            }
        }
        s
    })
    .map_err(ServeError::Pool)?;

    let mut total = StageStats {
        latency: CycleHistogram::new(),
        queue_wait: CycleHistogram::new(),
        service: CycleHistogram::new(),
        completed: 0,
        deadline_missed: 0,
        per_class_completed: vec![0; classes],
    };
    for p in partials {
        total.latency.merge(&p.latency);
        total.queue_wait.merge(&p.queue_wait);
        total.service.merge(&p.service);
        total.completed += p.completed;
        total.deadline_missed += p.deadline_missed;
        for (t, c) in total
            .per_class_completed
            .iter_mut()
            .zip(&p.per_class_completed)
        {
            *t += c;
        }
    }
    Ok(total)
}
