//! Deterministic load generation.
//!
//! Two families of request streams, both driven by one seeded
//! [`SplitMix64`] (the workspace's shared software PRNG — the same
//! implementation the trainers, benchmarks and differential checks use):
//!
//! * **open-loop** — arrivals are independent of the system's behaviour:
//!   Poisson-like (i.i.d. geometric/exponential inter-arrival gaps, the
//!   classic open-system model) or uniform (a fixed gap, the `D/D/m`
//!   stream the closed-form oracle tests use);
//! * **closed-loop** — a fixed population of clients, each with at most
//!   one outstanding request: a client re-issues `think_cycles` after its
//!   previous request completes, so offered load self-throttles to the
//!   system's capacity.
//!
//! All randomness flows through one generator in a deterministic call
//! order, so the same seed and configuration produce bit-identical
//! request streams on every platform and with any worker count.

use crate::request::{Priority, Request};
use usystolic_unary::rng::SplitMix64;

/// The arrival process shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Open-loop, Poisson-like: inter-arrival gaps drawn from an
    /// exponential with the given mean (in cycles), rounded up to ≥ 1.
    OpenPoisson {
        /// Mean inter-arrival gap in cycles.
        mean_interarrival_cycles: f64,
    },
    /// Open-loop, deterministic: one arrival every `interval_cycles`,
    /// starting at cycle 0.
    OpenUniform {
        /// Fixed inter-arrival gap in cycles (≥ 1).
        interval_cycles: u64,
    },
    /// Closed-loop: `clients` clients, each re-issuing `think_cycles`
    /// after its previous completion.
    ClosedLoop {
        /// Client population.
        clients: usize,
        /// Think time between completion and the next issue.
        think_cycles: u64,
    },
}

/// Everything the generator needs to mint requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadGenConfig {
    /// The arrival process.
    pub process: ArrivalProcess,
    /// PRNG seed.
    pub seed: u64,
    /// Number of workload classes to draw from (uniformly).
    pub classes: usize,
    /// Fraction of requests issued at [`Priority::High`].
    pub high_priority_fraction: f64,
    /// Relative deadline applied to every request, in cycles.
    pub deadline_cycles: Option<u64>,
}

/// The deterministic request stream generator.
#[derive(Debug)]
pub struct LoadGen {
    config: LoadGenConfig,
    rng: SplitMix64,
    next_id: u64,
}

impl LoadGen {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero, if an open-uniform interval is zero,
    /// if a Poisson mean is not positive, or if a closed loop has no
    /// clients.
    #[must_use]
    pub fn new(config: LoadGenConfig) -> Self {
        assert!(config.classes > 0, "need at least one workload class");
        match config.process {
            ArrivalProcess::OpenPoisson {
                mean_interarrival_cycles,
            } => {
                assert!(
                    mean_interarrival_cycles > 0.0,
                    "Poisson mean inter-arrival must be positive"
                );
            }
            ArrivalProcess::OpenUniform { interval_cycles } => {
                assert!(interval_cycles > 0, "uniform interval must be positive");
            }
            ArrivalProcess::ClosedLoop { clients, .. } => {
                assert!(clients > 0, "closed loop needs clients");
            }
        }
        Self {
            rng: SplitMix64::new(config.seed),
            config,
            next_id: 0,
        }
    }

    /// Whether completions feed back into the arrival stream.
    #[must_use]
    pub fn is_closed_loop(&self) -> bool {
        matches!(self.config.process, ArrivalProcess::ClosedLoop { .. })
    }

    fn mint(&mut self, arrival: u64, client: Option<usize>) -> Request {
        let class = if self.config.classes > 1 {
            self.rng.below(self.config.classes as u64) as usize
        } else {
            0
        };
        let priority = if self.config.high_priority_fraction > 0.0
            && self.rng.next_f64() < self.config.high_priority_fraction
        {
            Priority::High
        } else {
            Priority::Normal
        };
        let id = self.next_id;
        self.next_id += 1;
        Request {
            id,
            class,
            arrival,
            priority,
            deadline: self.config.deadline_cycles.map(|d| arrival + d),
            client,
        }
    }

    /// The arrivals known before the simulation starts: the full stream
    /// for open-loop processes (every arrival strictly before
    /// `horizon_cycles`), or one initial request per client (staggered by
    /// one cycle) for closed loops.
    pub fn initial_arrivals(&mut self, horizon_cycles: u64) -> Vec<Request> {
        match self.config.process {
            ArrivalProcess::OpenPoisson {
                mean_interarrival_cycles,
            } => {
                let mut out = Vec::new();
                let mut t = 0u64;
                loop {
                    let u = self.rng.next_f64();
                    // Inverse-CDF exponential gap, quantised to ≥ 1 cycle.
                    let gap = (-(1.0 - u).ln() * mean_interarrival_cycles).ceil();
                    let gap = if gap < 1.0 { 1 } else { gap as u64 };
                    t = t.saturating_add(gap);
                    if t >= horizon_cycles {
                        return out;
                    }
                    let r = self.mint(t, None);
                    out.push(r);
                }
            }
            ArrivalProcess::OpenUniform { interval_cycles } => {
                let mut out = Vec::new();
                let mut t = 0u64;
                while t < horizon_cycles {
                    let r = self.mint(t, None);
                    out.push(r);
                    t = t.saturating_add(interval_cycles);
                }
                out
            }
            ArrivalProcess::ClosedLoop { clients, .. } => {
                let mut out = Vec::new();
                for c in 0..clients {
                    if (c as u64) < horizon_cycles {
                        let r = self.mint(c as u64, Some(c));
                        out.push(r);
                    }
                }
                out
            }
        }
    }

    /// Closed-loop feedback: the client's next request after a completion
    /// at `completion_cycle`, or `None` for open-loop processes or when
    /// the next issue would fall at/after the horizon.
    pub fn after_completion(
        &mut self,
        client: usize,
        completion_cycle: u64,
        horizon_cycles: u64,
    ) -> Option<Request> {
        let ArrivalProcess::ClosedLoop { think_cycles, .. } = self.config.process else {
            return None;
        };
        let arrival = completion_cycle.saturating_add(think_cycles);
        if arrival >= horizon_cycles {
            return None;
        }
        Some(self.mint(arrival, Some(client)))
    }

    /// Requests minted so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(process: ArrivalProcess) -> LoadGenConfig {
        LoadGenConfig {
            process,
            seed: 42,
            classes: 1,
            high_priority_fraction: 0.0,
            deadline_cycles: None,
        }
    }

    #[test]
    fn uniform_arrivals_are_a_grid() {
        let mut g = LoadGen::new(cfg(ArrivalProcess::OpenUniform {
            interval_cycles: 10,
        }));
        let arr = g.initial_arrivals(35);
        let times: Vec<u64> = arr.iter().map(|r| r.arrival).collect();
        assert_eq!(times, [0, 10, 20, 30]);
        assert_eq!(g.issued(), 4);
        // Ids are dense and ordered.
        let ids: Vec<u64> = arr.iter().map(|r| r.id).collect();
        assert_eq!(ids, [0, 1, 2, 3]);
    }

    #[test]
    fn poisson_stream_is_seed_deterministic_and_rate_plausible() {
        let make = || {
            let mut g = LoadGen::new(cfg(ArrivalProcess::OpenPoisson {
                mean_interarrival_cycles: 100.0,
            }));
            g.initial_arrivals(1_000_000)
        };
        let a = make();
        let b = make();
        assert_eq!(a, b);
        // ~10k arrivals expected; allow wide slack.
        assert!(a.len() > 8_000 && a.len() < 12_000, "{}", a.len());
        // Strictly increasing arrival times.
        assert!(a.windows(2).all(|w| w[0].arrival < w[1].arrival));
    }

    #[test]
    fn different_seeds_differ() {
        let mut g1 = LoadGen::new(cfg(ArrivalProcess::OpenPoisson {
            mean_interarrival_cycles: 50.0,
        }));
        let mut g2 = LoadGen::new(LoadGenConfig {
            seed: 43,
            ..cfg(ArrivalProcess::OpenPoisson {
                mean_interarrival_cycles: 50.0,
            })
        });
        assert_ne!(g1.initial_arrivals(100_000), g2.initial_arrivals(100_000));
    }

    #[test]
    fn deadlines_and_priorities_are_applied() {
        let mut config = cfg(ArrivalProcess::OpenUniform { interval_cycles: 5 });
        config.deadline_cycles = Some(1000);
        config.high_priority_fraction = 0.5;
        config.classes = 3;
        let mut g = LoadGen::new(config);
        let arr = g.initial_arrivals(10_000);
        assert!(arr.iter().all(|r| r.deadline == Some(r.arrival + 1000)));
        let high = arr.iter().filter(|r| r.priority == Priority::High).count();
        // Half ± slack.
        assert!(high > arr.len() / 3 && high < 2 * arr.len() / 3);
        assert!(arr.iter().any(|r| r.class == 0));
        assert!(arr.iter().any(|r| r.class == 2));
    }

    #[test]
    fn closed_loop_seeds_one_request_per_client() {
        let mut g = LoadGen::new(cfg(ArrivalProcess::ClosedLoop {
            clients: 3,
            think_cycles: 100,
        }));
        assert!(g.is_closed_loop());
        let arr = g.initial_arrivals(1_000);
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].client, Some(1));
        // Feedback honours think time and the horizon.
        let next = g.after_completion(1, 500, 1_000).expect("inside horizon");
        assert_eq!(next.arrival, 600);
        assert_eq!(next.client, Some(1));
        assert!(g.after_completion(1, 950, 1_000).is_none());
    }

    #[test]
    fn open_loop_has_no_feedback() {
        let mut g = LoadGen::new(cfg(ArrivalProcess::OpenUniform { interval_cycles: 5 }));
        assert!(g.after_completion(0, 10, 1_000).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one workload class")]
    fn zero_classes_rejected() {
        let mut c = cfg(ArrivalProcess::OpenUniform { interval_cycles: 5 });
        c.classes = 0;
        let _ = LoadGen::new(c);
    }
}
