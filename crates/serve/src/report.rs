//! Serving configuration, errors and the end-of-run report.

use crate::faults::FleetFaultPlan;
use crate::histogram::LatencySummary;
use crate::loadgen::LoadGenConfig;
use crate::pool::PoolError;
use crate::request::RequestRecord;
use usystolic_core::SystolicConfig;
use usystolic_des::Fidelity;
use usystolic_obs::{JsonValue, ToJson};
use usystolic_sim::{MemoryHierarchy, CLOCK_HZ};

/// Everything the serving engine needs besides the workloads themselves.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The systolic array every instance simulates.
    pub array: SystolicConfig,
    /// The memory hierarchy (SRAM per instance, DRAM shared).
    pub memory: MemoryHierarchy,
    /// Number of simulated array instances.
    pub instances: usize,
    /// Admission queue bound (requests beyond it are rejected).
    pub queue_capacity: usize,
    /// Largest batch one dispatch may carry.
    pub max_batch: usize,
    /// Host worker threads for the parallel phases (clamped to ≥ 1).
    pub workers: usize,
    /// Arrival horizon: no request arrives at or after this cycle
    /// (in-flight work still drains to completion).
    pub duration_cycles: u64,
    /// Load generator configuration. The engine overrides
    /// [`LoadGenConfig::classes`] with the number of workloads.
    pub load: LoadGenConfig,
    /// Fleet fault plan ([`FleetFaultPlan::default`] for a quiet,
    /// fault-free run — the engine is then bit-identical to one without
    /// the fault layer).
    pub faults: FleetFaultPlan,
    /// Model resolution the event loop dispatches at.
    /// [`Fidelity::CycleAccurate`] (the default) and [`Fidelity::Packed`]
    /// are bit-identical; [`Fidelity::Analytic`] trades exactness for
    /// `O(1)` service estimates at fleet scale.
    pub fidelity: Fidelity,
}

/// Errors from [`serve`](crate::engine::serve).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// No workloads were registered.
    NoWorkloads,
    /// A workload has no layers (named).
    EmptyWorkload(String),
    /// A degenerate knob (zero instances, queue, batch or duration).
    InvalidConfig(&'static str),
    /// A worker thread failed during a parallel phase.
    Pool(PoolError),
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeError::NoWorkloads => write!(f, "no workloads registered"),
            ServeError::EmptyWorkload(name) => {
                write!(f, "workload '{name}' has no layers")
            }
            ServeError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            ServeError::Pool(e) => write!(f, "worker pool failure: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Pool(e) => Some(e),
            _ => None,
        }
    }
}

/// The end-of-run serving report.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Simulated array instances.
    pub instances: usize,
    /// Host worker threads used for the parallel phases.
    pub workers: usize,
    /// Admission queue bound.
    pub queue_capacity: usize,
    /// Batch bound.
    pub max_batch: usize,
    /// Configured arrival horizon in cycles.
    pub duration_cycles: u64,
    /// Cycle of the last event (≥ `duration_cycles`; the drain tail).
    pub makespan_cycles: u64,
    /// Requests that arrived.
    pub offered: u64,
    /// Requests past admission.
    pub admitted: u64,
    /// Requests turned away (bounded queue full).
    pub rejected: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Admitted requests that expired while queued (wait budget or
    /// deadline shedding).
    pub timed_out: u64,
    /// Admitted requests lost to shard failure with retries exhausted.
    pub failed: u64,
    /// Retry attempts scheduled after shard crashes.
    pub retries: u64,
    /// Requests re-routed to surviving shards after their shard crashed.
    pub failovers: u64,
    /// Requests served degraded under brown-out.
    pub brownout_requests: u64,
    /// Shards that fail-stopped during the run.
    pub shard_crashes: u64,
    /// Requests that missed their deadline (late or never completed).
    pub deadline_missed: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Deepest the admission queue ever got.
    pub max_queue_depth: usize,
    /// End-to-end latency (arrival → completion).
    pub latency: LatencySummary,
    /// Queue wait (arrival → dispatch).
    pub queue_wait: LatencySummary,
    /// Service time (dispatch → completion).
    pub service: LatencySummary,
    /// Busy cycles per instance.
    pub instance_busy_cycles: Vec<u64>,
    /// Completed requests per second of simulated time.
    pub throughput_per_s: f64,
    /// Mean busy fraction across instances over the makespan.
    pub mean_utilization: f64,
    /// Registered workload class names (index = request class).
    pub workload_names: Vec<String>,
    /// Completions per workload class.
    pub per_class_completed: Vec<u64>,
    /// Full per-request records (completion order, rejected included).
    pub records: Vec<RequestRecord>,
}

impl ServeReport {
    /// Mean batch size over all dispatches (0 when nothing dispatched).
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }

    /// Converts cycles to milliseconds at the simulator clock.
    #[must_use]
    pub fn cycles_to_ms(cycles: u64) -> f64 {
        cycles as f64 / CLOCK_HZ * 1.0e3
    }

    /// Requests unaccounted for: admitted minus every terminal
    /// disposition. Zero on every run — the engine asserts it — and
    /// exported so external harnesses can check shard-kill scenarios
    /// lose nothing.
    #[must_use]
    pub fn lost(&self) -> i64 {
        self.admitted.cast_signed() - (self.completed + self.timed_out + self.failed).cast_signed()
    }

    /// The request-conservation ledger: every offered request is
    /// admitted or rejected, and every admitted request completes,
    /// times out or fails — nothing is silently dropped, even under
    /// shard crashes and retries.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.offered == self.admitted + self.rejected && self.lost() == 0
    }
}

fn summary_json(s: &LatencySummary) -> JsonValue {
    let mut j = s.to_json();
    if let JsonValue::Object(pairs) = &mut j {
        pairs.push((
            "p50_ms".to_owned(),
            ServeReport::cycles_to_ms(s.p50_cycles).to_json(),
        ));
        pairs.push((
            "p95_ms".to_owned(),
            ServeReport::cycles_to_ms(s.p95_cycles).to_json(),
        ));
        pairs.push((
            "p99_ms".to_owned(),
            ServeReport::cycles_to_ms(s.p99_cycles).to_json(),
        ));
    }
    j
}

impl ToJson for ServeReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("instances", self.instances.to_json()),
            ("workers", self.workers.to_json()),
            ("queue_capacity", self.queue_capacity.to_json()),
            ("max_batch", self.max_batch.to_json()),
            ("duration_cycles", self.duration_cycles.to_json()),
            ("makespan_cycles", self.makespan_cycles.to_json()),
            ("offered", self.offered.to_json()),
            ("admitted", self.admitted.to_json()),
            ("rejected", self.rejected.to_json()),
            ("completed", self.completed.to_json()),
            ("timed_out", self.timed_out.to_json()),
            ("failed", self.failed.to_json()),
            ("lost", self.lost().to_json()),
            ("conserved", self.conserved().to_json()),
            ("retries", self.retries.to_json()),
            ("failovers", self.failovers.to_json()),
            ("brownout_requests", self.brownout_requests.to_json()),
            ("shard_crashes", self.shard_crashes.to_json()),
            ("deadline_missed", self.deadline_missed.to_json()),
            ("batches", self.batches.to_json()),
            ("mean_batch_size", self.mean_batch_size().to_json()),
            ("max_queue_depth", self.max_queue_depth.to_json()),
            ("latency", summary_json(&self.latency)),
            ("queue_wait", summary_json(&self.queue_wait)),
            ("service", summary_json(&self.service)),
            (
                "instance_busy_cycles",
                JsonValue::Array(
                    self.instance_busy_cycles
                        .iter()
                        .map(ToJson::to_json)
                        .collect(),
                ),
            ),
            ("throughput_per_s", self.throughput_per_s.to_json()),
            ("mean_utilization", self.mean_utilization.to_json()),
            (
                "workloads",
                JsonValue::Array(
                    self.workload_names
                        .iter()
                        .zip(&self.per_class_completed)
                        .map(|(name, &done)| {
                            JsonValue::object(vec![
                                ("name", name.to_json()),
                                ("completed", done.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        assert_eq!(
            ServeError::NoWorkloads.to_string(),
            "no workloads registered"
        );
        assert!(ServeError::EmptyWorkload("vgg16".to_owned())
            .to_string()
            .contains("vgg16"));
        assert!(ServeError::InvalidConfig("instances must be at least 1")
            .to_string()
            .contains("instances"));
        assert!(ServeError::Pool(PoolError::WorkerFailed)
            .to_string()
            .contains("worker"));
    }

    #[test]
    fn cycles_to_ms_uses_the_sim_clock() {
        // 400 MHz: 400k cycles = 1 ms.
        let ms = ServeReport::cycles_to_ms(400_000);
        assert!((ms - 1.0).abs() < 1e-12);
    }
}
