//! Admission control: a bounded queue with explicit rejection.
//!
//! Every arriving request passes through the [`AdmissionController`]
//! before it can be scheduled. The controller holds at most
//! `capacity` queued requests; when the queue is full the request is
//! *rejected* — it never enters the system, the rejection counter ticks,
//! and the caller records a rejected [`RequestRecord`]. A bounded queue
//! is what keeps tail latency meaningful under overload: without it,
//! queueing delay grows without bound and every deadline is eventually
//! missed.
//!
//! [`RequestRecord`]: crate::request::RequestRecord

use crate::request::Request;

/// Outcome of offering a request to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Queued; the scheduler will dispatch it.
    Admitted,
    /// Queue full; the request is turned away.
    Rejected,
}

/// A bounded admission queue.
#[derive(Debug)]
pub struct AdmissionController {
    queue: Vec<Request>,
    capacity: usize,
    admitted: u64,
    rejected: u64,
    max_depth: usize,
}

impl AdmissionController {
    /// Creates a controller holding at most `capacity` queued requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "admission queue needs capacity");
        Self {
            queue: Vec::with_capacity(capacity.min(1 << 16)),
            capacity,
            admitted: 0,
            rejected: 0,
            max_depth: 0,
        }
    }

    /// Offers a request; queues it or rejects it.
    pub fn offer(&mut self, request: Request) -> Admission {
        if self.queue.len() >= self.capacity {
            self.rejected += 1;
            return Admission::Rejected;
        }
        self.queue.push(request);
        self.admitted += 1;
        self.max_depth = self.max_depth.max(self.queue.len());
        Admission::Admitted
    }

    /// Admits past the bound (brown-out overflow). Counts as admitted;
    /// the caller enforces its own overflow ceiling.
    pub fn force_admit(&mut self, request: Request) {
        self.queue.push(request);
        self.admitted += 1;
        self.max_depth = self.max_depth.max(self.queue.len());
    }

    /// Re-enqueues an already-admitted request (retry after a shard
    /// crash) without recounting it — the admission ledger sees each
    /// request once, however many times it is retried.
    pub fn requeue(&mut self, request: Request) {
        self.queue.push(request);
        self.max_depth = self.max_depth.max(self.queue.len());
    }

    /// Removes and returns the queued request with the given id, if it
    /// is still waiting (a dispatched or completed request is not).
    pub fn remove_by_id(&mut self, id: u64) -> Option<Request> {
        let pos = self.queue.iter().position(|r| r.id == id)?;
        Some(self.queue.remove(pos))
    }

    /// Removes and returns, in queue order, every queued request whose
    /// absolute deadline is before `now` (deadline shedding).
    pub fn expire_before(&mut self, now: u64) -> Vec<Request> {
        let mut expired = Vec::new();
        self.queue.retain(|r| match r.deadline {
            Some(d) if d < now => {
                expired.push(*r);
                false
            }
            _ => true,
        });
        expired
    }

    /// Drains whatever is still queued, in queue order (end of run with
    /// the whole fleet down — nothing left to serve them).
    pub fn drain_remaining(&mut self) -> Vec<Request> {
        std::mem::take(&mut self.queue)
    }

    /// The queued requests, in arrival order (the scheduler picks by
    /// dispatch key, not position).
    #[must_use]
    pub fn queued(&self) -> &[Request] {
        &self.queue
    }

    /// Removes and returns the requests at the given queue positions.
    /// Positions must be sorted ascending and in range.
    pub fn take(&mut self, positions: &[usize]) -> Vec<Request> {
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        let mut out = Vec::with_capacity(positions.len());
        for &p in positions.iter().rev() {
            out.push(self.queue.remove(p));
        }
        out.reverse();
        out
    }

    /// Current queue depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Configured bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Deepest the queue ever got (`<= capacity` unless brown-out
    /// overflow used [`Self::force_admit`]).
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Requests admitted so far.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests rejected so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;

    fn req(id: u64) -> Request {
        Request {
            id,
            class: 0,
            arrival: id,
            priority: Priority::Normal,
            deadline: None,
            client: None,
        }
    }

    #[test]
    fn rejects_beyond_capacity() {
        let mut a = AdmissionController::new(2);
        assert_eq!(a.offer(req(1)), Admission::Admitted);
        assert_eq!(a.offer(req(2)), Admission::Admitted);
        assert_eq!(a.offer(req(3)), Admission::Rejected);
        assert_eq!(a.depth(), 2);
        assert_eq!(a.admitted(), 2);
        assert_eq!(a.rejected(), 1);
        assert_eq!(a.max_depth(), 2);
    }

    #[test]
    fn take_removes_by_position() {
        let mut a = AdmissionController::new(8);
        for id in 1..=5 {
            a.offer(req(id));
        }
        let taken = a.take(&[0, 2, 4]);
        let ids: Vec<u64> = taken.iter().map(|r| r.id).collect();
        assert_eq!(ids, [1, 3, 5]);
        let left: Vec<u64> = a.queued().iter().map(|r| r.id).collect();
        assert_eq!(left, [2, 4]);
        assert_eq!(a.depth(), 2);
    }

    #[test]
    fn depth_bound_holds_under_churn() {
        let mut a = AdmissionController::new(3);
        for id in 0..100 {
            a.offer(req(id));
            if a.depth() == 3 {
                a.take(&[0]);
            }
            assert!(a.depth() <= a.capacity());
        }
        assert!(a.max_depth() <= 3);
        assert!(a.rejected() == 0);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_rejected() {
        let _ = AdmissionController::new(0);
    }

    #[test]
    fn force_admit_overflows_without_rejecting() {
        let mut a = AdmissionController::new(2);
        a.offer(req(1));
        a.offer(req(2));
        a.force_admit(req(3));
        assert_eq!(a.depth(), 3);
        assert_eq!(a.admitted(), 3);
        assert_eq!(a.rejected(), 0);
        assert_eq!(a.max_depth(), 3);
    }

    #[test]
    fn requeue_does_not_recount_admission() {
        let mut a = AdmissionController::new(4);
        a.offer(req(1));
        let r = a.remove_by_id(1).expect("queued");
        assert_eq!(a.depth(), 0);
        a.requeue(r);
        assert_eq!(a.depth(), 1);
        assert_eq!(a.admitted(), 1);
        assert_eq!(a.remove_by_id(99), None);
    }

    #[test]
    fn expire_before_sheds_past_deadlines_in_order() {
        let mut a = AdmissionController::new(8);
        for id in 1..=4 {
            let mut r = req(id);
            r.deadline = if id % 2 == 0 { Some(10 * id) } else { None };
            a.offer(r);
        }
        // Deadlines: req2 at 20, req4 at 40. At now=30 only req2 expires.
        let expired = a.expire_before(30);
        assert_eq!(expired.iter().map(|r| r.id).collect::<Vec<_>>(), [2]);
        assert_eq!(a.depth(), 3);
        let rest = a.drain_remaining();
        assert_eq!(rest.iter().map(|r| r.id).collect::<Vec<_>>(), [1, 3, 4]);
        assert_eq!(a.depth(), 0);
    }
}
