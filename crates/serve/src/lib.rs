//! # usystolic-serve — batched request serving on simulated array pools
//!
//! A discrete-event serving simulator for pools of uSystolic array
//! instances. Inference requests — a zoo network or a raw GEMM, an
//! arrival cycle, a priority and an optional deadline — flow through
//! three stages:
//!
//! * [`admission`] — a bounded queue with explicit rejection: overload
//!   produces back-pressure the report can see, never unbounded memory;
//! * [`scheduler`] — priority-tiered earliest-deadline-first dispatch
//!   that packs same-class batches onto free instances, amortising each
//!   class's weight preload across the batch;
//! * completion — per-request stage timelines folded into exact
//!   streaming histograms ([`histogram`]) for p50/p95/p99.
//!
//! Service times come from the workspace's own timing model
//! ([`workload`] wraps `ideal_cycles` / `layer_traffic`), including the
//! §V-H shared-DRAM contention of `MultiInstanceSystem` as concurrency
//! rises. Load is generated deterministically ([`loadgen`]): open-loop
//! Poisson-like, open-loop uniform, or closed-loop with think time, all
//! seeded through the workspace's shared SplitMix64.
//!
//! The engine ([`engine::serve`]) is **bit-for-bit deterministic for any
//! worker count**: the shared host-side work-stealing pool
//! ([`usystolic_pool`], re-exported as [`pool`]) only runs
//! pure phases (profiling before the event loop, statistics folding after
//! it); every admission, scheduling and timing decision happens in one
//! sequential event loop driven by the shared `usystolic_des` calendar.
//! `--workers` changes wall-clock time, never one number in the report.
//! Service times resolve at a configurable [`Fidelity`]: cycle-accurate
//! and packed are bit-identical, analytic swaps in the `analyze`
//! closed-form estimate for `O(1)` dispatch at fleet scale.
//!
//! Fleet resilience is scripted through [`faults`]: shard crashes with
//! epoch-invalidated completions, bounded retry with deterministic
//! exponential backoff and seeded jitter, queue-wait timeouts, deadline
//! shedding, shard slowdowns, and brown-out degradation under overload.
//! The engine asserts *request conservation* — every admitted request
//! completes, times out or fails; nothing is silently lost, even when
//! shards die mid-batch ([`ServeReport::lost`] is always zero).
//!
//! ```
//! use usystolic_core::{ComputingScheme, SystolicConfig};
//! use usystolic_gemm::GemmConfig;
//! use usystolic_serve::loadgen::{ArrivalProcess, LoadGenConfig};
//! use usystolic_serve::{serve, FleetFaultPlan, ServeConfig, Workload};
//! use usystolic_sim::MemoryHierarchy;
//!
//! let config = ServeConfig {
//!     array: SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
//!     memory: MemoryHierarchy::edge_with_sram(),
//!     instances: 2,
//!     queue_capacity: 16,
//!     max_batch: 4,
//!     workers: 2,
//!     duration_cycles: 200_000,
//!     load: LoadGenConfig {
//!         process: ArrivalProcess::OpenPoisson { mean_interarrival_cycles: 4000.0 },
//!         seed: 7,
//!         classes: 1, // overridden with the workload count
//!         high_priority_fraction: 0.1,
//!         deadline_cycles: Some(100_000),
//!     },
//!     faults: FleetFaultPlan::default(), // quiet: no fleet faults
//!     fidelity: usystolic_serve::Fidelity::CycleAccurate,
//! };
//! let gemm = GemmConfig::matmul(64, 64, 64).expect("valid");
//! let report = serve(&config, &[Workload::from_gemm("m64", gemm)]).expect("valid config");
//! assert_eq!(report.offered, report.admitted + report.rejected);
//! # let _ = report.latency.p99_cycles;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod engine;
pub mod faults;
pub mod histogram;
pub mod loadgen;
pub mod report;
pub mod request;
pub mod scheduler;
pub mod workload;

pub use admission::{Admission, AdmissionController};
pub use engine::{serve, EventKind};
pub use faults::{BrownoutPolicy, FleetFaultPlan, RetryPolicy, ShardFailure, ShardSlowdown};
pub use histogram::{CycleHistogram, LatencySummary};
pub use loadgen::{ArrivalProcess, LoadGen, LoadGenConfig};
pub use report::{ServeConfig, ServeError, ServeReport};
pub use request::{Disposition, Priority, Request, RequestRecord};
pub use scheduler::Scheduler;
pub use usystolic_des::Fidelity;
pub use usystolic_pool as pool;
pub use usystolic_pool::{run_indexed, PoolError};
pub use workload::{LayerProfile, Workload, WorkloadProfile};
