//! Exact streaming latency histograms.
//!
//! Latencies in this crate are integer cycle counts, so exact percentiles
//! do not need sampling or fixed buckets: a [`CycleHistogram`] keeps one
//! counter per distinct value in a `BTreeMap`. Observation is `O(log d)`
//! in the number of distinct values `d` (typically far below the request
//! count — many requests share identical service paths), merging is
//! commutative and associative (so parallel per-chunk histograms fold to
//! the same result in any order), and [`percentile`](CycleHistogram::percentile)
//! implements the nearest-rank definition: the `p`-th percentile of `n`
//! samples is the value at rank `⌈p/100 · n⌉` (1-based) in sorted order —
//! exactly what a sorted-vector reference computes.

use std::collections::BTreeMap;
use usystolic_obs::{JsonValue, ToJson};

/// An exact value→count histogram over integer cycle counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleHistogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
    sum: u128,
}

impl CycleHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        *self.counts.entry(v).or_insert(0) += 1;
        self.total += 1;
        self.sum += u128::from(v);
    }

    /// Folds another histogram into this one (commutative merge).
    pub fn merge(&mut self, other: &CycleHistogram) {
        for (&v, &c) in &other.counts {
            *self.counts.entry(v).or_insert(0) += c;
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean sample, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest sample, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Largest sample, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// The nearest-rank `p`-th percentile (`0 < p <= 100`): the value at
    /// 1-based rank `⌈p/100 · n⌉` in sorted order. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!(p > 0.0 && p <= 100.0, "percentile {p} out of (0, 100]");
        if self.total == 0 {
            return None;
        }
        let rank = (p / 100.0 * self.total as f64).ceil() as u64;
        let rank = rank.clamp(1, self.total);
        let mut seen = 0u64;
        for (&v, &c) in &self.counts {
            seen += c;
            if seen >= rank {
                return Some(v);
            }
        }
        self.max()
    }

    /// The p50/p95/p99 summary used throughout the serving reports.
    #[must_use]
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.total,
            mean_cycles: self.mean(),
            p50_cycles: self.percentile(50.0).unwrap_or(0),
            p95_cycles: self.percentile(95.0).unwrap_or(0),
            p99_cycles: self.percentile(99.0).unwrap_or(0),
            max_cycles: self.max().unwrap_or(0),
        }
    }
}

/// The percentile summary of one latency distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Mean in cycles.
    pub mean_cycles: f64,
    /// Median (nearest-rank p50) in cycles.
    pub p50_cycles: u64,
    /// Nearest-rank p95 in cycles.
    pub p95_cycles: u64,
    /// Nearest-rank p99 in cycles.
    pub p99_cycles: u64,
    /// Largest sample in cycles.
    pub max_cycles: u64,
}

impl LatencySummary {
    /// Converts a cycle count to milliseconds at the given clock.
    #[must_use]
    pub fn cycles_to_ms(cycles: f64, clock_hz: f64) -> f64 {
        cycles / clock_hz * 1.0e3
    }
}

impl ToJson for LatencySummary {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("count", self.count.to_json()),
            ("mean_cycles", self.mean_cycles.to_json()),
            ("p50_cycles", self.p50_cycles.to_json()),
            ("p95_cycles", self.p95_cycles.to_json()),
            ("p99_cycles", self.p99_cycles.to_json()),
            ("max_cycles", self.max_cycles.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sorted-vector nearest-rank reference the histogram must match.
    fn reference_percentile(samples: &mut [u64], p: f64) -> u64 {
        samples.sort_unstable();
        let rank = ((p / 100.0 * samples.len() as f64).ceil() as usize).max(1);
        samples[rank - 1]
    }

    #[test]
    fn matches_sorted_vector_reference() {
        let mut rng = usystolic_unary::rng::SplitMix64::new(11);
        let mut h = CycleHistogram::new();
        let mut samples = Vec::new();
        for _ in 0..5000 {
            let v = rng.below(10_000);
            h.observe(v);
            samples.push(v);
        }
        for p in [1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0] {
            assert_eq!(
                h.percentile(p),
                Some(reference_percentile(&mut samples.clone(), p)),
                "p{p}"
            );
        }
    }

    #[test]
    fn small_counts_follow_nearest_rank() {
        let mut h = CycleHistogram::new();
        for v in [10, 20, 30, 40] {
            h.observe(v);
        }
        // n = 4: p50 → rank 2, p75 → rank 3, p76 → rank 4.
        assert_eq!(h.percentile(50.0), Some(20));
        assert_eq!(h.percentile(75.0), Some(30));
        assert_eq!(h.percentile(76.0), Some(40));
        assert_eq!(h.percentile(100.0), Some(40));
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(40));
        assert_eq!(h.mean(), 25.0);
    }

    #[test]
    fn empty_histogram_is_none() {
        let h = CycleHistogram::new();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        let s = h.summary();
        assert_eq!(s.p99_cycles, 0);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut rng = usystolic_unary::rng::SplitMix64::new(3);
        let chunks: Vec<Vec<u64>> = (0..4)
            .map(|_| (0..100).map(|_| rng.below(50)).collect())
            .collect();
        let mut forward = CycleHistogram::new();
        let mut backward = CycleHistogram::new();
        for chunk in &chunks {
            let mut part = CycleHistogram::new();
            for &v in chunk {
                part.observe(v);
            }
            forward.merge(&part);
        }
        for chunk in chunks.iter().rev() {
            let mut part = CycleHistogram::new();
            for &v in chunk {
                part.observe(v);
            }
            backward.merge(&part);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.count(), 400);
    }

    #[test]
    #[should_panic(expected = "out of (0, 100]")]
    fn zero_percentile_rejected() {
        let mut h = CycleHistogram::new();
        h.observe(1);
        let _ = h.percentile(0.0);
    }

    #[test]
    fn summary_json_shape() {
        let mut h = CycleHistogram::new();
        for v in 1..=100 {
            h.observe(v);
        }
        let j = h.summary().to_json();
        assert_eq!(j.get("count").and_then(|v| v.as_u64()), Some(100));
        assert_eq!(j.get("p50_cycles").and_then(|v| v.as_u64()), Some(50));
        assert_eq!(j.get("p99_cycles").and_then(|v| v.as_u64()), Some(99));
    }
}
