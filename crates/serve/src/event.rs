//! The discrete-event core: a deterministic future-event list.
//!
//! Simulated time is an integer cycle counter (the same 400 MHz array
//! cycles as [`usystolic_sim::CLOCK_HZ`]). Events are totally ordered by
//! `(cycle, kind, seq)` where `seq` is a monotonically assigned insertion
//! number: completions sort before arrivals at the same cycle (a freed
//! instance can serve a same-cycle arrival), and the insertion number
//! breaks every remaining tie, so the pop order — and therefore the whole
//! simulation — is a pure function of the inputs.

use crate::request::Request;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A batch on the given instance (1-based) finishes.
    Completion {
        /// Instance index, 1-based.
        instance: usize,
        /// The instance's crash epoch at dispatch time. A completion
        /// whose epoch no longer matches the instance is stale — the
        /// shard crashed under the batch — and is ignored.
        epoch: u64,
    },
    /// A shard fail-stops (scripted by the fleet fault plan).
    ShardFail {
        /// Instance index, 1-based.
        instance: usize,
    },
    /// A shard degrades to a fraction of its nominal speed.
    ShardSlow {
        /// Instance index, 1-based.
        instance: usize,
        /// Service multiplier in percent (100 = nominal).
        factor_percent: u32,
    },
    /// A queued request's wait budget expires (no-op if it already
    /// dispatched).
    Timeout {
        /// Request id.
        id: u64,
    },
    /// A request lost to a shard crash re-enters the queue after
    /// backoff.
    Retry(Request),
    /// A request reaches the admission controller.
    Arrival(Request),
}

impl EventKind {
    /// Same-cycle tie order: completions free instances first, then
    /// fleet faults land, then timeouts expire, then retries re-enter,
    /// and fresh arrivals come last (a freed instance or queue slot can
    /// serve a same-cycle arrival; a batch finishing exactly when its
    /// shard dies still completes).
    fn order(&self) -> u8 {
        match self {
            EventKind::Completion { .. } => 0,
            EventKind::ShardFail { .. } => 1,
            EventKind::ShardSlow { .. } => 2,
            EventKind::Timeout { .. } => 3,
            EventKind::Retry(_) => 4,
            EventKind::Arrival(_) => 5,
        }
    }
}

/// One scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Cycle at which the event fires.
    pub at: u64,
    /// The payload.
    pub kind: EventKind,
}

/// Heap entry ordered as a max-heap on the *reversed* deterministic key,
/// so `BinaryHeap::pop` yields the earliest event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    at: u64,
    order: u8,
    seq: u64,
    event: Event,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.order, other.seq).cmp(&(self.at, self.order, self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-heap of future events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire at cycle `at`.
    pub fn push(&mut self, at: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            order: kind.order(),
            seq,
            event: Event { at, kind },
        });
    }

    /// Pops the next event in deterministic order.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|e| e.event)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;

    fn arrival(id: u64, at: u64) -> EventKind {
        EventKind::Arrival(Request {
            id,
            class: 0,
            arrival: at,
            priority: Priority::Normal,
            deadline: None,
            client: None,
        })
    }

    #[test]
    fn pops_in_cycle_order() {
        let mut q = EventQueue::new();
        q.push(30, arrival(1, 30));
        q.push(10, arrival(2, 10));
        q.push(20, arrival(3, 20));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.at).collect();
        assert_eq!(order, [10, 20, 30]);
        assert!(q.is_empty());
    }

    #[test]
    fn completion_beats_arrival_at_the_same_cycle() {
        let mut q = EventQueue::new();
        q.push(10, arrival(1, 10));
        q.push(
            10,
            EventKind::Completion {
                instance: 1,
                epoch: 0,
            },
        );
        let first = q.pop().expect("two events");
        assert!(matches!(first.kind, EventKind::Completion { .. }));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn same_cycle_kinds_follow_the_documented_order() {
        let mut q = EventQueue::new();
        q.push(10, arrival(1, 10));
        q.push(10, EventKind::Timeout { id: 1 });
        q.push(10, EventKind::ShardFail { instance: 1 });
        q.push(
            10,
            EventKind::Completion {
                instance: 1,
                epoch: 0,
            },
        );
        let kinds: Vec<u8> = std::iter::from_fn(|| q.pop())
            .map(|e| e.kind.order())
            .collect();
        assert_eq!(kinds, [0, 1, 3, 5]);
    }

    #[test]
    fn insertion_order_breaks_remaining_ties() {
        let mut q = EventQueue::new();
        q.push(5, arrival(7, 5));
        q.push(5, arrival(9, 5));
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Arrival(r) => r.id,
                _ => 0,
            })
            .collect();
        assert_eq!(ids, [7, 9]);
    }
}
