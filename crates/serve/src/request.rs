//! Requests and their lifecycle records.
//!
//! A [`Request`] is one inference demand: a workload class (an index into
//! the serving system's registered [`Workload`]s), an arrival cycle, a
//! priority and an optional absolute deadline. The serving engine turns
//! each request into a [`RequestRecord`] — either rejected at admission or
//! completed with its full per-stage timeline — from which every latency
//! metric is derived.
//!
//! [`Workload`]: crate::workload::Workload

/// Scheduling priority. Higher values pre-empt lower ones at dispatch
/// time (they never pre-empt an in-flight batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Best-effort traffic.
    Normal,
    /// Latency-sensitive traffic, dispatched ahead of normal requests.
    High,
}

impl Priority {
    /// Numeric rank used by the scheduler (higher = more urgent).
    #[must_use]
    pub fn rank(self) -> u8 {
        match self {
            Priority::Normal => 0,
            Priority::High => 1,
        }
    }

    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// One inference request flowing through the serving system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Unique, monotonically assigned id (also the deterministic
    /// tie-breaker everywhere ordering matters).
    pub id: u64,
    /// Index into the serving system's workload table.
    pub class: usize,
    /// Arrival cycle.
    pub arrival: u64,
    /// Scheduling priority.
    pub priority: Priority,
    /// Absolute deadline cycle (`arrival + relative deadline`), if any.
    pub deadline: Option<u64>,
    /// Closed-loop client that issued the request, if any (the client
    /// re-issues after completion plus think time).
    pub client: Option<usize>,
}

impl Request {
    /// The scheduler's dispatch key: high priority first, then earliest
    /// deadline, then earliest arrival, then id. Smaller sorts first.
    #[must_use]
    pub fn dispatch_key(&self) -> (u8, u64, u64, u64) {
        (
            u8::MAX - self.priority.rank(),
            self.deadline.unwrap_or(u64::MAX),
            self.arrival,
            self.id,
        )
    }
}

/// Why a request left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Served to completion.
    Completed,
    /// Turned away by the admission controller (bounded queue full).
    Rejected,
    /// Expired while queued: its wait budget ran out, or shedding
    /// dropped it past its deadline.
    TimedOut,
    /// Lost to shard failure with retries exhausted (or the whole fleet
    /// down at end of run).
    Failed,
}

impl Disposition {
    /// Short label for metrics and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Disposition::Completed => "completed",
            Disposition::Rejected => "rejected",
            Disposition::TimedOut => "timed_out",
            Disposition::Failed => "failed",
        }
    }
}

/// The full lifecycle record of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// The request as admitted (or rejected).
    pub request: Request,
    /// How the request left the system.
    pub disposition: Disposition,
    /// Cycle the request was packed onto an instance (0 unless
    /// completed).
    pub dispatch: u64,
    /// Cycle the batch carrying the request completed (0 unless
    /// completed).
    pub completion: u64,
    /// Instance that served it (0 unless completed; 1-based otherwise).
    pub instance: usize,
    /// Size of the batch it was served in (0 unless completed).
    pub batch_size: usize,
    /// Retry attempts consumed after shard crashes (0 when its shard
    /// never crashed under it).
    pub retries: u32,
    /// Whether it was served degraded under brown-out (raised early
    /// termination, reduced precision).
    pub degraded: bool,
}

impl RequestRecord {
    /// End-to-end latency in cycles (admission to completion); `None`
    /// unless completed.
    #[must_use]
    pub fn latency_cycles(&self) -> Option<u64> {
        match self.disposition {
            Disposition::Completed => Some(self.completion - self.request.arrival),
            _ => None,
        }
    }

    /// Cycles spent waiting in the admission queue; `None` unless
    /// completed.
    #[must_use]
    pub fn queue_wait_cycles(&self) -> Option<u64> {
        match self.disposition {
            Disposition::Completed => Some(self.dispatch - self.request.arrival),
            _ => None,
        }
    }

    /// Cycles spent in service (dispatch to completion); `None` unless
    /// completed.
    #[must_use]
    pub fn service_cycles(&self) -> Option<u64> {
        match self.disposition {
            Disposition::Completed => Some(self.completion - self.dispatch),
            _ => None,
        }
    }

    /// Whether the request completed after its deadline (requests with
    /// a deadline that never complete — rejected, timed out, failed —
    /// also count as missed).
    #[must_use]
    pub fn deadline_missed(&self) -> bool {
        match (self.request.deadline, self.disposition) {
            (None, _) => false,
            (Some(d), Disposition::Completed) => self.completion > d,
            (Some(_), _) => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64) -> Request {
        Request {
            id,
            class: 0,
            arrival: 100,
            priority: Priority::Normal,
            deadline: None,
            client: None,
        }
    }

    #[test]
    fn dispatch_key_orders_priority_then_deadline_then_arrival() {
        let normal = req(5);
        let mut high = req(9);
        high.priority = Priority::High;
        assert!(high.dispatch_key() < normal.dispatch_key());

        let mut tight = req(7);
        tight.deadline = Some(200);
        let mut loose = req(3);
        loose.deadline = Some(300);
        assert!(tight.dispatch_key() < loose.dispatch_key());
        // No deadline sorts after any deadline at equal priority.
        assert!(tight.dispatch_key() < normal.dispatch_key());

        // Equal priority and deadline: earlier arrival, then id.
        let mut early = req(8);
        early.arrival = 50;
        assert!(early.dispatch_key() < normal.dispatch_key());
        assert!(req(1).dispatch_key() < req(2).dispatch_key());
    }

    #[test]
    fn record_derives_stage_latencies() {
        let r = RequestRecord {
            request: req(1),
            disposition: Disposition::Completed,
            dispatch: 150,
            completion: 400,
            instance: 1,
            batch_size: 2,
            retries: 0,
            degraded: false,
        };
        assert_eq!(r.latency_cycles(), Some(300));
        assert_eq!(r.queue_wait_cycles(), Some(50));
        assert_eq!(r.service_cycles(), Some(250));
        assert!(!r.deadline_missed());
    }

    #[test]
    fn deadline_missed_semantics() {
        let mut r = RequestRecord {
            request: req(1),
            disposition: Disposition::Completed,
            dispatch: 150,
            completion: 400,
            instance: 1,
            batch_size: 1,
            retries: 0,
            degraded: false,
        };
        r.request.deadline = Some(399);
        assert!(r.deadline_missed());
        r.request.deadline = Some(400);
        assert!(!r.deadline_missed());

        let mut rejected = r;
        rejected.disposition = Disposition::Rejected;
        assert!(rejected.deadline_missed());
        rejected.request.deadline = None;
        assert!(!rejected.deadline_missed());
        assert_eq!(rejected.latency_cycles(), None);
        assert_eq!(rejected.queue_wait_cycles(), None);
        assert_eq!(rejected.service_cycles(), None);
    }

    #[test]
    fn terminal_fault_dispositions_carry_no_latency() {
        let mut r = RequestRecord {
            request: req(2),
            disposition: Disposition::TimedOut,
            dispatch: 0,
            completion: 0,
            instance: 0,
            batch_size: 0,
            retries: 1,
            degraded: false,
        };
        assert_eq!(r.latency_cycles(), None);
        assert_eq!(r.service_cycles(), None);
        assert!(!r.deadline_missed());
        r.request.deadline = Some(50);
        assert!(r.deadline_missed());
        r.disposition = Disposition::Failed;
        assert!(r.deadline_missed());
        assert_eq!(r.queue_wait_cycles(), None);
        assert_eq!(Disposition::TimedOut.label(), "timed_out");
        assert_eq!(Disposition::Failed.label(), "failed");
    }
}
