//! Workload classes and their pre-computed timing profiles.
//!
//! A [`Workload`] is what one request asks for: a named sequence of GEMM
//! layers (a network from `usystolic_models::zoo` or a single raw
//! [`GemmConfig`]). Before the event loop runs, every layer of every
//! workload is folded into a [`WorkloadProfile`] — the four numbers the
//! batched service-time model needs:
//!
//! * `compute_first_cycles` — stall-free pipeline cycles of one request
//!   (weight preloads, `M` input vectors per fold, systolic skew);
//! * `compute_marginal_cycles` — the *streaming-only* cycles an extra
//!   request adds when batched behind resident weights (`M · mac` per
//!   fold: batching re-streams inputs but re-uses every weight preload);
//! * `dram_fixed_bytes` — weight DRAM traffic, paid once per batch;
//! * `dram_per_request_bytes` — IFM + OFM DRAM traffic, paid per request.
//!
//! The service time of a batch of `b` requests dispatched while `n`
//! instances are busy follows the §V-H shared-DRAM model of
//! [`MultiInstanceSystem`]: compute is `first + (b−1)·marginal`, the
//! shared DRAM serves `n×` the batch's bytes in the same window, and the
//! batch takes the maximum of the two (perfectly overlapped double
//! buffering). Profile computation is pure per `(workload, layer)` pair,
//! which is exactly the unit the worker pool parallelises.
//!
//! [`MultiInstanceSystem`]: usystolic_sim::MultiInstanceSystem

use usystolic_analyze::ServiceEstimate;
use usystolic_core::{SystolicConfig, TileMapping};
use usystolic_gemm::GemmConfig;
use usystolic_models::zoo::Network;
use usystolic_sim::{ideal_cycles, layer_traffic, MemoryHierarchy};

/// One workload class: the layers a single request executes.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Class name (shown in reports and trace spans).
    pub name: String,
    /// GEMM layers in execution order.
    pub layers: Vec<GemmConfig>,
}

impl Workload {
    /// A single-layer workload from a raw GEMM configuration.
    #[must_use]
    pub fn from_gemm(name: &str, gemm: GemmConfig) -> Self {
        Self {
            name: name.to_owned(),
            layers: vec![gemm],
        }
    }

    /// A workload from a zoo network (keeps the network's name).
    #[must_use]
    pub fn from_network(network: &Network) -> Self {
        Self {
            name: network.name.clone(),
            layers: network.gemms(),
        }
    }
}

/// The per-layer slice of a profile (the worker pool's task unit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayerProfile {
    /// Stall-free cycles of the layer for one request.
    pub compute_first_cycles: u64,
    /// Extra streaming cycles per additional batched request.
    pub compute_marginal_cycles: u64,
    /// Weight DRAM bytes (batch-amortised).
    pub dram_fixed_bytes: u64,
    /// IFM + OFM DRAM bytes (per request).
    pub dram_per_request_bytes: u64,
}

impl LayerProfile {
    /// Profiles one layer under the given array and memory hierarchy.
    #[must_use]
    pub fn compute(gemm: &GemmConfig, config: &SystolicConfig, memory: &MemoryHierarchy) -> Self {
        let map = TileMapping::new(gemm, config.rows(), config.cols());
        let folds = (map.row_folds() * map.col_folds()) as u64;
        let traffic = layer_traffic(gemm, config, memory);
        Self {
            compute_first_cycles: ideal_cycles(gemm, config),
            compute_marginal_cycles: folds * map.m() as u64 * config.mac_cycles(),
            dram_fixed_bytes: traffic.dram.weight,
            dram_per_request_bytes: traffic.dram.ifm + traffic.dram.ofm,
        }
    }

    /// Element-wise sum (folding layers into a workload profile).
    #[must_use]
    pub fn accumulate(self, other: Self) -> Self {
        Self {
            compute_first_cycles: self.compute_first_cycles + other.compute_first_cycles,
            compute_marginal_cycles: self.compute_marginal_cycles + other.compute_marginal_cycles,
            dram_fixed_bytes: self.dram_fixed_bytes + other.dram_fixed_bytes,
            dram_per_request_bytes: self.dram_per_request_bytes + other.dram_per_request_bytes,
        }
    }
}

/// The §V-H batched service-time formula over explicit totals.
///
/// This is the one place the formula lives: the packed fidelity tier
/// feeds it the profile's pre-computed totals, the cycle-accurate tier
/// feeds it totals re-derived from the raw layers at dispatch time, and
/// both produce the same bits because integer layer sums commute.
/// `compute_permille == 1000` is nominal service; anything lower is the
/// brown-out degradation of
/// [`WorkloadProfile::service_cycles_scaled`].
///
/// # Panics
///
/// Panics if `batch`, `concurrency` or `compute_permille` is zero, or
/// `compute_permille` exceeds 1000.
#[must_use]
pub fn batched_service_cycles(
    totals: &LayerProfile,
    dram_bytes_per_cycle: f64,
    batch: usize,
    concurrency: usize,
    compute_permille: u32,
) -> u64 {
    assert!(batch > 0, "a batch carries at least one request");
    assert!(concurrency > 0, "the dispatching instance is busy");
    assert!(
        (1..=1000).contains(&compute_permille),
        "degradation is a fraction of nominal service"
    );
    let compute = totals.compute_first_cycles + (batch as u64 - 1) * totals.compute_marginal_cycles;
    let bytes = totals.dram_fixed_bytes + batch as u64 * totals.dram_per_request_bytes;
    let compute = compute * u64::from(compute_permille) / 1000;
    let bytes = bytes * u64::from(compute_permille) / 1000;
    // Shared DRAM: n busy instances demand ~n× the bytes in the same
    // window, so this batch sees 1/n of the sustained bandwidth.
    let dram = (concurrency as f64 * bytes as f64 / dram_bytes_per_cycle).ceil() as u64;
    compute.max(dram)
}

/// The pre-computed timing profile of one workload class.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Class name.
    pub name: String,
    /// Number of GEMM layers.
    pub layer_count: usize,
    /// Sum of the per-layer profiles.
    pub totals: LayerProfile,
    /// Sustained DRAM bandwidth in bytes per cycle of the shared DRAM.
    pub dram_bytes_per_cycle: f64,
}

impl WorkloadProfile {
    /// Assembles a profile from its per-layer slices.
    #[must_use]
    pub fn from_layers(name: &str, layers: &[LayerProfile], memory: &MemoryHierarchy) -> Self {
        Self {
            name: name.to_owned(),
            layer_count: layers.len(),
            totals: layers
                .iter()
                .fold(LayerProfile::default(), |a, &l| a.accumulate(l)),
            dram_bytes_per_cycle: memory.dram.sustained_bytes_per_cycle(),
        }
    }

    /// Service cycles of a batch of `batch` requests of this class,
    /// dispatched while `concurrency` instances (including this one) are
    /// busy and contending for the shared DRAM.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `concurrency` is zero.
    #[must_use]
    pub fn service_cycles(&self, batch: usize, concurrency: usize) -> u64 {
        batched_service_cycles(
            &self.totals,
            self.dram_bytes_per_cycle,
            batch,
            concurrency,
            1000,
        )
    }

    /// Service cycles of a degraded (brown-out) batch: compute and DRAM
    /// traffic both scale to `compute_permille / 1000` of nominal — the
    /// serving analogue of raising early termination, which shortens the
    /// unary streams and therefore cuts MAC cycles *and* crawled bytes
    /// together. `compute_permille == 1000` reproduces
    /// [`Self::service_cycles`] exactly (same integer arithmetic).
    ///
    /// # Panics
    ///
    /// Panics if `batch`, `concurrency` or `compute_permille` is zero,
    /// or `compute_permille` exceeds 1000.
    #[must_use]
    pub fn service_cycles_scaled(
        &self,
        batch: usize,
        concurrency: usize,
        compute_permille: u32,
    ) -> u64 {
        batched_service_cycles(
            &self.totals,
            self.dram_bytes_per_cycle,
            batch,
            concurrency,
            compute_permille,
        )
    }

    /// Whether a batch of `batch` at `concurrency` is DRAM-limited.
    #[must_use]
    pub fn dram_limited(&self, batch: usize, concurrency: usize) -> bool {
        let t = &self.totals;
        let compute = t.compute_first_cycles + (batch as u64 - 1) * t.compute_marginal_cycles;
        self.service_cycles(batch, concurrency) > compute
    }

    /// The [`ServiceEstimate`] at the operating point `(max_batch,
    /// instances)` — what `usystolic_analyze::check_serving` consumes
    /// for the pre-flight `USY07x` feasibility checks.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `instances` is zero (like
    /// [`Self::service_cycles`]; the feasibility checker skips
    /// degenerate knobs before asking for an estimate).
    #[must_use]
    pub fn service_estimate(&self, max_batch: usize, instances: usize) -> ServiceEstimate {
        ServiceEstimate {
            name: self.name.clone(),
            batch_cycles: self.service_cycles(max_batch, instances),
            single_cycles: self.service_cycles(1, 1),
            dram_limited: self.dram_limited(max_batch, instances),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usystolic_core::ComputingScheme;

    fn profile(scheme: ComputingScheme, mul_cycles: Option<u64>) -> WorkloadProfile {
        let mut config = SystolicConfig::edge(scheme, 8);
        if let Some(c) = mul_cycles {
            config = config.with_mul_cycles(c).expect("valid");
        }
        let memory = MemoryHierarchy::no_sram();
        let gemm = GemmConfig::conv(31, 31, 96, 5, 5, 1, 256).expect("valid layer");
        let layers = vec![LayerProfile::compute(&gemm, &config, &memory)];
        WorkloadProfile::from_layers("conv2", &layers, &memory)
    }

    #[test]
    fn single_request_matches_layer_timing_when_compute_bound() {
        // A crawling unary batch of one at concurrency one is exactly the
        // layer_timing runtime (compute-bound, stall-free).
        let config = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
            .with_mul_cycles(128)
            .expect("valid");
        let memory = MemoryHierarchy::no_sram();
        let gemm = GemmConfig::conv(31, 31, 96, 5, 5, 1, 256).expect("valid layer");
        let p = profile(ComputingScheme::UnaryRate, Some(128));
        let t = usystolic_sim::layer_timing(&gemm, &config, &memory);
        assert_eq!(p.service_cycles(1, 1), t.runtime_cycles);
        assert!(!p.dram_limited(1, 1));
    }

    #[test]
    fn batching_amortises_the_first_request() {
        let p = profile(ComputingScheme::UnaryRate, Some(128));
        let one = p.service_cycles(1, 1);
        let four = p.service_cycles(4, 1);
        // Four batched requests cost less than four sequential ones...
        assert!(four < 4 * one, "{four} vs 4x{one}");
        // ...but more than one (marginal cycles are non-zero).
        assert!(four > one);
        // Marginal cost is linear in the batch tail.
        let two = p.service_cycles(2, 1);
        assert_eq!(four - two, 2 * (two - one));
    }

    #[test]
    fn concurrency_inflates_dram_limited_batches_only() {
        // Binary parallel without SRAM is DRAM-bound: more concurrency
        // stretches the service time. Crawling unary has headroom.
        let bp = profile(ComputingScheme::BinaryParallel, None);
        assert!(bp.dram_limited(1, 2));
        assert!(bp.service_cycles(1, 8) > bp.service_cycles(1, 1));

        let ur = profile(ComputingScheme::UnaryRate, Some(128));
        assert_eq!(ur.service_cycles(1, 4), ur.service_cycles(1, 1));
    }

    #[test]
    fn multi_layer_profiles_sum() {
        let config = SystolicConfig::edge(ComputingScheme::UnaryRate, 8);
        let memory = MemoryHierarchy::no_sram();
        let net = usystolic_models::zoo::mnist_cnn4();
        let layers: Vec<LayerProfile> = net
            .gemms()
            .iter()
            .map(|g| LayerProfile::compute(g, &config, &memory))
            .collect();
        let p = WorkloadProfile::from_layers(&net.name, &layers, &memory);
        assert_eq!(p.layer_count, 4);
        let sum: u64 = net.gemms().iter().map(|g| ideal_cycles(g, &config)).sum();
        assert_eq!(p.totals.compute_first_cycles, sum);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_batch_rejected() {
        let _ = profile(ComputingScheme::UnaryRate, Some(128)).service_cycles(0, 1);
    }

    #[test]
    fn full_permille_reproduces_nominal_service_exactly() {
        for scheme in [ComputingScheme::UnaryRate, ComputingScheme::BinaryParallel] {
            let p = profile(scheme, None);
            for (b, c) in [(1, 1), (4, 2), (8, 8)] {
                assert_eq!(p.service_cycles_scaled(b, c, 1000), p.service_cycles(b, c));
            }
        }
    }

    #[test]
    fn degraded_service_is_monotone_in_permille() {
        let p = profile(ComputingScheme::UnaryRate, Some(128));
        let full = p.service_cycles_scaled(4, 2, 1000);
        let half = p.service_cycles_scaled(4, 2, 500);
        let quarter = p.service_cycles_scaled(4, 2, 250);
        assert!(half < full);
        assert!(quarter < half);
        // Degradation scales both compute and traffic, so the halved
        // service is about half of nominal.
        assert!(half >= full / 2);
        assert!(half <= full / 2 + 1);
    }

    // Real-profile integration of the `USY07x` pre-flight checks: the
    // decision logic is unit-tested over synthetic estimates in
    // `usystolic_analyze::serving`; these pin the estimate produced by
    // the §V-H shared-DRAM model to the checker's verdicts.
    mod feasibility {
        use super::*;
        use usystolic_analyze::{check_serving, ServingSpec};

        fn spec(mean_interarrival_cycles: f64) -> ServingSpec {
            ServingSpec {
                mean_interarrival_cycles,
                instances: 4,
                max_batch: 8,
                queue_capacity: 16,
                deadline_cycles: None,
            }
        }

        #[test]
        fn estimate_matches_the_service_model() {
            let p = profile(ComputingScheme::UnaryRate, Some(128));
            let e = p.service_estimate(8, 4);
            assert_eq!(e.name, p.name);
            assert_eq!(e.batch_cycles, p.service_cycles(8, 4));
            assert_eq!(e.single_cycles, p.service_cycles(1, 1));
            assert_eq!(e.dram_limited, p.dram_limited(8, 4));
        }

        #[test]
        fn overload_is_detected_before_any_event() {
            // One arrival per cycle swamps any real profile.
            let p = profile(ComputingScheme::UnaryRate, Some(128));
            let r = check_serving(&p.service_estimate(8, 4), &spec(1.0));
            assert!(r.has("USY070"), "{r}");
            assert!(!r.is_legal());
        }

        #[test]
        fn light_load_passes_clean() {
            let p = profile(ComputingScheme::UnaryRate, Some(128));
            let batch = p.service_cycles(8, 4);
            // Ten batch-times between arrivals: utilisation ~0.0125.
            let r = check_serving(&p.service_estimate(8, 4), &spec(batch as f64 * 10.0));
            assert!(r.is_legal(), "{r}");
            assert!(r.diagnostics.is_empty(), "{r}");
        }

        #[test]
        fn impossible_deadline_is_an_error() {
            let p = profile(ComputingScheme::UnaryRate, Some(128));
            let min = p.service_cycles(1, 1);
            let mut s = spec(min as f64 * 100.0);
            s.deadline_cycles = Some(min - 1);
            let r = check_serving(&p.service_estimate(8, 4), &s);
            assert!(r.has("USY072"), "{r}");
            s.deadline_cycles = Some(min);
            assert!(!check_serving(&p.service_estimate(8, 4), &s).has("USY072"));
        }

        #[test]
        fn dram_bound_profile_warns_on_instances() {
            // Binary parallel without SRAM is DRAM-limited (Section V-B).
            let bp = profile(ComputingScheme::BinaryParallel, None);
            let batch = bp.service_cycles(8, 4);
            let r = check_serving(&bp.service_estimate(8, 4), &spec(batch as f64 * 10.0));
            assert!(r.has("USY073"), "{r}");
            assert!(r.is_legal());
            // Crawling unary has bandwidth headroom: no warning.
            let ur = profile(ComputingScheme::UnaryRate, Some(128));
            let batch = ur.service_cycles(8, 4);
            let r = check_serving(&ur.service_estimate(8, 4), &spec(batch as f64 * 10.0));
            assert!(!r.has("USY073"), "{r}");
        }
    }
}
