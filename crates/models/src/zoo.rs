//! The CNN workloads of the paper's accuracy and performance studies
//! (Section IV-C1): a small 4-layer MNIST CNN (1.2 M parameters), the
//! medium ResNet18 (11.7 M) and the large AlexNet (61.1 M).
//!
//! Only the GEMM layers matter to uSystolic (pooling/activation run in the
//! binary domain); each network is a named list of [`GemmConfig`]s whose
//! shapes follow the original publications.

use usystolic_gemm::GemmConfig;

/// One GEMM layer of a network, with the paper's layer naming
/// (Conv1..Conv5, FC6..FC8 for AlexNet).
#[derive(Debug, Clone, PartialEq)]
pub struct NamedLayer {
    /// Layer name as the paper's figures label it.
    pub name: String,
    /// The layer's GEMM configuration.
    pub gemm: GemmConfig,
}

impl NamedLayer {
    fn new(name: &str, gemm: GemmConfig) -> Self {
        Self {
            name: name.to_owned(),
            gemm,
        }
    }
}

/// A network: a named sequence of GEMM layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    /// Network name.
    pub name: String,
    /// The GEMM layers in execution order.
    pub layers: Vec<NamedLayer>,
}

impl Network {
    /// Total weight parameter count across all GEMM layers.
    #[must_use]
    pub fn parameters(&self) -> u64 {
        self.layers.iter().map(|l| l.gemm.weight_elems()).sum()
    }

    /// Total MAC count of one inference.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.layers.iter().map(|l| l.gemm.macs()).sum()
    }

    /// The raw GEMM configurations, for bulk simulation.
    #[must_use]
    pub fn gemms(&self) -> Vec<GemmConfig> {
        self.layers.iter().map(|l| l.gemm).collect()
    }
}

fn conv(ih: usize, iw: usize, ic: usize, wh: usize, ww: usize, s: usize, oc: usize) -> GemmConfig {
    // Compile-time-constant zoo shapes, exercised by test: lint: allow(panic)
    GemmConfig::conv(ih, iw, ic, wh, ww, s, oc).expect("zoo layer shapes are valid")
}

fn fc(k: usize, n: usize) -> GemmConfig {
    // Compile-time-constant zoo shapes, exercised by test: lint: allow(panic)
    GemmConfig::matmul(1, k, n).expect("zoo layer shapes are valid")
}

/// AlexNet for ImageNet: 5 conv + 3 FC GEMM layers, 61.1 M parameters
/// (Krizhevsky et al. \[33\]). Spatial sizes include the original paddings
/// as enlarged inputs so the output shapes match the published network.
#[must_use]
pub fn alexnet() -> Network {
    Network {
        name: "AlexNet".into(),
        layers: vec![
            NamedLayer::new("Conv1", conv(227, 227, 3, 11, 11, 4, 96)),
            // 27×27 after pool, pad 2 → 31.
            NamedLayer::new("Conv2", conv(31, 31, 96, 5, 5, 1, 256)),
            // 13×13 after pool, pad 1 → 15.
            NamedLayer::new("Conv3", conv(15, 15, 256, 3, 3, 1, 384)),
            NamedLayer::new("Conv4", conv(15, 15, 384, 3, 3, 1, 384)),
            NamedLayer::new("Conv5", conv(15, 15, 384, 3, 3, 1, 256)),
            NamedLayer::new("FC6", fc(9216, 4096)),
            NamedLayer::new("FC7", fc(4096, 4096)),
            NamedLayer::new("FC8", fc(4096, 1000)),
        ],
    }
}

/// The paper's small 4-layer CNN for MNIST (1.2 M parameters): two conv
/// layers and two FC layers.
#[must_use]
pub fn mnist_cnn4() -> Network {
    Network {
        name: "MNIST-CNN4".into(),
        layers: vec![
            NamedLayer::new("Conv1", conv(28, 28, 1, 5, 5, 1, 32)),
            // 12×12 after pool.
            NamedLayer::new("Conv2", conv(12, 12, 32, 5, 5, 1, 64)),
            // 4×4×64 = 1024 after pool.
            NamedLayer::new("FC3", fc(1024, 1024)),
            NamedLayer::new("FC4", fc(1024, 10)),
        ],
    }
}

/// ResNet18 for CIFAR10-sized inputs scaled to the ImageNet stem
/// (He et al. \[22\]): 11.7 M parameters over 21 GEMM layers (20 convs +
/// final FC; projection shortcuts included).
#[must_use]
pub fn resnet18() -> Network {
    let mut layers = vec![NamedLayer::new("Conv1", conv(229, 229, 3, 7, 7, 2, 64))];
    // Four stages of two basic blocks each; spatial sizes after the
    // stride-2 stem + pool: 56 → 28 → 14 → 7 (pad-1 3×3 convs appear as
    // +2 enlarged inputs).
    let stages: [(usize, usize, usize); 4] =
        [(56, 64, 64), (56, 64, 128), (28, 128, 256), (14, 256, 512)];
    for (stage_idx, (in_size, in_ch, out_ch)) in stages.into_iter().enumerate() {
        let stride = if stage_idx == 0 { 1 } else { 2 };
        let out_size = in_size / stride;
        let base = format!("Conv{}", stage_idx + 2);
        // Block 1 (possibly strided, with projection shortcut).
        layers.push(NamedLayer::new(
            &format!("{base}a_1"),
            conv(in_size + 2, in_size + 2, in_ch, 3, 3, stride, out_ch),
        ));
        layers.push(NamedLayer::new(
            &format!("{base}a_2"),
            conv(out_size + 2, out_size + 2, out_ch, 3, 3, 1, out_ch),
        ));
        if stride != 1 || in_ch != out_ch {
            layers.push(NamedLayer::new(
                &format!("{base}a_proj"),
                conv(in_size, in_size, in_ch, 1, 1, stride, out_ch),
            ));
        }
        // Block 2.
        layers.push(NamedLayer::new(
            &format!("{base}b_1"),
            conv(out_size + 2, out_size + 2, out_ch, 3, 3, 1, out_ch),
        ));
        layers.push(NamedLayer::new(
            &format!("{base}b_2"),
            conv(out_size + 2, out_size + 2, out_ch, 3, 3, 1, out_ch),
        ));
    }
    layers.push(NamedLayer::new("FC", fc(512, 1000)));
    Network {
        name: "ResNet18".into(),
        layers,
    }
}

/// VGG16 (Simonyan & Zisserman \[59\]): 13 convs + 3 FC GEMM layers,
/// ~138 M parameters — the heaviest classical CNN, useful for stressing
/// the memory hierarchy.
#[must_use]
pub fn vgg16() -> Network {
    // (spatial size, in channels, out channels) for each conv; pad-1 3x3
    // convs appear as +2 enlarged inputs.
    let convs: [(usize, usize, usize); 13] = [
        (224, 3, 64),
        (224, 64, 64),
        (112, 64, 128),
        (112, 128, 128),
        (56, 128, 256),
        (56, 256, 256),
        (56, 256, 256),
        (28, 256, 512),
        (28, 512, 512),
        (28, 512, 512),
        (14, 512, 512),
        (14, 512, 512),
        (14, 512, 512),
    ];
    let mut layers: Vec<NamedLayer> = convs
        .iter()
        .enumerate()
        .map(|(i, &(sz, ic, oc))| {
            NamedLayer::new(
                &format!("Conv{}", i + 1),
                conv(sz + 2, sz + 2, ic, 3, 3, 1, oc),
            )
        })
        .collect();
    layers.push(NamedLayer::new("FC14", fc(25088, 4096)));
    layers.push(NamedLayer::new("FC15", fc(4096, 4096)));
    layers.push(NamedLayer::new("FC16", fc(4096, 1000)));
    Network {
        name: "VGG16".into(),
        layers,
    }
}

impl usystolic_obs::ToJson for NamedLayer {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("name", self.name.as_str().to_json()),
            ("gemm", self.gemm.to_json()),
        ])
    }
}

impl usystolic_obs::ToJson for Network {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("name", self.name.as_str().to_json()),
            ("layers", self.layers.to_json()),
            ("parameters", self.parameters().to_json()),
            ("macs", self.macs().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_has_8_gemm_layers() {
        let net = alexnet();
        assert_eq!(net.layers.len(), 8);
        assert_eq!(net.layers[0].name, "Conv1");
        assert_eq!(net.layers[7].name, "FC8");
    }

    #[test]
    fn alexnet_parameter_count_matches_paper() {
        // Paper: 61.1 M parameters (weights; biases excluded here).
        let p = alexnet().parameters();
        assert!(
            (60_000_000..62_500_000).contains(&p),
            "AlexNet parameters {p} out of band"
        );
    }

    #[test]
    fn alexnet_conv_output_shapes() {
        let net = alexnet();
        assert_eq!(net.layers[0].gemm.output_height(), 55); // Conv1
        assert_eq!(net.layers[1].gemm.output_height(), 27); // Conv2
        assert_eq!(net.layers[2].gemm.output_height(), 13); // Conv3
                                                            // FC6 consumes 6×6×256 = 9216.
        assert_eq!(net.layers[5].gemm.reduction_len(), 9216);
    }

    #[test]
    fn mnist_cnn4_parameter_count_matches_paper() {
        // Paper: 1.2 M parameters.
        let p = mnist_cnn4().parameters();
        assert!(
            (1_100_000..1_300_000).contains(&p),
            "MNIST CNN parameters {p} out of band"
        );
        assert_eq!(mnist_cnn4().layers.len(), 4);
    }

    #[test]
    fn resnet18_parameter_count_matches_paper() {
        // Paper: 11.7 M parameters.
        let p = resnet18().parameters();
        assert!(
            (11_000_000..12_500_000).contains(&p),
            "ResNet18 parameters {p} out of band"
        );
    }

    #[test]
    fn resnet18_layer_structure() {
        let net = resnet18();
        // Stem + 4 stages × (4 convs + up to 1 projection) + FC.
        assert_eq!(net.layers.len(), 1 + 4 + 5 + 5 + 5 + 1);
        assert!(net.layers.last().unwrap().name == "FC");
    }

    #[test]
    fn macs_are_positive_and_conv_heavy() {
        let net = alexnet();
        let conv_macs: u64 = net.layers[..5].iter().map(|l| l.gemm.macs()).sum();
        let fc_macs: u64 = net.layers[5..].iter().map(|l| l.gemm.macs()).sum();
        assert!(
            conv_macs > 10 * fc_macs,
            "AlexNet compute is conv-dominated"
        );
        assert_eq!(net.macs(), conv_macs + fc_macs);
    }

    #[test]
    fn gemms_returns_all_layers() {
        assert_eq!(alexnet().gemms().len(), 8);
    }

    #[test]
    fn vgg16_parameter_count_matches_publication() {
        // ~138 M weights in the reference network.
        let net = vgg16();
        assert_eq!(net.layers.len(), 16);
        let p = net.parameters();
        assert!(
            (135_000_000..141_000_000).contains(&p),
            "VGG16 parameters {p} out of band"
        );
        // FC14 consumes 7x7x512 = 25088 features.
        assert_eq!(net.layers[13].gemm.reduction_len(), 25088);
    }

    #[test]
    fn vgg16_conv_outputs_preserve_spatial_size() {
        // Pad-1 3x3 convs keep the nominal spatial sizes.
        let net = vgg16();
        assert_eq!(net.layers[0].gemm.output_height(), 224);
        assert_eq!(net.layers[12].gemm.output_height(), 14);
    }
}
