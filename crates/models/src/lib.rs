//! DNN workloads and accuracy experiments for the uSystolic evaluation.
//!
//! * [`zoo`] — the paper's CNNs as GEMM layer tables: AlexNet (61 M
//!   parameters), ResNet18 (11.7 M) and the 4-layer MNIST CNN (1.2 M).
//! * [`mlperf`] — an MLPerf-like suite of eight models totalling exactly
//!   1094 GEMM layers (Section IV-C1), for the generalizability study of
//!   Fig. 14c/d.
//! * [`dataset`] — a procedurally generated 10-class glyph dataset (the
//!   self-contained stand-in for MNIST/CIFAR10/ImageNet; see DESIGN.md).
//! * [`mlp`] — a pure-Rust MLP ([`TinyMlp`]) exercising the pure-matmul
//!   path end to end.
//! * [`trainer`] — a pure-Rust CNN ([`TinyCnn`]) trained with SGD whose
//!   inference can be re-executed under every computing scheme and
//!   fixed-point format, reproducing the Fig. 9 accuracy experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod dataset;
pub mod mlp;
pub mod mlperf;
pub mod trainer;
pub mod zoo;

pub use calibration::{calibrate, LayerRanges, NetworkCalibration, ValueInterval};
pub use dataset::{ConfusionMatrix, Dataset, Sample};
pub use mlp::TinyMlp;
pub use mlperf::{mlperf_gemms, mlperf_suite};
pub use trainer::TinyCnn;
pub use zoo::{alexnet, mnist_cnn4, resnet18, vgg16, NamedLayer, Network};
