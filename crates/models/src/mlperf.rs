//! An MLPerf-like GEMM suite (Section IV-C1).
//!
//! The paper evaluates generalizability on the MLPerf inference benchmark:
//! "AlphaGoZero for Go match, AlexNet, GoogleNet and Resnet50 for image
//! classification, neural collaborative filtering for recommendation,
//! sentimental_seqCNN and sentimental_seqLSTM for text sentiment analysis,
//! and transformer for natural language processing, in total containing
//! 1094 GEMM layers with varying configurations."
//!
//! The exact per-model layer tables are not published; this module
//! reconstructs a suite with the same *model mix* and the same *total of
//! 1094 GEMM layers*, using each architecture's published shapes (with
//! recurrent models unrolled over time steps, which is what inflates the
//! layer count). What Fig. 14c/d needs from the suite is the distribution
//! of GEMM shapes — in particular the many small/skinny GEMMs that drag
//! the average MAC utilisation down versus AlexNet.

use crate::zoo::{alexnet, NamedLayer, Network};
use usystolic_gemm::GemmConfig;

fn conv(ih: usize, iw: usize, ic: usize, wh: usize, ww: usize, s: usize, oc: usize) -> GemmConfig {
    // Compile-time-constant suite shapes, exercised by test: lint: allow(panic)
    GemmConfig::conv(ih, iw, ic, wh, ww, s, oc).expect("suite shapes are valid")
}

fn mm(m: usize, k: usize, n: usize) -> GemmConfig {
    // Compile-time-constant suite shapes, exercised by test: lint: allow(panic)
    GemmConfig::matmul(m, k, n).expect("suite shapes are valid")
}

fn layers(name: &str, gemms: Vec<GemmConfig>) -> Network {
    Network {
        name: name.into(),
        layers: gemms
            .into_iter()
            .enumerate()
            .map(|(i, g)| NamedLayer {
                name: format!("L{i}"),
                gemm: g,
            })
            .collect(),
    }
}

/// AlphaGoZero: a 19×19 board, 20 residual blocks of 3×3 convs with 256
/// filters, plus policy and value heads — 43 GEMM layers.
#[must_use]
pub fn alphagozero() -> Network {
    let mut g = vec![conv(21, 21, 17, 3, 3, 1, 256)];
    for _ in 0..20 {
        g.push(conv(21, 21, 256, 3, 3, 1, 256));
        g.push(conv(21, 21, 256, 3, 3, 1, 256));
    }
    g.push(conv(19, 19, 256, 1, 1, 1, 2)); // policy head
    g.push(conv(19, 19, 256, 1, 1, 1, 1)); // value head
    layers("AlphaGoZero", g)
}

/// GoogleNet (Inception v1): stem convs plus 9 inception modules of six
/// GEMMs each, and the classifier — 58 GEMM layers.
#[must_use]
pub fn googlenet() -> Network {
    let mut g = vec![
        conv(229, 229, 3, 7, 7, 2, 64),
        conv(56, 56, 64, 1, 1, 1, 64),
        conv(58, 58, 64, 3, 3, 1, 192),
    ];
    // (spatial, in_ch, branch widths) per module, following Szegedy et al.
    let modules: [(usize, usize, [usize; 6]); 9] = [
        (28, 192, [64, 96, 128, 16, 32, 32]),
        (28, 256, [128, 128, 192, 32, 96, 64]),
        (14, 480, [192, 96, 208, 16, 48, 64]),
        (14, 512, [160, 112, 224, 24, 64, 64]),
        (14, 512, [128, 128, 256, 24, 64, 64]),
        (14, 512, [112, 144, 288, 32, 64, 64]),
        (14, 528, [256, 160, 320, 32, 128, 128]),
        (7, 832, [256, 160, 320, 32, 128, 128]),
        (7, 832, [384, 192, 384, 48, 128, 128]),
    ];
    for (s, ic, b) in modules {
        g.push(conv(s, s, ic, 1, 1, 1, b[0])); // 1x1 branch
        g.push(conv(s, s, ic, 1, 1, 1, b[1])); // 3x3 reduce
        g.push(conv(s + 2, s + 2, b[1], 3, 3, 1, b[2])); // 3x3
        g.push(conv(s, s, ic, 1, 1, 1, b[3])); // 5x5 reduce
        g.push(conv(s + 4, s + 4, b[3], 5, 5, 1, b[4])); // 5x5
        g.push(conv(s, s, ic, 1, 1, 1, b[5])); // pool proj
    }
    g.push(mm(1, 1024, 1000));
    layers("GoogleNet", g)
}

/// ResNet50: the bottleneck-block ImageNet network — 54 GEMM layers
/// (49 convs + 4 projections + classifier).
#[must_use]
pub fn resnet50() -> Network {
    let mut g = vec![conv(229, 229, 3, 7, 7, 2, 64)];
    // (spatial in, blocks, mid channels) per stage; each bottleneck is
    // 1x1 → 3x3 → 1x1, with one projection per stage.
    let stages: [(usize, usize, usize, usize); 4] = [
        (56, 3, 64, 64),
        (56, 4, 128, 256),
        (28, 6, 256, 512),
        (14, 3, 512, 1024),
    ];
    for (stage_idx, (in_size, blocks, mid, in_ch)) in stages.into_iter().enumerate() {
        let stride = if stage_idx == 0 { 1 } else { 2 };
        let out_size = in_size / stride;
        let out_ch = mid * 4;
        for b in 0..blocks {
            let (ic, s, sz) = if b == 0 {
                (in_ch, stride, in_size)
            } else {
                (out_ch, 1, out_size)
            };
            g.push(conv(sz, sz, ic, 1, 1, s, mid));
            g.push(conv(out_size + 2, out_size + 2, mid, 3, 3, 1, mid));
            g.push(conv(out_size, out_size, mid, 1, 1, 1, out_ch));
            if b == 0 {
                g.push(conv(sz, sz, ic, 1, 1, s, out_ch)); // projection
            }
        }
    }
    g.push(mm(1, 2048, 1000));
    layers("ResNet50", g)
}

/// Neural collaborative filtering: embedding-fed MLP towers — 8 matmul
/// layers.
#[must_use]
pub fn ncf() -> Network {
    layers(
        "NCF",
        vec![
            mm(256, 256, 256),
            mm(256, 256, 128),
            mm(256, 128, 64),
            mm(256, 64, 32),
            mm(256, 32, 16),
            mm(256, 16, 8),
            mm(256, 8, 4),
            mm(256, 4, 1),
        ],
    )
}

/// Sentiment seqCNN: 1-D convolutions over token embeddings plus a
/// classifier — 10 GEMM layers.
#[must_use]
pub fn sentimental_seqcnn() -> Network {
    let mut g = Vec::new();
    for width in [3, 4, 5] {
        g.push(conv(64, 1, 128, width, 1, 1, 100)); // three kernel widths
        g.push(conv(62, 1, 100, 3, 1, 1, 100));
        g.push(conv(60, 1, 100, 3, 1, 1, 100));
    }
    g.push(mm(1, 300, 2));
    layers("sentimental_seqCNN", g)
}

/// Time steps the seqLSTM is unrolled over.
pub const SEQ_LSTM_STEPS: usize = 105;

/// Sentiment seqLSTM: a 2-layer LSTM over [`SEQ_LSTM_STEPS`] tokens; each
/// step of each layer issues four gate matmuls (input-hidden and
/// hidden-hidden fused per gate), plus the classifier — 841 GEMM layers.
/// Recurrent unrolling is what pushes the MLPerf suite to its 1094 total.
#[must_use]
pub fn sentimental_seqlstm() -> Network {
    let hidden = 128;
    let embed = 128;
    let mut g = Vec::new();
    for step in 0..SEQ_LSTM_STEPS {
        for layer in 0..2 {
            let input_dim = if layer == 0 { embed } else { hidden };
            for _gate in 0..4 {
                g.push(mm(1, input_dim + hidden, hidden));
            }
            let _ = step;
        }
    }
    g.push(mm(1, hidden, 2));
    layers("sentimental_seqLSTM", g)
}

/// Transformer (base): 6 encoder + 6 decoder layers, each with attention
/// projections and the position-wise FFN — 72 GEMM layers over a
/// 32-token sequence.
#[must_use]
pub fn transformer() -> Network {
    let d = 512;
    let seq = 32;
    let mut g = Vec::new();
    for _layer in 0..12 {
        // Q, K, V and output projections.
        for _ in 0..4 {
            g.push(mm(seq, d, d));
        }
        // Feed-forward: d → 4d → d.
        g.push(mm(seq, d, 4 * d));
        g.push(mm(seq, 4 * d, d));
    }
    layers("Transformer", g)
}

/// The full MLPerf-like suite: eight models, 1094 GEMM layers in total.
#[must_use]
pub fn mlperf_suite() -> Vec<Network> {
    vec![
        alphagozero(),
        alexnet(),
        googlenet(),
        resnet50(),
        ncf(),
        sentimental_seqcnn(),
        sentimental_seqlstm(),
        transformer(),
    ]
}

/// All 1094 GEMM configurations of the suite, flattened.
#[must_use]
pub fn mlperf_gemms() -> Vec<GemmConfig> {
    mlperf_suite().iter().flat_map(Network::gemms).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_totals_1094_gemm_layers() {
        // The paper's headline count for the MLPerf benchmark.
        assert_eq!(mlperf_gemms().len(), 1094);
    }

    #[test]
    fn per_model_layer_counts() {
        assert_eq!(alphagozero().layers.len(), 43);
        assert_eq!(alexnet_len(), 8);
        assert_eq!(googlenet().layers.len(), 58);
        assert_eq!(resnet50().layers.len(), 54);
        assert_eq!(ncf().layers.len(), 8);
        assert_eq!(sentimental_seqcnn().layers.len(), 10);
        assert_eq!(sentimental_seqlstm().layers.len(), 841);
        assert_eq!(transformer().layers.len(), 72);
    }

    fn alexnet_len() -> usize {
        alexnet().layers.len()
    }

    #[test]
    fn suite_has_both_conv_and_matmul() {
        use usystolic_gemm::GemmKind;
        let gemms = mlperf_gemms();
        let convs = gemms
            .iter()
            .filter(|g| g.kind() == GemmKind::Convolution)
            .count();
        let mms = gemms
            .iter()
            .filter(|g| g.kind() == GemmKind::MatrixMultiply)
            .count();
        assert!(convs > 100);
        assert!(mms > 800, "recurrent unrolling dominates the layer count");
    }

    #[test]
    fn suite_utilization_is_below_alexnet() {
        // Section V-G: diverse GEMMs reduce the average MAC utilisation
        // (97.1 % → 69.6 % on the edge array for AlexNet → MLPerf).
        use usystolic_core::TileMapping;
        let avg = |gemms: &[GemmConfig]| {
            gemms
                .iter()
                .map(|g| TileMapping::new(g, 12, 14).utilization())
                .sum::<f64>()
                / gemms.len() as f64
        };
        let alex = avg(&alexnet().gemms());
        let suite = avg(&mlperf_gemms());
        assert!(
            suite < alex,
            "MLPerf utilisation {suite:.3} must trail AlexNet {alex:.3}"
        );
        assert!(
            alex > 0.9,
            "AlexNet edge utilisation should be high, got {alex:.3}"
        );
    }

    #[test]
    fn resnet50_parameter_count_is_sane() {
        let p = resnet50().parameters();
        // ~25.5 M weights in the reference network.
        assert!((20_000_000..30_000_000).contains(&p), "{p}");
    }

    #[test]
    fn transformer_shapes_are_square_or_ffn() {
        let t = transformer();
        assert!(t.layers.iter().all(|l| l.gemm.input_height() == 32));
    }
}
