//! A pure-Rust MLP classifier — the matrix-multiplication-only companion
//! to [`crate::trainer::TinyCnn`].
//!
//! The paper stresses that uSystolic generalises across GEMM *types*
//! (convolution **and** matrix multiplication, Table II). [`TinyMlp`]
//! exercises the pure-matmul path end to end: both layers are FC GEMMs,
//! so an accuracy sweep through a [`GemmExecutor`] validates the
//! `matmul` lowering the same way the CNN validates the conv lowering.

use crate::dataset::{Dataset, Sample, CLASSES, PIXELS};
use usystolic_core::{CoreError, GemmExecutor};
use usystolic_gemm::{FeatureMap, GemmConfig, Matrix, WeightSet};
use usystolic_unary::rng::SplitMix64;

/// Hidden layer width.
const HIDDEN: usize = 32;

/// A two-layer perceptron: `PIXELS → HIDDEN (ReLU) → CLASSES`.
#[derive(Debug, Clone)]
pub struct TinyMlp {
    w1: Matrix<f64>, // HIDDEN × PIXELS
    b1: Vec<f64>,
    w2: Matrix<f64>, // CLASSES × HIDDEN
    b2: Vec<f64>,
}

impl TinyMlp {
    /// Creates a randomly initialised network, deterministic in `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let s1 = (2.0 / PIXELS as f64).sqrt();
        let w1 = Matrix::from_fn(HIDDEN, PIXELS, |_, _| (rng.next_f64() - 0.5) * 2.0 * s1);
        let s2 = (2.0 / HIDDEN as f64).sqrt();
        let w2 = Matrix::from_fn(CLASSES, HIDDEN, |_, _| (rng.next_f64() - 0.5) * 2.0 * s2);
        Self {
            w1,
            b1: vec![0.0; HIDDEN],
            w2,
            b2: vec![0.0; CLASSES],
        }
    }

    /// The first layer's GEMM configuration (`1 × PIXELS · PIXELS × HIDDEN`).
    #[must_use]
    pub fn layer1_gemm() -> GemmConfig {
        // Compile-time-constant shape, checked by test: lint: allow(panic)
        GemmConfig::matmul(1, PIXELS, HIDDEN).expect("static shape is valid")
    }

    /// The second layer's GEMM configuration.
    #[must_use]
    pub fn layer2_gemm() -> GemmConfig {
        // Compile-time-constant shape, checked by test: lint: allow(panic)
        GemmConfig::matmul(1, HIDDEN, CLASSES).expect("static shape is valid")
    }

    fn forward(&self, pixels: &[f64]) -> (Vec<f64>, [f64; CLASSES]) {
        let mut hidden = vec![0.0f64; HIDDEN];
        for (h, hv) in hidden.iter_mut().enumerate() {
            let mut acc = self.b1[h];
            for (i, &x) in pixels.iter().enumerate() {
                acc += self.w1[(h, i)] * x;
            }
            *hv = acc.max(0.0);
        }
        let mut logits = [0.0f64; CLASSES];
        for (j, l) in logits.iter_mut().enumerate() {
            let mut acc = self.b2[j];
            for (h, &hv) in hidden.iter().enumerate() {
                acc += self.w2[(j, h)] * hv;
            }
            *l = acc;
        }
        (hidden, logits)
    }

    /// Trains with SGD; returns the final-epoch training accuracy.
    pub fn train(&mut self, data: &Dataset, epochs: usize, lr: f64) -> f64 {
        let mut data = data.clone();
        let mut correct = 0usize;
        for epoch in 0..epochs {
            data.shuffle(2000 + epoch as u64);
            correct = 0;
            for sample in data.samples() {
                correct += usize::from(self.step(sample, lr));
            }
        }
        correct as f64 / data.len() as f64
    }

    /// One SGD step; returns whether the pre-update prediction was
    /// correct.
    fn step(&mut self, sample: &Sample, lr: f64) -> bool {
        let (hidden, logits) = self.forward(&sample.pixels);
        let correct = argmax(&logits) == sample.label;
        // Softmax cross-entropy gradient.
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exp: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
        let sum: f64 = exp.iter().sum();
        let mut dlogits: Vec<f64> = exp.iter().map(|e| e / sum).collect();
        dlogits[sample.label] -= 1.0;

        let mut dhidden = vec![0.0f64; HIDDEN];
        for (j, &dl) in dlogits.iter().enumerate() {
            self.b2[j] -= lr * dl;
            for h in 0..HIDDEN {
                dhidden[h] += dl * self.w2[(j, h)];
                self.w2[(j, h)] -= lr * dl * hidden[h];
            }
        }
        for h in 0..HIDDEN {
            if hidden[h] <= 0.0 {
                continue; // ReLU gradient gate
            }
            let dh = dhidden[h];
            self.b1[h] -= lr * dh;
            for (i, &x) in sample.pixels.iter().enumerate() {
                self.w1[(h, i)] -= lr * dh * x;
            }
        }
        correct
    }

    /// Top-1 accuracy under exact FP arithmetic.
    #[must_use]
    pub fn accuracy_fp(&self, data: &Dataset) -> f64 {
        let correct = data
            .samples()
            .iter()
            .filter(|s| argmax(&self.forward(&s.pixels).1) == s.label)
            .count();
        correct as f64 / data.len() as f64
    }

    /// Top-1 accuracy with both matmul layers executed by a
    /// systolic-array scheme.
    ///
    /// # Errors
    ///
    /// Propagates executor errors.
    pub fn accuracy_with(&self, data: &Dataset, exec: &GemmExecutor) -> Result<f64, CoreError> {
        let g1 = Self::layer1_gemm();
        let g2 = Self::layer2_gemm();
        let w1 = WeightSet::from_fn(HIDDEN, 1, 1, PIXELS, |n, _, _, k| self.w1[(n, k)]);
        let w2 = WeightSet::from_fn(CLASSES, 1, 1, HIDDEN, |n, _, _, k| self.w2[(n, k)]);
        let mut correct = 0usize;
        for sample in data.samples() {
            let x = FeatureMap::from_fn(1, 1, PIXELS, |_, _, k| sample.pixels[k]);
            let h_out = exec.execute(&g1, &x, &w1)?.output;
            let h = FeatureMap::from_fn(1, 1, HIDDEN, |_, _, k| {
                (h_out[(0, 0, k)] + self.b1[k]).max(0.0)
            });
            let logits_out = exec.execute(&g2, &h, &w2)?.output;
            let mut logits = [0.0f64; CLASSES];
            for (j, l) in logits.iter_mut().enumerate() {
                *l = logits_out[(0, 0, j)] + self.b2[j];
            }
            if argmax(&logits) == sample.label {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len() as f64)
    }
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use usystolic_core::{ComputingScheme, SystolicConfig};

    fn trained() -> (TinyMlp, Dataset) {
        let train = Dataset::generate(40, 0.25, 21);
        let test = Dataset::generate(4, 0.25, 91);
        let mut net = TinyMlp::new(5);
        net.train(&train, 10, 0.03);
        (net, test)
    }

    #[test]
    fn mlp_trains_to_high_accuracy() {
        let (net, test) = trained();
        let acc = net.accuracy_fp(&test);
        assert!(acc >= 0.85, "MLP FP accuracy {acc} too low");
    }

    #[test]
    fn matmul_path_matches_fp_class_under_usystolic() {
        let (net, test) = trained();
        let fp = net.accuracy_fp(&test);
        let cfg = SystolicConfig::new(12, 14, ComputingScheme::UnaryRate, 8)
            .expect("valid configuration");
        let acc = net
            .accuracy_with(&test, &GemmExecutor::new(cfg))
            .expect("runs");
        assert!(acc >= fp - 0.2, "uSystolic MLP accuracy {acc} vs FP {fp}");
    }

    #[test]
    fn binary_parallel_preserves_mlp_accuracy() {
        let (net, test) = trained();
        let cfg = SystolicConfig::new(12, 14, ComputingScheme::BinaryParallel, 8)
            .expect("valid configuration");
        let acc = net
            .accuracy_with(&test, &GemmExecutor::new(cfg))
            .expect("runs");
        assert!(acc >= net.accuracy_fp(&test) - 0.1);
    }
}
