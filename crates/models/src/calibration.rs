//! Analytic value-range calibration of a [`Network`] for the static
//! analyzer.
//!
//! The per-tensor calibration of [`usystolic_gemm::Quantizer::calibrated`]
//! always maps a tensor's own maximum to full scale, so every layer looks
//! full-range to a per-layer analysis. Real deployments often share one
//! quantization scale across the network (a single activation scale and a
//! single weight scale), and under a shared scale most layers occupy only
//! a *fraction* of the level grid — the calibrated value ranges the
//! whole-network abstract interpreter exploits to prove tighter
//! accumulator bounds than the worst-case Section III-A rule.
//!
//! The calibration here is **analytic**, not sampled: it propagates value
//! intervals layer by layer with interval arithmetic under three
//! documented (and conservative) modeling assumptions:
//!
//! 1. network inputs are normalized to `[0, 1]` (images);
//! 2. weights are bounded by the Kaiming-uniform initialisation bound
//!    `|w| ≤ sqrt(6 / fan_in)` with `fan_in` the layer's reduction
//!    length;
//! 3. a ReLU clamps every hidden activation at zero.
//!
//! Under these assumptions every interval is *sound*: any network
//! satisfying 1–3 produces values inside the computed ranges, so any
//! overflow-freedom proof built on them is a real proof (relative to the
//! model). The intervals are deterministic — no data, no RNG — which is
//! what lets CI assert exact diagnostic codes on them.

use crate::zoo::Network;

/// A closed interval of real values `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueInterval {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl ValueInterval {
    /// A new interval.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "malformed interval [{lo}, {hi}]"
        );
        Self { lo, hi }
    }

    /// The degenerate single-point interval.
    #[must_use]
    pub fn point(v: f64) -> Self {
        Self::new(v, v)
    }

    /// The symmetric interval `[-m, m]`.
    #[must_use]
    pub fn symmetric(m: f64) -> Self {
        Self::new(-m.abs(), m.abs())
    }

    /// Largest absolute value contained in the interval.
    #[must_use]
    pub fn magnitude(&self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// The interval after a ReLU (`max(0, x)`).
    #[must_use]
    pub fn relu(&self) -> Self {
        Self::new(self.lo.max(0.0), self.hi.max(0.0))
    }

    /// Exact interval product `{a·b : a ∈ self, b ∈ rhs}`.
    #[must_use]
    pub fn mul(&self, rhs: &Self) -> Self {
        let products = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        let lo = products.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = products.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self::new(lo, hi)
    }

    /// The interval of a sum of `k` independent products drawn from this
    /// interval.
    #[must_use]
    pub fn sum(&self, k: usize) -> Self {
        let k = k as f64;
        Self::new(self.lo * k, self.hi * k)
    }

    /// Whether `v` lies inside the interval.
    #[must_use]
    pub fn contains(&self, v: f64) -> bool {
        (self.lo..=self.hi).contains(&v)
    }
}

/// Calibrated value ranges of one GEMM layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRanges {
    /// Layer name (mirrors [`crate::zoo::NamedLayer::name`]).
    pub name: String,
    /// Input activation values entering the layer (post-ReLU of the
    /// previous layer; `[0, 1]` for the first).
    pub input: ValueInterval,
    /// Weight values of the layer.
    pub weight: ValueInterval,
    /// Accumulated pre-activation output values.
    pub output: ValueInterval,
}

/// Shared-scale calibration of a whole network at one data bitwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkCalibration {
    /// Network name.
    pub network: String,
    /// Data bitwidth `N` the level grid is quantized to.
    pub bitwidth: u32,
    /// Real value of one activation level under the shared scale.
    pub activation_scale: f64,
    /// Real value of one weight level under the shared scale.
    pub weight_scale: f64,
    /// Per-layer ranges, in execution order.
    pub layers: Vec<LayerRanges>,
}

impl NetworkCalibration {
    /// Full-scale level magnitude of the grid: `2^(N-1) - 1`.
    #[must_use]
    pub fn full_scale(&self) -> u64 {
        (1u64 << (self.bitwidth - 1)) - 1
    }

    /// Largest quantized input-level magnitude layer `layer` can see
    /// under the shared activation scale (capped at full scale).
    #[must_use]
    pub fn input_levels(&self, layer: usize) -> u64 {
        self.levels(self.layers[layer].input.magnitude(), self.activation_scale)
    }

    /// Largest quantized weight-level magnitude of layer `layer` under
    /// the shared weight scale (capped at full scale).
    #[must_use]
    pub fn weight_levels(&self, layer: usize) -> u64 {
        self.levels(self.layers[layer].weight.magnitude(), self.weight_scale)
    }

    fn levels(&self, magnitude: f64, scale: f64) -> u64 {
        if scale <= 0.0 {
            return 0;
        }
        // Round up: a sound level bound must cover the rounding of any
        // value inside the range.
        ((magnitude / scale).ceil() as u64).min(self.full_scale())
    }
}

/// Kaiming-uniform weight-magnitude bound for a layer of `fan_in`
/// inputs: `sqrt(6 / fan_in)`.
#[must_use]
pub fn kaiming_bound(fan_in: usize) -> f64 {
    (6.0 / fan_in.max(1) as f64).sqrt()
}

/// Analytically calibrates `network` at data bitwidth `bitwidth`.
///
/// Propagates `[0, 1]` inputs through every layer with interval
/// arithmetic (Kaiming-bounded weights, ReLU between layers), then fixes
/// one shared activation scale and one shared weight scale from the
/// network-wide maxima. Layers whose local ranges sit below the global
/// maxima come out with sub-full-scale level bounds — exactly what the
/// abstract interpreter needs to beat the worst-case accumulator rule.
///
/// # Panics
///
/// Panics if `bitwidth` is zero (no level grid to calibrate to).
#[must_use]
pub fn calibrate(network: &Network, bitwidth: u32) -> NetworkCalibration {
    assert!(
        bitwidth >= 2,
        "calibration needs a sign bit and a level bit"
    );
    let mut layers = Vec::with_capacity(network.layers.len());
    let mut activation = ValueInterval::new(0.0, 1.0);
    for layer in &network.layers {
        let fan_in = layer.gemm.reduction_len();
        let weight = ValueInterval::symmetric(kaiming_bound(fan_in));
        let output = activation.mul(&weight).sum(fan_in);
        layers.push(LayerRanges {
            name: layer.name.clone(),
            input: activation,
            weight,
            output,
        });
        activation = output.relu();
    }

    let full = ((1u64 << (bitwidth - 1)) - 1) as f64;
    let act_max = layers
        .iter()
        .map(|l| l.input.magnitude())
        .fold(0.0f64, f64::max);
    let w_max = layers
        .iter()
        .map(|l| l.weight.magnitude())
        .fold(0.0f64, f64::max);
    NetworkCalibration {
        network: network.name.clone(),
        bitwidth,
        activation_scale: act_max / full,
        weight_scale: w_max / full,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{alexnet, mnist_cnn4};

    #[test]
    fn interval_arithmetic_is_exact() {
        let a = ValueInterval::new(-2.0, 3.0);
        let b = ValueInterval::new(-1.0, 4.0);
        let p = a.mul(&b);
        assert_eq!(p, ValueInterval::new(-8.0, 12.0));
        assert_eq!(a.relu(), ValueInterval::new(0.0, 3.0));
        assert_eq!(a.sum(3), ValueInterval::new(-6.0, 9.0));
        assert_eq!(a.magnitude(), 3.0);
        assert_eq!(ValueInterval::symmetric(-2.5).hi, 2.5);
        assert!(a.contains(0.0) && !a.contains(3.5));
        assert_eq!(ValueInterval::point(1.5).lo, 1.5);
    }

    #[test]
    #[should_panic(expected = "malformed interval")]
    fn inverted_interval_rejected() {
        let _ = ValueInterval::new(1.0, 0.0);
    }

    #[test]
    fn activation_magnitudes_grow_monotonically() {
        // Interval propagation through K-wide sums grows magnitudes
        // (sqrt(6K) per layer), so the *last* layer pins the shared scale
        // and earlier layers occupy a sub-range.
        let cal = calibrate(&mnist_cnn4(), 8);
        let mags: Vec<f64> = cal.layers.iter().map(|l| l.input.magnitude()).collect();
        for w in mags.windows(2) {
            assert!(w[0] < w[1], "magnitudes must grow: {mags:?}");
        }
    }

    #[test]
    fn early_layers_get_sub_full_level_bounds() {
        let cal = calibrate(&mnist_cnn4(), 8);
        let full = cal.full_scale();
        assert_eq!(full, 127);
        // The first layer's input range [0,1] is tiny under the shared
        // scale; the last layer's input pins it at full scale.
        assert!(
            cal.input_levels(0) < full / 4,
            "layer 0 levels {} not sub-full",
            cal.input_levels(0)
        );
        assert_eq!(cal.input_levels(cal.layers.len() - 1), full);
        // Weight levels: the largest-magnitude (smallest fan-in) layer
        // pins the weight scale.
        let max_w = (0..cal.layers.len())
            .map(|i| cal.weight_levels(i))
            .max()
            .unwrap();
        assert_eq!(max_w, full);
    }

    #[test]
    fn level_bounds_never_exceed_full_scale() {
        for bits in [4u32, 8, 12] {
            let cal = calibrate(&alexnet(), bits);
            let full = cal.full_scale();
            for i in 0..cal.layers.len() {
                assert!(cal.input_levels(i) <= full);
                assert!(cal.weight_levels(i) <= full);
            }
        }
    }

    #[test]
    fn ranges_are_sound_for_model_values() {
        // A value at the modeling assumptions' extremes must lie inside
        // every interval: input 1.0 at layer 0, Kaiming bound weights.
        let cal = calibrate(&mnist_cnn4(), 8);
        assert!(cal.layers[0].input.contains(1.0));
        for (l, named) in cal.layers.iter().zip(&mnist_cnn4().layers) {
            let bound = kaiming_bound(named.gemm.reduction_len());
            assert!(l.weight.contains(bound) && l.weight.contains(-bound));
            // The output interval covers the all-extremes accumulation.
            let extreme = named.gemm.reduction_len() as f64 * l.input.magnitude() * bound;
            assert!(l.output.contains(extreme), "{} misses {extreme}", l.name);
        }
    }

    #[test]
    fn kaiming_bound_shrinks_with_fan_in() {
        assert!(kaiming_bound(9) > kaiming_bound(9216));
        assert_eq!(kaiming_bound(6), 1.0);
        assert_eq!(kaiming_bound(0), kaiming_bound(1));
    }
}
