//! A pure-Rust CNN trainer for the accuracy experiments (Fig. 9
//! substitute).
//!
//! [`TinyCnn`] is a small convolutional classifier (conv 3×3×6 → ReLU →
//! 2×2 average pool → FC → softmax) trained with SGD on the procedural
//! glyph dataset. Its inference path can be re-executed under any
//! computing scheme through a [`GemmExecutor`], or under the paper's
//! fixed-point comparison formats, reproducing the accuracy-vs-EBT
//! experiment end to end in Rust.

use crate::dataset::{Dataset, Sample, CLASSES, IMAGE_SIZE};
use usystolic_core::{CoreError, GemmExecutor};
use usystolic_gemm::quant::{fxp_gemm, FxpFormat};
use usystolic_gemm::{FeatureMap, GemmConfig, GemmError, Matrix, WeightSet};
use usystolic_unary::rng::SplitMix64;

const CONV_K: usize = 3;
const CONV_OC: usize = 6;
const CONV_OUT: usize = IMAGE_SIZE - CONV_K + 1; // 10
const POOL_OUT: usize = CONV_OUT / 2; // 5
const FC_IN: usize = POOL_OUT * POOL_OUT * CONV_OC; // 150

/// The trainable CNN.
#[derive(Debug, Clone)]
pub struct TinyCnn {
    conv_w: WeightSet<f64>,
    conv_b: Vec<f64>,
    fc_w: Matrix<f64>, // CLASSES × FC_IN
    fc_b: Vec<f64>,
}

/// Everything the backward pass needs from a forward pass.
struct ForwardCache {
    conv_z: Vec<f64>, // CONV_OUT² × OC, pre-activation
    pooled: Vec<f64>, // FC_IN
    logits: [f64; CLASSES],
}

impl TinyCnn {
    /// Creates a randomly initialised network (He-style scaling),
    /// deterministic in `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let conv_scale = (2.0 / (CONV_K * CONV_K) as f64).sqrt();
        let conv_w = WeightSet::from_fn(CONV_OC, CONV_K, CONV_K, 1, |_, _, _, _| {
            (rng.next_f64() - 0.5) * 2.0 * conv_scale
        });
        let fc_scale = (2.0 / FC_IN as f64).sqrt();
        let fc_w = Matrix::from_fn(CLASSES, FC_IN, |_, _| {
            (rng.next_f64() - 0.5) * 2.0 * fc_scale
        });
        Self {
            conv_w,
            conv_b: vec![0.0; CONV_OC],
            fc_w,
            fc_b: vec![0.0; CLASSES],
        }
    }

    /// The GEMM configuration of the convolution layer.
    #[must_use]
    pub fn conv_gemm() -> GemmConfig {
        GemmConfig::conv(IMAGE_SIZE, IMAGE_SIZE, 1, CONV_K, CONV_K, 1, CONV_OC)
            // Compile-time-constant shape, checked by test: lint: allow(panic)
            .expect("static shape is valid")
    }

    /// The GEMM configuration of the fully connected layer.
    #[must_use]
    pub fn fc_gemm() -> GemmConfig {
        // Compile-time-constant shape, checked by test: lint: allow(panic)
        GemmConfig::matmul(1, FC_IN, CLASSES).expect("static shape is valid")
    }

    fn forward(&self, pixels: &[f64]) -> ForwardCache {
        // Convolution + bias.
        let mut conv_z = vec![0.0f64; CONV_OUT * CONV_OUT * CONV_OC];
        for oh in 0..CONV_OUT {
            for ow in 0..CONV_OUT {
                for oc in 0..CONV_OC {
                    let mut acc = self.conv_b[oc];
                    for kh in 0..CONV_K {
                        for kw in 0..CONV_K {
                            acc += self.conv_w[(oc, kh, kw, 0)]
                                * pixels[(oh + kh) * IMAGE_SIZE + (ow + kw)];
                        }
                    }
                    conv_z[(oh * CONV_OUT + ow) * CONV_OC + oc] = acc;
                }
            }
        }
        let pooled = Self::pool_relu(&conv_z);
        let logits = self.classify(&pooled);
        ForwardCache {
            conv_z,
            pooled,
            logits,
        }
    }

    /// ReLU then 2×2 average pooling, flattening as `(ph, pw, oc)` —
    /// matching the channel-innermost lowering of the FC GEMM.
    fn pool_relu(conv_z: &[f64]) -> Vec<f64> {
        let mut pooled = vec![0.0f64; FC_IN];
        for ph in 0..POOL_OUT {
            for pw in 0..POOL_OUT {
                for oc in 0..CONV_OC {
                    let mut acc = 0.0;
                    for dh in 0..2 {
                        for dw in 0..2 {
                            let z = conv_z[((2 * ph + dh) * CONV_OUT + 2 * pw + dw) * CONV_OC + oc];
                            acc += z.max(0.0);
                        }
                    }
                    pooled[(ph * POOL_OUT + pw) * CONV_OC + oc] = acc / 4.0;
                }
            }
        }
        pooled
    }

    fn classify(&self, pooled: &[f64]) -> [f64; CLASSES] {
        let mut logits = [0.0f64; CLASSES];
        for (j, logit) in logits.iter_mut().enumerate() {
            let mut acc = self.fc_b[j];
            for (i, &p) in pooled.iter().enumerate() {
                acc += self.fc_w[(j, i)] * p;
            }
            *logit = acc;
        }
        logits
    }

    fn softmax(logits: &[f64; CLASSES]) -> [f64; CLASSES] {
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut exp = [0.0f64; CLASSES];
        let mut sum = 0.0;
        for (e, &l) in exp.iter_mut().zip(logits) {
            *e = (l - max).exp();
            sum += *e;
        }
        for e in &mut exp {
            *e /= sum;
        }
        exp
    }

    /// Trains with plain SGD; returns the final-epoch training accuracy.
    pub fn train(&mut self, data: &Dataset, epochs: usize, lr: f64) -> f64 {
        let mut data = data.clone();
        let mut correct = 0usize;
        for epoch in 0..epochs {
            data.shuffle(1000 + epoch as u64);
            correct = 0;
            for sample in data.samples() {
                let cache = self.forward(&sample.pixels);
                let probs = Self::softmax(&cache.logits);
                let pred = argmax(&cache.logits);
                if pred == sample.label {
                    correct += 1;
                }
                self.backward(sample, &cache, &probs, lr);
            }
        }
        correct as f64 / data.len() as f64
    }

    fn backward(&mut self, sample: &Sample, cache: &ForwardCache, probs: &[f64; CLASSES], lr: f64) {
        // Cross-entropy gradient at the logits.
        let mut dlogits = *probs;
        dlogits[sample.label] -= 1.0;

        // FC gradients and pooled-activation gradient.
        let mut dpooled = vec![0.0f64; FC_IN];
        for (j, &dl) in dlogits.iter().enumerate() {
            self.fc_b[j] -= lr * dl;
            for (i, dp) in dpooled.iter_mut().enumerate() {
                *dp += dl * self.fc_w[(j, i)];
                self.fc_w[(j, i)] -= lr * dl * cache.pooled[i];
            }
        }

        // Through the average pool and ReLU.
        let mut dconv = vec![0.0f64; CONV_OUT * CONV_OUT * CONV_OC];
        for ph in 0..POOL_OUT {
            for pw in 0..POOL_OUT {
                for oc in 0..CONV_OC {
                    let g = dpooled[(ph * POOL_OUT + pw) * CONV_OC + oc] / 4.0;
                    for dh in 0..2 {
                        for dw in 0..2 {
                            let idx = ((2 * ph + dh) * CONV_OUT + 2 * pw + dw) * CONV_OC + oc;
                            if cache.conv_z[idx] > 0.0 {
                                dconv[idx] = g;
                            }
                        }
                    }
                }
            }
        }

        // Convolution weight gradients.
        for oc in 0..CONV_OC {
            let mut db = 0.0;
            for oh in 0..CONV_OUT {
                for ow in 0..CONV_OUT {
                    let dz = dconv[(oh * CONV_OUT + ow) * CONV_OC + oc];
                    // Exact-zero sparsity fast path: ReLU-gated gradients
                    // are bit-exact +0.0, so a bit compare is lossless.
                    if dz.to_bits() == 0 {
                        continue;
                    }
                    db += dz;
                    for kh in 0..CONV_K {
                        for kw in 0..CONV_K {
                            let x = sample.pixels[(oh + kh) * IMAGE_SIZE + (ow + kw)];
                            self.conv_w[(oc, kh, kw, 0)] -= lr * dz * x;
                        }
                    }
                }
            }
            self.conv_b[oc] -= lr * db;
        }
    }

    /// Predicted class under exact FP arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `pixels` does not hold [`crate::dataset::PIXELS`] values.
    #[must_use]
    pub fn predict_fp(&self, pixels: &[f64]) -> usize {
        assert_eq!(pixels.len(), crate::dataset::PIXELS, "wrong image size");
        argmax(&self.forward(pixels).logits)
    }

    /// Predicted class with both GEMM layers executed by a systolic-array
    /// scheme.
    ///
    /// # Errors
    ///
    /// Propagates executor errors.
    ///
    /// # Panics
    ///
    /// Panics if `pixels` does not hold [`crate::dataset::PIXELS`] values.
    pub fn predict_with(&self, pixels: &[f64], exec: &GemmExecutor) -> Result<usize, CoreError> {
        assert_eq!(pixels.len(), crate::dataset::PIXELS, "wrong image size");
        let fc_weights = WeightSet::from_fn(CLASSES, 1, 1, FC_IN, |n, _, _, k| self.fc_w[(n, k)]);
        let input = FeatureMap::from_fn(IMAGE_SIZE, IMAGE_SIZE, 1, |h, w, _| {
            pixels[h * IMAGE_SIZE + w]
        });
        let conv_out = exec
            .execute(&Self::conv_gemm(), &input, &self.conv_w)?
            .output;
        let pooled = self.pool_from_featuremap(&conv_out);
        let fc_in = FeatureMap::from_fn(1, 1, FC_IN, |_, _, k| pooled[k]);
        let fc_out = exec.execute(&Self::fc_gemm(), &fc_in, &fc_weights)?.output;
        let mut logits = [0.0f64; CLASSES];
        for (j, logit) in logits.iter_mut().enumerate() {
            *logit = fc_out[(0, 0, j)] + self.fc_b[j];
        }
        Ok(argmax(&logits))
    }

    /// Top-1 accuracy under exact FP arithmetic.
    #[must_use]
    pub fn accuracy_fp(&self, data: &Dataset) -> f64 {
        let correct = data
            .samples()
            .iter()
            .filter(|s| self.predict_fp(&s.pixels) == s.label)
            .count();
        correct as f64 / data.len() as f64
    }

    /// Top-1 accuracy with both GEMM layers executed by a systolic-array
    /// scheme (the uSystolic / baseline accuracy experiment).
    ///
    /// Activation, pooling and bias addition stay in the binary domain, as
    /// in any hybrid unary-binary system (Fig. 5).
    ///
    /// # Errors
    ///
    /// Propagates executor errors.
    pub fn accuracy_with(&self, data: &Dataset, exec: &GemmExecutor) -> Result<f64, CoreError> {
        let mut correct = 0usize;
        for sample in data.samples() {
            if self.predict_with(&sample.pixels, exec)? == sample.label {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len() as f64)
    }

    /// Top-1 accuracy with both GEMM layers quantised to a fixed-point
    /// comparison format (FXP-o-res / FXP-i-res of Section V-A).
    ///
    /// # Errors
    ///
    /// Propagates [`GemmError`] from the quantised GEMM executor (the
    /// network's static shapes make this unreachable in practice).
    pub fn accuracy_fxp(&self, data: &Dataset, format: FxpFormat) -> Result<f64, GemmError> {
        let conv_cfg = Self::conv_gemm();
        let fc_cfg = Self::fc_gemm();
        let fc_weights = WeightSet::from_fn(CLASSES, 1, 1, FC_IN, |n, _, _, k| self.fc_w[(n, k)]);
        let mut correct = 0usize;
        for sample in data.samples() {
            let input = FeatureMap::from_fn(IMAGE_SIZE, IMAGE_SIZE, 1, |h, w, _| {
                sample.pixels[h * IMAGE_SIZE + w]
            });
            let conv_out = fxp_gemm(&conv_cfg, &input, &self.conv_w, format)?;
            let pooled = self.pool_from_featuremap(&conv_out);
            let fc_in = FeatureMap::from_fn(1, 1, FC_IN, |_, _, k| pooled[k]);
            let fc_out = fxp_gemm(&fc_cfg, &fc_in, &fc_weights, format)?;
            let mut logits = [0.0f64; CLASSES];
            for (j, logit) in logits.iter_mut().enumerate() {
                *logit = fc_out[(0, 0, j)] + self.fc_b[j];
            }
            if argmax(&logits) == sample.label {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len() as f64)
    }

    /// Adds the conv bias, applies ReLU and average-pools a conv-output
    /// feature map into the flattened FC input.
    fn pool_from_featuremap(&self, conv_out: &FeatureMap<f64>) -> Vec<f64> {
        let mut pooled = vec![0.0f64; FC_IN];
        for ph in 0..POOL_OUT {
            for pw in 0..POOL_OUT {
                for oc in 0..CONV_OC {
                    let mut acc = 0.0;
                    for dh in 0..2 {
                        for dw in 0..2 {
                            let z = conv_out[(2 * ph + dh, 2 * pw + dw, oc)] + self.conv_b[oc];
                            acc += z.max(0.0);
                        }
                    }
                    pooled[(ph * POOL_OUT + pw) * CONV_OC + oc] = acc / 4.0;
                }
            }
        }
        pooled
    }
}

fn argmax(xs: &[f64; CLASSES]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use usystolic_core::{ComputingScheme, SystolicConfig};

    fn trained() -> (TinyCnn, Dataset) {
        let train = Dataset::generate(40, 0.25, 11);
        let test = Dataset::generate(5, 0.25, 99);
        let mut net = TinyCnn::new(7);
        net.train(&train, 8, 0.05);
        (net, test)
    }

    #[test]
    fn training_reaches_high_fp_accuracy() {
        let (net, test) = trained();
        let acc = net.accuracy_fp(&test);
        assert!(acc >= 0.9, "FP32 test accuracy {acc} too low");
    }

    #[test]
    fn untrained_network_is_near_chance() {
        let net = TinyCnn::new(3);
        let test = Dataset::generate(10, 0.25, 5);
        let acc = net.accuracy_fp(&test);
        assert!(acc < 0.5, "untrained accuracy {acc} suspiciously high");
    }

    #[test]
    fn usystolic_rate_matches_fp_class_accuracy() {
        let (net, test) = trained();
        let fp = net.accuracy_fp(&test);
        let cfg = SystolicConfig::new(12, 14, ComputingScheme::UnaryRate, 8).unwrap();
        let acc = net.accuracy_with(&test, &GemmExecutor::new(cfg)).unwrap();
        assert!(
            acc >= fp - 0.15,
            "uSystolic accuracy {acc} fell too far from FP {fp}"
        );
    }

    #[test]
    fn severe_early_termination_hurts_accuracy_more_than_mild() {
        let (net, test) = trained();
        let acc_at = |ebt: u32| {
            let cfg = SystolicConfig::new(12, 14, ComputingScheme::UnaryRate, 8)
                .unwrap()
                .with_effective_bitwidth(ebt)
                .unwrap();
            net.accuracy_with(&test, &GemmExecutor::new(cfg)).unwrap()
        };
        let mild = acc_at(8);
        let severe = acc_at(3);
        assert!(
            severe <= mild + 0.05,
            "EBT 3 accuracy {severe} should not beat EBT 8 {mild}"
        );
    }

    #[test]
    fn fxp_i_res_at_least_matches_o_res() {
        let (net, test) = trained();
        let o = net.accuracy_fxp(&test, FxpFormat::OutputRes(6)).unwrap();
        let i = net.accuracy_fxp(&test, FxpFormat::InputRes(6)).unwrap();
        assert!(i + 0.1 >= o, "i-res {i} vs o-res {o}");
    }
}
