//! A procedurally generated 10-class digit-like dataset.
//!
//! The paper evaluates trained CNNs on MNIST/CIFAR10/ImageNet; shipping or
//! training on those datasets is out of scope for a self-contained
//! reproduction, so this module generates a deterministic 10-class glyph
//! dataset (12×12 grayscale) that plays the same role: a classification
//! task whose accuracy degrades smoothly as the GEMM arithmetic coarsens,
//! which is exactly what Fig. 9 measures. See DESIGN.md for the
//! substitution rationale.

use usystolic_unary::rng::SplitMix64;

/// Image side length.
pub const IMAGE_SIZE: usize = 12;
/// Number of classes.
pub const CLASSES: usize = 10;
/// Pixels per image.
pub const PIXELS: usize = IMAGE_SIZE * IMAGE_SIZE;

/// A labelled grayscale image with pixels in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Row-major pixels.
    pub pixels: Vec<f64>,
    /// Class label in `0..CLASSES`.
    pub label: usize,
}

/// A deterministic dataset of glyph samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    samples: Vec<Sample>,
}

/// Draws the noiseless template of a class into a 12×12 buffer.
fn template(class: usize) -> [f64; PIXELS] {
    let mut img = [0.0f64; PIXELS];
    let mut set = |r: usize, c: usize| {
        if r < IMAGE_SIZE && c < IMAGE_SIZE {
            img[r * IMAGE_SIZE + c] = 1.0;
        }
    };
    match class {
        // Distinct strokes per class: bars, crosses, frames, diagonals...
        0 => {
            // Ring.
            for i in 2..10 {
                set(2, i);
                set(9, i);
                set(i, 2);
                set(i, 9);
            }
        }
        1 => {
            // Vertical bar.
            for r in 1..11 {
                set(r, 6);
                set(r, 5);
            }
        }
        2 => {
            // Top bar + diagonal + bottom bar.
            for c in 2..10 {
                set(2, c);
                set(9, c);
            }
            for i in 0..7 {
                set(8 - i, 3 + i.min(6));
            }
        }
        3 => {
            // Three horizontal bars.
            for c in 3..10 {
                set(2, c);
                set(6, c);
                set(10, c);
            }
            for r in 2..11 {
                set(r, 9);
            }
        }
        4 => {
            // Left stroke + middle bar + right stroke.
            for r in 1..7 {
                set(r, 3);
            }
            for c in 3..10 {
                set(6, c);
            }
            for r in 1..11 {
                set(r, 8);
            }
        }
        5 => {
            // S-shape.
            for c in 2..10 {
                set(2, c);
                set(6, c);
                set(10, c);
            }
            for r in 2..7 {
                set(r, 2);
            }
            for r in 6..11 {
                set(r, 9);
            }
        }
        6 => {
            // Lower loop.
            for r in 2..11 {
                set(r, 3);
            }
            for c in 3..9 {
                set(10, c);
                set(6, c);
            }
            for r in 6..11 {
                set(r, 8);
            }
        }
        7 => {
            // Top bar + rising diagonal.
            for c in 2..10 {
                set(2, c);
            }
            for i in 0..8 {
                set(3 + i, 9 - i.min(7));
            }
        }
        8 => {
            // Two stacked boxes.
            for c in 3..9 {
                set(2, c);
                set(6, c);
                set(10, c);
            }
            for r in 2..11 {
                set(r, 3);
                set(r, 8);
            }
        }
        _ => {
            // Dense diagonal cross.
            for i in 1..11 {
                set(i, i);
                set(i, 11 - i);
            }
        }
    }
    img
}

impl Dataset {
    /// Generates `per_class` samples of every class with the given noise
    /// amplitude and ±1 pixel jitter, deterministically from `seed`.
    #[must_use]
    pub fn generate(per_class: usize, noise: f64, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut samples = Vec::with_capacity(per_class * CLASSES);
        for class in 0..CLASSES {
            let base = template(class);
            for _ in 0..per_class {
                let dr = rng.range_i64(-1, 1) as i32;
                let dc = rng.range_i64(-1, 1) as i32;
                let mut pixels = vec![0.0f64; PIXELS];
                for r in 0..IMAGE_SIZE as i32 {
                    for c in 0..IMAGE_SIZE as i32 {
                        let (sr, sc) = (r - dr, c - dc);
                        let v = if (0..IMAGE_SIZE as i32).contains(&sr)
                            && (0..IMAGE_SIZE as i32).contains(&sc)
                        {
                            base[(sr as usize) * IMAGE_SIZE + sc as usize]
                        } else {
                            0.0
                        };
                        let noisy = v + noise * (rng.next_f64() - 0.5);
                        pixels[(r as usize) * IMAGE_SIZE + c as usize] = noisy.clamp(0.0, 1.0);
                    }
                }
                samples.push(Sample {
                    pixels,
                    label: class,
                });
            }
        }
        Self { samples }
    }

    /// The samples, grouped by class in generation order.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Deterministically shuffles the samples (for SGD epochs).
    pub fn shuffle(&mut self, seed: u64) {
        let mut rng = SplitMix64::new(seed);
        // Fisher-Yates.
        for i in (1..self.samples.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            self.samples.swap(i, j);
        }
    }

    /// Splits the dataset into a training and a held-out fraction
    /// (shuffled deterministically first so classes mix).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < train_fraction < 1.0`.
    #[must_use]
    pub fn split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0, 1)"
        );
        let mut shuffled = self.clone();
        shuffled.shuffle(seed);
        let cut = ((shuffled.len() as f64) * train_fraction).round() as usize;
        let cut = cut.clamp(1, shuffled.len() - 1);
        let (a, b) = shuffled.samples.split_at(cut);
        (
            Dataset {
                samples: a.to_vec(),
            },
            Dataset {
                samples: b.to_vec(),
            },
        )
    }
}

/// A `CLASSES × CLASSES` confusion matrix: `matrix[truth][prediction]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: [[u32; CLASSES]; CLASSES],
}

impl ConfusionMatrix {
    /// Builds the matrix from a predictor over a dataset.
    #[must_use]
    pub fn build(data: &Dataset, mut predict: impl FnMut(&Sample) -> usize) -> Self {
        let mut counts = [[0u32; CLASSES]; CLASSES];
        for s in data.samples() {
            let p = predict(s).min(CLASSES - 1);
            counts[s.label][p] += 1;
        }
        Self { counts }
    }

    /// Count of samples with the given truth/prediction pair.
    #[must_use]
    pub fn count(&self, truth: usize, prediction: usize) -> u32 {
        self.counts[truth][prediction]
    }

    /// Overall accuracy (trace over total).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let correct: u32 = (0..CLASSES).map(|c| self.counts[c][c]).sum();
        let total: u32 = self.counts.iter().flatten().sum();
        if total == 0 {
            return 0.0;
        }
        f64::from(correct) / f64::from(total)
    }

    /// Per-class recall (correct over truth count), `None` for absent
    /// classes.
    #[must_use]
    pub fn recall(&self, class: usize) -> Option<f64> {
        let total: u32 = self.counts[class].iter().sum();
        if total == 0 {
            return None;
        }
        Some(f64::from(self.counts[class][class]) / f64::from(total))
    }

    /// The most confused (truth, prediction) off-diagonal pair, if any
    /// misclassification happened.
    #[must_use]
    pub fn worst_confusion(&self) -> Option<(usize, usize, u32)> {
        let mut best: Option<(usize, usize, u32)> = None;
        for t in 0..CLASSES {
            for p in 0..CLASSES {
                if t != p
                    && self.counts[t][p] > 0
                    && best.is_none_or(|(_, _, c)| self.counts[t][p] > c)
                {
                    best = Some((t, p, self.counts[t][p]));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(5, 0.2, 42);
        let b = Dataset::generate(5, 0.2, 42);
        assert_eq!(a, b);
        let c = Dataset::generate(5, 0.2, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn all_classes_present() {
        let d = Dataset::generate(3, 0.1, 1);
        assert_eq!(d.len(), 30);
        for class in 0..CLASSES {
            assert!(d.samples().iter().any(|s| s.label == class));
        }
    }

    #[test]
    fn pixels_are_normalised() {
        let d = Dataset::generate(2, 0.5, 7);
        for s in d.samples() {
            assert_eq!(s.pixels.len(), PIXELS);
            assert!(s.pixels.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn templates_are_distinct() {
        for a in 0..CLASSES {
            for b in (a + 1)..CLASSES {
                let ta = template(a);
                let tb = template(b);
                let diff: f64 = ta.iter().zip(&tb).map(|(x, y)| (x - y).abs()).sum();
                assert!(diff > 4.0, "classes {a} and {b} are too similar ({diff})");
            }
        }
    }

    #[test]
    fn split_partitions_the_dataset() {
        let d = Dataset::generate(6, 0.2, 3);
        let (train, test) = d.split(0.75, 9);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(train.len(), 45);
        // Every sample appears exactly once across the two halves.
        let mut all: Vec<_> = train.samples().iter().chain(test.samples()).collect();
        all.sort_by(|a, b| a.pixels.partial_cmp(&b.pixels).unwrap());
        let mut orig: Vec<_> = d.samples().iter().collect();
        orig.sort_by(|a, b| a.pixels.partial_cmp(&b.pixels).unwrap());
        assert_eq!(all.len(), orig.len());
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn split_rejects_bad_fraction() {
        let _ = Dataset::generate(2, 0.2, 1).split(1.5, 0);
    }

    #[test]
    fn confusion_matrix_statistics() {
        let d = Dataset::generate(4, 0.1, 5);
        // A perfect oracle.
        let perfect = ConfusionMatrix::build(&d, |s| s.label);
        assert!((perfect.accuracy() - 1.0).abs() < 1e-12);
        assert_eq!(perfect.worst_confusion(), None);
        for c in 0..CLASSES {
            assert_eq!(perfect.recall(c), Some(1.0));
            assert_eq!(perfect.count(c, c), 4);
        }
        // A constant predictor.
        let constant = ConfusionMatrix::build(&d, |_| 3);
        assert!((constant.accuracy() - 0.1).abs() < 1e-12);
        assert_eq!(constant.recall(3), Some(1.0));
        assert_eq!(constant.recall(0), Some(0.0));
        let (t, p, c) = constant.worst_confusion().expect("misses exist");
        assert_eq!(p, 3);
        assert_ne!(t, 3);
        assert_eq!(c, 4);
    }

    #[test]
    fn shuffle_permutes_but_preserves() {
        let mut d = Dataset::generate(4, 0.1, 2);
        let before = d.samples().to_vec();
        d.shuffle(9);
        assert_ne!(d.samples(), &before[..]);
        let mut a: Vec<usize> = before.iter().map(|s| s.label).collect();
        let mut b: Vec<usize> = d.samples().iter().map(|s| s.label).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
