//! Benchmark wrapper regenerating the Fig. 11 area tables.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use usystolic_bench::area::{area_reductions, figure11};
use usystolic_bench::ArrayShape;

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11");
    for shape in ArrayShape::ALL {
        group.bench_function(format!("figure11_{shape}"), |b| {
            b.iter(|| black_box(figure11(shape)))
        });
        group.bench_function(format!("reductions_{shape}_8b"), |b| {
            b.iter(|| black_box(area_reductions(shape, 8)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
