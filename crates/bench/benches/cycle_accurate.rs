//! Benchmarks the fully cycle-accurate 2D array machine against the fast
//! analytic executor — quantifying the cost of bit-level fidelity.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use usystolic_core::{cycle_accurate_gemm, ComputingScheme, GemmExecutor, SystolicConfig};
use usystolic_gemm::im2col;
use usystolic_gemm::{FeatureMap, GemmConfig, Matrix, WeightSet};

fn lowered_case() -> (GemmConfig, Matrix<i64>, Matrix<i64>) {
    let gemm = GemmConfig::conv(4, 4, 2, 2, 2, 1, 3).expect("valid bench shape");
    let input = FeatureMap::from_fn(4, 4, 2, |h, w, c| {
        ((h as i64 * 37 + w as i64 * 11 + c as i64 * 5) % 257) - 128
    });
    let weights = WeightSet::from_fn(3, 2, 2, 2, |oc, wh, ww, ic| {
        ((oc as i64 * 53 + wh as i64 * 17 + ww as i64 * 7 + ic as i64 * 3) % 257) - 128
    });
    (
        gemm,
        im2col::lower_input(&gemm, &input).expect("shapes match"),
        im2col::lower_weights(&gemm, &weights).expect("shapes match"),
    )
}

fn bench_cycle_vs_fast(c: &mut Criterion) {
    let (gemm, li, lw) = lowered_case();
    let mut group = c.benchmark_group("cycle_accurate");
    group.sample_size(10);
    for scheme in [ComputingScheme::UnaryRate, ComputingScheme::BinaryParallel] {
        let cfg = SystolicConfig::new(4, 3, scheme, 8)
            .expect("valid bench configuration")
            .with_acc_width(32);
        group.bench_function(format!("fast_{}", scheme.label()), |b| {
            let exec = GemmExecutor::new(cfg);
            b.iter(|| black_box(exec.execute_lowered(&gemm, &li, &lw).expect("runs")))
        });
        group.bench_function(format!("cycle_{}", scheme.label()), |b| {
            b.iter(|| black_box(cycle_accurate_gemm(&cfg, &gemm, &li, &lw).expect("runs")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cycle_vs_fast);
criterion_main!(benches);
