//! Benchmark wrapper regenerating the Fig. 12 throughput tables.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use usystolic_bench::throughput::{contention_summary, figure12};
use usystolic_bench::ArrayShape;

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12");
    for shape in ArrayShape::ALL {
        group.bench_function(format!("figure12_{shape}"), |b| {
            b.iter(|| black_box(figure12(shape)))
        });
        group.bench_function(format!("contention_{shape}"), |b| {
            b.iter(|| black_box(contention_summary(shape)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
