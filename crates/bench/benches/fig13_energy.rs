//! Benchmark wrapper regenerating the Fig. 13 energy tables.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use usystolic_bench::energy::{energy_summary, figure13_on_chip, figure13_total};
use usystolic_bench::ArrayShape;

fn bench_fig13(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13");
    for shape in ArrayShape::ALL {
        group.bench_function(format!("on_chip_{shape}"), |b| {
            b.iter(|| black_box(figure13_on_chip(shape)))
        });
        group.bench_function(format!("total_{shape}"), |b| {
            b.iter(|| black_box(figure13_total(shape)))
        });
        group.bench_function(format!("summary_{shape}"), |b| {
            b.iter(|| black_box(energy_summary(shape)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
