//! Benchmark wrapper regenerating the Fig. 10 bandwidth tables.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use usystolic_bench::bandwidth::{bandwidth_summary, figure10};
use usystolic_bench::ArrayShape;

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    for shape in ArrayShape::ALL {
        group.bench_function(format!("figure10_{shape}"), |b| {
            b.iter(|| black_box(figure10(shape)))
        });
        group.bench_function(format!("summary_{shape}"), |b| {
            b.iter(|| black_box(bandwidth_summary(shape)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
