//! Microbenchmarks of the unary computing substrate: RNGs, bitstream
//! logic and the uMUL kernel (Figs. 3 and 4 of the paper).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use usystolic_unary::coding::RateEncoder;
use usystolic_unary::mul::UnipolarMul;
use usystolic_unary::rng::{LfsrSource, NumberSource, SobolSource};
use usystolic_unary::Bitstream;

fn bench_rngs(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.bench_function("sobol_next_1k", |b| {
        let mut s = SobolSource::dimension(3, 15);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc ^= s.next();
            }
            black_box(acc)
        });
    });
    group.bench_function("lfsr_next_1k", |b| {
        let mut s = LfsrSource::new(15, 0xACE1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc ^= s.next();
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_bitstreams(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitstream");
    let a: Bitstream = (0..4096).map(|i| i % 3 == 0).collect();
    let b2: Bitstream = (0..4096).map(|i| i % 5 == 0).collect();
    group.bench_function("and_4096", |b| {
        b.iter(|| black_box(a.and(&b2).expect("equal lengths")))
    });
    group.bench_function("scc_4096", |b| {
        b.iter(|| black_box(usystolic_unary::scc(&a, &b2).expect("equal lengths")))
    });
    group.finish();
}

fn bench_umul(c: &mut Criterion) {
    let mut group = c.benchmark_group("umul");
    for bitwidth in [8u32, 12] {
        let len = usystolic_unary::stream_len(bitwidth);
        group.bench_function(format!("full_window_{bitwidth}bit"), |b| {
            b.iter_batched(
                || {
                    (
                        UnipolarMul::new(
                            len / 3,
                            bitwidth,
                            SobolSource::dimension(0, bitwidth - 1),
                        ),
                        RateEncoder::unipolar(
                            len / 2,
                            bitwidth,
                            SobolSource::dimension(1, bitwidth - 1),
                        ),
                    )
                },
                |(mut mul, mut enc)| {
                    let mut ones = 0u64;
                    for _ in 0..len {
                        if mul.step(enc.next_bit()) {
                            ones += 1;
                        }
                    }
                    black_box(ones)
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rngs, bench_bitstreams, bench_umul);
criterion_main!(benches);
