//! Benchmarks of the functional systolic-array executors across the
//! computing schemes, including the early-termination cost scaling.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use usystolic_core::{ComputingScheme, GemmExecutor, SystolicConfig};
use usystolic_gemm::{FeatureMap, GemmConfig, WeightSet};

fn case() -> (GemmConfig, FeatureMap<f64>, WeightSet<f64>) {
    let gemm = GemmConfig::conv(8, 8, 3, 3, 3, 1, 6).expect("valid bench shape");
    let input = FeatureMap::from_fn(8, 8, 3, |h, w, c| {
        ((h * 13 + w * 7 + c) % 19) as f64 / 9.5 - 1.0
    });
    let weights = WeightSet::from_fn(6, 3, 3, 3, |oc, wh, ww, ic| {
        ((oc * 5 + wh * 3 + ww + ic) % 11) as f64 / 22.0 - 0.25
    });
    (gemm, input, weights)
}

fn bench_schemes(c: &mut Criterion) {
    let (gemm, input, weights) = case();
    let mut group = c.benchmark_group("functional_gemm");
    group.sample_size(10);
    for scheme in [
        ComputingScheme::BinaryParallel,
        ComputingScheme::UnaryRate,
        ComputingScheme::UnaryTemporal,
        ComputingScheme::UGemmHybrid,
    ] {
        let exec = GemmExecutor::new(
            SystolicConfig::new(12, 14, scheme, 8).expect("valid bench configuration"),
        );
        group.bench_function(scheme.label(), |b| {
            b.iter(|| black_box(exec.execute(&gemm, &input, &weights).expect("shapes match")))
        });
    }
    group.finish();
}

fn bench_early_termination(c: &mut Criterion) {
    let (gemm, input, weights) = case();
    let mut group = c.benchmark_group("early_termination");
    group.sample_size(10);
    for cycles in [32u64, 64, 128] {
        let exec = GemmExecutor::new(
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
                .with_mul_cycles(cycles)
                .expect("valid cycle count"),
        );
        group.bench_function(format!("unary_{cycles}c"), |b| {
            b.iter(|| black_box(exec.execute(&gemm, &input, &weights).expect("shapes match")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes, bench_early_termination);
criterion_main!(benches);
