//! Benchmark wrapper for the Fig. 9 accuracy experiment (quick
//! configuration) and the Section V-A GEMM error study.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use usystolic_bench::accuracy::{figure9_cnn, gemm_error_study, Difficulty};

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("cnn_quick_sweep", |b| {
        b.iter(|| black_box(figure9_cnn(Difficulty::Medium, &[4, 6], 2)))
    });
    group.bench_function("gemm_error_study_ebt8", |b| {
        b.iter(|| black_box(gemm_error_study(8)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
