//! Benchmark wrapper regenerating the Fig. 14 efficiency tables
//! (AlexNet panel; the MLPerf panel runs once to bound bench time).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use usystolic_bench::efficiency::{figure14, utilization_summary, Workload};
use usystolic_bench::ArrayShape;

fn bench_fig14(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14");
    group.sample_size(10);
    for shape in ArrayShape::ALL {
        group.bench_function(format!("alexnet_{shape}"), |b| {
            b.iter(|| black_box(figure14(shape, Workload::AlexNet)))
        });
    }
    group.bench_function("mlperf_edge", |b| {
        b.iter(|| black_box(figure14(ArrayShape::Edge, Workload::MlPerf)))
    });
    group.bench_function("utilization_summary", |b| {
        b.iter(|| black_box(utilization_summary()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
