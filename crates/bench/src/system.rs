//! Section V-H: system-level discussion experiments — multi-instance
//! scaling at the shared DRAM and battery lifetime under early
//! termination.

use crate::design::ArrayShape;
use crate::table::Table;
use usystolic_core::{ComputingScheme, SystolicConfig};
use usystolic_gemm::GemmConfig;
use usystolic_hw::LayerEnergy;
use usystolic_models::zoo::alexnet;
use usystolic_sim::{battery_lifetime, MemoryHierarchy, MultiInstanceSystem, Simulator};

fn designs(shape: ArrayShape) -> Vec<(String, SystolicConfig)> {
    let base = |scheme| match shape {
        ArrayShape::Edge => SystolicConfig::edge(scheme, 8),
        ArrayShape::Cloud => SystolicConfig::cloud(scheme, 8),
    };
    vec![
        (
            "Binary Parallel".into(),
            base(ComputingScheme::BinaryParallel),
        ),
        ("Binary Serial".into(), base(ComputingScheme::BinarySerial)),
        (
            "Unary-32c".into(),
            base(ComputingScheme::UnaryRate)
                .with_mul_cycles(32)
                .expect("valid EBT"),
        ),
        (
            "Unary-128c".into(),
            base(ComputingScheme::UnaryRate)
                .with_mul_cycles(128)
                .expect("valid EBT"),
        ),
    ]
}

/// Multi-instance scaling efficiency (%) per design and instance count,
/// all instances sharing one DRAM with no per-instance SRAM.
#[must_use]
pub fn scaling_table(shape: ArrayShape) -> Table {
    let layer = GemmConfig::conv(31, 31, 96, 5, 5, 1, 256).expect("valid layer");
    let counts = [1usize, 2, 4, 8, 16, 32, 64];
    let mut headers: Vec<String> = vec!["design".into()];
    headers.extend(counts.iter().map(|n| format!("n={n}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!("Section V-H: multi-instance scaling efficiency (%), {shape}"),
        &header_refs,
    );
    for (name, cfg) in designs(shape) {
        let sys = MultiInstanceSystem::new(cfg, MemoryHierarchy::no_sram());
        let mut row = vec![name];
        for &n in &counts {
            row.push(format!(
                "{:.0}",
                100.0 * sys.scale(&layer, n).scaling_efficiency
            ));
        }
        table.push_row(row);
    }
    table
}

/// Battery lifetime: AlexNet inferences from a 100 J on-chip energy
/// budget across the early-termination points.
#[must_use]
pub fn battery_table() -> Table {
    let mut table = Table::new(
        "Section V-H: AlexNet inferences from a 100 J on-chip budget (edge)",
        &["design", "inferences", "lifetime (s)"],
    );
    for cycles in [32u64, 64, 128] {
        let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
            .with_mul_cycles(cycles)
            .expect("valid EBT");
        let mem = MemoryHierarchy::no_sram();
        let sim = Simulator::new(cfg, mem);
        let (mut energy, mut runtime) = (0.0, 0.0);
        for l in alexnet().gemms() {
            let report = sim.simulate(&l);
            energy += LayerEnergy::compute(&cfg, &mem, &report).on_chip_j();
            runtime += report.runtime_s;
        }
        let r = battery_lifetime(energy, runtime, 100.0);
        table.push_row(vec![
            format!("Unary-{cycles}c"),
            format!("{:.0}", r.inferences),
            format!("{:.0}", r.lifetime_s),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_scales_further_than_binary() {
        let t = scaling_table(ArrayShape::Edge);
        // At n=16: binary parallel far below 100 %, Unary-128c at 100 %.
        let eff = |row: usize, col: usize| -> f64 { t.rows()[row][col].parse().unwrap() };
        let n16 = 5; // columns: design, 1, 2, 4, 8, 16, ...
        assert!(eff(0, n16) < 50.0, "BP at n=16: {}", eff(0, n16));
        assert!(eff(3, n16) > 90.0, "Unary-128c at n=16: {}", eff(3, n16));
    }

    #[test]
    fn early_termination_prolongs_battery() {
        let t = battery_table();
        let inf = |row: usize| -> f64 { t.rows()[row][1].parse().unwrap() };
        assert!(
            inf(0) > inf(1) && inf(1) > inf(2),
            "32c > 64c > 128c inferences"
        );
    }
}
