//! Section V-F: layerwise power.

use crate::design::{alexnet_8bit_layers, design_points, ArrayShape};
use crate::table::{fmt_sig, Table};
use usystolic_hw::evaluate_layer;

/// Layerwise on-chip power (mW) per design.
#[must_use]
pub fn power_on_chip(shape: ArrayShape) -> Table {
    let layers = alexnet_8bit_layers();
    let mut headers: Vec<String> = vec!["design".into()];
    headers.extend(layers.iter().map(|l| l.name.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!("Section V-F: layerwise on-chip power (mW), 8-bit AlexNet, {shape}"),
        &header_refs,
    );
    for point in design_points(shape, 8) {
        let mut row = vec![point.name.to_owned()];
        for layer in &layers {
            let ev = evaluate_layer(&point.config, &point.memory, &layer.gemm);
            row.push(fmt_sig(ev.power.on_chip_w() * 1.0e3));
        }
        table.push_row(row);
    }
    table
}

/// Layerwise total power (mW, including DRAM access power) per design.
#[must_use]
pub fn power_total(shape: ArrayShape) -> Table {
    let layers = alexnet_8bit_layers();
    let mut headers: Vec<String> = vec!["design".into()];
    headers.extend(layers.iter().map(|l| l.name.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!("Section V-F: layerwise total power (mW), 8-bit AlexNet, {shape}"),
        &header_refs,
    );
    for point in design_points(shape, 8) {
        let mut row = vec![point.name.to_owned()];
        for layer in &layers {
            let ev = evaluate_layer(&point.config, &point.memory, &layer.gemm);
            row.push(fmt_sig(ev.power.total_w() * 1.0e3));
        }
        table.push_row(row);
    }
    table
}

/// Mean on-chip power reduction of each unary design vs the binary
/// baselines.
#[must_use]
pub fn power_summary(shape: ArrayShape) -> Table {
    let layers = alexnet_8bit_layers();
    let points = design_points(shape, 8);
    let mut table = Table::new(
        format!("Section V-F: mean on-chip power reduction (%), {shape}"),
        &["design", "vs Binary Parallel", "vs Binary Serial"],
    );
    let mean_power = |idx: usize| -> Vec<f64> {
        layers
            .iter()
            .map(|l| {
                evaluate_layer(&points[idx].config, &points[idx].memory, &l.gemm)
                    .power
                    .on_chip_w()
            })
            .collect()
    };
    let bp = mean_power(0);
    let bs = mean_power(1);
    for (idx, point) in points.iter().enumerate().skip(2) {
        let ours = mean_power(idx);
        let vs = |base: &[f64]| -> f64 {
            100.0 * ours.iter().zip(base).map(|(o, b)| 1.0 - o / b).sum::<f64>() / ours.len() as f64
        };
        table.push_row(vec![
            point.name.to_owned(),
            format!("{:.1}", vs(&bp)),
            format!("{:.1}", vs(&bs)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_on_chip_power_reduction_is_huge() {
        // Paper: [97.6, 99.5] % mean 98.4 % vs binary parallel at the edge.
        let t = power_summary(ArrayShape::Edge);
        for row in t.rows() {
            let vs_bp: f64 = row[1].parse().unwrap();
            assert!(vs_bp > 90.0, "{}: reduction {vs_bp}% below band", row[0]);
        }
    }

    #[test]
    fn cloud_reduction_is_smaller_than_edge() {
        // Paper: cloud mean 66.4 % vs edge 98.4 %.
        let edge = power_summary(ArrayShape::Edge);
        let cloud = power_summary(ArrayShape::Cloud);
        let e: f64 = edge.rows()[2][1].parse().unwrap(); // Unary-128c
        let c: f64 = cloud.rows()[2][1].parse().unwrap();
        assert!(c < e, "cloud {c}% must trail edge {e}%");
    }

    #[test]
    fn total_power_exceeds_on_chip() {
        let on = power_on_chip(ArrayShape::Edge);
        let tot = power_total(ArrayShape::Edge);
        for (r_on, r_tot) in on.rows().iter().zip(tot.rows()) {
            for c in 1..r_on.len() {
                let a: f64 = r_on[c].parse().unwrap();
                let b: f64 = r_tot[c].parse().unwrap();
                assert!(b >= a, "{} col {c}", r_on[0]);
            }
        }
    }
}
