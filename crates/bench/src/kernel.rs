//! Kernel micro-benchmark: bit-serial vs fast-path MAC-window
//! evaluation on the cycle-accurate machine, with bit-exactness and
//! worker-determinism checks (`BENCH_kernel.json`).
//!
//! The headline case is the paper's 8-bit rate-coded configuration on one
//! fully-occupied 16×16 weight tile. Three companion rows time the other
//! dispatch-table paths: the closed-form temporal window (uGEMM-T), the
//! constant-sign packed bipolar kernel (uGEMM-H), and the multi-word
//! popcount reduction on a stream wider than one machine word. The report
//! also sweeps the EBT × scheme space asserting every fast path reproduces
//! the bit-serial reference exactly, and re-runs each fast path across
//! worker counts asserting the output checksum never moves.

use std::time::Instant;

use crate::table::Table;
use usystolic_core::{
    cycle_accurate_gemm_with, ComputingScheme, CycleStats, KernelMode, SystolicConfig,
};
use usystolic_gemm::{GemmConfig, Matrix};
use usystolic_obs::{JsonValue, ToJson};
use usystolic_unary::rng::SplitMix64;

/// Result of one kernel benchmark run.
#[derive(Debug, Clone)]
pub struct KernelBench {
    /// Tile rows/cols of the headline case (square).
    pub tile: usize,
    /// Data bitwidth of the headline case.
    pub bitwidth: u32,
    /// Input vectors pushed through the tile.
    pub vectors: usize,
    /// Timing iterations (best-of).
    pub iters: usize,
    /// Bit-serial wall time, microseconds (best of `iters`).
    pub serial_us: f64,
    /// Word-packed wall time, microseconds (best of `iters`).
    pub packed_us: f64,
    /// `serial_us / packed_us`.
    pub speedup: f64,
    /// Output checksum of the bit-serial run.
    pub checksum_serial: u64,
    /// Output checksum of the packed run.
    pub checksum_packed: u64,
    /// Whether the two checksums (and cycle statistics) agree.
    pub checksums_match: bool,
    /// Whether the fast kernels matched the bit-serial reference exactly
    /// over the full EBT × scheme sweep and the multi-word case.
    pub bit_exact: bool,
    /// Worker counts exercised by the determinism check.
    pub workers: Vec<usize>,
    /// Whether every worker count produced the packed checksum.
    pub workers_consistent: bool,
    /// Bit-serial wall time of the temporal (uGEMM-T) case, microseconds.
    pub temporal_serial_us: f64,
    /// Closed-form wall time of the temporal case, microseconds.
    pub temporal_closed_us: f64,
    /// `temporal_serial_us / temporal_closed_us`.
    pub temporal_speedup: f64,
    /// Whether the closed-form temporal window reproduced the bit-serial
    /// reference (outputs and cycle statistics) at every worker count.
    pub temporal_bit_exact: bool,
    /// Bit-serial wall time of the uGEMM-H case, microseconds.
    pub hybrid_serial_us: f64,
    /// Packed wall time of the uGEMM-H case, microseconds.
    pub hybrid_packed_us: f64,
    /// `hybrid_serial_us / hybrid_packed_us`.
    pub hybrid_speedup: f64,
    /// Whether the packed bipolar uGEMM-H kernel reproduced the bit-serial
    /// reference (outputs and cycle statistics) at every worker count.
    pub hybrid_bit_exact: bool,
    /// Data bitwidth of the multi-word case (stream wider than 64 bits).
    pub multiword_bitwidth: u32,
    /// Bit-serial wall time of the multi-word case, microseconds.
    pub multiword_serial_us: f64,
    /// Packed wall time of the multi-word case, microseconds.
    pub multiword_packed_us: f64,
    /// `multiword_serial_us / multiword_packed_us`.
    pub multiword_speedup: f64,
}

/// Order-sensitive FNV-style checksum over an output matrix and its cycle
/// statistics, so "same checksum" means "same result, bit for bit".
#[must_use]
pub fn checksum(out: &Matrix<i64>, stats: &CycleStats) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for &v in out.as_slice() {
        mix(v as u64);
    }
    mix(stats.cycles);
    mix(stats.busy_pe_cycles);
    mix(stats.tiles);
    mix(stats.saturation_events);
    h
}

fn deterministic_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<i64> {
    let mut rng = SplitMix64::new(seed);
    let mut m = Matrix::<i64>::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.range_i64(-127, 127);
    }
    m
}

fn headline_case(tile: usize, vectors: usize) -> (GemmConfig, Matrix<i64>, Matrix<i64>) {
    let gemm = GemmConfig::matmul(vectors, tile, tile).expect("valid benchmark shape");
    let input = deterministic_matrix(vectors, tile, 0x5eed_0001);
    let weights = deterministic_matrix(tile, tile, 0x5eed_0002);
    (gemm, input, weights)
}

fn time_best(iters: usize, mut f: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut last = 0u64;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        last = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    (best, last)
}

/// One serial-vs-fast comparison: best-of timings, speedup, and a
/// bit-exactness verdict that also replays the fast path at every
/// requested worker count (outputs *and* cycle statistics must agree).
struct PairTiming {
    serial_us: f64,
    fast_us: f64,
    speedup: f64,
    exact: bool,
}

fn timed_pair(
    cfg: &SystolicConfig,
    gemm: &GemmConfig,
    input: &Matrix<i64>,
    weights: &Matrix<i64>,
    iters: usize,
    workers: &[usize],
) -> PairTiming {
    let (serial_us, checksum_serial) = time_best(iters, || {
        let (out, stats) =
            cycle_accurate_gemm_with(cfg, gemm, input, weights, KernelMode::Serial, 1)
                .expect("serial run");
        checksum(&out, &stats)
    });
    let (fast_us, checksum_fast) = time_best(iters, || {
        let (out, stats) =
            cycle_accurate_gemm_with(cfg, gemm, input, weights, KernelMode::Packed, 1)
                .expect("fast run");
        checksum(&out, &stats)
    });
    let mut exact = checksum_serial == checksum_fast;
    for &w in workers {
        let (out, stats) =
            cycle_accurate_gemm_with(cfg, gemm, input, weights, KernelMode::Packed, w)
                .expect("worker run");
        exact &= checksum(&out, &stats) == checksum_fast;
    }
    PairTiming {
        serial_us,
        fast_us,
        speedup: serial_us / fast_us.max(1e-9),
        exact,
    }
}

/// Runs the kernel benchmark. `short` shrinks the vector count and the
/// timing iterations for CI smoke runs; `workers` is the determinism
/// sweep (deduplicated order kept).
#[must_use]
pub fn run(short: bool, workers: &[usize]) -> KernelBench {
    let tile = 16usize;
    let bitwidth = 8u32;
    let (vectors, iters) = if short { (4, 1) } else { (16, 3) };
    let workers: Vec<usize> = if workers.is_empty() {
        vec![1, 2, 4, 8]
    } else {
        workers.to_vec()
    };
    let cfg = SystolicConfig::new(tile, tile, ComputingScheme::UnaryRate, bitwidth)
        .expect("valid benchmark configuration")
        .with_acc_width(32);
    let (gemm, input, weights) = headline_case(tile, vectors);

    let (serial_us, checksum_serial) = time_best(iters, || {
        let (out, stats) =
            cycle_accurate_gemm_with(&cfg, &gemm, &input, &weights, KernelMode::Serial, 1)
                .expect("serial run");
        checksum(&out, &stats)
    });
    let (packed_us, checksum_packed) = time_best(iters, || {
        let (out, stats) =
            cycle_accurate_gemm_with(&cfg, &gemm, &input, &weights, KernelMode::Packed, 1)
                .expect("packed run");
        checksum(&out, &stats)
    });

    // EBT × scheme bit-exactness sweep (small case keeps smoke runs fast).
    // uGEMM-H rejects true early termination, so it rides along at the
    // full-width no-op EBT, pinning its packed kernel against the
    // bit-serial bipolar walk.
    let (sweep_gemm, sweep_in, sweep_w) = headline_case(8, 3);
    let mut bit_exact = true;
    for (scheme, ebts) in [
        (ComputingScheme::UnaryRate, &[8u32, 7, 6, 5, 4][..]),
        (ComputingScheme::UnaryTemporal, &[8u32][..]),
        (ComputingScheme::UGemmHybrid, &[8u32][..]),
    ] {
        for &ebt in ebts {
            let sweep_cfg = SystolicConfig::new(8, 8, scheme, bitwidth)
                .expect("valid sweep configuration")
                .with_effective_bitwidth(ebt)
                .expect("valid EBT")
                .with_acc_width(32);
            let (so, ss) = cycle_accurate_gemm_with(
                &sweep_cfg,
                &sweep_gemm,
                &sweep_in,
                &sweep_w,
                KernelMode::Serial,
                1,
            )
            .expect("serial sweep run");
            let (po, ps) = cycle_accurate_gemm_with(
                &sweep_cfg,
                &sweep_gemm,
                &sweep_in,
                &sweep_w,
                KernelMode::Packed,
                1,
            )
            .expect("packed sweep run");
            bit_exact &= checksum(&so, &ss) == checksum(&po, &ps);
        }
    }

    // Worker determinism: the packed checksum must never move.
    let workers_consistent = workers.iter().all(|&w| {
        let (out, stats) =
            cycle_accurate_gemm_with(&cfg, &gemm, &input, &weights, KernelMode::Packed, w)
                .expect("worker run");
        checksum(&out, &stats) == checksum_packed
    });

    // Closed-form temporal window (uGEMM-T): the dispatch table resolves
    // the fast path to `KernelPath::ClosedForm`, so no stream is ever
    // materialised — window ones come from the prefix-count arithmetic.
    let temporal_cfg = SystolicConfig::new(tile, tile, ComputingScheme::UnaryTemporal, bitwidth)
        .expect("valid temporal configuration")
        .with_acc_width(32);
    let temporal = timed_pair(&temporal_cfg, &gemm, &input, &weights, iters, &workers);

    // Packed bipolar uGEMM-H: constant-sign enable masks replace the
    // conditionally-advanced RNG walk. Saturation statistics must agree
    // too, so the accumulator stays at the default full width here.
    let hybrid_tile = 8usize;
    let hybrid_cfg = SystolicConfig::new(
        hybrid_tile,
        hybrid_tile,
        ComputingScheme::UGemmHybrid,
        bitwidth,
    )
    .expect("valid hybrid configuration")
    .with_acc_width(32);
    let (hybrid_gemm, hybrid_in, hybrid_w) = headline_case(hybrid_tile, vectors.min(8));
    let hybrid = timed_pair(
        &hybrid_cfg,
        &hybrid_gemm,
        &hybrid_in,
        &hybrid_w,
        iters,
        &workers,
    );

    // Multi-word reduction: a 14-bit rate-coded stream is 2^13 bits =
    // 128 u64 words per comparator stream, exercising the unrolled
    // popcount chain far past the single-word fast case.
    let multiword_bitwidth = 14u32;
    let multiword_tile = 4usize;
    let multiword_cfg = SystolicConfig::new(
        multiword_tile,
        multiword_tile,
        ComputingScheme::UnaryRate,
        multiword_bitwidth,
    )
    .expect("valid multi-word configuration")
    .with_acc_width(32);
    let (mw_gemm, mw_in, mw_w) = headline_case(multiword_tile, 2);
    let multiword = timed_pair(&multiword_cfg, &mw_gemm, &mw_in, &mw_w, iters, &workers);
    bit_exact &= multiword.exact;

    KernelBench {
        tile,
        bitwidth,
        vectors,
        iters,
        serial_us,
        packed_us,
        speedup: serial_us / packed_us.max(1e-9),
        checksum_serial,
        checksum_packed,
        checksums_match: checksum_serial == checksum_packed,
        bit_exact,
        workers,
        workers_consistent,
        temporal_serial_us: temporal.serial_us,
        temporal_closed_us: temporal.fast_us,
        temporal_speedup: temporal.speedup,
        temporal_bit_exact: temporal.exact,
        hybrid_serial_us: hybrid.serial_us,
        hybrid_packed_us: hybrid.fast_us,
        hybrid_speedup: hybrid.speedup,
        hybrid_bit_exact: hybrid.exact,
        multiword_bitwidth,
        multiword_serial_us: multiword.serial_us,
        multiword_packed_us: multiword.fast_us,
        multiword_speedup: multiword.speedup,
    }
}

impl KernelBench {
    /// Renders the report as an aligned text table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Kernel bench: {}-bit rate-coded {}x{} tile, {} vectors",
                self.bitwidth, self.tile, self.tile, self.vectors
            ),
            &["metric", "value"],
        );
        t.push_row(vec!["serial us".into(), format!("{:.1}", self.serial_us)]);
        t.push_row(vec!["packed us".into(), format!("{:.1}", self.packed_us)]);
        t.push_row(vec!["speedup".into(), format!("{:.1}x", self.speedup)]);
        t.push_row(vec![
            "checksums match".into(),
            self.checksums_match.to_string(),
        ]);
        t.push_row(vec![
            "bit exact (EBT sweep)".into(),
            self.bit_exact.to_string(),
        ]);
        t.push_row(vec![
            "workers consistent".into(),
            format!("{} ({:?})", self.workers_consistent, self.workers),
        ]);
        t.push_row(vec![
            "temporal closed-form speedup".into(),
            format!(
                "{:.1}x ({:.1} -> {:.1} us)",
                self.temporal_speedup, self.temporal_serial_us, self.temporal_closed_us
            ),
        ]);
        t.push_row(vec![
            "temporal bit exact".into(),
            self.temporal_bit_exact.to_string(),
        ]);
        t.push_row(vec![
            "uGEMM-H packed speedup".into(),
            format!(
                "{:.1}x ({:.1} -> {:.1} us)",
                self.hybrid_speedup, self.hybrid_serial_us, self.hybrid_packed_us
            ),
        ]);
        t.push_row(vec![
            "uGEMM-H bit exact".into(),
            self.hybrid_bit_exact.to_string(),
        ]);
        t.push_row(vec![
            format!("multi-word speedup ({}-bit)", self.multiword_bitwidth),
            format!(
                "{:.1}x ({:.1} -> {:.1} us)",
                self.multiword_speedup, self.multiword_serial_us, self.multiword_packed_us
            ),
        ]);
        t
    }
}

impl ToJson for KernelBench {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("tile", (self.tile as u64).to_json()),
            ("bitwidth", u64::from(self.bitwidth).to_json()),
            ("vectors", (self.vectors as u64).to_json()),
            ("iters", (self.iters as u64).to_json()),
            ("serial_us", self.serial_us.to_json()),
            ("packed_us", self.packed_us.to_json()),
            ("speedup", self.speedup.to_json()),
            ("checksum_serial", self.checksum_serial.to_json()),
            ("checksum_packed", self.checksum_packed.to_json()),
            ("checksums_match", JsonValue::Bool(self.checksums_match)),
            ("bit_exact", JsonValue::Bool(self.bit_exact)),
            (
                "workers",
                JsonValue::Array(self.workers.iter().map(|&w| (w as u64).to_json()).collect()),
            ),
            (
                "workers_consistent",
                JsonValue::Bool(self.workers_consistent),
            ),
            ("temporal_serial_us", self.temporal_serial_us.to_json()),
            ("temporal_closed_us", self.temporal_closed_us.to_json()),
            ("temporal_speedup", self.temporal_speedup.to_json()),
            (
                "temporal_bit_exact",
                JsonValue::Bool(self.temporal_bit_exact),
            ),
            ("hybrid_serial_us", self.hybrid_serial_us.to_json()),
            ("hybrid_packed_us", self.hybrid_packed_us.to_json()),
            ("hybrid_speedup", self.hybrid_speedup.to_json()),
            ("hybrid_bit_exact", JsonValue::Bool(self.hybrid_bit_exact)),
            (
                "multiword_bitwidth",
                u64::from(self.multiword_bitwidth).to_json(),
            ),
            ("multiword_serial_us", self.multiword_serial_us.to_json()),
            ("multiword_packed_us", self.multiword_packed_us.to_json()),
            ("multiword_speedup", self.multiword_speedup.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_bench_is_exact_and_deterministic() {
        let report = run(true, &[1, 2, 3]);
        assert!(report.checksums_match, "serial vs packed checksums differ");
        assert!(report.bit_exact, "EBT sweep found a mismatch");
        assert!(report.workers_consistent, "worker count changed results");
        assert!(report.serial_us > 0.0 && report.packed_us > 0.0);
        assert!(report.temporal_bit_exact, "closed-form temporal mismatch");
        assert!(report.hybrid_bit_exact, "packed uGEMM-H mismatch");
        assert!(report.temporal_serial_us > 0.0 && report.temporal_closed_us > 0.0);
        assert!(report.hybrid_serial_us > 0.0 && report.hybrid_packed_us > 0.0);
        assert!(report.multiword_serial_us > 0.0 && report.multiword_packed_us > 0.0);
        let json = report.to_json().render();
        assert!(json.contains("\"checksums_match\":true"), "{json}");
        assert!(json.contains("\"bit_exact\":true"), "{json}");
        assert!(json.contains("\"workers_consistent\":true"), "{json}");
        assert!(json.contains("\"temporal_bit_exact\":true"), "{json}");
        assert!(json.contains("\"hybrid_bit_exact\":true"), "{json}");
        assert!(json.contains("\"multiword_speedup\""), "{json}");
        assert!(report.table().rows().len() >= 11);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let a = deterministic_matrix(2, 2, 1);
        let mut b = a.clone();
        let s = CycleStats::default();
        assert_eq!(checksum(&a, &s), checksum(&b, &s));
        let (x, y) = (b[(0, 0)], b[(0, 1)]);
        b[(0, 0)] = y;
        b[(0, 1)] = x;
        assert_ne!(checksum(&a, &s), checksum(&b, &s));
    }
}
