//! Kernel micro-benchmark: bit-serial vs word-packed MAC-window
//! evaluation on the cycle-accurate machine, with bit-exactness and
//! worker-determinism checks (`BENCH_kernel.json`).
//!
//! The headline case is the paper's 8-bit rate-coded configuration on one
//! fully-occupied 16×16 weight tile; the report also sweeps the
//! EBT × scheme space asserting the packed kernel reproduces the
//! bit-serial reference exactly, and re-runs the packed sweep across
//! worker counts asserting the output checksum never moves.

use std::time::Instant;

use crate::table::Table;
use usystolic_core::{
    cycle_accurate_gemm_with, ComputingScheme, CycleStats, KernelMode, SystolicConfig,
};
use usystolic_gemm::{GemmConfig, Matrix};
use usystolic_obs::{JsonValue, ToJson};
use usystolic_unary::rng::SplitMix64;

/// Result of one kernel benchmark run.
#[derive(Debug, Clone)]
pub struct KernelBench {
    /// Tile rows/cols of the headline case (square).
    pub tile: usize,
    /// Data bitwidth of the headline case.
    pub bitwidth: u32,
    /// Input vectors pushed through the tile.
    pub vectors: usize,
    /// Timing iterations (best-of).
    pub iters: usize,
    /// Bit-serial wall time, microseconds (best of `iters`).
    pub serial_us: f64,
    /// Word-packed wall time, microseconds (best of `iters`).
    pub packed_us: f64,
    /// `serial_us / packed_us`.
    pub speedup: f64,
    /// Output checksum of the bit-serial run.
    pub checksum_serial: u64,
    /// Output checksum of the packed run.
    pub checksum_packed: u64,
    /// Whether the two checksums (and cycle statistics) agree.
    pub checksums_match: bool,
    /// Whether the packed kernel matched the bit-serial reference exactly
    /// over the full EBT × scheme sweep.
    pub bit_exact: bool,
    /// Worker counts exercised by the determinism check.
    pub workers: Vec<usize>,
    /// Whether every worker count produced the packed checksum.
    pub workers_consistent: bool,
}

/// Order-sensitive FNV-style checksum over an output matrix and its cycle
/// statistics, so "same checksum" means "same result, bit for bit".
#[must_use]
pub fn checksum(out: &Matrix<i64>, stats: &CycleStats) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for &v in out.as_slice() {
        mix(v as u64);
    }
    mix(stats.cycles);
    mix(stats.busy_pe_cycles);
    mix(stats.tiles);
    mix(stats.saturation_events);
    h
}

fn deterministic_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<i64> {
    let mut rng = SplitMix64::new(seed);
    let mut m = Matrix::<i64>::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.range_i64(-127, 127);
    }
    m
}

fn headline_case(tile: usize, vectors: usize) -> (GemmConfig, Matrix<i64>, Matrix<i64>) {
    let gemm = GemmConfig::matmul(vectors, tile, tile).expect("valid benchmark shape");
    let input = deterministic_matrix(vectors, tile, 0x5eed_0001);
    let weights = deterministic_matrix(tile, tile, 0x5eed_0002);
    (gemm, input, weights)
}

fn time_best(iters: usize, mut f: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut last = 0u64;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        last = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    (best, last)
}

/// Runs the kernel benchmark. `short` shrinks the vector count and the
/// timing iterations for CI smoke runs; `workers` is the determinism
/// sweep (deduplicated order kept).
#[must_use]
pub fn run(short: bool, workers: &[usize]) -> KernelBench {
    let tile = 16usize;
    let bitwidth = 8u32;
    let (vectors, iters) = if short { (4, 1) } else { (16, 3) };
    let cfg = SystolicConfig::new(tile, tile, ComputingScheme::UnaryRate, bitwidth)
        .expect("valid benchmark configuration")
        .with_acc_width(32);
    let (gemm, input, weights) = headline_case(tile, vectors);

    let (serial_us, checksum_serial) = time_best(iters, || {
        let (out, stats) =
            cycle_accurate_gemm_with(&cfg, &gemm, &input, &weights, KernelMode::Serial, 1)
                .expect("serial run");
        checksum(&out, &stats)
    });
    let (packed_us, checksum_packed) = time_best(iters, || {
        let (out, stats) =
            cycle_accurate_gemm_with(&cfg, &gemm, &input, &weights, KernelMode::Packed, 1)
                .expect("packed run");
        checksum(&out, &stats)
    });

    // EBT × scheme bit-exactness sweep (small case keeps smoke runs fast).
    let (sweep_gemm, sweep_in, sweep_w) = headline_case(8, 3);
    let mut bit_exact = true;
    for (scheme, ebts) in [
        (ComputingScheme::UnaryRate, &[8u32, 7, 6, 5, 4][..]),
        (ComputingScheme::UnaryTemporal, &[8u32][..]),
    ] {
        for &ebt in ebts {
            let sweep_cfg = SystolicConfig::new(8, 8, scheme, bitwidth)
                .expect("valid sweep configuration")
                .with_effective_bitwidth(ebt)
                .expect("valid EBT")
                .with_acc_width(32);
            let (so, ss) = cycle_accurate_gemm_with(
                &sweep_cfg,
                &sweep_gemm,
                &sweep_in,
                &sweep_w,
                KernelMode::Serial,
                1,
            )
            .expect("serial sweep run");
            let (po, ps) = cycle_accurate_gemm_with(
                &sweep_cfg,
                &sweep_gemm,
                &sweep_in,
                &sweep_w,
                KernelMode::Packed,
                1,
            )
            .expect("packed sweep run");
            bit_exact &= checksum(&so, &ss) == checksum(&po, &ps);
        }
    }

    // Worker determinism: the packed checksum must never move.
    let workers: Vec<usize> = if workers.is_empty() {
        vec![1, 2, 4, 8]
    } else {
        workers.to_vec()
    };
    let workers_consistent = workers.iter().all(|&w| {
        let (out, stats) =
            cycle_accurate_gemm_with(&cfg, &gemm, &input, &weights, KernelMode::Packed, w)
                .expect("worker run");
        checksum(&out, &stats) == checksum_packed
    });

    KernelBench {
        tile,
        bitwidth,
        vectors,
        iters,
        serial_us,
        packed_us,
        speedup: serial_us / packed_us.max(1e-9),
        checksum_serial,
        checksum_packed,
        checksums_match: checksum_serial == checksum_packed,
        bit_exact,
        workers,
        workers_consistent,
    }
}

impl KernelBench {
    /// Renders the report as an aligned text table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Kernel bench: {}-bit rate-coded {}x{} tile, {} vectors",
                self.bitwidth, self.tile, self.tile, self.vectors
            ),
            &["metric", "value"],
        );
        t.push_row(vec!["serial us".into(), format!("{:.1}", self.serial_us)]);
        t.push_row(vec!["packed us".into(), format!("{:.1}", self.packed_us)]);
        t.push_row(vec!["speedup".into(), format!("{:.1}x", self.speedup)]);
        t.push_row(vec![
            "checksums match".into(),
            self.checksums_match.to_string(),
        ]);
        t.push_row(vec![
            "bit exact (EBT sweep)".into(),
            self.bit_exact.to_string(),
        ]);
        t.push_row(vec![
            "workers consistent".into(),
            format!("{} ({:?})", self.workers_consistent, self.workers),
        ]);
        t
    }
}

impl ToJson for KernelBench {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("tile", (self.tile as u64).to_json()),
            ("bitwidth", u64::from(self.bitwidth).to_json()),
            ("vectors", (self.vectors as u64).to_json()),
            ("iters", (self.iters as u64).to_json()),
            ("serial_us", self.serial_us.to_json()),
            ("packed_us", self.packed_us.to_json()),
            ("speedup", self.speedup.to_json()),
            ("checksum_serial", self.checksum_serial.to_json()),
            ("checksum_packed", self.checksum_packed.to_json()),
            ("checksums_match", JsonValue::Bool(self.checksums_match)),
            ("bit_exact", JsonValue::Bool(self.bit_exact)),
            (
                "workers",
                JsonValue::Array(self.workers.iter().map(|&w| (w as u64).to_json()).collect()),
            ),
            (
                "workers_consistent",
                JsonValue::Bool(self.workers_consistent),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_bench_is_exact_and_deterministic() {
        let report = run(true, &[1, 2, 3]);
        assert!(report.checksums_match, "serial vs packed checksums differ");
        assert!(report.bit_exact, "EBT sweep found a mismatch");
        assert!(report.workers_consistent, "worker count changed results");
        assert!(report.serial_us > 0.0 && report.packed_us > 0.0);
        let json = report.to_json().render();
        assert!(json.contains("\"checksums_match\":true"), "{json}");
        assert!(json.contains("\"bit_exact\":true"), "{json}");
        assert!(json.contains("\"workers_consistent\":true"), "{json}");
        assert!(report.table().rows().len() >= 6);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let a = deterministic_matrix(2, 2, 1);
        let mut b = a.clone();
        let s = CycleStats::default();
        assert_eq!(checksum(&a, &s), checksum(&b, &s));
        let (x, y) = (b[(0, 0)], b[(0, 1)]);
        b[(0, 0)] = y;
        b[(0, 1)] = x;
        assert_ne!(checksum(&a, &s), checksum(&b, &s));
    }
}
