//! Fig. 11: area breakdown of 8-bit and 16-bit systolic arrays.

use crate::design::ArrayShape;
use crate::table::{fmt_sig, Table};
use usystolic_core::{ComputingScheme, SystolicConfig};
use usystolic_hw::{ArrayArea, OnChipArea};
use usystolic_sim::MemoryHierarchy;

/// The Fig. 11 scheme order: BP, BS, UG, UR, UT.
const SCHEMES: [ComputingScheme; 5] = [
    ComputingScheme::BinaryParallel,
    ComputingScheme::BinarySerial,
    ComputingScheme::UGemmHybrid,
    ComputingScheme::UnaryRate,
    ComputingScheme::UnaryTemporal,
];

fn config_for(shape: ArrayShape, scheme: ComputingScheme, bitwidth: u32) -> SystolicConfig {
    match shape {
        ArrayShape::Edge => SystolicConfig::edge(scheme, bitwidth),
        ArrayShape::Cloud => SystolicConfig::cloud(scheme, bitwidth),
    }
}

/// Computes the Fig. 11 stacks: IREG / WREG / MUL / ACC / SRAM areas (mm²)
/// for every scheme at 8 and 16 bits.
#[must_use]
pub fn figure11(shape: ArrayShape) -> Table {
    let mut table = Table::new(
        format!(
            "Fig. 11{}: area breakdown (mm2), {shape}",
            if shape == ArrayShape::Edge { "a" } else { "b" }
        ),
        &[
            "design", "IREG", "WREG", "MUL", "ACC", "SA total", "SRAM", "on-chip",
        ],
    );
    for bitwidth in [8u32, 16] {
        for scheme in SCHEMES {
            let cfg = config_for(shape, scheme, bitwidth);
            // Binary designs keep SRAM; unary designs are evaluated
            // without (Section V-B conclusion).
            let memory = if scheme.is_unary() {
                MemoryHierarchy::no_sram()
            } else {
                shape.memory_with_sram()
            };
            let a = ArrayArea::for_config(&cfg);
            let chip = OnChipArea::for_config(&cfg, &memory);
            table.push_row(vec![
                format!("{}-{}b", scheme.label(), bitwidth),
                fmt_sig(a.ireg_mm2),
                fmt_sig(a.wreg_mm2),
                fmt_sig(a.mul_mm2),
                fmt_sig(a.acc_mm2),
                fmt_sig(a.total_mm2()),
                fmt_sig(chip.sram_mm2),
                fmt_sig(chip.total_mm2()),
            ]);
        }
    }
    table
}

/// Section V-C's headline reductions: SA area reduction of each scheme
/// from BP, and on-chip reduction of SRAM-less UR from SRAM-backed BP/BS.
#[must_use]
pub fn area_reductions(shape: ArrayShape, bitwidth: u32) -> Table {
    let bp = ArrayArea::for_config(&config_for(
        shape,
        ComputingScheme::BinaryParallel,
        bitwidth,
    ))
    .total_mm2();
    let mut table = Table::new(
        format!("Section V-C: area reductions vs BP (%), {shape}, {bitwidth}-bit"),
        &["scheme", "SA reduction %", "on-chip reduction %"],
    );
    let bp_chip = OnChipArea::for_config(
        &config_for(shape, ComputingScheme::BinaryParallel, bitwidth),
        &shape.memory_with_sram(),
    )
    .total_mm2();
    for scheme in &SCHEMES[1..] {
        let sa = ArrayArea::for_config(&config_for(shape, *scheme, bitwidth)).total_mm2();
        let memory = if scheme.is_unary() {
            MemoryHierarchy::no_sram()
        } else {
            shape.memory_with_sram()
        };
        let chip =
            OnChipArea::for_config(&config_for(shape, *scheme, bitwidth), &memory).total_mm2();
        table.push_row(vec![
            scheme.label().to_owned(),
            format!("{:.1}", 100.0 * (1.0 - sa / bp)),
            format!("{:.1}", 100.0 * (1.0 - chip / bp_chip)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_covers_ten_designs() {
        let t = figure11(ArrayShape::Edge);
        assert_eq!(t.len(), 10); // 5 schemes × 2 bitwidths
        assert!(t.rows()[0][0] == "BP-8b");
        assert!(t.rows()[9][0] == "UT-16b");
    }

    #[test]
    fn edge_reductions_match_paper_bands() {
        // Paper: BS/UG/UR/UT reduce SA area by 30.9/50.9/59.0/62.5 %.
        let t = area_reductions(ArrayShape::Edge, 8);
        let red = |row: usize| -> f64 { t.rows()[row][1].parse().unwrap() };
        assert!((red(0) - 30.9).abs() < 8.0, "BS {}", red(0));
        assert!((red(1) - 50.9).abs() < 8.0, "UG {}", red(1));
        assert!((red(2) - 59.0).abs() < 8.0, "UR {}", red(2));
        assert!((red(3) - 62.5).abs() < 8.0, "UT {}", red(3));
        // On-chip: UR without SRAM vs BP with SRAM ≈ 91.3 %.
        let on_chip: f64 = t.rows()[2][2].parse().unwrap();
        assert!((on_chip - 91.3).abs() < 6.0, "on-chip {on_chip}");
    }

    #[test]
    fn sram_dominates_binary_on_chip_area() {
        let t = figure11(ArrayShape::Edge);
        // BP-8b row: SRAM column (6) exceeds SA total (5).
        let sa: f64 = t.rows()[0][5].parse().unwrap();
        let sram: f64 = t.rows()[0][6].parse().unwrap();
        assert!(sram > sa, "SRAM {sram} should dwarf the edge SA {sa}");
    }

    #[test]
    fn sixteen_bit_designs_are_larger() {
        let t = figure11(ArrayShape::Edge);
        for scheme_idx in 0..5 {
            let a8: f64 = t.rows()[scheme_idx][5].parse().unwrap();
            let a16: f64 = t.rows()[scheme_idx + 5][5].parse().unwrap();
            assert!(a16 > a8, "row {scheme_idx}");
        }
    }
}
