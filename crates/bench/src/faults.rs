//! Resilience characterization: accuracy vs bit-error rate for the
//! unary codings against the binary baseline (`BENCH_faults.json`).
//!
//! The experiment runs the deterministic fault-injection kernels of
//! `usystolic_faults` over a BER sweep on one seeded GEMM, computing
//! each variant's NRMSE against its own fault-free output. Because a
//! unary flip is always worth one LSB of the product while a binary
//! flip at register bit `i` is worth `2^i`, the unary curves must sit
//! strictly below the binary curve at every non-zero BER even though
//! the unary stream exposes `2^(N-1)` flip opportunities per window to
//! the register's `2(N-1)+1` — the claim `unary_graceful` pins.

use crate::table::Table;
use usystolic_faults::{
    faulty_binary_gemm, faulty_unary_gemm, DeviceFaults, FaultKernel, FaultReport, GemmShape,
};
use usystolic_obs::{JsonValue, ToJson};
use usystolic_unary::coding::Coding;
use usystolic_unary::rng::SplitMix64;
use usystolic_unary::stream_len;

/// The BER sweep. The floor of `3e-3` keeps the binary baseline's
/// expected flip count well above one even on the short bench shape, so
/// the strict unary-vs-binary comparison is meaningful at every point
/// (a lone flip that happens to land on a low register bit would
/// otherwise make the curves incomparable noise).
pub const BER_SWEEP: [f64; 6] = [0.0, 3e-3, 5e-3, 1e-2, 3e-2, 0.1];

/// One point of the accuracy-vs-BER curve.
#[derive(Debug, Clone, Copy)]
pub struct BerPoint {
    /// Transient bit-error rate injected at this point.
    pub ber: f64,
    /// Rate-coded unary NRMSE vs its fault-free output.
    pub rate_nrmse: f64,
    /// Temporal-coded unary NRMSE vs its fault-free output.
    pub temporal_nrmse: f64,
    /// Binary-baseline NRMSE vs its fault-free output.
    pub binary_nrmse: f64,
    /// Flips injected into the rate-coded unary streams.
    pub rate_flips: u64,
    /// Flips injected into the binary product registers.
    pub binary_flips: u64,
    /// Whether the bit-serial and word-packed unary kernels agreed bit
    /// for bit at this point (rate coding).
    pub kernels_agree: bool,
    /// Checksum of the rate-coded packed run (the determinism oracle).
    pub rate_checksum: u64,
}

impl ToJson for BerPoint {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("ber", self.ber.to_json()),
            ("rate_nrmse", self.rate_nrmse.to_json()),
            ("temporal_nrmse", self.temporal_nrmse.to_json()),
            ("binary_nrmse", self.binary_nrmse.to_json()),
            ("rate_flips", self.rate_flips.to_json()),
            ("binary_flips", self.binary_flips.to_json()),
            ("kernels_agree", JsonValue::Bool(self.kernels_agree)),
            ("rate_checksum", self.rate_checksum.to_json()),
        ])
    }
}

/// Result of the resilience characterization.
#[derive(Debug, Clone)]
pub struct FaultsBench {
    /// GEMM shape `(m, k, n)` of the characterized window.
    pub shape: (usize, usize, usize),
    /// Operand bitwidth.
    pub bitwidth: u32,
    /// Master fault seed.
    pub seed: u64,
    /// The accuracy-vs-BER curve.
    pub points: Vec<BerPoint>,
    /// Whether serial and packed unary kernels agreed at every point.
    pub kernels_agree: bool,
    /// Whether re-running the highest-BER point reproduced its checksum.
    pub deterministic: bool,
    /// Whether both unary codings sit strictly below the binary curve at
    /// every non-zero BER — the graceful-degradation claim.
    pub unary_graceful: bool,
}

/// NRMSE of `faulty` against `clean`, normalized by the clean RMS.
fn nrmse(faulty: &FaultReport, clean: &FaultReport) -> f64 {
    let n = clean.output.len() as f64;
    let mse: f64 = faulty
        .output
        .iter()
        .zip(&clean.output)
        .map(|(&f, &c)| {
            let d = (f - c) as f64;
            d * d
        })
        .sum::<f64>()
        / n;
    let ref_ms: f64 = clean
        .output
        .iter()
        .map(|&c| (c as f64) * (c as f64))
        .sum::<f64>()
        / n;
    if ref_ms > 0.0 {
        (mse / ref_ms).sqrt()
    } else {
        mse.sqrt()
    }
}

/// Runs the characterization. `short` shrinks the GEMM window for CI
/// smoke runs; `seed` keys every fault site and the operand draw.
#[must_use]
pub fn run(short: bool, seed: u64) -> FaultsBench {
    let (m, k, n) = if short { (4, 8, 4) } else { (8, 16, 8) };
    let shape = GemmShape { m, k, n };
    let bitwidth = 8u32;
    let hi = (stream_len(bitwidth) - 1).cast_signed();
    let mut rng = SplitMix64::new(seed);
    let a: Vec<i64> = (0..m * k).map(|_| rng.range_i64(-hi, hi)).collect();
    let b: Vec<i64> = (0..k * n).map(|_| rng.range_i64(-hi, hi)).collect();

    let unary = |ber: f64, coding: Coding, kernel: FaultKernel| {
        let model = DeviceFaults::new(seed).with_ber(ber);
        faulty_unary_gemm(&a, &b, shape, bitwidth, coding, &model, kernel)
            .expect("valid bench fault model")
    };
    let binary = |ber: f64| {
        let model = DeviceFaults::new(seed).with_ber(ber);
        faulty_binary_gemm(&a, &b, shape, bitwidth, &model).expect("valid bench fault model")
    };

    let rate_clean = unary(0.0, Coding::Rate, FaultKernel::Packed);
    let temporal_clean = unary(0.0, Coding::Temporal, FaultKernel::Packed);
    let binary_clean = binary(0.0);

    let points: Vec<BerPoint> = BER_SWEEP
        .iter()
        .map(|&ber| {
            let rate_serial = unary(ber, Coding::Rate, FaultKernel::Serial);
            let rate_packed = unary(ber, Coding::Rate, FaultKernel::Packed);
            let temporal = unary(ber, Coding::Temporal, FaultKernel::Packed);
            let bin = binary(ber);
            BerPoint {
                ber,
                rate_nrmse: nrmse(&rate_packed, &rate_clean),
                temporal_nrmse: nrmse(&temporal, &temporal_clean),
                binary_nrmse: nrmse(&bin, &binary_clean),
                rate_flips: rate_packed.transient_flips,
                binary_flips: bin.transient_flips,
                kernels_agree: rate_serial == rate_packed,
                rate_checksum: rate_packed.checksum(),
            }
        })
        .collect();

    let top_ber = BER_SWEEP[BER_SWEEP.len() - 1];
    let replay = unary(top_ber, Coding::Rate, FaultKernel::Packed).checksum();
    let deterministic = points.last().is_some_and(|p| p.rate_checksum == replay);
    let kernels_agree = points.iter().all(|p| p.kernels_agree);
    let unary_graceful = points
        .iter()
        .filter(|p| p.ber > 0.0)
        .all(|p| p.rate_nrmse < p.binary_nrmse && p.temporal_nrmse < p.binary_nrmse);

    FaultsBench {
        shape: (m, k, n),
        bitwidth,
        seed,
        points,
        kernels_agree,
        deterministic,
        unary_graceful,
    }
}

impl FaultsBench {
    /// Whether every pinned claim held.
    #[must_use]
    pub fn healthy(&self) -> bool {
        self.kernels_agree && self.deterministic && self.unary_graceful
    }

    /// Renders the accuracy-vs-BER curve as an aligned text table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Accuracy vs BER: {}-bit {}x{}x{} GEMM, seed {}",
                self.bitwidth, self.shape.0, self.shape.1, self.shape.2, self.seed
            ),
            &[
                "BER",
                "unary rate",
                "unary temporal",
                "binary",
                "rate flips",
                "binary flips",
            ],
        );
        for p in &self.points {
            t.push_row(vec![
                format!("{:.0e}", p.ber),
                format!("{:.4}", p.rate_nrmse),
                format!("{:.4}", p.temporal_nrmse),
                format!("{:.4}", p.binary_nrmse),
                p.rate_flips.to_string(),
                p.binary_flips.to_string(),
            ]);
        }
        t.push_row(vec![
            "graceful".into(),
            self.unary_graceful.to_string(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ]);
        t
    }
}

impl ToJson for FaultsBench {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            (
                "shape",
                JsonValue::object(vec![
                    ("m", (self.shape.0 as u64).to_json()),
                    ("k", (self.shape.1 as u64).to_json()),
                    ("n", (self.shape.2 as u64).to_json()),
                ]),
            ),
            ("bitwidth", u64::from(self.bitwidth).to_json()),
            ("seed", self.seed.to_json()),
            (
                "points",
                JsonValue::Array(self.points.iter().map(ToJson::to_json).collect()),
            ),
            ("kernels_agree", JsonValue::Bool(self.kernels_agree)),
            ("deterministic", JsonValue::Bool(self.deterministic)),
            ("unary_graceful", JsonValue::Bool(self.unary_graceful)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_bench_pins_graceful_degradation() {
        let bench = run(true, 0x5eed_fa11);
        assert!(bench.kernels_agree, "serial and packed kernels diverged");
        assert!(bench.deterministic, "replay changed the checksum");
        assert!(
            bench.unary_graceful,
            "a unary curve crossed the binary curve: {:?}",
            bench.points
        );
        assert_eq!(bench.points.len(), BER_SWEEP.len());
        // The curve is anchored at zero and strictly positive afterwards.
        assert_eq!(bench.points[0].rate_nrmse, 0.0);
        assert_eq!(bench.points[0].binary_nrmse, 0.0);
        assert!(bench.points.iter().skip(1).all(|p| p.binary_nrmse > 0.0));
    }

    #[test]
    fn same_seed_reproduces_the_whole_report() {
        let x = run(true, 9);
        let y = run(true, 9);
        let (jx, jy) = (x.to_json().render(), y.to_json().render());
        assert_eq!(jx, jy);
        let z = run(true, 10);
        assert_ne!(jx, z.to_json().render());
    }

    #[test]
    fn json_and_table_carry_the_curve() {
        let bench = run(true, 1);
        let json = bench.to_json().render();
        assert!(json.contains("\"unary_graceful\""), "{json}");
        assert!(json.contains("\"points\""), "{json}");
        assert!(bench.table().rows().len() > BER_SWEEP.len());
    }
}
