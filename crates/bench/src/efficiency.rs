//! Fig. 14: on-chip energy- and power-efficiency improvements over the
//! binary baselines, for AlexNet and the MLPerf-like suite.

use crate::design::{design_points, ArrayShape};
use crate::table::Table;
use usystolic_core::TileMapping;
use usystolic_gemm::GemmConfig;
use usystolic_hw::evaluate_layer;
use usystolic_models::mlperf::mlperf_gemms;
use usystolic_models::zoo::alexnet;

/// The workload axis of Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// 8-bit AlexNet (Fig. 14a/b).
    AlexNet,
    /// The MLPerf-like 1094-layer suite (Fig. 14c/d).
    MlPerf,
}

impl Workload {
    fn gemms(&self) -> Vec<GemmConfig> {
        match self {
            Workload::AlexNet => alexnet().gemms(),
            Workload::MlPerf => mlperf_gemms(),
        }
    }

    /// The workload label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Workload::AlexNet => "AlexNet",
            Workload::MlPerf => "MLPerf",
        }
    }
}

/// Computes a Fig. 14 panel: the mean on-chip energy-efficiency (E.E.I.)
/// and power-efficiency (P.E.I.) improvement of every unary design over
/// Binary Parallel and Binary Serial.
#[must_use]
pub fn figure14(shape: ArrayShape, workload: Workload) -> Table {
    let gemms = workload.gemms();
    let points = design_points(shape, 8);
    let mut table = Table::new(
        format!(
            "Fig. 14: on-chip efficiency improvement (x), {} on {shape}",
            workload.label()
        ),
        &["design", "EEI vs BP", "PEI vs BP", "EEI vs BS", "PEI vs BS"],
    );
    // Per-layer baseline efficiencies.
    let eff = |idx: usize| -> Vec<(f64, f64)> {
        gemms
            .iter()
            .map(|g| {
                let ev = evaluate_layer(&points[idx].config, &points[idx].memory, g);
                (
                    ev.on_chip_efficiency.energy_eff,
                    ev.on_chip_efficiency.power_eff,
                )
            })
            .collect()
    };
    let bp = eff(0);
    let bs = eff(1);
    for (idx, point) in points.iter().enumerate().skip(2) {
        let ours = eff(idx);
        let mean_gain = |base: &[(f64, f64)], energy: bool| -> f64 {
            ours.iter()
                .zip(base)
                .map(|(o, b)| if energy { o.0 / b.0 } else { o.1 / b.1 })
                .sum::<f64>()
                / ours.len() as f64
        };
        table.push_row(vec![
            point.name.to_owned(),
            format!("{:.2}", mean_gain(&bp, true)),
            format!("{:.2}", mean_gain(&bp, false)),
            format!("{:.2}", mean_gain(&bs, true)),
            format!("{:.2}", mean_gain(&bs, false)),
        ]);
    }
    table
}

/// Section V-G's utilisation comparison: mean MAC utilisation of AlexNet
/// vs the MLPerf suite on both shapes (paper: 97.1 % → 69.6 % edge,
/// 81.6 % → 37.2 % cloud).
#[must_use]
pub fn utilization_summary() -> Table {
    let mut table = Table::new(
        "Section V-G: mean MAC utilisation (%)",
        &["workload", "edge", "cloud"],
    );
    for workload in [Workload::AlexNet, Workload::MlPerf] {
        let gemms = workload.gemms();
        let mean = |rows: usize, cols: usize| -> f64 {
            100.0
                * gemms
                    .iter()
                    .map(|g| TileMapping::new(g, rows, cols).utilization())
                    .sum::<f64>()
                / gemms.len() as f64
        };
        table.push_row(vec![
            workload.label().to_owned(),
            format!("{:.1}", mean(12, 14)),
            format!("{:.1}", mean(256, 256)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn early_termination_raises_efficiency_at_edge() {
        // Fig. 14a: early termination always increases on-chip efficiency
        // over binary designs; shorter cycles help more.
        let t = figure14(ArrayShape::Edge, Workload::AlexNet);
        let eei = |row: usize| -> f64 { t.rows()[row][1].parse().unwrap() };
        assert!(eei(0) > eei(1), "32c {} vs 64c {}", eei(0), eei(1));
        assert!(eei(1) > eei(2), "64c {} vs 128c {}", eei(1), eei(2));
        assert!(eei(0) > 1.0, "Unary-32c must beat binary parallel");
        // PEI is positive for all unary designs (paper Fig. 14a).
        for row in t.rows() {
            let pei: f64 = row[2].parse().unwrap();
            assert!(pei > 1.0, "{}: PEI {pei}", row[0]);
        }
    }

    #[test]
    fn alexnet_utilization_beats_mlperf() {
        let t = utilization_summary();
        let alex_edge: f64 = t.rows()[0][1].parse().unwrap();
        let ml_edge: f64 = t.rows()[1][1].parse().unwrap();
        assert!(alex_edge > ml_edge, "edge: {alex_edge} vs {ml_edge}");
        let alex_cloud: f64 = t.rows()[0][2].parse().unwrap();
        let ml_cloud: f64 = t.rows()[1][2].parse().unwrap();
        assert!(alex_cloud > ml_cloud, "cloud: {alex_cloud} vs {ml_cloud}");
        // Paper bands: AlexNet 97.1 % (edge); MLPerf well below AlexNet.
        assert!(alex_edge > 90.0, "AlexNet edge utilisation {alex_edge}");
    }

    #[test]
    fn ugemm_h_trails_usystolic_efficiency() {
        let t = figure14(ArrayShape::Edge, Workload::AlexNet);
        let u128_eei: f64 = t.rows()[2][1].parse().unwrap();
        let ug_eei: f64 = t.rows()[3][1].parse().unwrap();
        assert!(
            ug_eei < u128_eei,
            "uGEMM-H {ug_eei} vs Unary-128c {u128_eei}"
        );
    }
}
