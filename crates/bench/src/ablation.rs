//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **RNG quality** (Section III-B picks Sobol): uMUL product error with
//!    Sobol vs maximal-length LFSR sources.
//! 2. **Reduced-resolution accumulation** (Section III-A): OREG width vs
//!    saturation and output error.
//! 3. **Early termination** (Section III-C): the accuracy-energy trade-off
//!    curve that motivates using ET as the paper's evaluation knob.
//! 4. **Error propagation**: per-layer error compounding through a deep
//!    GEMM chain (the k-layer DNN context of Fig. 5).
//! 5. **Fault tolerance**: bit-flip robustness of unary vs binary
//!    product representations.

use crate::table::{fmt_sig, Table};
use usystolic_core::{ComputingScheme, GemmExecutor, SystolicConfig};
use usystolic_gemm::loopnest::gemm_reference;
use usystolic_gemm::stats::ErrorStats;
use usystolic_gemm::{FeatureMap, GemmConfig, WeightSet};
use usystolic_hw::LayerEnergy;
use usystolic_sim::{MemoryHierarchy, Simulator};
use usystolic_unary::coding::RateEncoder;
use usystolic_unary::mul::UnipolarMul;
use usystolic_unary::rng::SplitMix64;
use usystolic_unary::rng::{LfsrSource, NumberSource, SobolSource};

/// Mean absolute uMUL product error (in counts, over the full stream) for
/// a given pair of number sources, sampled over random operand pairs.
fn umul_error<W, E>(
    bitwidth: u32,
    samples: usize,
    seed: u64,
    mut weight_src: impl FnMut() -> W,
    mut enable_src: impl FnMut() -> E,
) -> f64
where
    W: NumberSource,
    E: NumberSource,
{
    let len = usystolic_unary::stream_len(bitwidth);
    let mut rng = SplitMix64::new(seed);
    let mut total = 0.0;
    for _ in 0..samples {
        let w = rng.below(len + 1);
        let i = rng.below(len + 1);
        let mut mul = UnipolarMul::new(w, bitwidth, weight_src());
        let mut enc = RateEncoder::unipolar(i, bitwidth, enable_src());
        let ones = (0..len).filter(|_| mul.step(enc.next_bit())).count() as f64;
        total += (ones - (w * i) as f64 / len as f64).abs();
    }
    total / samples as f64
}

/// Ablation 1: Sobol vs LFSR RNG quality in the uMUL.
#[must_use]
pub fn rng_quality(bitwidth: u32, samples: usize) -> Table {
    let mut table = Table::new(
        format!("Ablation: uMUL mean |error| in counts ({bitwidth}-bit, {samples} samples)"),
        &["RNG", "mean |error|"],
    );
    let w = bitwidth - 1;
    let sobol = umul_error(
        bitwidth,
        samples,
        1,
        || SobolSource::dimension(0, w),
        || SobolSource::dimension(1, w),
    );
    let lfsr = umul_error(
        bitwidth,
        samples,
        1,
        || LfsrSource::new(w, 0b1011),
        || LfsrSource::new(w, 0b1101),
    );
    table.push_row(vec!["Sobol".into(), fmt_sig(sobol)]);
    table.push_row(vec!["LFSR".into(), fmt_sig(lfsr)]);
    table
}

fn ablation_case() -> (GemmConfig, FeatureMap<f64>, WeightSet<f64>) {
    let gemm = GemmConfig::conv(8, 8, 4, 3, 3, 1, 8).expect("valid ablation shape");
    let mut rng = SplitMix64::new(77);
    let input = FeatureMap::from_fn(8, 8, 4, |_, _, _| rng.next_f64() * 2.0 - 1.0);
    let weights = WeightSet::from_fn(8, 3, 3, 4, |_, _, _, _| (rng.next_f64() * 2.0 - 1.0) * 0.3);
    (gemm, input, weights)
}

/// Ablation 2: accumulator (OREG) width vs saturation events and output
/// error — quantifying how far the reduced-resolution accumulation of
/// Section III-A can be pushed.
#[must_use]
pub fn accumulator_width_sweep() -> Table {
    let (gemm, input, weights) = ablation_case();
    let reference = gemm_reference(&gemm, &input, &weights).expect("shapes match");
    let mut table = Table::new(
        "Ablation: OREG width vs saturation and error (uSystolic rate, 8-bit)",
        &["acc width", "saturations", "rmse"],
    );
    for width in [6u32, 8, 10, 12, 14, 16] {
        let cfg = SystolicConfig::new(12, 14, ComputingScheme::UnaryRate, 8)
            .expect("valid shape")
            .with_acc_width(width);
        let outcome = GemmExecutor::new(cfg)
            .execute(&gemm, &input, &weights)
            .expect("executor accepts the layer");
        let rmse = ErrorStats::compare(reference.as_slice(), outcome.output.as_slice())
            .expect("equal shapes")
            .rmse();
        table.push_row(vec![
            width.to_string(),
            outcome.stats.saturation_events.to_string(),
            fmt_sig(rmse),
        ]);
    }
    table
}

/// Ablation 4: error propagation through a deep GEMM stack — how each
/// scheme's per-layer error compounds with depth (the k-layer DNN context
/// of Fig. 5). Each layer is a random matmul followed by a `tanh`
/// squashing (the binary-domain activation of HUB flows).
#[must_use]
pub fn error_propagation(depth: usize) -> Table {
    use usystolic_gemm::loopnest::gemm_reference;
    let width = 12usize;
    let gemm = GemmConfig::matmul(1, width, width).expect("valid chain layer");
    let mut rng = SplitMix64::new(99);
    let layer_weights: Vec<WeightSet<f64>> = (0..depth)
        .map(|_| {
            WeightSet::from_fn(width, 1, 1, width, |_, _, _, _| {
                (rng.next_f64() * 2.0 - 1.0) * 0.5
            })
        })
        .collect();
    let x0 = FeatureMap::from_fn(1, 1, width, |_, _, k| ((k as f64) / width as f64) - 0.4);

    let mut table = Table::new(
        format!("Ablation: error propagation over a {depth}-layer GEMM chain"),
        &["layer", "Binary Parallel", "uSystolic rate", "uGEMM-H"],
    );
    let schemes = [
        ComputingScheme::BinaryParallel,
        ComputingScheme::UnaryRate,
        ComputingScheme::UGemmHybrid,
    ];
    // Reference chain in f64.
    let mut reference = x0.clone();
    let mut states: Vec<FeatureMap<f64>> = vec![x0.clone(); schemes.len()];
    for (layer, weights) in layer_weights.iter().enumerate() {
        let squash =
            |fm: &FeatureMap<f64>| FeatureMap::from_fn(1, 1, width, |_, _, k| fm[(0, 0, k)].tanh());
        reference = squash(&gemm_reference(&gemm, &reference, weights).expect("shapes match"));
        let mut row = vec![format!("L{}", layer + 1)];
        for (si, &scheme) in schemes.iter().enumerate() {
            let cfg = SystolicConfig::new(12, 12, scheme, 8).expect("valid chain configuration");
            let out = GemmExecutor::new(cfg)
                .execute(&gemm, &states[si], weights)
                .expect("chain layer executes");
            states[si] = squash(&out.output);
            let err = ErrorStats::compare(reference.as_slice(), states[si].as_slice())
                .expect("equal shapes")
                .rmse();
            row.push(fmt_sig(err));
        }
        table.push_row(row);
    }
    table
}

/// Ablation 5: fault tolerance — the classic unary-computing robustness
/// claim (the paper's background cites fault-tolerant stochastic image
/// processing \[48\]). A single flipped bit in a unary product stream
/// shifts the result by exactly one count (LSB-equivalent); a single
/// flipped bit in a binary product word shifts it by `2^k` for a random
/// bit position `k`. This sweep injects `f` random flips per product and
/// reports the mean absolute error of each representation.
#[must_use]
pub fn fault_tolerance(bitwidth: u32, samples: usize) -> Table {
    let len = usystolic_unary::stream_len(bitwidth);
    let mut table = Table::new(
        format!("Ablation: mean |error| under bit flips ({bitwidth}-bit products)"),
        &["flips", "unary (counts)", "binary (counts)"],
    );
    let mut rng = SplitMix64::new(123);
    for flips in [1usize, 2, 4, 8] {
        let mut unary_err = 0.0f64;
        let mut binary_err = 0.0f64;
        for _ in 0..samples {
            // A unary product stream: each flip toggles one bit, changing
            // the count by ±1 — bounded, position-independent damage.
            let mut delta = 0i64;
            for _ in 0..flips {
                // Flipping a 1 → −1, a 0 → +1; positions are uniform so the
                // sign follows the stream's ones-density.
                let product = rng.below(len + 1);
                let was_one = rng.below(len) < product;
                delta += if was_one { -1 } else { 1 };
            }
            unary_err += delta.unsigned_abs() as f64;
            // A binary product word: each flip toggles bit k, changing the
            // value by 2^k.
            let mut bdelta = 0i64;
            for _ in 0..flips {
                let k = rng.below(u64::from(bitwidth)) as u32;
                let sign: bool = rng.next_bool();
                bdelta += if sign { 1i64 << k } else { -(1i64 << k) };
            }
            binary_err += bdelta.unsigned_abs() as f64;
        }
        table.push_row(vec![
            flips.to_string(),
            fmt_sig(unary_err / samples as f64),
            fmt_sig(binary_err / samples as f64),
        ]);
    }
    table
}

/// Ablation 3: the accuracy-energy trade-off of early termination — GEMM
/// RMS error and on-chip energy of one edge layer across the EBT sweep.
#[must_use]
pub fn early_termination_tradeoff() -> Table {
    let (gemm, input, weights) = ablation_case();
    let reference = gemm_reference(&gemm, &input, &weights).expect("shapes match");
    let mut table = Table::new(
        "Ablation: early-termination accuracy-energy scaling (edge, 8-bit)",
        &["EBT", "mul cycles", "rmse", "on-chip energy (uJ)"],
    );
    let memory = MemoryHierarchy::no_sram();
    for ebt in [4u32, 5, 6, 7, 8] {
        let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
            .with_effective_bitwidth(ebt)
            .expect("valid EBT");
        let outcome = GemmExecutor::new(cfg)
            .execute(&gemm, &input, &weights)
            .expect("executor accepts the layer");
        let rmse = ErrorStats::compare(reference.as_slice(), outcome.output.as_slice())
            .expect("equal shapes")
            .rmse();
        let report = Simulator::new(cfg, memory).simulate(&gemm);
        let energy = LayerEnergy::compute(&cfg, &memory, &report);
        table.push_row(vec![
            ebt.to_string(),
            cfg.mul_cycles().to_string(),
            fmt_sig(rmse),
            fmt_sig(energy.on_chip_j() * 1.0e6),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sobol_beats_lfsr() {
        // Section III-B configures Sobol "as in [69]" for accuracy; the
        // low-discrepancy property should show as lower product error.
        let t = rng_quality(8, 50);
        let sobol: f64 = t.rows()[0][1].parse().unwrap();
        let lfsr: f64 = t.rows()[1][1].parse().unwrap();
        assert!(sobol < lfsr, "Sobol {sobol} vs LFSR {lfsr}");
        assert!(sobol < 1.0, "Sobol error should be sub-count, got {sobol}");
    }

    #[test]
    fn wide_accumulators_stop_saturating() {
        let t = accumulator_width_sweep();
        let first_sat: u64 = t.rows()[0][1].parse().unwrap();
        let last_sat: u64 = t.rows().last().unwrap()[1].parse().unwrap();
        assert!(first_sat > 0, "a 6-bit OREG must saturate");
        assert_eq!(last_sat, 0, "a 16-bit OREG must not saturate");
        // Error decreases (weakly) with width.
        let first_rmse: f64 = t.rows()[0][2].parse().unwrap();
        let last_rmse: f64 = t.rows().last().unwrap()[2].parse().unwrap();
        assert!(last_rmse < first_rmse);
    }

    #[test]
    fn unary_bit_flips_are_benign() {
        let t = fault_tolerance(8, 500);
        for row in t.rows() {
            let flips: f64 = row[0].parse().unwrap();
            let unary: f64 = row[1].parse().unwrap();
            let binary: f64 = row[2].parse().unwrap();
            assert!(unary <= flips + 1e-9, "unary damage bounded by flip count");
            assert!(
                binary > 5.0 * unary,
                "{} flips: binary {binary} should dwarf unary {unary}",
                row[0]
            );
        }
    }

    #[test]
    fn binary_error_stays_below_unary_through_depth() {
        let t = error_propagation(4);
        let last = t.rows().last().expect("non-empty chain");
        let bp: f64 = last[1].parse().unwrap();
        let ur: f64 = last[2].parse().unwrap();
        let ug: f64 = last[3].parse().unwrap();
        assert!(bp < ur, "binary {bp} vs uSystolic {ur} at depth 4");
        assert!(bp < ug, "binary {bp} vs uGEMM-H {ug} at depth 4");
        // Nothing diverges: tanh keeps everything bounded.
        assert!(ur < 1.0 && ug < 1.0);
    }

    #[test]
    fn early_termination_trades_accuracy_for_energy() {
        let t = early_termination_tradeoff();
        let rmse = |row: usize| -> f64 { t.rows()[row][2].parse().unwrap() };
        let energy = |row: usize| -> f64 { t.rows()[row][3].parse().unwrap() };
        // Energy grows with EBT; error shrinks.
        assert!(energy(0) < energy(4));
        assert!(rmse(0) > rmse(4));
    }
}
