//! Fig. 12: layerwise throughput for 8-bit AlexNet.

use crate::design::{alexnet_8bit_layers, design_points, ArrayShape};
use crate::table::{fmt_sig, Table};
use usystolic_hw::evaluate_layer;

/// Computes the Fig. 12 data: layers/s per design per AlexNet layer.
#[must_use]
pub fn figure12(shape: ArrayShape) -> Table {
    let layers = alexnet_8bit_layers();
    let mut headers: Vec<String> = vec!["design".into()];
    headers.extend(layers.iter().map(|l| l.name.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!(
            "Fig. 12{}: layerwise throughput (layers/s), 8-bit AlexNet, {shape}",
            if shape == ArrayShape::Edge { "a" } else { "b" }
        ),
        &header_refs,
    );
    for point in design_points(shape, 8) {
        let mut row = vec![point.name.to_owned()];
        for layer in &layers {
            let ev = evaluate_layer(&point.config, &point.memory, &layer.gemm);
            row.push(fmt_sig(ev.report.throughput_per_s));
        }
        table.push_row(row);
    }
    table
}

/// Section V-D's contention summary: mean runtime overhead per design over
/// the conv layers.
#[must_use]
pub fn contention_summary(shape: ArrayShape) -> Table {
    let layers = alexnet_8bit_layers();
    let mut table = Table::new(
        format!("Section V-D: mean conv-layer runtime overhead (%), {shape}"),
        &["design", "overhead %"],
    );
    for point in design_points(shape, 8) {
        let mut total = 0.0;
        let mut count = 0usize;
        for layer in layers.iter().filter(|l| l.name.starts_with("Conv")) {
            let ev = evaluate_layer(&point.config, &point.memory, &layer.gemm);
            total += ev.report.timing.overhead();
            count += 1;
        }
        table.push_row(vec![
            point.name.to_owned(),
            format!("{:.1}", 100.0 * total / count as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(t: &Table, row: usize, col: usize) -> f64 {
        t.rows()[row][col].parse().unwrap()
    }

    #[test]
    fn throughput_degrades_with_mac_cycles_at_edge() {
        // Fig. 12a: conv throughput drops almost linearly in MAC cycles.
        let t = figure12(ArrayShape::Edge);
        for col in 1..=5 {
            // Conv1..Conv5 columns.
            let bp = value(&t, 0, col);
            let u32c = value(&t, 2, col);
            let u128c = value(&t, 4, col);
            assert!(bp > u32c && u32c > u128c, "col {col}");
            let ratio = u32c / u128c;
            assert!(
                (2.5..5.5).contains(&ratio),
                "col {col}: 32c/128c ratio {ratio} should be near 129/33"
            );
        }
    }

    #[test]
    fn cloud_contention_exceeds_edge_for_binary() {
        let edge = contention_summary(ArrayShape::Edge);
        let cloud = contention_summary(ArrayShape::Cloud);
        let e_bp: f64 = edge.rows()[0][1].parse().unwrap();
        let c_bp: f64 = cloud.rows()[0][1].parse().unwrap();
        assert!(c_bp > e_bp, "cloud BP overhead {c_bp}% vs edge {e_bp}%");
    }

    #[test]
    fn unary_overhead_is_small_at_edge() {
        // Paper: 2.7 %, 1.3 %, 0.7 % for 32-, 64-, 128-cycle uSystolic.
        let t = contention_summary(ArrayShape::Edge);
        for row in 2..=4 {
            let oh: f64 = t.rows()[row][1].parse().unwrap();
            assert!(oh < 10.0, "{}: overhead {oh}%", t.rows()[row][0]);
        }
    }
}
