//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each evaluation artefact has a module computing its data and a binary
//! (`src/bin/exp_*.rs`) printing it in the paper's layout:
//!
//! | Artefact | Module | Binary |
//! |---|---|---|
//! | Fig. 9 (accuracy vs EBT) | [`accuracy`] | `exp_accuracy` |
//! | Fig. 10 (layerwise bandwidth) | [`bandwidth`] | `exp_bandwidth` |
//! | Fig. 11 (area breakdown) | [`area`] | `exp_area` |
//! | Fig. 12 (layerwise throughput) | [`throughput`] | `exp_throughput` |
//! | Fig. 13 (layerwise energy) | [`energy`] | `exp_energy` |
//! | §V-F (layerwise power) | [`power`] | `exp_power` |
//! | Fig. 14 (efficiency gains, AlexNet + MLPerf) | [`efficiency`] | `exp_efficiency` |
//! | §V-H (system-level scaling & battery) | [`system`] | `exp_system` |
//! | Table I (quantified) | [`table1`] | `exp_table1` |
//! | §V-G SRAM sweep + footnote-1 dataflows | [`design_space`] | `exp_design_space` |
//! | §III-C / §V-A ablations | [`ablation`] | `exp_ablation` |
//! | Kernel perf (serial vs packed MAC, `BENCH_kernel.json`) | [`kernel`] | `exp_kernel` |
//! | Resilience (accuracy vs BER, `BENCH_faults.json`) | [`faults`] | `exp_faults` |
//!
//! The [`design`] module enumerates the paper's design points (computing
//! scheme × early termination × SRAM presence) and [`table`] renders
//! aligned text tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod accuracy;
pub mod area;
pub mod bandwidth;
pub mod des_fleet;
pub mod design;
pub mod design_space;
pub mod efficiency;
pub mod energy;
pub mod faults;
pub mod kernel;
pub mod power;
pub mod system;
pub mod table;
pub mod table1;
pub mod throughput;

pub use design::{alexnet_8bit_layers, design_points, ArrayShape, DesignPoint};
pub use table::Table;
