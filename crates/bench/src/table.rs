//! Minimal aligned text tables for experiment output.

/// A titled table of string cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table's title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Borrow of the rows, for programmatic checks in tests.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Borrow of the headers.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Renders the table as CSV (title as a `#` comment line), for piping
    /// experiment output into plotting scripts.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = format!("# {}\n", self.title);
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut core::fmt::Formatter<'_>, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = *w)?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Prints a table to stdout, honouring the `USYSTOLIC_FORMAT` environment
/// variable: `csv` emits [`Table::to_csv`], anything else the aligned
/// text form. Lets every experiment binary feed plotting scripts without
/// extra flags.
pub fn emit(table: &Table) {
    if std::env::var("USYSTOLIC_FORMAT").as_deref() == Ok("csv") {
        print!("{}", table.to_csv());
        println!();
    } else {
        println!("{table}");
    }
}

/// Formats a float in engineering-friendly short form.
#[must_use]
pub fn fmt_sig(x: f64) -> String {
    // ±0.0 (bit compare, no epsilon: anything smaller prints in e-notation).
    if x.abs().to_bits() == 0 {
        "0".into()
    } else if x.abs() >= 1000.0 || x.abs() < 0.01 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["layer", "value"]);
        t.push_row(vec!["Conv1".into(), "1.5".into()]);
        t.push_row(vec!["FC8".into(), "12345.678".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("Conv1"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "demo");
        assert_eq!(t.headers().len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_and_structures() {
        let mut t = Table::new("csv demo", &["name", "value"]);
        t.push_row(vec!["plain".into(), "1".into()]);
        t.push_row(vec!["needs,quote".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "# csv demo");
        assert_eq!(lines[1], "name,value");
        assert_eq!(lines[2], "plain,1");
        assert_eq!(lines[3], "\"needs,quote\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn fmt_sig_ranges() {
        assert_eq!(fmt_sig(0.0), "0");
        assert_eq!(fmt_sig(1.5), "1.500");
        assert!(fmt_sig(12345.0).contains('e'));
        assert!(fmt_sig(0.0001).contains('e'));
    }
}
