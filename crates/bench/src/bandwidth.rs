//! Fig. 10: layerwise SRAM and DRAM bandwidth for 8-bit AlexNet.

use crate::design::{alexnet_8bit_layers, design_points, ArrayShape};
use crate::table::{fmt_sig, Table};
use usystolic_hw::evaluate_layer;

/// Computes the Fig. 10 data for one array shape: one row per design, one
/// column pair (DRAM, SRAM) per AlexNet layer.
#[must_use]
pub fn figure10(shape: ArrayShape) -> Table {
    let layers = alexnet_8bit_layers();
    let mut headers: Vec<String> = vec!["design".into()];
    for l in &layers {
        headers.push(format!("{}-DRAM", l.name));
        headers.push(format!("{}-SRAM", l.name));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!(
            "Fig. 10{}: layerwise bandwidth (GB/s), 8-bit AlexNet, {shape}",
            if shape == ArrayShape::Edge { "a" } else { "b" }
        ),
        &header_refs,
    );
    for point in design_points(shape, 8) {
        let mut row = vec![point.name.to_owned()];
        for layer in &layers {
            let ev = evaluate_layer(&point.config, &point.memory, &layer.gemm);
            row.push(fmt_sig(ev.report.dram_bandwidth_gbps));
            row.push(fmt_sig(ev.report.sram_bandwidth_gbps));
        }
        table.push_row(row);
    }
    table
}

/// The paper's Section V-B summary statistics for one shape: per design,
/// the maximum DRAM bandwidth over AlexNet layers, split by layer type.
#[must_use]
pub fn bandwidth_summary(shape: ArrayShape) -> Table {
    let layers = alexnet_8bit_layers();
    let mut table = Table::new(
        format!("Section V-B: max DRAM bandwidth (GB/s) over AlexNet layers, {shape}"),
        &["design", "conv max", "fc max"],
    );
    for point in design_points(shape, 8) {
        let mut conv_max = 0.0f64;
        let mut fc_max = 0.0f64;
        for layer in &layers {
            let ev = evaluate_layer(&point.config, &point.memory, &layer.gemm);
            if layer.name.starts_with("Conv") {
                conv_max = conv_max.max(ev.report.dram_bandwidth_gbps);
            } else {
                fc_max = fc_max.max(ev.report.dram_bandwidth_gbps);
            }
        }
        table.push_row(vec![
            point.name.to_owned(),
            fmt_sig(conv_max),
            fmt_sig(fc_max),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(t: &Table, row: usize, col: usize) -> f64 {
        t.rows()[row][col].parse().unwrap()
    }

    #[test]
    fn figure10_edge_shape_holds() {
        let t = figure10(ArrayShape::Edge);
        assert_eq!(t.len(), 6);
        // Binary parallel DRAM bandwidth (col 1 = Conv1 DRAM) dwarfs
        // Unary-128c's (row 4).
        let bp = value(&t, 0, 1);
        let u128 = value(&t, 4, 1);
        assert!(bp > 5.0 * u128, "BP {bp} vs Unary-128c {u128}");
        // Unary designs report zero SRAM bandwidth (no SRAM present).
        assert_eq!(t.rows()[4][2], "0");
        // uGEMM-H needs even less bandwidth than Unary-128c
        // ("uGEMM-H requires even lower bandwidth due to longer MAC
        // cycles").
        let ug = value(&t, 5, 1);
        assert!(ug < u128);
    }

    #[test]
    fn unary_bandwidth_crawls_at_the_edge() {
        // Paper: [0.11, 0.47] GB/s for conv, [0.46, 1.08] GB/s for FC
        // (rate-coded uSystolic without SRAM). Check the band loosely.
        let t = bandwidth_summary(ArrayShape::Edge);
        for row in 2..=4 {
            let conv: f64 = t.rows()[row][1].parse().unwrap();
            let fc: f64 = t.rows()[row][2].parse().unwrap();
            assert!(conv < 1.0, "{}: conv max {conv}", t.rows()[row][0]);
            assert!(fc < 3.0, "{}: fc max {fc}", t.rows()[row][0]);
        }
    }

    #[test]
    fn more_cycles_mean_less_bandwidth_at_edge() {
        let t = bandwidth_summary(ArrayShape::Edge);
        let conv_of = |row: usize| -> f64 { t.rows()[row][1].parse().unwrap() };
        assert!(conv_of(2) > conv_of(3), "32c > 64c");
        assert!(conv_of(3) > conv_of(4), "64c > 128c");
    }
}
