//! Table I, quantified: the four-way design-space comparison (accuracy,
//! power efficiency, scalability, generalizability) measured on this
//! reproduction's models instead of stated qualitatively.
//!
//! | Architecture | stands for |
//! |---|---|
//! | B-Systolic | binary parallel systolic array \[30\] |
//! | FSU | fully-streaming unary (uGEMM \[69\]) |
//! | HUB | hybrid unary-binary baseline (uGEMM-H) |
//! | uSystolic | rate-coded uSystolic |

use crate::table::{fmt_sig, Table};
use std::collections::HashSet;
use usystolic_core::{ComputingScheme, FsuGemm, GemmExecutor, SystolicConfig};
use usystolic_gemm::{GemmConfig, Matrix};
use usystolic_hw::evaluate_layer;
use usystolic_models::mlperf::mlperf_gemms;
use usystolic_sim::{MemoryHierarchy, MultiInstanceSystem};

fn accuracy_case() -> (GemmConfig, Matrix<i64>, Matrix<i64>, Matrix<f64>) {
    let gemm = GemmConfig::matmul(4, 8, 3).expect("valid case");
    let input = Matrix::from_fn(4, 8, |p, k| ((p * 8 + k) as i64 * 29 % 255) - 127);
    let weights = Matrix::from_fn(8, 3, |k, c| ((k * 3 + c) as i64 * 41 % 255) - 127);
    let mut exact = Matrix::<f64>::zeros(4, 3);
    for p in 0..4 {
        for c in 0..3 {
            exact[(p, c)] = (0..8)
                .map(|k| (input[(p, k)] * weights[(k, c)]) as f64)
                .sum::<f64>()
                / 16384.0;
        }
    }
    (gemm, input, weights, exact)
}

fn rmse(errors: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = errors.collect();
    (v.iter().map(|e| e * e).sum::<f64>() / v.len() as f64).sqrt()
}

/// GEMM value-domain RMS error of each architecture on the common case.
fn accuracy_of(arch: &str) -> f64 {
    let (gemm, input, weights, exact) = accuracy_case();
    let scheme_rmse = |scheme: ComputingScheme, divisor: f64| {
        let cfg = SystolicConfig::new(8, 3, scheme, 8).expect("valid");
        let (out, _) = GemmExecutor::new(cfg)
            .execute_lowered(&gemm, &input, &weights)
            .expect("runs");
        rmse((0..12).map(|i| {
            let (p, c) = (i / 3, i % 3);
            out[(p, c)] as f64 * divisor / 16384.0 - exact[(p, c)]
        }))
    };
    match arch {
        "B-Systolic" => scheme_rmse(ComputingScheme::BinaryParallel, 1.0),
        "FSU" => {
            let fsu = FsuGemm::new(gemm, 8);
            let out = fsu.execute(&input, &weights).expect("fixed shape");
            let d = fsu.product_divisor();
            rmse((0..12).map(|i| {
                let (p, c) = (i / 3, i % 3);
                out[(p, c)] as f64 * d / 16384.0 - exact[(p, c)]
            }))
        }
        "HUB" => scheme_rmse(ComputingScheme::UGemmHybrid, 64.0),
        _ => scheme_rmse(ComputingScheme::UnaryRate, 128.0),
    }
}

/// The quantified Table I.
#[must_use]
pub fn table1() -> Table {
    let mut table = Table::new(
        "Table I (quantified): GEMM architecture comparison",
        &[
            "architecture",
            "GEMM rmse",
            "on-chip power (mW)",
            "instances @90% scaling",
            "HW instances for MLPerf",
        ],
    );
    let layer = GemmConfig::conv(31, 31, 96, 5, 5, 1, 256).expect("valid layer");
    // Generalizability: a systolic array runs every shape on one
    // instance; an FSU design needs one instance per distinct GEMM shape.
    let distinct_shapes: HashSet<_> = mlperf_gemms().into_iter().collect();

    type SchemePoint = Option<(ComputingScheme, Option<u64>)>;
    let configs: [(&str, SchemePoint); 4] = [
        ("B-Systolic", Some((ComputingScheme::BinaryParallel, None))),
        ("FSU", None),
        ("HUB", Some((ComputingScheme::UGemmHybrid, None))),
        ("uSystolic", Some((ComputingScheme::UnaryRate, Some(128)))),
    ];
    for (name, cfg) in configs {
        let (power_mw, instances) = match cfg {
            Some((scheme, cycles)) => {
                let mut c = SystolicConfig::edge(scheme, 8);
                if let Some(cy) = cycles {
                    c = c.with_mul_cycles(cy).expect("valid EBT");
                }
                let mem = if scheme.is_unary() {
                    MemoryHierarchy::no_sram()
                } else {
                    MemoryHierarchy::edge_with_sram()
                };
                let ev = evaluate_layer(&c, &mem, &layer);
                let sys = MultiInstanceSystem::new(c, MemoryHierarchy::no_sram());
                (
                    ev.power.on_chip_w() * 1.0e3,
                    sys.max_instances(&layer, 0.9, 256).to_string(),
                )
            }
            None => {
                // FSU: broadcast interconnect and per-shape hardware make
                // multi-instance scaling moot; report the single-instance
                // weight-storage wall instead.
                let fsu = FsuGemm::new(layer, 8);
                let storage_mb = fsu.weight_storage_bits() as f64 / 8.0 / 1024.0 / 1024.0;
                (f64::NAN, format!("storage-bound ({storage_mb:.1} MB DFF)"))
            }
        };
        table.push_row(vec![
            name.to_owned(),
            fmt_sig(accuracy_of(name)),
            if power_mw.is_nan() {
                "n/a".into()
            } else {
                fmt_sig(power_mw)
            },
            instances,
            if name == "FSU" {
                distinct_shapes.len().to_string()
            } else {
                "1".into()
            },
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_orderings_hold() {
        let t = table1();
        assert_eq!(t.len(), 4);
        let rmse_of = |row: usize| -> f64 { t.rows()[row][1].parse().unwrap() };
        // Accuracy: binary precise < uSystolic ≈ HUB < FSU.
        assert!(
            rmse_of(0) < rmse_of(3),
            "binary beats uSystolic on accuracy"
        );
        assert!(rmse_of(3) < rmse_of(1), "uSystolic beats FSU on accuracy");
        assert!(rmse_of(2) < rmse_of(1), "HUB beats FSU on accuracy");
        // Power: uSystolic far below binary.
        let bp_power: f64 = t.rows()[0][2].parse().unwrap();
        let us_power: f64 = t.rows()[3][2].parse().unwrap();
        assert!(us_power < bp_power / 10.0);
        // Scalability: uSystolic sustains more instances than binary.
        let bp_scale: usize = t.rows()[0][3].parse().unwrap();
        let us_scale: usize = t.rows()[3][3].parse().unwrap();
        assert!(us_scale > bp_scale);
        // Generalizability: systolic designs need 1 instance; FSU needs
        // hundreds for MLPerf.
        assert_eq!(t.rows()[0][4], "1");
        // The 1094-layer suite collapses to ~100 distinct shapes (the
        // unrolled LSTM gates repeat); FSU still needs two orders of
        // magnitude more hardware than any systolic design.
        let fsu_instances: usize = t.rows()[1][4].parse().unwrap();
        assert!(fsu_instances >= 50, "FSU needs {fsu_instances} instances");
    }
}
