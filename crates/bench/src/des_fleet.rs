//! Fleet-scale fidelity benchmark for the discrete-event core
//! (`BENCH_des.json`).
//!
//! Serves a VGG-16 workload on a ≥256-instance fleet twice on the same
//! event calendar: once at the cycle-accurate reference tier (layer
//! profiles re-derived from the raw GEMMs at every batch dispatch) and
//! once at the analytic tier (O(1) interpolation of the `analyze`
//! service estimate). The analytic tier must be ≥10× faster wall-clock
//! while keeping its latency estimates within tolerance of the exact
//! run — the quantitative case for per-tile fidelity switching. A packed
//! run rides along to re-assert the middle tier is bit-identical to the
//! reference.

use std::time::Instant;

use crate::table::Table;
use usystolic_core::{ComputingScheme, SystolicConfig};
use usystolic_des::Fidelity;
use usystolic_models::zoo;
use usystolic_obs::{JsonValue, ToJson};
use usystolic_serve::loadgen::{ArrivalProcess, LoadGenConfig};
use usystolic_serve::{serve, FleetFaultPlan, ServeConfig, ServeReport, Workload};
use usystolic_sim::MemoryHierarchy;

/// Result of the fleet fidelity benchmark.
#[derive(Debug, Clone)]
pub struct DesFleetBench {
    /// Array instances in the simulated fleet.
    pub instances: usize,
    /// Requests that arrived during the horizon.
    pub offered: u64,
    /// Cycle-accurate wall time, milliseconds (best-of-iters).
    pub cycle_ms: f64,
    /// Analytic wall time, milliseconds (best-of-iters).
    pub analytic_ms: f64,
    /// `cycle_ms / analytic_ms`.
    pub speedup: f64,
    /// Speedup the run was required to reach (10 full, 2 short).
    pub speedup_target: f64,
    /// Whether the measured speedup reached the target.
    pub speedup_target_met: bool,
    /// Exact-tier report.
    pub cycle: ServeReport,
    /// Analytic-tier report.
    pub analytic: ServeReport,
    /// Whether the packed tier reproduced the cycle-accurate report bit
    /// for bit.
    pub packed_bit_identical: bool,
    /// Relative error of the analytic service p50 against exact.
    pub service_p50_rel_err: f64,
    /// Relative error of the analytic end-to-end latency p50.
    pub latency_p50_rel_err: f64,
    /// Whether the analytic estimates stayed within tolerance: no lost
    /// requests on either tier, identical completion counts, service p50
    /// within 10% and latency p50 within 25% of exact.
    pub estimates_within_tolerance: bool,
}

/// The benchmark fleet: VGG-16 inference on rate-coded unary arrays.
fn config(instances: usize, duration_cycles: u64, fidelity: Fidelity) -> ServeConfig {
    ServeConfig {
        array: SystolicConfig::edge(ComputingScheme::UnaryRate, 8),
        memory: MemoryHierarchy::no_sram(),
        instances,
        queue_capacity: 4096,
        max_batch: 8,
        workers: 1,
        duration_cycles,
        load: LoadGenConfig {
            process: ArrivalProcess::OpenPoisson {
                mean_interarrival_cycles: 2_000.0,
            },
            seed: 42,
            classes: 1,
            high_priority_fraction: 0.0,
            deadline_cycles: None,
        },
        faults: FleetFaultPlan {
            seed: 42,
            ..FleetFaultPlan::default()
        },
        fidelity,
    }
}

fn timed(cfg: &ServeConfig, workloads: &[Workload], iters: usize) -> (f64, ServeReport) {
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        let r = serve(cfg, workloads).expect("benchmark config is valid");
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        report = Some(r);
    }
    (best, report.expect("at least one iteration"))
}

fn rel_err(estimate: u64, exact: u64) -> f64 {
    (estimate as f64 - exact as f64).abs() / (exact as f64).max(1.0)
}

/// Runs the benchmark. `--short` shrinks the fleet and the horizon for
/// CI smoke runs (and relaxes the speedup bar accordingly — timing at
/// smoke scale is noise-dominated).
#[must_use]
pub fn run(short: bool) -> DesFleetBench {
    let (instances, duration_cycles, iters, speedup_target) = if short {
        (64, 500_000, 1, 2.0)
    } else {
        (256, 4_000_000, 3, 10.0)
    };
    let workloads = vec![Workload::from_network(&zoo::vgg16())];

    let cycle_cfg = config(instances, duration_cycles, Fidelity::CycleAccurate);
    let (cycle_ms, cycle) = timed(&cycle_cfg, &workloads, iters);
    let analytic_cfg = config(instances, duration_cycles, Fidelity::Analytic);
    let (analytic_ms, analytic) = timed(&analytic_cfg, &workloads, iters);
    let packed_cfg = config(instances, duration_cycles, Fidelity::Packed);
    let (_, packed) = timed(&packed_cfg, &workloads, 1);

    let speedup = cycle_ms / analytic_ms.max(1e-9);
    let service_p50_rel_err = rel_err(analytic.service.p50_cycles, cycle.service.p50_cycles);
    let latency_p50_rel_err = rel_err(analytic.latency.p50_cycles, cycle.latency.p50_cycles);
    let estimates_within_tolerance = cycle.lost() == 0
        && analytic.lost() == 0
        && analytic.completed == cycle.completed
        && service_p50_rel_err <= 0.10
        && latency_p50_rel_err <= 0.25;
    DesFleetBench {
        instances,
        offered: cycle.offered,
        cycle_ms,
        analytic_ms,
        speedup,
        speedup_target,
        speedup_target_met: speedup >= speedup_target,
        packed_bit_identical: packed.to_json().render() == cycle.to_json().render(),
        service_p50_rel_err,
        latency_p50_rel_err,
        estimates_within_tolerance,
        cycle,
        analytic,
    }
}

impl DesFleetBench {
    /// Summary table for the terminal.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "DES fleet fidelity (VGG-16 serving)",
            &["tier", "wall ms", "completed", "p50 service", "p50 latency"],
        );
        t.push_row(vec![
            "cycle".to_string(),
            format!("{:.2}", self.cycle_ms),
            self.cycle.completed.to_string(),
            self.cycle.service.p50_cycles.to_string(),
            self.cycle.latency.p50_cycles.to_string(),
        ]);
        t.push_row(vec![
            "analytic".to_string(),
            format!("{:.2}", self.analytic_ms),
            self.analytic.completed.to_string(),
            self.analytic.service.p50_cycles.to_string(),
            self.analytic.latency.p50_cycles.to_string(),
        ]);
        t.push_row(vec![
            "speedup".to_string(),
            format!("{:.1}x", self.speedup),
            format!("target {:.0}x", self.speedup_target),
            format!("svc err {:.1}%", self.service_p50_rel_err * 100.0),
            format!("lat err {:.1}%", self.latency_p50_rel_err * 100.0),
        ]);
        t
    }
}

impl ToJson for DesFleetBench {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("instances", self.instances.to_json()),
            ("offered", self.offered.to_json()),
            ("cycle_ms", self.cycle_ms.to_json()),
            ("analytic_ms", self.analytic_ms.to_json()),
            ("speedup", self.speedup.to_json()),
            ("speedup_target", self.speedup_target.to_json()),
            ("speedup_target_met", self.speedup_target_met.to_json()),
            ("packed_bit_identical", self.packed_bit_identical.to_json()),
            ("service_p50_rel_err", self.service_p50_rel_err.to_json()),
            ("latency_p50_rel_err", self.latency_p50_rel_err.to_json()),
            (
                "estimates_within_tolerance",
                self.estimates_within_tolerance.to_json(),
            ),
            ("cycle", self.cycle.to_json()),
            ("analytic", self.analytic.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_holds_the_fidelity_contract() {
        let bench = run(true);
        assert!(bench.packed_bit_identical);
        assert_eq!(bench.cycle.lost(), 0);
        assert_eq!(bench.analytic.lost(), 0);
        assert_eq!(bench.analytic.completed, bench.cycle.completed);
        assert!(bench.service_p50_rel_err <= 0.10, "{bench:?}");
    }
}
