//! Regenerates Fig. 9 (accuracy vs effective bitwidth, three task
//! difficulties standing in for MNIST / CIFAR10 / ImageNet) and the
//! Section V-A GEMM error study.
//!
//! Usage: `cargo run --release -p usystolic-bench --bin exp_accuracy [--quick]`

use usystolic_bench::accuracy::{figure9_cnn, figure9_mlp, gemm_error_study, Difficulty};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (ebts, per_class): (&[u32], usize) = if quick {
        (&[4, 6, 8], 3)
    } else {
        (&[3, 4, 5, 6, 7, 8, 10, 12], 10)
    };
    for difficulty in Difficulty::ALL {
        usystolic_bench::table::emit(&figure9_cnn(difficulty, ebts, per_class));
    }
    usystolic_bench::table::emit(&figure9_mlp(ebts, per_class));
    usystolic_bench::table::emit(&gemm_error_study(8));
    if !quick {
        usystolic_bench::table::emit(&gemm_error_study(6));
        usystolic_bench::table::emit(&gemm_error_study(10));
    }
}
