//! Runs the complete evaluation: every table and figure of the paper in
//! one pass (accuracy in quick mode; use the individual binaries for the
//! full sweeps).
//!
//! Usage: `cargo run --release -p usystolic-bench --bin exp_all`

use usystolic_bench::ablation::{accumulator_width_sweep, early_termination_tradeoff, rng_quality};
use usystolic_bench::accuracy::{figure9_cnn, gemm_error_study, Difficulty};
use usystolic_bench::area::{area_reductions, figure11};
use usystolic_bench::bandwidth::{bandwidth_summary, figure10};
use usystolic_bench::efficiency::{figure14, utilization_summary, Workload};
use usystolic_bench::energy::{energy_summary, figure13_on_chip, figure13_total};
use usystolic_bench::power::{power_on_chip, power_summary, power_total};
use usystolic_bench::system::{battery_table, scaling_table};
use usystolic_bench::table1::table1;
use usystolic_bench::throughput::{contention_summary, figure12};
use usystolic_bench::ArrayShape;

fn main() {
    println!("# uSystolic evaluation — all tables and figures\n");

    usystolic_bench::table::emit(&figure9_cnn(Difficulty::Medium, &[6, 7, 8], 5));
    usystolic_bench::table::emit(&gemm_error_study(8));

    for shape in ArrayShape::ALL {
        usystolic_bench::table::emit(&figure10(shape));
        usystolic_bench::table::emit(&bandwidth_summary(shape));
        usystolic_bench::table::emit(&figure11(shape));
        usystolic_bench::table::emit(&area_reductions(shape, 8));
        usystolic_bench::table::emit(&figure12(shape));
        usystolic_bench::table::emit(&contention_summary(shape));
        usystolic_bench::table::emit(&figure13_on_chip(shape));
        usystolic_bench::table::emit(&figure13_total(shape));
        usystolic_bench::table::emit(&energy_summary(shape));
        usystolic_bench::table::emit(&power_on_chip(shape));
        usystolic_bench::table::emit(&power_total(shape));
        usystolic_bench::table::emit(&power_summary(shape));
        usystolic_bench::table::emit(&figure14(shape, Workload::AlexNet));
        usystolic_bench::table::emit(&figure14(shape, Workload::MlPerf));
    }
    usystolic_bench::table::emit(&utilization_summary());
    usystolic_bench::table::emit(&table1());
    for shape in ArrayShape::ALL {
        usystolic_bench::table::emit(&scaling_table(shape));
    }
    usystolic_bench::table::emit(&battery_table());
    usystolic_bench::table::emit(&rng_quality(8, 100));
    usystolic_bench::table::emit(&accumulator_width_sweep());
    usystolic_bench::table::emit(&early_termination_tradeoff());
}
