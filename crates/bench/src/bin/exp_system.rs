//! Regenerates the Section V-H system-level tables: multi-instance
//! scaling and battery lifetime.
//!
//! Usage: `cargo run --release -p usystolic-bench --bin exp_system`

use usystolic_bench::system::{battery_table, scaling_table};
use usystolic_bench::ArrayShape;

fn main() {
    for shape in ArrayShape::ALL {
        usystolic_bench::table::emit(&scaling_table(shape));
    }
    usystolic_bench::table::emit(&battery_table());
}
