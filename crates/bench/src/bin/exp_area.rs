//! Regenerates Fig. 11 (area breakdown) plus the Section V-C reduction
//! summary.
//!
//! Usage: `cargo run --release -p usystolic-bench --bin exp_area`

use usystolic_bench::area::{area_reductions, figure11};
use usystolic_bench::ArrayShape;

fn main() {
    for shape in ArrayShape::ALL {
        usystolic_bench::table::emit(&figure11(shape));
        for bitwidth in [8, 16] {
            usystolic_bench::table::emit(&area_reductions(shape, bitwidth));
        }
    }
}
