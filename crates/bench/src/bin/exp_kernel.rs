//! Benchmarks the word-packed MAC kernel against the bit-serial
//! reference and writes `BENCH_kernel.json`.
//!
//! Usage: `cargo run --release -p usystolic-bench --bin exp_kernel --
//! [--short] [--out PATH] [--workers 1,2,4,8]`
//!
//! `--short` shrinks the timed case and the sweeps for CI smoke runs.

use std::process::ExitCode;

use usystolic_bench::kernel;
use usystolic_obs::ToJson;

/// Exits with code 2 and the usage line on a malformed flag.
fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("exp_kernel: error: {message}");
    eprintln!("usage: exp_kernel [--short] [--out PATH] [--workers 1,2,4,8]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut short = false;
    let mut out = String::from("BENCH_kernel.json");
    let mut workers: Vec<usize> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--short" => short = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => fail("--out requires a path"),
            },
            "--workers" => match args.next().map(|s| {
                s.split(',')
                    .map(|w| w.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
            }) {
                Some(Ok(list)) if !list.is_empty() && list.iter().all(|&w| w > 0) => {
                    workers = list;
                }
                _ => fail("--workers requires a comma-separated list of positive integers"),
            },
            other => fail(format!("unknown argument: {other}")),
        }
    }

    let report = kernel::run(short, &workers);
    usystolic_bench::table::emit(&report.table());
    let json = report.to_json().render();
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    if report.checksums_match
        && report.bit_exact
        && report.workers_consistent
        && report.temporal_bit_exact
        && report.hybrid_bit_exact
    {
        ExitCode::SUCCESS
    } else {
        eprintln!("kernel bench found a mismatch; see {out}");
        ExitCode::FAILURE
    }
}
