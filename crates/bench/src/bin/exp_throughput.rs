//! Regenerates Fig. 12 (layerwise throughput, 8-bit AlexNet) plus the
//! Section V-D memory-contention summary.
//!
//! Usage: `cargo run --release -p usystolic-bench --bin exp_throughput`

use usystolic_bench::throughput::{contention_summary, figure12};
use usystolic_bench::ArrayShape;

fn main() {
    for shape in ArrayShape::ALL {
        usystolic_bench::table::emit(&figure12(shape));
        usystolic_bench::table::emit(&contention_summary(shape));
    }
}
