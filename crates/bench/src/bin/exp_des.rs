//! Benchmarks the serving engine's fidelity tiers on a fleet-scale
//! VGG-16 workload and writes `BENCH_des.json`.
//!
//! Usage: `cargo run --release -p usystolic-bench --bin exp_des --
//! [--short] [--out PATH]`
//!
//! `--short` shrinks the fleet and the arrival horizon for CI smoke
//! runs (and relaxes the speedup bar — smoke-scale timing is noisy).
//!
//! The run fails (non-zero exit) when the analytic tier misses its
//! wall-clock speedup target over the cycle-accurate reference, when
//! the packed tier is not bit-identical to the reference, or when the
//! analytic latency estimates drift out of tolerance.

use std::process::ExitCode;

use usystolic_bench::des_fleet;
use usystolic_obs::ToJson;

/// Exits with code 2 and the usage line on a malformed flag.
fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("exp_des: error: {message}");
    eprintln!("usage: exp_des [--short] [--out PATH]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut short = false;
    let mut out = String::from("BENCH_des.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--short" => short = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => fail("--out requires a path"),
            },
            other => fail(format!("unknown argument: {other}")),
        }
    }

    let bench = des_fleet::run(short);
    usystolic_bench::table::emit(&bench.table());
    let json = bench.to_json().render();
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    if bench.speedup_target_met && bench.packed_bit_identical && bench.estimates_within_tolerance {
        ExitCode::SUCCESS
    } else {
        eprintln!("fidelity bench missed a target; see {out}");
        ExitCode::FAILURE
    }
}
