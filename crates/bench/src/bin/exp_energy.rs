//! Regenerates Fig. 13 (layerwise on-chip and total energy, 8-bit
//! AlexNet) plus the Section V-E reduction/EDP summary.
//!
//! Usage: `cargo run --release -p usystolic-bench --bin exp_energy`

use usystolic_bench::energy::{energy_summary, figure13_on_chip, figure13_total};
use usystolic_bench::ArrayShape;

fn main() {
    for shape in ArrayShape::ALL {
        usystolic_bench::table::emit(&figure13_on_chip(shape));
        usystolic_bench::table::emit(&figure13_total(shape));
        usystolic_bench::table::emit(&energy_summary(shape));
    }
}
