//! Characterizes accuracy vs bit-error rate for the unary codings
//! against the binary baseline and writes `BENCH_faults.json`.
//!
//! Usage: `cargo run --release -p usystolic-bench --bin exp_faults --
//! [--short] [--out PATH] [--seed N]`
//!
//! Exits non-zero when any pinned claim fails: serial/packed kernel
//! agreement, replay determinism, or the graceful-degradation ordering
//! (unary strictly below binary at every non-zero BER).

use std::process::ExitCode;

use usystolic_bench::faults;
use usystolic_obs::ToJson;

/// Exits with code 2 and the usage line on a malformed flag.
fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("exp_faults: error: {message}");
    eprintln!("usage: exp_faults [--short] [--out PATH] [--seed N]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut short = false;
    let mut out = String::from("BENCH_faults.json");
    let mut seed = 0x5eed_fa11u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--short" => short = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => fail("--out requires a path"),
            },
            "--seed" => match args.next().map(|s| s.parse::<u64>()) {
                Some(Ok(s)) => seed = s,
                _ => fail("--seed requires an unsigned integer"),
            },
            other => fail(format!("unknown argument: {other}")),
        }
    }

    let report = faults::run(short, seed);
    usystolic_bench::table::emit(&report.table());
    let json = report.to_json().render();
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    if report.healthy() {
        ExitCode::SUCCESS
    } else {
        eprintln!("faults bench found a broken claim; see {out}");
        ExitCode::FAILURE
    }
}
