//! A command-line front end in the spirit of the released uSystolic-Sim:
//! pick a computing scheme, an array shape, a memory hierarchy and a
//! layer, and get the full evaluation record.
//!
//! ```sh
//! cargo run --release -p usystolic-bench --bin sim_cli -- \
//!     --scheme UR --cycles 128 --shape edge --no-sram \
//!     --conv 31,31,96,5,5,1,256
//! cargo run --release -p usystolic-bench --bin sim_cli -- \
//!     --scheme BP --shape cloud --matmul 1,9216,4096
//! cargo run --release -p usystolic-bench --bin sim_cli -- --network alexnet
//! ```
//!
//! Observability (all optional, zero overhead when absent):
//!
//! ```sh
//! sim_cli --scheme UR --cycles 128 --no-sram --conv 31,31,96,5,5,1,256 \
//!     --trace /tmp/t.json --metrics /tmp/m.json --json
//! ```
//!
//! `--trace` writes a Chrome `trace_event` file (open in
//! `chrome://tracing` or Perfetto), `--metrics` a counters/gauges/
//! histograms snapshot, and `--json` replaces the human-readable report
//! with the full evaluation record as structured JSON on stdout.
//!
//! Static analysis (`--check`): validate a configuration against the
//! paper's invariants *without* running anything. The raw knob values go
//! straight to `usystolic_analyze` — including values the simulator's
//! constructors would reject — and every violation is reported with a
//! stable `USYxxx` code. Exits 1 when any error-severity diagnostic
//! fires, 0 otherwise.
//!
//! ```sh
//! sim_cli --check --scheme UR --acc-width 4           # USY020: overflow
//! sim_cli --check --scheme UR --cycles 256            # USY011: n > N
//! sim_cli --check --scheme UR --wiring independent    # USY030: SCC != 0
//! sim_cli --check --scheme BP --no-sram --conv 27,27,96,5,5,1,256
//!                                                     # USY050: bandwidth
//! ```

use usystolic_analyze::{analyze, analyze_network, NetworkAnalysis, RawSpec, Report, RngWiring};
use usystolic_core::{
    ComputingScheme, SystolicConfig, CLOUD_COLS, CLOUD_ROWS, EDGE_COLS, EDGE_ROWS,
};
use usystolic_faults::{
    faulty_binary_gemm, faulty_unary_gemm, DeviceFaults, FaultKernel, FaultReport, GemmShape,
    StuckAt,
};
use usystolic_gemm::GemmConfig;
use usystolic_hw::evaluate_layer_with;
use usystolic_hw::summary::NetworkEvaluation;
use usystolic_models::zoo;
use usystolic_obs::{JsonValue, ToJson};
use usystolic_sim::{Fidelity, MemoryHierarchy, MultiInstanceSystem, ScalingReport, Simulator};
use usystolic_unary::coding::Coding;
use usystolic_unary::rng::SplitMix64;
use usystolic_unary::stream_len;

#[derive(Debug)]
struct Args {
    scheme: ComputingScheme,
    cycles: Option<u64>,
    bitwidth: u32,
    cloud: bool,
    no_sram: Option<bool>,
    gemm: Option<GemmConfig>,
    network: Option<String>,
    instances: Option<usize>,
    fidelity: Fidelity,
    trace: Option<std::path::PathBuf>,
    metrics: Option<std::path::PathBuf>,
    metrics_format: MetricsFormat,
    report_html: Option<std::path::PathBuf>,
    json: bool,
    check: bool,
    acc_width: Option<u32>,
    acc_budget: Option<f64>,
    wiring: RngWiring,
    fifo_depth: Option<usize>,
    fault_ber: Option<f64>,
    fault_stuck: Vec<StuckAt>,
    fault_seed: Option<u64>,
}

/// On-disk encoding for `--metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Json,
    Prom,
}

fn usage() -> ! {
    eprintln!(
        "usage: usystolic_sim [--scheme BP|BS|UG|UR|UT] [--cycles N] [--bits N]
                     [--shape edge|cloud] [--sram|--no-sram] [--instances N]
                     [--fidelity cycle|packed|analytic]
                     [--trace FILE] [--metrics FILE] [--metrics-format json|prom]
                     [--report FILE.html] [--json]
                     [--fault-ber F] [--fault-stuck R,C,V]... [--fault-seed N]
                     (--conv IH,IW,IC,WH,WW,S,OC | --matmul M,K,N | --network alexnet|resnet18|vgg16|mnist)
       usystolic_sim --check [--scheme S] [--cycles N] [--bits N] [--shape edge|cloud]
                     [--acc-width N] [--acc-budget FRACTION]
                     [--wiring shared|independent] [--fifo-depth N]
                     [--sram|--no-sram] [--json]
                     [--conv ... | --matmul ... | --network ...]

--fidelity picks the timing-model tier: cycle (default) walks every
fold of the tile mapping, packed uses the bit-identical closed form,
and analytic additionally drops the SRAM service bound (exact for
compute- or DRAM-bound layers).

Fault injection (--fault-ber, --fault-stuck, --fault-seed) runs a
deterministic device-fault characterization on a sub-sampled window of
the layer's GEMM: bit-serial and word-packed unary kernels (which must
agree bit for bit) against the binary product-register baseline, under
the same seeded fault sites. --fault-stuck takes R,C,V with V=0|1 and
may repeat; --fault-seed defaults to 1.

--check statically validates the configuration against the paper's
invariants (stable USYxxx diagnostic codes) and exits 1 on any error.
With --network it also runs the whole-network abstract interpreter:
calibrated value ranges prove per-layer overflow freedom or saturation
(USY060/USY061), and the composed early-termination error bound is
compared against --acc-budget (USY062/USY063)."
    );
    std::process::exit(2);
}

/// Exits with a clear diagnostic (code 2) instead of a panic/backtrace.
fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("sim_cli: error: {message}");
    std::process::exit(2);
}

/// Parses `--conv`/`--matmul` dimension lists, failing loudly on anything
/// that is not exactly `expected` comma-separated non-negative integers.
fn parse_dims(flag: &str, s: &str, expected: usize) -> Vec<usize> {
    let dims: Vec<usize> = s
        .split(',')
        .map(|p| {
            p.trim().parse().unwrap_or_else(|_| {
                fail(format!(
                    "{flag} {s}: '{}' is not a non-negative integer",
                    p.trim()
                ))
            })
        })
        .collect();
    if dims.len() != expected {
        fail(format!(
            "{flag} {s}: expected {expected} comma-separated dimensions, got {}",
            dims.len()
        ));
    }
    dims
}

fn parse_args() -> Args {
    let mut args = Args {
        scheme: ComputingScheme::UnaryRate,
        cycles: None,
        bitwidth: 8,
        cloud: false,
        no_sram: None,
        gemm: None,
        network: None,
        instances: None,
        fidelity: Fidelity::CycleAccurate,
        trace: None,
        metrics: None,
        metrics_format: MetricsFormat::Json,
        report_html: None,
        json: false,
        check: false,
        acc_width: None,
        acc_budget: None,
        wiring: RngWiring::SharedDelayed,
        fifo_depth: None,
        fault_ber: None,
        fault_stuck: Vec::new(),
        fault_seed: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| fail(format!("{flag} requires a value")))
        };
        match flag.as_str() {
            "--scheme" => {
                let v = value();
                args.scheme = match v.as_str() {
                    "BP" => ComputingScheme::BinaryParallel,
                    "BS" => ComputingScheme::BinarySerial,
                    "UG" => ComputingScheme::UGemmHybrid,
                    "UR" => ComputingScheme::UnaryRate,
                    "UT" => ComputingScheme::UnaryTemporal,
                    _ => fail(format!("--scheme {v}: expected BP, BS, UG, UR or UT")),
                }
            }
            "--cycles" => {
                let v = value();
                args.cycles = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(format!("--cycles {v}: not an integer"))),
                );
            }
            "--bits" => {
                let v = value();
                args.bitwidth = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--bits {v}: not an integer")));
            }
            "--shape" => {
                let v = value();
                args.cloud = match v.as_str() {
                    "edge" => false,
                    "cloud" => true,
                    _ => fail(format!("--shape {v}: expected edge or cloud")),
                }
            }
            "--sram" => args.no_sram = Some(false),
            "--no-sram" => args.no_sram = Some(true),
            "--conv" => {
                let v = value();
                let d = parse_dims("--conv", &v, 7);
                args.gemm = Some(
                    GemmConfig::conv(d[0], d[1], d[2], d[3], d[4], d[5], d[6])
                        .unwrap_or_else(|e| fail(format!("--conv {v}: {e}"))),
                );
            }
            "--matmul" => {
                let v = value();
                let d = parse_dims("--matmul", &v, 3);
                args.gemm = Some(
                    GemmConfig::matmul(d[0], d[1], d[2])
                        .unwrap_or_else(|e| fail(format!("--matmul {v}: {e}"))),
                );
            }
            "--network" => args.network = Some(value()),
            "--instances" => {
                let v = value();
                let n: usize = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--instances {v}: not an integer")));
                if n == 0 {
                    fail("--instances 0: need at least one instance");
                }
                args.instances = Some(n);
            }
            "--fidelity" => {
                let v = value();
                args.fidelity = v
                    .parse()
                    .unwrap_or_else(|e| fail(format!("--fidelity {v}: {e}")));
            }
            "--trace" => args.trace = Some(value().into()),
            "--metrics" => args.metrics = Some(value().into()),
            "--metrics-format" => {
                let v = value();
                args.metrics_format = match v.as_str() {
                    "json" => MetricsFormat::Json,
                    "prom" => MetricsFormat::Prom,
                    _ => fail(format!("--metrics-format {v}: expected json or prom")),
                }
            }
            "--report" => args.report_html = Some(value().into()),
            "--json" => args.json = true,
            "--check" => args.check = true,
            "--acc-width" => {
                let v = value();
                args.acc_width = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(format!("--acc-width {v}: not an integer"))),
                );
            }
            "--acc-budget" => {
                let v = value();
                let b: f64 = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--acc-budget {v}: not a number")));
                if !b.is_finite() || b <= 0.0 {
                    fail(format!("--acc-budget {v}: must be a positive fraction"));
                }
                args.acc_budget = Some(b);
            }
            "--wiring" => {
                let v = value();
                args.wiring = match v.as_str() {
                    "shared" | "shared-delayed" => RngWiring::SharedDelayed,
                    "independent" => RngWiring::Independent,
                    _ => fail(format!("--wiring {v}: expected shared or independent")),
                };
            }
            "--fifo-depth" => {
                let v = value();
                args.fifo_depth = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(format!("--fifo-depth {v}: not an integer"))),
                );
            }
            "--fault-ber" => {
                let v = value();
                let ber: f64 = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--fault-ber {v}: not a number")));
                if !ber.is_finite() || !(0.0..=1.0).contains(&ber) {
                    fail(format!("--fault-ber {v}: must be a probability in [0, 1]"));
                }
                args.fault_ber = Some(ber);
            }
            "--fault-stuck" => {
                let v = value();
                let parts: Vec<&str> = v.split(',').map(str::trim).collect();
                if parts.len() != 3 {
                    fail(format!("--fault-stuck {v}: expected R,C,V (three fields)"));
                }
                let row: usize = parts[0]
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--fault-stuck {v}: bad row '{}'", parts[0])));
                let col: usize = parts[1]
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--fault-stuck {v}: bad col '{}'", parts[1])));
                let stuck_value = match parts[2] {
                    "0" => false,
                    "1" => true,
                    other => fail(format!("--fault-stuck {v}: value '{other}' must be 0 or 1")),
                };
                args.fault_stuck.push(StuckAt {
                    row,
                    col,
                    value: stuck_value,
                });
            }
            "--fault-seed" => {
                let v = value();
                args.fault_seed = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(format!("--fault-seed {v}: not an integer"))),
                );
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if !args.check && args.gemm.is_none() && args.network.is_none() {
        usage();
    }
    args
}

/// The `--check` mode: static analysis of the raw knob values, no
/// simulation. Exits 1 when any error-severity diagnostic fires.
fn run_check(args: &Args) -> ! {
    let (rows, cols) = if args.cloud {
        (CLOUD_ROWS, CLOUD_COLS)
    } else {
        (EDGE_ROWS, EDGE_COLS)
    };
    let mut spec = RawSpec::new(rows, cols, args.scheme, args.bitwidth).with_wiring(args.wiring);
    spec.mul_cycles = args.cycles;
    spec.acc_width = args.acc_width;
    spec.fifo_depth = args.fifo_depth;

    let no_sram = args.no_sram.unwrap_or(args.scheme.is_unary());
    let memory = if no_sram {
        MemoryHierarchy::no_sram()
    } else if args.cloud {
        MemoryHierarchy::cloud_with_sram()
    } else {
        MemoryHierarchy::edge_with_sram()
    };

    // Spec-only checks, plus workload/memory checks per GEMM layer.
    let network = args.network.as_deref().map(network_by_name);
    let gemms: Vec<GemmConfig> = match (&args.gemm, &network) {
        (Some(g), _) => vec![*g],
        (None, Some(net)) => net.gemms(),
        (None, None) => Vec::new(),
    };
    let mut report = if gemms.is_empty() {
        analyze(&spec, None, Some(&memory))
    } else {
        let mut merged = Report::default();
        for gemm in &gemms {
            for d in analyze(&spec, Some(gemm), Some(&memory)).diagnostics {
                if !merged.diagnostics.contains(&d) {
                    merged.diagnostics.push(d);
                }
            }
        }
        merged
    };
    // Whole-network abstract interpretation: calibrated ranges, composed
    // ET error. Only meaningful when a full network is on the table.
    let interp: Option<NetworkAnalysis> = network
        .as_ref()
        .map(|net| analyze_network(&spec, net, args.acc_budget));
    if let Some(na) = &interp {
        // Calibrated ranges subsume the worst-case width rule: when the
        // interpreter proves every layer overflow-free, the coarse
        // USY020 rejection is withdrawn in favour of the USY060 notes.
        if !na.layers.is_empty() && !na.report.has("USY061") {
            report.diagnostics.retain(|d| d.code != "USY020");
        }
        for d in &na.report.diagnostics {
            if !report.diagnostics.contains(d) {
                report.diagnostics.push(d.clone());
            }
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (a.code, &a.message).cmp(&(b.code, &b.message)));

    if args.json {
        let mut json = report.to_json();
        if let (JsonValue::Object(pairs), Some(na)) = (&mut json, &interp) {
            pairs.push(("network".to_owned(), na.to_json()));
        }
        println!("{}", json.render());
    } else {
        println!(
            "check: {}x{} {} {}b, wiring {}, {}",
            rows,
            cols,
            args.scheme.label(),
            args.bitwidth,
            args.wiring,
            if no_sram { "DRAM only" } else { "SRAM + DRAM" }
        );
        if let Some(na) = &interp {
            if !na.layers.is_empty() {
                println!(
                    "\n{:<8} {:>6} {:>6} {:>6} {:>10} {:>12} {:>12} {:>6} {:>10}",
                    "layer",
                    "in_lv",
                    "w_lv",
                    "depth",
                    "window",
                    "acc bound",
                    "capacity",
                    "worst",
                    "et error"
                );
                for l in &na.layers {
                    println!(
                        "{:<8} {:>6} {:>6} {:>6} {:>10} {:>12} {:>12} {:>6} {:>10.3e}",
                        l.name,
                        l.input_levels,
                        l.weight_levels,
                        l.depth,
                        l.window_bound,
                        l.acc_bound,
                        l.acc_capacity,
                        l.worst_case_width,
                        l.et_rel_error
                    );
                }
                match args.acc_budget {
                    Some(b) => println!(
                        "composed ET error bound {:.3e} vs budget {b}\n",
                        na.composed_et_error
                    ),
                    None => println!(
                        "composed ET error bound {:.3e} (no --acc-budget given)\n",
                        na.composed_et_error
                    ),
                }
            }
        }
        println!("{report}");
    }
    std::process::exit(i32::from(!report.is_legal()));
}

fn network_by_name(name: &str) -> usystolic_models::zoo::Network {
    match name {
        "alexnet" => zoo::alexnet(),
        "resnet18" => zoo::resnet18(),
        "vgg16" => zoo::vgg16(),
        "mnist" => zoo::mnist_cnn4(),
        other => fail(format!(
            "--network {other}: expected alexnet, resnet18, vgg16 or mnist"
        )),
    }
}

/// The device fault model assembled from the CLI flags, on the array's
/// physical PE grid — `None` when no fault flag was given.
fn device_faults(args: &Args) -> Option<DeviceFaults> {
    if args.fault_ber.is_none() && args.fault_stuck.is_empty() && args.fault_seed.is_none() {
        return None;
    }
    let (rows, cols) = if args.cloud {
        (CLOUD_ROWS, CLOUD_COLS)
    } else {
        (EDGE_ROWS, EDGE_COLS)
    };
    let mut faults = DeviceFaults::new(args.fault_seed.unwrap_or(1))
        .with_ber(args.fault_ber.unwrap_or(0.0))
        .with_grid(rows, cols);
    for &s in &args.fault_stuck {
        faults = faults.with_stuck(s);
    }
    faults
        .validate()
        .unwrap_or_else(|e| fail(format!("fault model: {e}")));
    Some(faults)
}

/// Root-mean-square error of `faulty` against `clean`, normalized by the
/// clean RMS (absolute RMSE when the clean output is all zero).
fn nrmse(faulty: &[i64], clean: &[i64]) -> f64 {
    let n = clean.len() as f64;
    let mse: f64 = faulty
        .iter()
        .zip(clean)
        .map(|(&f, &c)| {
            let d = (f - c) as f64;
            d * d
        })
        .sum::<f64>()
        / n;
    let ref_ms: f64 = clean.iter().map(|&c| (c as f64) * (c as f64)).sum::<f64>() / n;
    if ref_ms > 0.0 {
        (mse / ref_ms).sqrt()
    } else {
        mse.sqrt()
    }
}

/// Outcome of the seeded device-fault characterization: both unary
/// kernels and the binary baseline on the same sub-sampled GEMM window,
/// each compared against its own quiet (fault-free) run.
struct FaultCharacterization {
    shape: GemmShape,
    coding: Coding,
    serial: FaultReport,
    packed: FaultReport,
    binary: FaultReport,
    unary_nrmse: f64,
    binary_nrmse: f64,
    kernels_agree: bool,
}

/// Runs the characterization. The layer's GEMM is sub-sampled to at most
/// an 8×16×8 window so the bit-level simulation stays tractable on full
/// layers; the fault model's `(seed, window, cycle)` determinism is
/// untouched by the sampling.
fn fault_characterization(
    args: &Args,
    faults: &DeviceFaults,
    gemm: &GemmConfig,
) -> FaultCharacterization {
    let shape = GemmShape {
        m: gemm.output_pixels().min(8),
        k: gemm.reduction_len().min(16),
        n: gemm.output_channels().min(8),
    };
    let bitwidth = args.bitwidth;
    if !(2..=usystolic_unary::MAX_BITWIDTH).contains(&bitwidth) {
        fail(format!(
            "--bits {bitwidth}: fault injection needs 2..={}",
            usystolic_unary::MAX_BITWIDTH
        ));
    }
    let hi = (stream_len(bitwidth) - 1).cast_signed();
    let mut rng = SplitMix64::new(faults.seed);
    let a: Vec<i64> = (0..shape.m * shape.k)
        .map(|_| rng.range_i64(-hi, hi))
        .collect();
    let b: Vec<i64> = (0..shape.k * shape.n)
        .map(|_| rng.range_i64(-hi, hi))
        .collect();
    let coding = match args.scheme {
        ComputingScheme::UnaryTemporal => Coding::Temporal,
        _ => Coding::Rate,
    };
    let quiet = DeviceFaults::new(faults.seed).with_grid(faults.rows, faults.cols);
    let run_unary = |model: &DeviceFaults, kernel: FaultKernel| {
        faulty_unary_gemm(&a, &b, shape, bitwidth, coding, model, kernel)
            .unwrap_or_else(|e| fail(format!("fault injection: {e}")))
    };
    let run_binary = |model: &DeviceFaults| {
        faulty_binary_gemm(&a, &b, shape, bitwidth, model)
            .unwrap_or_else(|e| fail(format!("fault injection: {e}")))
    };
    let unary_clean = run_unary(&quiet, FaultKernel::Packed);
    let binary_clean = run_binary(&quiet);
    let serial = run_unary(faults, FaultKernel::Serial);
    let packed = run_unary(faults, FaultKernel::Packed);
    let binary = run_binary(faults);
    FaultCharacterization {
        shape,
        coding,
        unary_nrmse: nrmse(&packed.output, &unary_clean.output),
        binary_nrmse: nrmse(&binary.output, &binary_clean.output),
        kernels_agree: serial == packed,
        serial,
        packed,
        binary,
    }
}

impl FaultCharacterization {
    fn kernel_json(report: &FaultReport, error: f64) -> JsonValue {
        JsonValue::object(vec![
            ("transient_flips", report.transient_flips.to_json()),
            ("stuck_windows", report.stuck_windows.to_json()),
            ("corrupted_words", report.corrupted_words.to_json()),
            ("checksum", report.checksum().to_json()),
            ("nrmse", error.to_json()),
        ])
    }

    fn to_json(&self, faults: &DeviceFaults) -> JsonValue {
        JsonValue::object(vec![
            ("seed", faults.seed.to_json()),
            ("ber", faults.ber.to_json()),
            ("stuck", faults.stuck.to_json()),
            ("coding", self.coding.to_string().to_json()),
            (
                "shape",
                JsonValue::object(vec![
                    ("m", (self.shape.m as u64).to_json()),
                    ("k", (self.shape.k as u64).to_json()),
                    ("n", (self.shape.n as u64).to_json()),
                ]),
            ),
            ("kernels_agree", self.kernels_agree.to_json()),
            (
                "unary_serial",
                Self::kernel_json(&self.serial, self.unary_nrmse),
            ),
            (
                "unary_packed",
                Self::kernel_json(&self.packed, self.unary_nrmse),
            ),
            ("binary", Self::kernel_json(&self.binary, self.binary_nrmse)),
        ])
    }

    fn print_human(&self, faults: &DeviceFaults) {
        println!(
            "\nfault injection  seed {} BER {:.2e} stuck {} ({} coding, {}x{}x{} window)",
            faults.seed,
            faults.ber,
            faults.stuck.len(),
            self.coding,
            self.shape.m,
            self.shape.k,
            self.shape.n
        );
        println!(
            "  unary ({} = packed: {})  flips {:>6}  stuck windows {:>4}  nrmse {:.4}",
            FaultKernel::Serial,
            self.kernels_agree,
            self.packed.transient_flips,
            self.packed.stuck_windows,
            self.unary_nrmse
        );
        println!(
            "  binary baseline        flips {:>6}  stuck windows {:>4}  nrmse {:.4}",
            self.binary.transient_flips, self.binary.stuck_windows, self.binary_nrmse
        );
    }
}

/// Writes the observability artefacts collected during the run.
fn export_session(args: &Args, session: &usystolic_obs::Session) {
    if let Some(path) = &args.trace {
        session
            .tracer
            .write_chrome(path)
            .unwrap_or_else(|e| fail(format!("writing trace to {}: {e}", path.display())));
        if !args.json {
            eprintln!(
                "trace:  {} ({} events, {} dropped)",
                path.display(),
                session.tracer.len(),
                session.tracer.dropped()
            );
        }
    }
    if let Some(path) = &args.metrics {
        match args.metrics_format {
            MetricsFormat::Json => session
                .metrics
                .write_snapshot(path)
                .unwrap_or_else(|e| fail(format!("writing metrics to {}: {e}", path.display()))),
            MetricsFormat::Prom => {
                std::fs::write(path, usystolic_obs::prometheus_text(&session.metrics))
                    .unwrap_or_else(|e| fail(format!("writing metrics to {}: {e}", path.display())))
            }
        }
        if !args.json {
            eprintln!("metrics: {}", path.display());
        }
    }
    if let Some(path) = &args.report_html {
        let html = usystolic_obs::html_report("sim_cli observability report", &session.metrics);
        std::fs::write(path, html)
            .unwrap_or_else(|e| fail(format!("writing report to {}: {e}", path.display())));
        if !args.json {
            eprintln!("report: {}", path.display());
        }
    }
    if session.tracer.dropped() > 0 {
        eprintln!(
            "sim_cli: warning: trace ring full, {} span(s) dropped (oldest first); \
             raise the tracer capacity to keep them",
            session.tracer.dropped()
        );
    }
}

fn main() {
    let args = parse_args();
    if args.check {
        run_check(&args);
    }
    let mut config = if args.cloud {
        SystolicConfig::cloud(args.scheme, args.bitwidth)
    } else {
        SystolicConfig::edge(args.scheme, args.bitwidth)
    };
    if let Some(c) = args.cycles {
        config = config
            .with_mul_cycles(c)
            .unwrap_or_else(|e| fail(format!("--cycles: {e}")));
    }
    // Default: binary keeps SRAM, unary drops it (the paper's conclusion).
    let no_sram = args.no_sram.unwrap_or(args.scheme.is_unary());
    let memory = if no_sram {
        MemoryHierarchy::no_sram()
    } else if args.cloud {
        MemoryHierarchy::cloud_with_sram()
    } else {
        MemoryHierarchy::edge_with_sram()
    };

    // Collect traces/metrics only when asked for: with no session the
    // instrumented hot paths stay allocation-free.
    let observing = args.trace.is_some() || args.metrics.is_some() || args.report_html.is_some();
    if observing {
        usystolic_obs::install(usystolic_obs::Session::new());
    }

    if !args.json {
        println!("array:  {config}");
        println!(
            "memory: {}",
            if no_sram {
                "DRAM only (SRAM eliminated)"
            } else {
                "SRAM + DRAM"
            }
        );
    }

    let faults = device_faults(&args);
    let sim = Simulator::new(config, memory).with_fidelity(args.fidelity);

    if let Some(gemm) = args.gemm {
        let ev = evaluate_layer_with(&sim, &gemm);
        let scaling = args
            .instances
            .map(|n| MultiInstanceSystem::new(config, memory).scale(&gemm, n));
        let characterization = faults
            .as_ref()
            .map(|f| fault_characterization(&args, f, &gemm));
        if let Some(session) = usystolic_obs::take() {
            export_session(&args, &session);
        }
        if args.json {
            let mut pairs = vec![
                ("config", config.to_json()),
                ("memory", memory.to_json()),
                ("gemm", gemm.to_json()),
                ("evaluation", ev.to_json()),
            ];
            if let Some(s) = &scaling {
                pairs.push(("scaling", s.to_json()));
            }
            if let (Some(f), Some(c)) = (&faults, &characterization) {
                pairs.push(("faults", c.to_json(f)));
            }
            println!("{}", JsonValue::object(pairs).render());
            return;
        }
        println!("layer:  {gemm}\n");
        println!(
            "runtime          {:>12.6} s  ({} cycles, {:.1}% stall)",
            ev.report.runtime_s,
            ev.report.timing.runtime_cycles,
            100.0 * ev.report.timing.overhead()
        );
        println!(
            "throughput       {:>12.3} layers/s",
            ev.report.throughput_per_s
        );
        println!(
            "DRAM bandwidth   {:>12.3} GB/s",
            ev.report.dram_bandwidth_gbps
        );
        println!(
            "SRAM bandwidth   {:>12.3} GB/s",
            ev.report.sram_bandwidth_gbps
        );
        println!("utilization      {:>12.1} %", 100.0 * ev.report.utilization);
        println!(
            "on-chip energy   {:>12.3} uJ",
            ev.energy.on_chip_j() * 1.0e6
        );
        println!("total energy     {:>12.3} uJ", ev.energy.total_j() * 1.0e6);
        println!("on-chip power    {:>12.3} mW", ev.power.on_chip_w() * 1.0e3);
        println!("total power      {:>12.3} mW", ev.power.total_w() * 1.0e3);
        println!("on-chip area     {:>12.3} mm2", ev.area.total_mm2());
        if let Some(s) = &scaling {
            println!("\n{}", scaling_line(s));
        }
        if let (Some(f), Some(c)) = (&faults, &characterization) {
            c.print_human(f);
        }
        return;
    }

    let network = match args.network.as_deref() {
        Some(name) => network_by_name(name),
        None => usage(),
    };
    let ev = NetworkEvaluation::evaluate_with(&sim, &network.gemms());
    // Device faults characterize on the network's first layer.
    let characterization = faults.as_ref().map(|f| {
        let first = network
            .gemms()
            .first()
            .copied()
            .unwrap_or_else(|| fail("fault injection: network has no layers"));
        fault_characterization(&args, f, &first)
    });
    let scaling: Vec<(String, ScalingReport)> = match args.instances {
        Some(n) => {
            let sys = MultiInstanceSystem::new(config, memory);
            network
                .layers
                .iter()
                .zip(network.gemms())
                .map(|(layer, gemm)| (layer.name.clone(), sys.scale(&gemm, n)))
                .collect()
        }
        None => Vec::new(),
    };
    if let Some(session) = usystolic_obs::take() {
        export_session(&args, &session);
    }
    if args.json {
        let mut pairs = vec![
            ("config", config.to_json()),
            ("memory", memory.to_json()),
            ("network", network.to_json()),
            ("evaluation", ev.to_json()),
        ];
        let scaling_json: Vec<JsonValue> = scaling
            .iter()
            .map(|(name, s)| {
                let mut obj = s.to_json();
                if let JsonValue::Object(p) = &mut obj {
                    p.insert(0, ("layer".to_owned(), name.to_json()));
                }
                obj
            })
            .collect();
        if !scaling_json.is_empty() {
            pairs.push(("scaling", JsonValue::Array(scaling_json)));
        }
        if let (Some(f), Some(c)) = (&faults, &characterization) {
            pairs.push(("faults", c.to_json(f)));
        }
        println!("{}", JsonValue::object(pairs).render());
        return;
    }
    println!(
        "network: {} ({} GEMM layers, {} parameters)\n",
        network.name,
        network.layers.len(),
        network.parameters()
    );
    println!(
        "{:<10} {:>12} {:>14} {:>14}",
        "layer", "runtime s", "on-chip uJ", "total uJ"
    );
    for (layer, l) in network.layers.iter().zip(&ev.layers) {
        println!(
            "{:<10} {:>12.6} {:>14.3} {:>14.3}",
            layer.name,
            l.report.runtime_s,
            l.energy.on_chip_j() * 1.0e6,
            l.energy.total_j() * 1.0e6
        );
    }
    println!(
        "\ninference runtime    {:>12.6} s ({:.2} inf/s, {:.1} GOPS)",
        ev.runtime_s,
        ev.inferences_per_s(),
        ev.gops()
    );
    println!(
        "on-chip energy       {:>12.3} mJ ({:.0} inf per on-chip J)",
        ev.on_chip_j * 1.0e3,
        ev.inferences_per_on_chip_joule()
    );
    println!("total energy         {:>12.3} mJ", ev.total_j * 1.0e3);
    println!(
        "avg on-chip power    {:>12.3} mW",
        ev.on_chip_power_w() * 1.0e3
    );
    println!(
        "avg total power      {:>12.3} mW",
        ev.total_power_w() * 1.0e3
    );
    if !scaling.is_empty() {
        println!();
        for (name, s) in &scaling {
            println!("{name:<10} {}", scaling_line(s));
        }
    }
    if let (Some(f), Some(c)) = (&faults, &characterization) {
        c.print_human(f);
    }
}

/// One human-readable line of a [`ScalingReport`].
fn scaling_line(s: &ScalingReport) -> String {
    format!(
        "scaling x{}: {:.3} layers/s aggregate, {:.1}% efficiency{}",
        s.instances,
        s.aggregate_throughput,
        100.0 * s.scaling_efficiency,
        if s.dram_limited { ", DRAM-limited" } else { "" }
    )
}
