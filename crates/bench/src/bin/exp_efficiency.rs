//! Regenerates Fig. 14 (on-chip efficiency improvements for AlexNet and
//! the MLPerf-like suite) plus the Section V-G utilisation summary.
//!
//! Usage: `cargo run --release -p usystolic-bench --bin exp_efficiency`

use usystolic_bench::efficiency::{figure14, utilization_summary, Workload};
use usystolic_bench::ArrayShape;

fn main() {
    for workload in [Workload::AlexNet, Workload::MlPerf] {
        for shape in ArrayShape::ALL {
            usystolic_bench::table::emit(&figure14(shape, workload));
        }
    }
    usystolic_bench::table::emit(&utilization_summary());
}
