//! Regenerates Fig. 10 (layerwise SRAM/DRAM bandwidth, 8-bit AlexNet)
//! plus the Section V-B bandwidth summary.
//!
//! Usage: `cargo run --release -p usystolic-bench --bin exp_bandwidth`

use usystolic_bench::bandwidth::{bandwidth_summary, figure10};
use usystolic_bench::ArrayShape;

fn main() {
    for shape in ArrayShape::ALL {
        usystolic_bench::table::emit(&figure10(shape));
        usystolic_bench::table::emit(&bandwidth_summary(shape));
    }
}
