//! Regenerates the design-choice ablations: RNG quality (Sobol vs LFSR),
//! OREG width, and the early-termination accuracy-energy trade-off.
//!
//! Usage: `cargo run --release -p usystolic-bench --bin exp_ablation`

use usystolic_bench::ablation::{
    accumulator_width_sweep, early_termination_tradeoff, error_propagation, fault_tolerance,
    rng_quality,
};

fn main() {
    usystolic_bench::table::emit(&rng_quality(8, 200));
    usystolic_bench::table::emit(&rng_quality(12, 100));
    usystolic_bench::table::emit(&accumulator_width_sweep());
    usystolic_bench::table::emit(&early_termination_tradeoff());
    usystolic_bench::table::emit(&error_propagation(8));
    usystolic_bench::table::emit(&fault_tolerance(8, 2000));
}
