//! Regenerates Table I as a quantified comparison.
//!
//! Usage: `cargo run --release -p usystolic-bench --bin exp_table1`

fn main() {
    usystolic_bench::table::emit(&usystolic_bench::table1::table1());
}
