//! Regenerates the Section V-F power tables (on-chip and total layerwise
//! power, plus reduction summary).
//!
//! Usage: `cargo run --release -p usystolic-bench --bin exp_power`

use usystolic_bench::power::{power_on_chip, power_summary, power_total};
use usystolic_bench::ArrayShape;

fn main() {
    for shape in ArrayShape::ALL {
        usystolic_bench::table::emit(&power_on_chip(shape));
        usystolic_bench::table::emit(&power_total(shape));
        usystolic_bench::table::emit(&power_summary(shape));
    }
}
