//! Regenerates the design-space explorations: the §V-G SRAM sizing sweep
//! and the footnote-1 dataflow comparison.
//!
//! Usage: `cargo run --release -p usystolic-bench --bin exp_design_space`

use usystolic_bench::design_space::{dataflow_comparison, sram_sweep};

fn main() {
    usystolic_bench::table::emit(&sram_sweep());
    usystolic_bench::table::emit(&dataflow_comparison());
}
