//! Fig. 9: accuracy vs effective bitwidth.
//!
//! The paper evaluates trained CNNs (MNIST 4-layer CNN, ResNet18,
//! AlexNet) under FP32, FXP-o-res, FXP-i-res and uSystolic at EBT 6..12.
//! Training those networks is substituted (see DESIGN.md) by
//!
//! 1. an end-to-end CNN experiment — the pure-Rust [`TinyCnn`] trained on
//!    the procedural glyph dataset, evaluated under every scheme; and
//! 2. a GEMM-level error study on layer-shaped random tensors from all
//!    three networks, verifying the paper's ordering
//!    `error(FXP-i-res) < error(uSystolic) < error(FXP-o-res)`.

use crate::table::{fmt_sig, Table};
use usystolic_core::{ComputingScheme, GemmExecutor, SystolicConfig};
use usystolic_gemm::loopnest::gemm_reference;
use usystolic_gemm::quant::{fxp_gemm, FxpFormat};
use usystolic_gemm::stats::ErrorStats;
use usystolic_gemm::{FeatureMap, GemmConfig, WeightSet};
use usystolic_models::dataset::Dataset;
use usystolic_models::trainer::TinyCnn;
use usystolic_unary::rng::SplitMix64;

/// An effective bitwidth `n` is executed as an `n`-bit full-length run —
/// functionally identical to early-terminating a wider run at `2^(n-1)`
/// cycles ("smaller EBT can be obtained by early terminating larger EBT",
/// Section V-A) but much cheaper to simulate.
fn rate_exec(ebt: u32) -> GemmExecutor {
    GemmExecutor::new(
        SystolicConfig::new(12, 14, ComputingScheme::UnaryRate, ebt)
            .expect("valid accuracy-study configuration"),
    )
}

fn temporal_exec(ebt: u32) -> GemmExecutor {
    GemmExecutor::new(
        SystolicConfig::new(12, 14, ComputingScheme::UnaryTemporal, ebt)
            .expect("valid accuracy-study configuration"),
    )
}

fn ugemm_exec(ebt: u32) -> GemmExecutor {
    GemmExecutor::new(
        SystolicConfig::new(12, 14, ComputingScheme::UGemmHybrid, ebt)
            .expect("valid accuracy-study configuration"),
    )
}

/// Task difficulty standing in for the paper's dataset scale: MNIST
/// (small) → CIFAR10 (medium) → ImageNet (large). Harder tasks inject
/// more pixel noise, so coarse arithmetic loses accuracy sooner — the
/// Fig. 9 trend of "when the task complexity rises … the accuracy
/// varies".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Difficulty {
    /// Low-noise glyphs (MNIST stand-in, Fig. 9a).
    Easy,
    /// Medium-noise glyphs (CIFAR10 stand-in, Fig. 9b).
    Medium,
    /// High-noise glyphs (ImageNet stand-in, Fig. 9c).
    Hard,
}

impl Difficulty {
    /// All three difficulties in Fig. 9's order.
    pub const ALL: [Difficulty; 3] = [Difficulty::Easy, Difficulty::Medium, Difficulty::Hard];

    fn noise(self) -> f64 {
        match self {
            Difficulty::Easy => 0.3,
            Difficulty::Medium => 0.8,
            Difficulty::Hard => 1.2,
        }
    }

    /// The dataset the difficulty stands in for.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Difficulty::Easy => "easy (MNIST stand-in)",
            Difficulty::Medium => "medium (CIFAR10 stand-in)",
            Difficulty::Hard => "hard (ImageNet stand-in)",
        }
    }
}

/// The Fig. 9 end-to-end CNN experiment: top-1 accuracy of the trained
/// glyph CNN for every design across the EBT sweep at one task
/// difficulty.
///
/// `ebts` is the sweep (the paper uses 6..=12; lower values expose the
/// degradation knee); `test_per_class` sizes the test set.
#[must_use]
pub fn figure9_cnn(difficulty: Difficulty, ebts: &[u32], test_per_class: usize) -> Table {
    let noise = difficulty.noise();
    let train = Dataset::generate(40, noise, 11);
    let test = Dataset::generate(test_per_class, noise, 99);
    let mut net = TinyCnn::new(7);
    net.train(&train, 8, 0.05);

    let mut headers: Vec<String> = vec!["design".into()];
    headers.extend(ebts.iter().map(|n| format!("{}-{}", n, 1u64 << (n - 1))));
    headers.push("FP32".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!(
            "Fig. 9: top-1 accuracy (%) vs EBT, glyph CNN, {}",
            difficulty.label()
        ),
        &header_refs,
    );

    let fp = format!("{:.1}", 100.0 * net.accuracy_fp(&test));
    let mut push = |name: &str, f: &mut dyn FnMut(u32) -> f64| {
        let mut row = vec![name.to_owned()];
        for &n in ebts {
            row.push(format!("{:.1}", 100.0 * f(n)));
        }
        row.push(fp.clone());
        table.push_row(row);
    };
    push("FXP-o-res", &mut |n| {
        net.accuracy_fxp(&test, FxpFormat::OutputRes(n))
            .expect("static shapes match")
    });
    push("FXP-i-res", &mut |n| {
        net.accuracy_fxp(&test, FxpFormat::InputRes(n))
            .expect("static shapes match")
    });
    push("uSystolic-rate", &mut |n| {
        net.accuracy_with(&test, &rate_exec(n))
            .expect("executor accepts the CNN")
    });
    push("uSystolic-temporal", &mut |n| {
        net.accuracy_with(&test, &temporal_exec(n))
            .expect("executor accepts the CNN")
    });
    push("uGEMM-H", &mut |n| {
        net.accuracy_with(&test, &ugemm_exec(n))
            .expect("executor accepts the CNN")
    });
    table
}

/// The matmul-path companion of [`figure9_cnn`]: the same EBT sweep on a
/// pure-MLP classifier, validating that the accuracy behaviour is a
/// property of the HUB MAC, not of the convolution lowering.
#[must_use]
pub fn figure9_mlp(ebts: &[u32], test_per_class: usize) -> Table {
    use usystolic_models::mlp::TinyMlp;
    let train = Dataset::generate(40, 0.5, 21);
    let test = Dataset::generate(test_per_class, 0.5, 91);
    let mut net = TinyMlp::new(5);
    net.train(&train, 10, 0.03);

    let mut headers: Vec<String> = vec!["design".into()];
    headers.extend(ebts.iter().map(|n| format!("{}-{}", n, 1u64 << (n - 1))));
    headers.push("FP32".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Fig. 9 (matmul path): top-1 accuracy (%) vs EBT, glyph MLP",
        &header_refs,
    );
    let fp = format!("{:.1}", 100.0 * net.accuracy_fp(&test));
    let mut push = |name: &str, f: &mut dyn FnMut(u32) -> f64| {
        let mut row = vec![name.to_owned()];
        for &n in ebts {
            row.push(format!("{:.1}", 100.0 * f(n)));
        }
        row.push(fp.clone());
        table.push_row(row);
    };
    push("uSystolic-rate", &mut |n| {
        net.accuracy_with(&test, &rate_exec(n))
            .expect("executor accepts the MLP")
    });
    push("uSystolic-temporal", &mut |n| {
        net.accuracy_with(&test, &temporal_exec(n))
            .expect("executor accepts the MLP")
    });
    table
}

/// A spatially-shrunk proxy for a network's characteristic conv layer,
/// keeping the kernel and channel structure (which set the quantisation
/// behaviour) while capping the simulated output pixels.
fn proxy_layer(net: &str) -> GemmConfig {
    match net {
        "MNIST-CNN4" => GemmConfig::conv(8, 8, 8, 5, 5, 1, 16),
        "ResNet18" => GemmConfig::conv(6, 6, 32, 3, 3, 1, 32),
        _ => GemmConfig::conv(6, 6, 48, 5, 5, 1, 32), // AlexNet Conv2-like
    }
    .expect("proxy shapes are valid")
}

fn random_tensors(gemm: &GemmConfig, seed: u64) -> (FeatureMap<f64>, WeightSet<f64>) {
    let mut rng = SplitMix64::new(seed);
    let input = FeatureMap::from_fn(
        gemm.input_height(),
        gemm.input_width(),
        gemm.input_channels(),
        |_, _, _| rng.next_f64() * 2.0 - 1.0,
    );
    let mut rng = SplitMix64::new(seed ^ 0xABCD);
    let weights = WeightSet::from_fn(
        gemm.output_channels(),
        gemm.weight_height(),
        gemm.weight_width(),
        gemm.input_channels(),
        |_, _, _, _| (rng.next_f64() * 2.0 - 1.0) * 0.25,
    );
    (input, weights)
}

/// The GEMM-level error study: RMS error against the FP64 reference for
/// FXP-o-res, uSystolic (rate) and FXP-i-res at a given EBT, on
/// layer-shaped random tensors of all three networks.
#[must_use]
pub fn gemm_error_study(ebt: u32) -> Table {
    let mut table = Table::new(
        format!("Section V-A: GEMM RMS error at EBT {ebt} (layer-shaped tensors)"),
        &["network", "FXP-o-res", "uSystolic", "FXP-i-res"],
    );
    for net in ["MNIST-CNN4", "ResNet18", "AlexNet"] {
        let gemm = proxy_layer(net);
        let (input, weights) = random_tensors(&gemm, 42);
        let reference = gemm_reference(&gemm, &input, &weights).expect("shapes match");
        let rmse = |out: &FeatureMap<f64>| {
            ErrorStats::compare(reference.as_slice(), out.as_slice())
                .expect("equal shapes")
                .rmse()
        };
        let o_res = rmse(&fxp_gemm(&gemm, &input, &weights, FxpFormat::OutputRes(ebt)).unwrap());
        let i_res = rmse(&fxp_gemm(&gemm, &input, &weights, FxpFormat::InputRes(ebt)).unwrap());
        let usys = rmse(
            &rate_exec(ebt)
                .execute(&gemm, &input, &weights)
                .expect("executor accepts the layer")
                .output,
        );
        table.push_row(vec![
            net.to_owned(),
            fmt_sig(o_res),
            fmt_sig(usys),
            fmt_sig(i_res),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_error_ordering_holds() {
        // The paper's ranking: FXP-o-res ≥ uSystolic ≥ FXP-i-res in error.
        let t = gemm_error_study(8);
        for row in t.rows() {
            let o: f64 = row[1].parse().unwrap();
            let u: f64 = row[2].parse().unwrap();
            let i: f64 = row[3].parse().unwrap();
            assert!(
                o > u && u > i,
                "{}: o-res {o}, uSystolic {u}, i-res {i}",
                row[0]
            );
        }
    }

    #[test]
    fn cnn_accuracy_sweep_is_smooth() {
        // Quick sweep: accuracy at EBT 8 should be near FP32 and EBT 4
        // should not exceed it materially.
        let t = figure9_cnn(Difficulty::Medium, &[4, 8], 3);
        let rate_row = t
            .rows()
            .iter()
            .find(|r| r[0] == "uSystolic-rate")
            .expect("rate row exists");
        let at4: f64 = rate_row[1].parse().unwrap();
        let at8: f64 = rate_row[2].parse().unwrap();
        let fp: f64 = rate_row[3].parse().unwrap();
        assert!(at8 >= fp - 20.0, "EBT 8 accuracy {at8} vs FP {fp}");
        assert!(at4 <= at8 + 10.0, "EBT 4 {at4} should not beat EBT 8 {at8}");
    }
}
