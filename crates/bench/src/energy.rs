//! Fig. 13: layerwise energy (on-chip and total) for 8-bit AlexNet,
//! plus the Section V-E EDP discussion.

use crate::design::{alexnet_8bit_layers, design_points, ArrayShape};
use crate::table::{fmt_sig, Table};
use usystolic_hw::evaluate_layer;

/// Computes the Fig. 13a/b data: per design and layer, the SA and SRAM
/// energies (the upper/lower planes) in µJ.
#[must_use]
pub fn figure13_on_chip(shape: ArrayShape) -> Table {
    let layers = alexnet_8bit_layers();
    let mut headers: Vec<String> = vec!["design".into()];
    for l in &layers {
        headers.push(format!("{}-SA", l.name));
        headers.push(format!("{}-SRAM", l.name));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!(
            "Fig. 13{}: layerwise on-chip energy (uJ), 8-bit AlexNet, {shape}",
            if shape == ArrayShape::Edge { "a" } else { "b" }
        ),
        &header_refs,
    );
    for point in design_points(shape, 8) {
        let mut row = vec![point.name.to_owned()];
        for layer in &layers {
            let ev = evaluate_layer(&point.config, &point.memory, &layer.gemm);
            row.push(fmt_sig(ev.energy.sa_j() * 1.0e6));
            row.push(fmt_sig(ev.energy.sram_j() * 1.0e6));
        }
        table.push_row(row);
    }
    table
}

/// Computes the Fig. 13c/d data: total (on-chip + DRAM) energy per layer
/// in µJ.
#[must_use]
pub fn figure13_total(shape: ArrayShape) -> Table {
    let layers = alexnet_8bit_layers();
    let mut headers: Vec<String> = vec!["design".into()];
    headers.extend(layers.iter().map(|l| l.name.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!(
            "Fig. 13{}: layerwise total energy (uJ), 8-bit AlexNet, {shape}",
            if shape == ArrayShape::Edge { "c" } else { "d" }
        ),
        &header_refs,
    );
    for point in design_points(shape, 8) {
        let mut row = vec![point.name.to_owned()];
        for layer in &layers {
            let ev = evaluate_layer(&point.config, &point.memory, &layer.gemm);
            row.push(fmt_sig(ev.energy.total_j() * 1.0e6));
        }
        table.push_row(row);
    }
    table
}

/// Section V-E summary: mean on-chip and total energy reduction of each
/// unary design vs Binary Parallel, plus the mean on-chip EDP change.
#[must_use]
pub fn energy_summary(shape: ArrayShape) -> Table {
    let layers = alexnet_8bit_layers();
    let points = design_points(shape, 8);
    let baseline = &points[0]; // Binary Parallel with SRAM
    let mut table = Table::new(
        format!("Section V-E: mean energy reductions vs Binary Parallel (%), {shape}"),
        &["design", "on-chip %", "total %", "on-chip EDP %"],
    );
    let base: Vec<_> = layers
        .iter()
        .map(|l| evaluate_layer(&baseline.config, &baseline.memory, &l.gemm))
        .collect();
    for point in &points[2..] {
        let (mut on, mut tot, mut edp) = (0.0, 0.0, 0.0);
        for (layer, b) in layers.iter().zip(&base) {
            let ev = evaluate_layer(&point.config, &point.memory, &layer.gemm);
            on += 1.0 - ev.energy.on_chip_j() / b.energy.on_chip_j();
            tot += 1.0 - ev.energy.total_j() / b.energy.total_j();
            edp += 1.0 - ev.edp.on_chip_js / b.edp.on_chip_js;
        }
        let n = layers.len() as f64;
        table.push_row(vec![
            point.name.to_owned(),
            format!("{:.1}", 100.0 * on / n),
            format!("{:.1}", 100.0 * tot / n),
            format!("{:.1}", 100.0 * edp / n),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_energy_dominates_binary_on_chip() {
        let t = figure13_on_chip(ArrayShape::Edge);
        // BP row: SRAM column exceeds SA column for every layer.
        for layer in 0..8 {
            let sa: f64 = t.rows()[0][1 + 2 * layer].parse().unwrap();
            let sram: f64 = t.rows()[0][2 + 2 * layer].parse().unwrap();
            assert!(sram > sa, "layer {layer}: SRAM {sram} vs SA {sa}");
        }
    }

    #[test]
    fn early_termination_cuts_on_chip_energy() {
        let t = energy_summary(ArrayShape::Edge);
        let on = |row: usize| -> f64 { t.rows()[row][1].parse().unwrap() };
        // Unary-32c saves more than Unary-128c.
        assert!(on(0) > on(2), "32c {} vs 128c {}", on(0), on(2));
        // And saves a substantial fraction (paper mean: 83.5 %).
        assert!(on(0) > 40.0, "Unary-32c on-chip saving {} too small", on(0));
    }

    #[test]
    fn total_energy_gains_are_negative_at_edge() {
        // Paper: mean total-energy "reduction" at the edge is −754 % — the
        // DRAM dominates and uSystolic's partial-sum traffic costs.
        let t = energy_summary(ArrayShape::Edge);
        let tot: f64 = t.rows()[2][2].parse().unwrap(); // Unary-128c
        assert!(tot < 0.0, "expected a total-energy degradation, got {tot}%");
    }

    #[test]
    fn ugemm_h_consumes_more_than_usystolic() {
        let t = figure13_on_chip(ArrayShape::Edge);
        // uGEMM-H (row 5) SA energy ≥ 1.5x Unary-128c (row 4) per layer.
        for layer in 0..8 {
            let u: f64 = t.rows()[4][1 + 2 * layer].parse().unwrap();
            let g: f64 = t.rows()[5][1 + 2 * layer].parse().unwrap();
            assert!(g > 1.5 * u, "layer {layer}: uGEMM-H {g} vs Unary-128c {u}");
        }
    }

    #[test]
    fn total_includes_dram() {
        let on = figure13_on_chip(ArrayShape::Edge);
        let tot = figure13_total(ArrayShape::Edge);
        // Unary-64c, Conv1: total > SA + SRAM.
        let sa: f64 = on.rows()[3][1].parse().unwrap();
        let sram: f64 = on.rows()[3][2].parse().unwrap();
        let total: f64 = tot.rows()[3][1].parse().unwrap();
        assert!(total > sa + sram);
    }
}
