//! The design points of the paper's hardware evaluation.
//!
//! The layerwise figures (10, 12, 13) compare, per array shape
//! (edge / cloud):
//!
//! * **Binary Parallel** and **Binary Serial** with on-chip SRAM;
//! * **Unary-32c / 64c / 128c** — rate-coded uSystolic early-terminated to
//!   32/64/128 multiply cycles — without SRAM;
//! * **uGEMM-H** (256 bipolar multiply cycles) without SRAM.
//!
//! Temporal coding is omitted from those plots ("similar to rate coding
//! without early termination"); it appears in the area (Fig. 11) and
//! accuracy (Fig. 9) studies.

use usystolic_core::{ComputingScheme, SystolicConfig};
use usystolic_models::zoo::{alexnet, NamedLayer};
use usystolic_sim::MemoryHierarchy;

/// Edge (Eyeriss 12×14) or cloud (TPU 256×256) array shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayShape {
    /// 12×14 with 192 KB SRAM (when present).
    Edge,
    /// 256×256 with 24 MB SRAM (when present).
    Cloud,
}

impl ArrayShape {
    /// Both shapes, in the paper's order.
    pub const ALL: [ArrayShape; 2] = [ArrayShape::Edge, ArrayShape::Cloud];

    /// The shape's label as used in figure captions.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ArrayShape::Edge => "edge",
            ArrayShape::Cloud => "cloud",
        }
    }

    fn config(&self, scheme: ComputingScheme, bitwidth: u32) -> SystolicConfig {
        match self {
            ArrayShape::Edge => SystolicConfig::edge(scheme, bitwidth),
            ArrayShape::Cloud => SystolicConfig::cloud(scheme, bitwidth),
        }
    }

    /// The shape's with-SRAM memory hierarchy.
    #[must_use]
    pub fn memory_with_sram(&self) -> MemoryHierarchy {
        match self {
            ArrayShape::Edge => MemoryHierarchy::edge_with_sram(),
            ArrayShape::Cloud => MemoryHierarchy::cloud_with_sram(),
        }
    }
}

impl core::fmt::Display for ArrayShape {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// One named design point: array configuration plus memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// The figure-legend name ("Binary Parallel", "Unary-32c", ...).
    pub name: &'static str,
    /// The array configuration.
    pub config: SystolicConfig,
    /// The memory hierarchy.
    pub memory: MemoryHierarchy,
}

/// The canonical layerwise-figure design set: binary with SRAM, unary
/// without (Section V-B's conclusion applied to Sections V-C..V-G).
///
/// # Panics
///
/// Panics if `bitwidth` is not a supported data width.
#[must_use]
pub fn design_points(shape: ArrayShape, bitwidth: u32) -> Vec<DesignPoint> {
    let sram = shape.memory_with_sram();
    let none = MemoryHierarchy::no_sram();
    vec![
        DesignPoint {
            name: "Binary Parallel",
            config: shape.config(ComputingScheme::BinaryParallel, bitwidth),
            memory: sram,
        },
        DesignPoint {
            name: "Binary Serial",
            config: shape.config(ComputingScheme::BinarySerial, bitwidth),
            memory: sram,
        },
        DesignPoint {
            name: "Unary-32c",
            config: shape
                .config(ComputingScheme::UnaryRate, bitwidth)
                .with_mul_cycles(32)
                .expect("32 cycles is a valid EBT for 8-bit data"),
            memory: none,
        },
        DesignPoint {
            name: "Unary-64c",
            config: shape
                .config(ComputingScheme::UnaryRate, bitwidth)
                .with_mul_cycles(64)
                .expect("64 cycles is a valid EBT"),
            memory: none,
        },
        DesignPoint {
            name: "Unary-128c",
            config: shape
                .config(ComputingScheme::UnaryRate, bitwidth)
                .with_mul_cycles(128)
                .expect("128 cycles is a valid EBT"),
            memory: none,
        },
        DesignPoint {
            name: "uGEMM-H",
            config: shape.config(ComputingScheme::UGemmHybrid, bitwidth),
            memory: none,
        },
    ]
}

/// The 8-bit AlexNet layer set used by every layerwise figure.
#[must_use]
pub fn alexnet_8bit_layers() -> Vec<NamedLayer> {
    alexnet().layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_designs_per_shape() {
        for shape in ArrayShape::ALL {
            let d = design_points(shape, 8);
            assert_eq!(d.len(), 6);
            // Binary designs keep SRAM; unary designs drop it.
            assert!(d[0].memory.has_sram());
            assert!(d[1].memory.has_sram());
            for p in &d[2..] {
                assert!(!p.memory.has_sram(), "{}", p.name);
            }
        }
    }

    #[test]
    fn mac_cycles_match_figure_10_caption() {
        let d = design_points(ArrayShape::Edge, 8);
        let cycles: Vec<u64> = d.iter().map(|p| p.config.mac_cycles()).collect();
        // BP 1; BS 8+1; Unary 32/64/128 + 1; uGEMM-H 256 + 1.
        assert_eq!(cycles, vec![1, 9, 33, 65, 129, 257]);
    }

    #[test]
    fn alexnet_layers_match_figures() {
        let names: Vec<String> = alexnet_8bit_layers().into_iter().map(|l| l.name).collect();
        assert_eq!(
            names,
            ["Conv1", "Conv2", "Conv3", "Conv4", "Conv5", "FC6", "FC7", "FC8"]
        );
    }

    #[test]
    fn shapes_expose_configs() {
        assert_eq!(ArrayShape::Edge.label(), "edge");
        assert_eq!(ArrayShape::Cloud.to_string(), "cloud");
        assert!(ArrayShape::Cloud.memory_with_sram().has_sram());
    }
}
