//! Design-space explorations the paper points at but does not sweep:
//!
//! * **SRAM sizing** (§V-G: "there indeed exists a continuous design
//!   space where a small-sized on-chip SRAM can reduce the off-chip DRAM
//!   access cost") — total energy and on-chip area of AlexNet across
//!   per-variable SRAM capacities from none to the TPU's 8 MB.
//! * **Dataflow choice** (footnote 1: C-BSG admits input- or
//!   weight-stationary) — ideal runtime and DRAM traffic of both
//!   dataflows per AlexNet layer.

use crate::design::alexnet_8bit_layers;
use crate::table::{fmt_sig, Table};
use usystolic_core::{ComputingScheme, SystolicConfig};
use usystolic_hw::{LayerEnergy, OnChipArea};
use usystolic_sim::{ideal_cycles_with, layer_traffic_with, Dataflow, MemoryHierarchy, Simulator};

/// The §V-G SRAM sizing sweep: full-AlexNet total energy (mJ) and on-chip
/// area (mm²) per design across per-variable SRAM capacities.
#[must_use]
pub fn sram_sweep() -> Table {
    let capacities: [(u64, &str); 6] = [
        (0, "none"),
        (16 << 10, "16KB"),
        (64 << 10, "64KB"),
        (256 << 10, "256KB"),
        (1 << 20, "1MB"),
        (8 << 20, "8MB"),
    ];
    let mut headers: Vec<String> = vec!["design".into(), "metric".into()];
    headers.extend(capacities.iter().map(|(_, n)| (*n).to_owned()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Section V-G: SRAM sizing sweep — AlexNet total energy (mJ) / on-chip area (mm2), edge",
        &header_refs,
    );
    let layers = alexnet_8bit_layers();
    let designs = [
        (
            "Binary Parallel",
            SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
        ),
        (
            "Unary-128c",
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
                .with_mul_cycles(128)
                .expect("valid EBT"),
        ),
    ];
    for (name, cfg) in designs {
        let mut energy_row = vec![name.to_owned(), "energy mJ".into()];
        let mut area_row = vec![name.to_owned(), "area mm2".into()];
        for (bytes, _) in capacities {
            let mem = MemoryHierarchy::with_sram_capacity(bytes);
            let sim = Simulator::new(cfg, mem);
            let total_j: f64 = layers
                .iter()
                .map(|l| {
                    let report = sim.simulate(&l.gemm);
                    LayerEnergy::compute(&cfg, &mem, &report).total_j()
                })
                .sum();
            energy_row.push(fmt_sig(total_j * 1.0e3));
            area_row.push(fmt_sig(OnChipArea::for_config(&cfg, &mem).total_mm2()));
        }
        table.push_row(energy_row);
        table.push_row(area_row);
    }
    table
}

/// The dataflow comparison: ideal cycles (millions) and DRAM traffic (MB)
/// of weight- vs input-stationary execution per AlexNet layer
/// (Unary-128c, no SRAM).
#[must_use]
pub fn dataflow_comparison() -> Table {
    let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
        .with_mul_cycles(128)
        .expect("valid EBT");
    let mut table = Table::new(
        "Footnote 1: weight- vs input-stationary (Unary-128c, edge, no SRAM)",
        &["layer", "WS Mcycles", "IS Mcycles", "WS MB", "IS MB"],
    );
    for layer in alexnet_8bit_layers() {
        let ws_c = ideal_cycles_with(&layer.gemm, &cfg, Dataflow::WeightStationary);
        let is_c = ideal_cycles_with(&layer.gemm, &cfg, Dataflow::InputStationary);
        let ws_t = layer_traffic_with(&layer.gemm, &cfg, Dataflow::WeightStationary);
        let is_t = layer_traffic_with(&layer.gemm, &cfg, Dataflow::InputStationary);
        table.push_row(vec![
            layer.name.clone(),
            fmt_sig(ws_c as f64 / 1.0e6),
            fmt_sig(is_c as f64 / 1.0e6),
            fmt_sig(ws_t.dram.total() as f64 / 1.0e6),
            fmt_sig(is_t.dram.total() as f64 / 1.0e6),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_sweep_shows_the_continuous_design_space() {
        let t = sram_sweep();
        assert_eq!(t.len(), 4);
        // Binary parallel: some SRAM reduces total energy vs none.
        let bp_energy: Vec<f64> = t.rows()[0][2..]
            .iter()
            .map(|c| c.parse().unwrap())
            .collect();
        let min = bp_energy.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            min < bp_energy[0],
            "some SRAM capacity should beat none for binary: {bp_energy:?}"
        );
        // Area grows monotonically with capacity for every design.
        for row in [1usize, 3] {
            let areas: Vec<f64> = t.rows()[row][2..]
                .iter()
                .map(|c| c.parse().unwrap())
                .collect();
            assert!(areas.windows(2).all(|w| w[1] >= w[0]), "{areas:?}");
        }
    }

    #[test]
    fn unary_gains_little_from_sram() {
        // The paper's elimination argument: uSystolic's energy curve is
        // flat-ish in SRAM capacity (its bandwidth is already tiny), so
        // dropping SRAM costs little relative to binary.
        let t = sram_sweep();
        let ur_energy: Vec<f64> = t.rows()[2][2..]
            .iter()
            .map(|c| c.parse().unwrap())
            .collect();
        let none = ur_energy[0];
        let best = ur_energy.iter().cloned().fold(f64::INFINITY, f64::min);
        // Within 3x — the SRAM benefit exists (partial-sum traffic) but is
        // bounded; binary's no-SRAM point is bandwidth-infeasible instead.
        assert!(none / best < 3.5, "no-SRAM penalty {none}/{best} too large");
    }

    #[test]
    fn dataflow_table_shows_ws_wins_fc() {
        let t = dataflow_comparison();
        // FC6 row: WS cycles far below IS (batch-1 FC).
        let fc6 = t
            .rows()
            .iter()
            .find(|r| r[0] == "FC6")
            .expect("FC6 present");
        let ws: f64 = fc6[1].parse().unwrap();
        let is: f64 = fc6[2].parse().unwrap();
        assert!(ws < is, "FC6: WS {ws} must beat IS {is}");
    }
}
