//! Array- and chip-level area reports (Fig. 11).

use crate::pe_area::PeComponents;
use crate::tech;
use usystolic_core::SystolicConfig;
use usystolic_sim::MemoryHierarchy;

/// Area of one systolic array in mm², broken down as in Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayArea {
    /// IREG stack (mm²).
    pub ireg_mm2: f64,
    /// WREG stack (mm²).
    pub wreg_mm2: f64,
    /// MUL stack (mm²).
    pub mul_mm2: f64,
    /// ACC stack (mm²).
    pub acc_mm2: f64,
}

impl ArrayArea {
    /// Computes the array area for a configuration.
    #[must_use]
    pub fn for_config(config: &SystolicConfig) -> Self {
        let pe = PeComponents::for_config(config);
        let pes = config.pes() as f64;
        Self {
            ireg_mm2: tech::ge_to_mm2(pe.ireg_ge * pes),
            wreg_mm2: tech::ge_to_mm2(pe.wreg_ge * pes),
            mul_mm2: tech::ge_to_mm2(pe.mul_ge * pes),
            acc_mm2: tech::ge_to_mm2(pe.acc_ge * pes),
        }
    }

    /// Total systolic-array area in mm².
    #[must_use]
    pub fn total_mm2(&self) -> f64 {
        self.ireg_mm2 + self.wreg_mm2 + self.mul_mm2 + self.acc_mm2
    }
}

/// On-chip area: systolic array plus (optional) SRAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnChipArea {
    /// The systolic-array breakdown.
    pub array: ArrayArea,
    /// Total SRAM area across the three variables (zero when eliminated).
    pub sram_mm2: f64,
}

impl OnChipArea {
    /// Computes on-chip area for an array plus memory configuration.
    ///
    /// The 16-bit SRAM doubling of the paper is captured naturally: the
    /// caller sizes the hierarchy; this function doubles the SRAM bytes
    /// for 16-bit data to "hold the same amount of data" (Section V-C).
    #[must_use]
    pub fn for_config(config: &SystolicConfig, memory: &MemoryHierarchy) -> Self {
        let sram_mm2 = memory
            .sram
            .map(|s| {
                let scale = u64::from(config.bitwidth().div_ceil(8));
                // The three variable SRAMs share one macro budget (the
                // paper splits Eyeriss's/TPU's shared global buffer), so
                // area is taken on the combined capacity, scaled by the
                // element byte width relative to 8-bit data.
                tech::sram_area_mm2(3 * s.capacity_bytes * scale)
            })
            .unwrap_or(0.0);
        Self {
            array: ArrayArea::for_config(config),
            sram_mm2,
        }
    }

    /// Total on-chip area in mm².
    #[must_use]
    pub fn total_mm2(&self) -> f64 {
        self.array.total_mm2() + self.sram_mm2
    }
}

impl usystolic_obs::ToJson for ArrayArea {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("ireg_mm2", self.ireg_mm2.to_json()),
            ("wreg_mm2", self.wreg_mm2.to_json()),
            ("mul_mm2", self.mul_mm2.to_json()),
            ("acc_mm2", self.acc_mm2.to_json()),
            ("total_mm2", self.total_mm2().to_json()),
        ])
    }
}

impl usystolic_obs::ToJson for OnChipArea {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("array", self.array.to_json()),
            ("sram_mm2", self.sram_mm2.to_json()),
            ("total_mm2", self.total_mm2().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usystolic_core::ComputingScheme;

    #[test]
    fn sram_elimination_dominates_on_chip_savings() {
        // Paper: rate-coded uSystolic without SRAM has 91.3 % less on-chip
        // area than binary parallel with SRAM (edge, 8-bit). Allow a wide
        // band; the ordering and magnitude are what matter.
        let bp = OnChipArea::for_config(
            &SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
            &MemoryHierarchy::edge_with_sram(),
        );
        let ur = OnChipArea::for_config(
            &SystolicConfig::edge(ComputingScheme::UnaryRate, 8),
            &MemoryHierarchy::no_sram(),
        );
        let reduction = 1.0 - ur.total_mm2() / bp.total_mm2();
        assert!(
            (0.85..0.99).contains(&reduction),
            "on-chip reduction {reduction:.3} vs paper 0.913"
        );
    }

    #[test]
    fn cloud_reduction_is_smaller_than_edge() {
        // Paper: 74.3 % (cloud) vs 91.3 % (edge) — the big cloud array
        // dilutes the SRAM saving.
        let reduction = |edge: bool| {
            let (bp_cfg, ur_cfg, mem) = if edge {
                (
                    SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
                    SystolicConfig::edge(ComputingScheme::UnaryRate, 8),
                    MemoryHierarchy::edge_with_sram(),
                )
            } else {
                (
                    SystolicConfig::cloud(ComputingScheme::BinaryParallel, 8),
                    SystolicConfig::cloud(ComputingScheme::UnaryRate, 8),
                    MemoryHierarchy::cloud_with_sram(),
                )
            };
            let bp = OnChipArea::for_config(&bp_cfg, &mem).total_mm2();
            let ur = OnChipArea::for_config(&ur_cfg, &MemoryHierarchy::no_sram()).total_mm2();
            1.0 - ur / bp
        };
        assert!(reduction(true) > reduction(false));
    }

    #[test]
    fn sixteen_bit_sram_doubles() {
        let mem = MemoryHierarchy::edge_with_sram();
        let a8 = OnChipArea::for_config(
            &SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
            &mem,
        );
        let a16 = OnChipArea::for_config(
            &SystolicConfig::edge(ComputingScheme::BinaryParallel, 16),
            &mem,
        );
        assert!(a16.sram_mm2 > a8.sram_mm2);
        assert!(a16.sram_mm2 < 2.0 * a8.sram_mm2, "CACTI-like sublinearity");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let a = ArrayArea::for_config(&SystolicConfig::edge(ComputingScheme::UnaryRate, 8));
        let sum = a.ireg_mm2 + a.wreg_mm2 + a.mul_mm2 + a.acc_mm2;
        assert!((sum - a.total_mm2()).abs() < 1e-12);
        assert!(a.total_mm2() > 0.0);
    }

    #[test]
    fn no_sram_reports_zero_sram_area() {
        let a = OnChipArea::for_config(
            &SystolicConfig::edge(ComputingScheme::UnaryRate, 8),
            &MemoryHierarchy::no_sram(),
        );
        assert_eq!(a.sram_mm2, 0.0);
        assert_eq!(a.total_mm2(), a.array.total_mm2());
    }
}
