//! Layer energy model (Fig. 13).
//!
//! Energy is split exactly as the paper plots it: systolic-array (SA)
//! dynamic and leakage, SRAM dynamic and leakage — their sum is the
//! **on-chip energy** — plus the DRAM dynamic access energy for the
//! **total energy**.

use crate::area::ArrayArea;
use crate::pe_area::PeComponents;
use crate::tech;
use usystolic_core::SystolicConfig;
use usystolic_sim::{LayerReport, MemoryHierarchy};

/// Energy of one layer, in joules, decomposed as in Fig. 13.
///
/// # Example
///
/// ```
/// use usystolic_core::{ComputingScheme, SystolicConfig};
/// use usystolic_hw::LayerEnergy;
/// use usystolic_sim::{MemoryHierarchy, Simulator};
/// use usystolic_gemm::GemmConfig;
///
/// let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
///     .with_mul_cycles(32)?;
/// let mem = MemoryHierarchy::no_sram();
/// let layer = GemmConfig::matmul(1, 256, 256)?;
/// let report = Simulator::new(cfg, mem).simulate(&layer);
/// let energy = LayerEnergy::compute(&cfg, &mem, &report);
/// assert!(energy.total_j() > energy.on_chip_j()); // DRAM adds on top
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerEnergy {
    /// Systolic-array dynamic energy.
    pub sa_dynamic_j: f64,
    /// Systolic-array leakage energy.
    pub sa_leakage_j: f64,
    /// SRAM dynamic energy (zero when SRAM is eliminated).
    pub sram_dynamic_j: f64,
    /// SRAM leakage energy (zero when SRAM is eliminated).
    pub sram_leakage_j: f64,
    /// DRAM dynamic access energy.
    pub dram_dynamic_j: f64,
}

impl LayerEnergy {
    /// Computes the energy of a simulated layer.
    #[must_use]
    pub fn compute(
        config: &SystolicConfig,
        memory: &MemoryHierarchy,
        report: &LayerReport,
    ) -> Self {
        let pe = PeComponents::for_config(config);
        let busy_pe_cycles = report.macs as f64 * config.mac_cycles() as f64;
        let sa_dynamic_j =
            busy_pe_cycles * pe.toggles_per_busy_cycle(config.scheme()) * tech::GE_TOGGLE_ENERGY_J;
        let sa_area = ArrayArea::for_config(config).total_mm2();
        let sa_leakage_j = sa_area * tech::LOGIC_LEAK_W_PER_MM2 * report.runtime_s;

        let (sram_dynamic_j, sram_leakage_j) = match memory.sram {
            Some(s) => {
                let scale = u64::from(config.bitwidth().div_ceil(8));
                let cap = s.capacity_bytes * scale;
                let dyn_j = report.traffic.sram.total() as f64 * tech::sram_dyn_j_per_byte(cap);
                // Three variable SRAMs leak for the whole runtime —
                // "the SRAM leakage power of varying designs are
                // identical" (Section V-F).
                let leak_j = 3.0 * tech::sram_leak_w(cap) * report.runtime_s;
                (dyn_j, leak_j)
            }
            None => (0.0, 0.0),
        };
        let dram_dynamic_j = report.traffic.dram.total() as f64 * tech::DRAM_ACCESS_J_PER_BYTE;
        Self {
            sa_dynamic_j,
            sa_leakage_j,
            sram_dynamic_j,
            sram_leakage_j,
            dram_dynamic_j,
        }
    }

    /// Systolic-array energy (dynamic + leakage).
    #[must_use]
    pub fn sa_j(&self) -> f64 {
        self.sa_dynamic_j + self.sa_leakage_j
    }

    /// SRAM energy (dynamic + leakage).
    #[must_use]
    pub fn sram_j(&self) -> f64 {
        self.sram_dynamic_j + self.sram_leakage_j
    }

    /// On-chip energy: SA + SRAM (Fig. 13a/b).
    #[must_use]
    pub fn on_chip_j(&self) -> f64 {
        self.sa_j() + self.sram_j()
    }

    /// Total energy: on-chip + DRAM dynamic access (Fig. 13c/d).
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.on_chip_j() + self.dram_dynamic_j
    }
}

/// Energy-delay products of a layer (Section V-E).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerEdp {
    /// On-chip energy × runtime (J·s).
    pub on_chip_js: f64,
    /// Total energy × runtime (J·s).
    pub total_js: f64,
}

impl LayerEdp {
    /// Derives the EDPs from an energy report and runtime.
    #[must_use]
    pub fn new(energy: &LayerEnergy, runtime_s: f64) -> Self {
        Self {
            on_chip_js: energy.on_chip_j() * runtime_s,
            total_js: energy.total_j() * runtime_s,
        }
    }
}

impl usystolic_obs::ToJson for LayerEnergy {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("sa_dynamic_j", self.sa_dynamic_j.to_json()),
            ("sa_leakage_j", self.sa_leakage_j.to_json()),
            ("sram_dynamic_j", self.sram_dynamic_j.to_json()),
            ("sram_leakage_j", self.sram_leakage_j.to_json()),
            ("dram_dynamic_j", self.dram_dynamic_j.to_json()),
            ("on_chip_j", self.on_chip_j().to_json()),
            ("total_j", self.total_j().to_json()),
        ])
    }
}

impl usystolic_obs::ToJson for LayerEdp {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("on_chip_js", self.on_chip_js.to_json()),
            ("total_js", self.total_js.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usystolic_core::ComputingScheme;
    use usystolic_gemm::GemmConfig;
    use usystolic_sim::Simulator;

    fn conv2() -> GemmConfig {
        GemmConfig::conv(31, 31, 96, 5, 5, 1, 256).unwrap()
    }

    fn energy_of(
        scheme: ComputingScheme,
        mul_cycles: Option<u64>,
        memory: MemoryHierarchy,
    ) -> (LayerEnergy, f64) {
        let mut cfg = SystolicConfig::edge(scheme, 8);
        if let Some(c) = mul_cycles {
            cfg = cfg.with_mul_cycles(c).unwrap();
        }
        let sim = Simulator::new(cfg, memory);
        let r = sim.simulate(&conv2());
        (LayerEnergy::compute(&cfg, &memory, &r), r.runtime_s)
    }

    #[test]
    fn sram_leakage_dominates_binary_on_chip_energy() {
        // Section V-E: "the SRAM leakage energy dominates the SRAM energy,
        // which further dominates the on-chip energy" for binary designs.
        let (e, _) = energy_of(
            ComputingScheme::BinaryParallel,
            None,
            MemoryHierarchy::edge_with_sram(),
        );
        assert!(e.sram_leakage_j > e.sram_dynamic_j);
        assert!(e.sram_j() > e.sa_j());
    }

    #[test]
    fn early_terminated_usystolic_beats_binary_on_chip() {
        // Fig. 13a: early-terminated rate-coded uSystolic (no SRAM)
        // consumes less on-chip energy than binary parallel (with SRAM).
        let (bp, _) = energy_of(
            ComputingScheme::BinaryParallel,
            None,
            MemoryHierarchy::edge_with_sram(),
        );
        let (ur32, _) = energy_of(
            ComputingScheme::UnaryRate,
            Some(32),
            MemoryHierarchy::no_sram(),
        );
        assert!(
            ur32.on_chip_j() < bp.on_chip_j(),
            "UR-32c {} vs BP {}",
            ur32.on_chip_j(),
            bp.on_chip_j()
        );
    }

    #[test]
    fn dram_dominates_total_energy_for_unary() {
        let (e, _) = energy_of(
            ComputingScheme::UnaryRate,
            Some(128),
            MemoryHierarchy::no_sram(),
        );
        assert!(e.dram_dynamic_j > e.on_chip_j());
    }

    #[test]
    fn total_energy_can_degrade_without_sram() {
        // Section V-E: total (DRAM-dominated) energy is often *worse* for
        // uSystolic at the edge — the negative gains of the paper.
        let (bp, _) = energy_of(
            ComputingScheme::BinaryParallel,
            None,
            MemoryHierarchy::edge_with_sram(),
        );
        let (ur, _) = energy_of(
            ComputingScheme::UnaryRate,
            Some(128),
            MemoryHierarchy::no_sram(),
        );
        assert!(
            ur.total_j() > bp.total_j(),
            "expected negative total-energy gain at the edge for conv layers"
        );
    }

    #[test]
    fn early_termination_reduces_on_chip_energy() {
        let (e32, _) = energy_of(
            ComputingScheme::UnaryRate,
            Some(32),
            MemoryHierarchy::no_sram(),
        );
        let (e128, _) = energy_of(
            ComputingScheme::UnaryRate,
            Some(128),
            MemoryHierarchy::no_sram(),
        );
        assert!(e32.on_chip_j() < e128.on_chip_j());
    }

    #[test]
    fn ugemm_h_costs_more_than_usystolic() {
        // Section V-E: uGEMM-H consistently consumes over 2× the energy of
        // uSystolic (larger area, longer runtime).
        let (ug, _) = energy_of(
            ComputingScheme::UGemmHybrid,
            None,
            MemoryHierarchy::no_sram(),
        );
        let (ut, _) = energy_of(
            ComputingScheme::UnaryTemporal,
            None,
            MemoryHierarchy::no_sram(),
        );
        assert!(
            ug.on_chip_j() > 1.5 * ut.on_chip_j(),
            "UG {} vs UT {}",
            ug.on_chip_j(),
            ut.on_chip_j()
        );
    }

    #[test]
    fn edp_multiplies_energy_by_runtime() {
        let (e, runtime) = energy_of(
            ComputingScheme::UnaryRate,
            Some(64),
            MemoryHierarchy::no_sram(),
        );
        let edp = LayerEdp::new(&e, runtime);
        assert!((edp.on_chip_js - e.on_chip_j() * runtime).abs() < 1e-18);
        assert!(edp.total_js > edp.on_chip_js);
    }

    #[test]
    fn components_sum() {
        let (e, _) = energy_of(
            ComputingScheme::BinarySerial,
            None,
            MemoryHierarchy::edge_with_sram(),
        );
        let sum = e.sa_dynamic_j + e.sa_leakage_j + e.sram_dynamic_j + e.sram_leakage_j;
        assert!((e.on_chip_j() - sum).abs() < 1e-15);
        assert!((e.total_j() - (sum + e.dram_dynamic_j)).abs() < 1e-15);
    }
}
