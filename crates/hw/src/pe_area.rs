//! Per-PE gate-level area model for all five computing schemes.
//!
//! The breakdown mirrors Fig. 11: **IREG**, **WREG**, **MUL** and **ACC**
//! per PE. For binary designs these map onto Fig. 2 (IREG/WREG registers,
//! MUL multiplier, ACC = ADD + OREG); for uSystolic they follow the
//! paper's assignment — "IREG is for the IABS/IDFF/ISIGN, WREG contains
//! WABS/WSIGN, MUL includes RNG/CNT/RREG/C-W/C-I/AND, and ACC consists of
//! the rest". Blocks that exist only in the leftmost column (IABS, the
//! RNGs/CNT, C-I) are amortised over the `C` columns of the array.

use usystolic_core::{ComputingScheme, SystolicConfig};

/// Gate-equivalent cost per register bit.
const REG_GE: f64 = 6.0;
/// Gate-equivalent cost per adder bit.
const ADD_GE: f64 = 7.0;
/// Gate-equivalent cost per comparator bit.
const CMP_GE: f64 = 3.0;
/// Routing-congestion exponent knob for array multipliers: the effective
/// area is `6·N²·(1 + ROUTE_FACTOR·N)` — superquadratic in the bitwidth
/// (Section I).
const ROUTE_FACTOR: f64 = 0.015;

/// Gate count of a Sobol generator of `w` bits: direction-number storage,
/// XOR network and trailing-zero logic.
fn sobol_ge(w: u32) -> f64 {
    let w = f64::from(w);
    2.0 * w * w + 10.0 * w
}

/// Gate count of a `w`-bit counter.
fn counter_ge(w: u32) -> f64 {
    8.0 * f64::from(w)
}

/// Per-PE area breakdown in gate equivalents, following Fig. 11's four
/// stacks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeComponents {
    /// Input-register block (IREG / IABS+IDFF+ISIGN).
    pub ireg_ge: f64,
    /// Weight-register block (WREG / WABS+WSIGN).
    pub wreg_ge: f64,
    /// Multiplier block (MUL / RNG+CNT+RREG+C-W+C-I+AND).
    pub mul_ge: f64,
    /// Accumulator block (ADD + OREG and the sign steering).
    pub acc_ge: f64,
}

impl PeComponents {
    /// Total gate equivalents per PE.
    #[must_use]
    pub fn total_ge(&self) -> f64 {
        self.ireg_ge + self.wreg_ge + self.mul_ge + self.acc_ge
    }

    /// Derives the per-PE breakdown for an array configuration.
    ///
    /// Leftmost-column-only hardware is amortised by `1 / cols`.
    #[must_use]
    pub fn for_config(config: &SystolicConfig) -> Self {
        let n = f64::from(config.bitwidth());
        let w = config.bitwidth() - 1; // magnitude / RNG width
        let acc_bits = f64::from(config.acc_width());
        let cols = config.cols() as f64;
        let acc = acc_bits * (REG_GE + ADD_GE);
        match config.scheme() {
            ComputingScheme::BinaryParallel => Self {
                ireg_ge: n * REG_GE,
                wreg_ge: n * REG_GE,
                mul_ge: 6.0 * n * n * (1.0 + ROUTE_FACTOR * n),
                acc_ge: acc,
            },
            ComputingScheme::BinarySerial => Self {
                // The serialised input still needs an N-bit (shift)
                // register.
                ireg_ge: n * REG_GE,
                wreg_ge: n * REG_GE,
                // One N-bit adder, a 2N-bit partial register and control.
                mul_ge: n * ADD_GE + 2.0 * n * REG_GE + 3.0 * n,
                acc_ge: acc,
            },
            ComputingScheme::UGemmHybrid => Self {
                // Signed data used directly: an input DFF plus the
                // amortised input register at the leftmost column; no
                // sign/magnitude split.
                ireg_ge: REG_GE + n * REG_GE / cols,
                wreg_ge: n * REG_GE,
                // Two conditional generators (ones/zeros phases): doubled
                // RREG + comparator chains, plus two amortised N-bit Sobol
                // RNGs and the input comparator.
                mul_ge: 2.0 * (n * REG_GE + n * CMP_GE)
                    + 3.0
                    + (2.0 * sobol_ge(config.bitwidth()) + n * CMP_GE) / cols,
                acc_ge: acc,
            },
            ComputingScheme::UnaryRate => Self {
                // ISIGN + IDFF everywhere, IABS only at the leftmost
                // column.
                ireg_ge: 2.0 * REG_GE + n * REG_GE / cols,
                wreg_ge: n * REG_GE, // WABS (N-1) + WSIGN
                // RREG + C-W + AND everywhere; weight Sobol, IFM Sobol and
                // C-I at the leftmost column only.
                mul_ge: f64::from(w) * (REG_GE + CMP_GE)
                    + 1.0
                    + (2.0 * sobol_ge(w) + f64::from(w) * CMP_GE) / cols,
                acc_ge: acc + 2.0, // sign XOR steering
            },
            ComputingScheme::UnaryTemporal => Self {
                ireg_ge: 2.0 * REG_GE + n * REG_GE / cols,
                wreg_ge: n * REG_GE,
                // The IFM generator is a counter instead of a second Sobol.
                mul_ge: f64::from(w) * (REG_GE + CMP_GE)
                    + 1.0
                    + (sobol_ge(w) + counter_ge(w) + f64::from(w) * CMP_GE) / cols,
                acc_ge: acc + 2.0,
            },
        }
    }

    /// Gate equivalents toggled per *busy* PE cycle — the activity factor
    /// of the dynamic-energy model. Bit-parallel MACs switch the whole
    /// multiplier every cycle; serial and unary PEs switch only a thin
    /// slice per cycle.
    #[must_use]
    pub fn toggles_per_busy_cycle(&self, scheme: ComputingScheme) -> f64 {
        match scheme {
            ComputingScheme::BinaryParallel => self.mul_ge + self.acc_ge,
            ComputingScheme::BinarySerial => 0.6 * self.mul_ge + 0.2 * self.acc_ge,
            // A comparator, the AND/XNOR gate and an accumulator increment.
            ComputingScheme::UGemmHybrid => 0.35 * self.mul_ge + 0.15 * self.acc_ge,
            ComputingScheme::UnaryRate | ComputingScheme::UnaryTemporal => {
                0.3 * self.mul_ge + 0.15 * self.acc_ge
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(scheme: ComputingScheme, bitwidth: u32) -> f64 {
        PeComponents::for_config(&SystolicConfig::edge(scheme, bitwidth)).total_ge()
    }

    #[test]
    fn area_reductions_match_figure_11_edge_8bit() {
        // Paper: switching BP → BS, UG, UR, UT shrinks the SA by 30.9 %,
        // 50.9 %, 59.0 %, 62.5 % (edge, 8-bit). Allow ±8 points — the
        // gate model is analytic, not a synthesis run.
        let bp = total(ComputingScheme::BinaryParallel, 8);
        let cases = [
            (ComputingScheme::BinarySerial, 0.309),
            (ComputingScheme::UGemmHybrid, 0.509),
            (ComputingScheme::UnaryRate, 0.590),
            (ComputingScheme::UnaryTemporal, 0.625),
        ];
        for (scheme, expect) in cases {
            let got = 1.0 - total(scheme, 8) / bp;
            assert!(
                (got - expect).abs() < 0.08,
                "{scheme}: reduction {got:.3} vs paper {expect}"
            );
        }
    }

    #[test]
    fn scheme_ordering_holds_for_16bit() {
        let bp = total(ComputingScheme::BinaryParallel, 16);
        let bs = total(ComputingScheme::BinarySerial, 16);
        let ug = total(ComputingScheme::UGemmHybrid, 16);
        let ur = total(ComputingScheme::UnaryRate, 16);
        let ut = total(ComputingScheme::UnaryTemporal, 16);
        assert!(bp > bs && bs > ug && ug > ur && ur >= ut);
    }

    #[test]
    fn usystolic_mul_beats_ugemm_h_mul() {
        // Paper: rate-coded uSystolic has a 58.2 % smaller MUL than
        // uGEMM-H, driving a ~16.5 % overall reduction.
        let ur = PeComponents::for_config(&SystolicConfig::edge(ComputingScheme::UnaryRate, 8));
        let ug = PeComponents::for_config(&SystolicConfig::edge(ComputingScheme::UGemmHybrid, 8));
        let mul_reduction = 1.0 - ur.mul_ge / ug.mul_ge;
        assert!(
            (0.35..0.70).contains(&mul_reduction),
            "MUL reduction {mul_reduction:.3} out of band"
        );
        let total_reduction = 1.0 - ur.total_ge() / ug.total_ge();
        assert!(
            (0.05..0.30).contains(&total_reduction),
            "total reduction {total_reduction:.3} out of band"
        );
    }

    #[test]
    fn bs_mul_smaller_but_acc_bigger_than_unary() {
        // Paper: "Though BS designs have smaller MUL than uSystolic, the
        // overall area is higher due to larger ACC."
        let bs = PeComponents::for_config(&SystolicConfig::edge(ComputingScheme::BinarySerial, 8));
        let ur = PeComponents::for_config(&SystolicConfig::edge(ComputingScheme::UnaryRate, 8));
        assert!(bs.acc_ge > ur.acc_ge);
        assert!(bs.total_ge() > ur.total_ge());
    }

    #[test]
    fn cloud_amortisation_shrinks_unary_mul() {
        // With 256 columns the leftmost-column RNGs amortise away.
        let edge = PeComponents::for_config(&SystolicConfig::edge(ComputingScheme::UnaryRate, 8));
        let cloud = PeComponents::for_config(&SystolicConfig::cloud(ComputingScheme::UnaryRate, 8));
        assert!(cloud.mul_ge < edge.mul_ge);
    }

    #[test]
    fn binary_multiplier_is_superquadratic() {
        let m8 =
            PeComponents::for_config(&SystolicConfig::edge(ComputingScheme::BinaryParallel, 8))
                .mul_ge;
        let m16 =
            PeComponents::for_config(&SystolicConfig::edge(ComputingScheme::BinaryParallel, 16))
                .mul_ge;
        assert!(
            m16 > 4.0 * m8,
            "16-bit multiplier must be more than 4x the 8-bit one"
        );
    }

    #[test]
    fn toggles_are_a_fraction_of_area() {
        for scheme in ComputingScheme::ALL {
            let pe = PeComponents::for_config(&SystolicConfig::edge(scheme, 8));
            let t = pe.toggles_per_busy_cycle(scheme);
            assert!(t > 0.0 && t <= pe.total_ge(), "{scheme}");
        }
        // Binary parallel toggles far more per cycle than unary.
        let bp =
            PeComponents::for_config(&SystolicConfig::edge(ComputingScheme::BinaryParallel, 8));
        let ur = PeComponents::for_config(&SystolicConfig::edge(ComputingScheme::UnaryRate, 8));
        assert!(
            bp.toggles_per_busy_cycle(ComputingScheme::BinaryParallel)
                > 10.0 * ur.toggles_per_busy_cycle(ComputingScheme::UnaryRate)
        );
    }
}
