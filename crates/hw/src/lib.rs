//! Hardware cost models for the uSystolic evaluation: the Design Compiler
//! (+ CACTI 7) substitute.
//!
//! * [`tech`] — 32 nm / 400 MHz technology constants, calibrated so the
//!   paper's structural claims hold (SRAM leakage dominance, DRAM access
//!   dominance, superquadratic binary multipliers).
//! * [`pe_area`] — gate-level per-PE area model for all five computing
//!   schemes, with the leftmost-column amortisation of uSystolic's
//!   bitstream reuse.
//! * [`area`] — array- and chip-level areas (Fig. 11).
//! * [`energy`] — per-layer energy decomposition (Fig. 13) and EDP.
//! * [`power`] — per-layer power (Section V-F) and throughput-normalised
//!   efficiency (Fig. 14).
//! * [`evaluate`] — one-call [`evaluate::LayerEvaluation`]
//!   joining timing, area, energy, power and efficiency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod energy;
pub mod evaluate;
pub mod pe_area;
pub mod power;
pub mod summary;
pub mod tech;

pub use area::{ArrayArea, OnChipArea};
pub use energy::{LayerEdp, LayerEnergy};
pub use evaluate::{
    evaluate_from_report, evaluate_layer, evaluate_layer_with, evaluate_network,
    evaluate_network_with, LayerEvaluation,
};
pub use pe_area::PeComponents;
pub use power::{improvement, reduction_percent, Efficiency, LayerPower};
pub use summary::NetworkEvaluation;
