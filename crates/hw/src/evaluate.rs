//! One-call layer evaluation: timing + traffic + area + energy + power +
//! efficiency, the record every experiment binary consumes.

use crate::area::OnChipArea;
use crate::energy::{LayerEdp, LayerEnergy};
use crate::power::{Efficiency, LayerPower};
use usystolic_core::SystolicConfig;
use usystolic_gemm::GemmConfig;
use usystolic_sim::{LayerReport, MemoryHierarchy, Simulator};

/// Full hardware evaluation of one GEMM layer on one design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerEvaluation {
    /// Timing / traffic / bandwidth report from the simulator.
    pub report: LayerReport,
    /// Energy breakdown.
    pub energy: LayerEnergy,
    /// Average power breakdown.
    pub power: LayerPower,
    /// Energy-delay products.
    pub edp: LayerEdp,
    /// On-chip efficiency (throughput over on-chip energy / power).
    pub on_chip_efficiency: Efficiency,
    /// Total efficiency (including DRAM).
    pub total_efficiency: Efficiency,
    /// On-chip area of the design point (constant across layers).
    pub area: OnChipArea,
}

/// Wraps an already-simulated [`LayerReport`] with the hardware model:
/// energy, power, EDP, efficiency and area for the simulator's design
/// point. This is the one place a report becomes an evaluation, shared
/// by every entry path and fidelity tier.
#[must_use]
pub fn evaluate_from_report(
    config: &SystolicConfig,
    memory: &MemoryHierarchy,
    report: LayerReport,
) -> LayerEvaluation {
    let energy = LayerEnergy::compute(config, memory, &report);
    let power = LayerPower::new(&energy, report.runtime_s);
    LayerEvaluation {
        report,
        energy,
        power,
        edp: LayerEdp::new(&energy, report.runtime_s),
        on_chip_efficiency: Efficiency::on_chip(&energy, report.runtime_s, report.throughput_per_s),
        total_efficiency: Efficiency::total(&energy, report.runtime_s, report.throughput_per_s),
        area: OnChipArea::for_config(config, memory),
    }
}

/// Evaluates one layer on a configured simulator (fidelity included).
#[must_use]
pub fn evaluate_layer_with(sim: &Simulator, gemm: &GemmConfig) -> LayerEvaluation {
    evaluate_from_report(sim.config(), sim.memory(), sim.simulate(gemm))
}

/// Evaluates one layer on one design point (array + memory hierarchy)
/// at the default cycle-accurate fidelity.
#[must_use]
pub fn evaluate_layer(
    config: &SystolicConfig,
    memory: &MemoryHierarchy,
    gemm: &GemmConfig,
) -> LayerEvaluation {
    evaluate_layer_with(&Simulator::new(*config, *memory), gemm)
}

/// Evaluates a whole network on a configured simulator, one record per
/// layer. Layers run through the simulator's discrete-event calendar
/// ([`Simulator::simulate_network`]), so the network path exercises the
/// same event machinery at every fidelity tier.
#[must_use]
pub fn evaluate_network_with(sim: &Simulator, layers: &[GemmConfig]) -> Vec<LayerEvaluation> {
    sim.simulate_network(layers)
        .into_iter()
        .map(|report| evaluate_from_report(sim.config(), sim.memory(), report))
        .collect()
}

/// Evaluates a whole network at the default cycle-accurate fidelity.
#[must_use]
pub fn evaluate_network(
    config: &SystolicConfig,
    memory: &MemoryHierarchy,
    layers: &[GemmConfig],
) -> Vec<LayerEvaluation> {
    evaluate_network_with(&Simulator::new(*config, *memory), layers)
}

impl usystolic_obs::ToJson for LayerEvaluation {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("report", self.report.to_json()),
            ("energy", self.energy.to_json()),
            ("power", self.power.to_json()),
            ("edp", self.edp.to_json()),
            ("on_chip_efficiency", self.on_chip_efficiency.to_json()),
            ("total_efficiency", self.total_efficiency.to_json()),
            ("area", self.area.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usystolic_core::ComputingScheme;

    #[test]
    fn evaluation_is_internally_consistent() {
        let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
            .with_mul_cycles(64)
            .unwrap();
        let mem = MemoryHierarchy::no_sram();
        let gemm = GemmConfig::conv(13, 13, 64, 3, 3, 1, 96).unwrap();
        let ev = evaluate_layer(&cfg, &mem, &gemm);
        assert!(
            (ev.power.total_w() * ev.report.runtime_s - ev.energy.total_j()).abs()
                / ev.energy.total_j()
                < 1e-9
        );
        assert!(ev.on_chip_efficiency.energy_eff > ev.total_efficiency.energy_eff);
        assert_eq!(ev.area.sram_mm2, 0.0);
        assert!(ev.edp.total_js > 0.0);
    }

    #[test]
    fn network_evaluation_covers_all_layers() {
        let cfg = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
        let mem = MemoryHierarchy::edge_with_sram();
        let layers = [
            GemmConfig::matmul(1, 256, 128).unwrap(),
            GemmConfig::conv(13, 13, 64, 3, 3, 1, 96).unwrap(),
        ];
        let evs = evaluate_network(&cfg, &mem, &layers);
        assert_eq!(evs.len(), 2);
        assert!(evs.iter().all(|e| e.energy.total_j() > 0.0));
    }
}
