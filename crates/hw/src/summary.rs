//! Network-level aggregation of per-layer evaluations: one inference's
//! total runtime, energy and average power, plus derived
//! inferences-per-joule — the numbers system designers actually budget
//! with (§V-H's battery scenario).

use crate::evaluate::{evaluate_network_with, LayerEvaluation};
use usystolic_core::SystolicConfig;
use usystolic_gemm::GemmConfig;
use usystolic_sim::{MemoryHierarchy, Simulator};

/// Aggregated evaluation of one full network pass.
#[derive(Debug, Clone)]
pub struct NetworkEvaluation {
    /// Per-layer records, in execution order.
    pub layers: Vec<LayerEvaluation>,
    /// Total runtime of one inference in seconds.
    pub runtime_s: f64,
    /// Total on-chip energy per inference in joules.
    pub on_chip_j: f64,
    /// Total energy (including DRAM) per inference in joules.
    pub total_j: f64,
    /// Total MAC operations.
    pub macs: u64,
}

impl NetworkEvaluation {
    /// Evaluates every layer at cycle-accurate fidelity and aggregates.
    #[must_use]
    pub fn evaluate(
        config: &SystolicConfig,
        memory: &MemoryHierarchy,
        gemms: &[GemmConfig],
    ) -> Self {
        Self::evaluate_with(&Simulator::new(*config, *memory), gemms)
    }

    /// Evaluates every layer on a configured simulator (fidelity
    /// included) and aggregates. The layers run through the simulator's
    /// discrete-event calendar.
    #[must_use]
    pub fn evaluate_with(sim: &Simulator, gemms: &[GemmConfig]) -> Self {
        let layers = evaluate_network_with(sim, gemms);
        let runtime_s = layers.iter().map(|l| l.report.runtime_s).sum();
        let on_chip_j = layers.iter().map(|l| l.energy.on_chip_j()).sum();
        let total_j = layers.iter().map(|l| l.energy.total_j()).sum();
        let macs = layers.iter().map(|l| l.report.macs).sum();
        Self {
            layers,
            runtime_s,
            on_chip_j,
            total_j,
            macs,
        }
    }

    /// Inferences per second.
    #[must_use]
    pub fn inferences_per_s(&self) -> f64 {
        1.0 / self.runtime_s
    }

    /// Average on-chip power over one inference, in watts.
    #[must_use]
    pub fn on_chip_power_w(&self) -> f64 {
        self.on_chip_j / self.runtime_s
    }

    /// Average total power, in watts.
    #[must_use]
    pub fn total_power_w(&self) -> f64 {
        self.total_j / self.runtime_s
    }

    /// Inferences per joule of on-chip energy (the battery metric).
    #[must_use]
    pub fn inferences_per_on_chip_joule(&self) -> f64 {
        1.0 / self.on_chip_j
    }

    /// Effective MAC throughput in GOPS (two ops per MAC).
    #[must_use]
    pub fn gops(&self) -> f64 {
        2.0 * self.macs as f64 / self.runtime_s / 1.0e9
    }
}

impl usystolic_obs::ToJson for NetworkEvaluation {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("layers", self.layers.to_json()),
            ("runtime_s", self.runtime_s.to_json()),
            ("on_chip_j", self.on_chip_j.to_json()),
            ("total_j", self.total_j.to_json()),
            ("macs", self.macs.to_json()),
            ("inferences_per_s", self.inferences_per_s().to_json()),
            ("gops", self.gops().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usystolic_core::ComputingScheme;
    use usystolic_models::zoo::alexnet;

    fn eval(scheme: ComputingScheme, cycles: Option<u64>) -> NetworkEvaluation {
        let mut cfg = SystolicConfig::edge(scheme, 8);
        if let Some(c) = cycles {
            cfg = cfg.with_mul_cycles(c).expect("valid EBT");
        }
        let mem = if scheme.is_unary() {
            MemoryHierarchy::no_sram()
        } else {
            MemoryHierarchy::edge_with_sram()
        };
        NetworkEvaluation::evaluate(&cfg, &mem, &alexnet().gemms())
    }

    #[test]
    fn totals_sum_per_layer_records() {
        let ev = eval(ComputingScheme::UnaryRate, Some(64));
        assert_eq!(ev.layers.len(), 8);
        let rt: f64 = ev.layers.iter().map(|l| l.report.runtime_s).sum();
        assert!((ev.runtime_s - rt).abs() < 1e-12);
        assert!(ev.total_j > ev.on_chip_j);
        assert_eq!(ev.macs, alexnet().macs());
    }

    #[test]
    fn derived_metrics_are_consistent() {
        let ev = eval(ComputingScheme::BinaryParallel, None);
        assert!((ev.inferences_per_s() * ev.runtime_s - 1.0).abs() < 1e-9);
        assert!((ev.on_chip_power_w() * ev.runtime_s - ev.on_chip_j).abs() / ev.on_chip_j < 1e-9);
        assert!(ev.gops() > 0.0);
    }

    #[test]
    fn early_termination_improves_the_battery_metric() {
        let e32 = eval(ComputingScheme::UnaryRate, Some(32));
        let e128 = eval(ComputingScheme::UnaryRate, Some(128));
        assert!(e32.inferences_per_on_chip_joule() > e128.inferences_per_on_chip_joule());
        // And binary burns more on-chip energy per inference than
        // early-terminated unary.
        let bp = eval(ComputingScheme::BinaryParallel, None);
        assert!(e32.on_chip_j < bp.on_chip_j);
    }
}
