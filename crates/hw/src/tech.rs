//! Technology constants of the 32 nm / 400 MHz design point.
//!
//! These stand in for the Synopsys Design Compiler + CACTI 7 numbers of
//! the paper (Section IV-B). Absolute values are representative of a
//! 32 nm LP process; the *relative* relations they encode are the ones the
//! paper's conclusions rest on:
//!
//! * SRAM leakage dominates on-chip power for SRAM-backed designs
//!   (Section V-E/V-F), so the per-KB SRAM leakage is large against the
//!   low-leakage (HVT) systolic logic;
//! * DRAM access energy is orders of magnitude above on-chip per-byte
//!   costs \[19\], so the per-byte DRAM energy dominates total energy;
//! * binary multiplier area grows superquadratically with bitwidth
//!   (routing congestion \[68\], \[74\]).

/// Area of one gate equivalent in µm², including placement/routing
/// overhead of a synthesised design (calibrated against the Fig. 11a
/// outlier labels: the 16-bit binary-parallel MUL/ACC stack tops of
/// 0.96 / 1.34 mm² and the 91.3 % on-chip reduction of Section V-C).
pub const GE_AREA_UM2: f64 = 2.5;

/// Leakage power density of the (high-threshold) systolic-array logic, in
/// W/mm².
pub const LOGIC_LEAK_W_PER_MM2: f64 = 0.02;

/// Dynamic energy per gate-equivalent toggle, in joules.
pub const GE_TOGGLE_ENERGY_J: f64 = 0.2e-15;

/// SRAM leakage per kilobyte, in watts (6T cells leak far more per area
/// than HVT logic).
pub const SRAM_LEAK_W_PER_KB: f64 = 0.7e-3;

/// DRAM dynamic access energy per byte (activate + column access + I/O of
/// a DDR3 chip), in joules.
pub const DRAM_ACCESS_J_PER_BYTE: f64 = 100.0e-12;

/// SRAM area model `c1·KB + c2·√KB` (mm²): cell array plus periphery.
/// Calibrated so that the paper's edge SRAM (192 KB total) is 1.46 mm² and
/// its 16-bit double (384 KB) is 2.12 mm² — the outlier labels of
/// Fig. 11a.
pub const SRAM_AREA_LINEAR_MM2_PER_KB: f64 = 0.00049;
/// See [`SRAM_AREA_LINEAR_MM2_PER_KB`].
pub const SRAM_AREA_PERIPHERY_MM2_PER_SQRT_KB: f64 = 0.0985;

/// SRAM dynamic energy per byte: `c·KB^0.25` joules (larger arrays burn
/// more per access).
pub const SRAM_DYN_J_PER_BYTE_COEFF: f64 = 0.3e-12;

/// Converts gate equivalents to mm².
#[must_use]
pub fn ge_to_mm2(ge: f64) -> f64 {
    ge * GE_AREA_UM2 * 1.0e-6
}

/// SRAM macro area in mm² for a capacity in bytes.
#[must_use]
pub fn sram_area_mm2(capacity_bytes: u64) -> f64 {
    let kb = capacity_bytes as f64 / 1024.0;
    SRAM_AREA_LINEAR_MM2_PER_KB * kb + SRAM_AREA_PERIPHERY_MM2_PER_SQRT_KB * kb.sqrt()
}

/// SRAM leakage power in watts for a capacity in bytes.
#[must_use]
pub fn sram_leak_w(capacity_bytes: u64) -> f64 {
    SRAM_LEAK_W_PER_KB * capacity_bytes as f64 / 1024.0
}

/// SRAM dynamic energy per byte transferred, in joules.
#[must_use]
pub fn sram_dyn_j_per_byte(capacity_bytes: u64) -> f64 {
    let kb = capacity_bytes as f64 / 1024.0;
    SRAM_DYN_J_PER_BYTE_COEFF * kb.powf(0.25)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_area_matches_figure_11_labels() {
        // 192 KB → 1.46 mm², 384 KB → 2.12 mm² (the Fig. 11a outliers).
        assert!((sram_area_mm2(192 * 1024) - 1.46).abs() < 0.02);
        assert!((sram_area_mm2(384 * 1024) - 2.12).abs() < 0.03);
    }

    #[test]
    fn sram_area_is_monotone_and_sublinear() {
        let a1 = sram_area_mm2(64 * 1024);
        let a2 = sram_area_mm2(128 * 1024);
        assert!(a2 > a1);
        assert!(
            a2 < 2.0 * a1,
            "periphery amortises: doubling capacity < 2x area"
        );
    }

    #[test]
    fn sram_leakage_scales_linearly() {
        assert!((sram_leak_w(2048) - 2.0 * sram_leak_w(1024)).abs() < 1e-12);
    }

    #[test]
    fn dram_byte_energy_dominates_sram() {
        // The [19]-style hierarchy gap: DRAM per byte ≫ SRAM per byte.
        assert!(DRAM_ACCESS_J_PER_BYTE > 10.0 * sram_dyn_j_per_byte(8 * 1024 * 1024));
    }

    #[test]
    fn ge_conversion() {
        assert!((ge_to_mm2(1.0e6) - GE_AREA_UM2).abs() < 1e-9);
    }
}
