//! Layer power and efficiency (Sections V-F and V-G).
//!
//! Power is energy over runtime; efficiency divides the throughput by the
//! energy (energy efficiency, layers/s/J) and by the power (power
//! efficiency, layers/s/W).

use crate::energy::LayerEnergy;

/// Power of one layer in watts, decomposed like the energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerPower {
    /// Systolic-array power.
    pub sa_w: f64,
    /// SRAM power.
    pub sram_w: f64,
    /// DRAM dynamic access power.
    pub dram_w: f64,
}

impl LayerPower {
    /// Derives average power from a layer's energy and runtime.
    ///
    /// # Panics
    ///
    /// Panics if `runtime_s` is not positive.
    #[must_use]
    pub fn new(energy: &LayerEnergy, runtime_s: f64) -> Self {
        assert!(runtime_s > 0.0, "runtime must be positive");
        Self {
            sa_w: energy.sa_j() / runtime_s,
            sram_w: energy.sram_j() / runtime_s,
            dram_w: energy.dram_dynamic_j / runtime_s,
        }
    }

    /// On-chip power: SA + SRAM.
    #[must_use]
    pub fn on_chip_w(&self) -> f64 {
        self.sa_w + self.sram_w
    }

    /// Total power: on-chip + DRAM.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.on_chip_w() + self.dram_w
    }
}

/// Throughput-normalised efficiency of one layer (Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Efficiency {
    /// Energy efficiency: throughput / energy (1 / (s·J)).
    pub energy_eff: f64,
    /// Power efficiency: throughput / power (1 / J).
    pub power_eff: f64,
}

impl Efficiency {
    /// On-chip efficiency from energy, runtime and throughput.
    #[must_use]
    pub fn on_chip(energy: &LayerEnergy, runtime_s: f64, throughput_per_s: f64) -> Self {
        let power = LayerPower::new(energy, runtime_s);
        Self {
            energy_eff: throughput_per_s / energy.on_chip_j(),
            power_eff: throughput_per_s / power.on_chip_w(),
        }
    }

    /// Total efficiency (including DRAM) from energy, runtime and
    /// throughput.
    #[must_use]
    pub fn total(energy: &LayerEnergy, runtime_s: f64, throughput_per_s: f64) -> Self {
        let power = LayerPower::new(energy, runtime_s);
        Self {
            energy_eff: throughput_per_s / energy.total_j(),
            power_eff: throughput_per_s / power.total_w(),
        }
    }
}

/// The `X×` improvement of one efficiency over a baseline (the bar heights
/// of Fig. 14).
#[must_use]
pub fn improvement(ours: f64, baseline: f64) -> f64 {
    ours / baseline
}

/// The percentage reduction of a cost metric against a baseline, as the
/// paper quotes (e.g. "reduces the on-chip energy by 83.5 %"); negative
/// values are degradations.
#[must_use]
pub fn reduction_percent(ours: f64, baseline: f64) -> f64 {
    (1.0 - ours / baseline) * 100.0
}

impl usystolic_obs::ToJson for LayerPower {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("sa_w", self.sa_w.to_json()),
            ("sram_w", self.sram_w.to_json()),
            ("dram_w", self.dram_w.to_json()),
            ("on_chip_w", self.on_chip_w().to_json()),
            ("total_w", self.total_w().to_json()),
        ])
    }
}

impl usystolic_obs::ToJson for Efficiency {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("energy_eff", self.energy_eff.to_json()),
            ("power_eff", self.power_eff.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::LayerEnergy;
    use usystolic_core::{ComputingScheme, SystolicConfig};
    use usystolic_gemm::GemmConfig;
    use usystolic_sim::{MemoryHierarchy, Simulator};

    fn layer() -> GemmConfig {
        GemmConfig::conv(31, 31, 96, 5, 5, 1, 256).unwrap()
    }

    fn eval(
        scheme: ComputingScheme,
        cycles: Option<u64>,
        mem: MemoryHierarchy,
    ) -> (LayerEnergy, f64, f64) {
        let mut cfg = SystolicConfig::edge(scheme, 8);
        if let Some(c) = cycles {
            cfg = cfg.with_mul_cycles(c).unwrap();
        }
        let r = Simulator::new(cfg, mem).simulate(&layer());
        (
            LayerEnergy::compute(&cfg, &mem, &r),
            r.runtime_s,
            r.throughput_per_s,
        )
    }

    #[test]
    fn usystolic_slashes_on_chip_power_at_edge() {
        // Section V-F: [97.6, 99.5] % on-chip power reduction vs binary
        // parallel at the edge.
        let (be, br, _) = eval(
            ComputingScheme::BinaryParallel,
            None,
            MemoryHierarchy::edge_with_sram(),
        );
        let (ue, ur_s, _) = eval(
            ComputingScheme::UnaryRate,
            Some(128),
            MemoryHierarchy::no_sram(),
        );
        let bp = LayerPower::new(&be, br).on_chip_w();
        let up = LayerPower::new(&ue, ur_s).on_chip_w();
        let red = reduction_percent(up, bp);
        assert!(
            red > 90.0,
            "on-chip power reduction {red:.1}% below paper band"
        );
    }

    #[test]
    fn power_times_runtime_recovers_energy() {
        let (e, runtime, _) = eval(
            ComputingScheme::BinarySerial,
            None,
            MemoryHierarchy::edge_with_sram(),
        );
        let p = LayerPower::new(&e, runtime);
        assert!((p.total_w() * runtime - e.total_j()).abs() / e.total_j() < 1e-9);
        assert!((p.on_chip_w() - p.sa_w - p.sram_w).abs() < 1e-12);
    }

    #[test]
    fn efficiency_improvement_of_early_termination() {
        // Fig. 14: early termination always increases on-chip energy and
        // power efficiency over the non-terminated design.
        let (e128, r128, t128) = eval(
            ComputingScheme::UnaryRate,
            Some(128),
            MemoryHierarchy::no_sram(),
        );
        let (e32, r32, t32) = eval(
            ComputingScheme::UnaryRate,
            Some(32),
            MemoryHierarchy::no_sram(),
        );
        let f128 = Efficiency::on_chip(&e128, r128, t128);
        let f32 = Efficiency::on_chip(&e32, r32, t32);
        assert!(improvement(f32.energy_eff, f128.energy_eff) > 1.0);
        assert!(improvement(f32.power_eff, f128.power_eff) > 1.0);
    }

    #[test]
    fn on_chip_efficiency_gain_over_binary_is_positive_for_conv() {
        // Conv layers: moderate but positive on-chip efficiency gains for
        // early-terminated uSystolic over binary parallel at the edge.
        let (be, br, bt) = eval(
            ComputingScheme::BinaryParallel,
            None,
            MemoryHierarchy::edge_with_sram(),
        );
        let (ue, ur_s, ut) = eval(
            ComputingScheme::UnaryRate,
            Some(32),
            MemoryHierarchy::no_sram(),
        );
        let b = Efficiency::on_chip(&be, br, bt);
        let u = Efficiency::on_chip(&ue, ur_s, ut);
        assert!(
            improvement(u.power_eff, b.power_eff) > 1.5,
            "power-efficiency gain {}x too small",
            improvement(u.power_eff, b.power_eff)
        );
    }

    #[test]
    fn fc_layers_drive_the_headline_efficiency_gains() {
        // The paper's up-to-112× / 44.8× figures come from memory-bound FC
        // layers, where the binary design burns SRAM leakage while stalled
        // and uSystolic has almost no on-chip infrastructure.
        let fc6 = GemmConfig::matmul(1, 9216, 4096).unwrap();
        let eval_fc = |scheme, cycles: Option<u64>, mem: MemoryHierarchy| {
            let mut cfg = SystolicConfig::edge(scheme, 8);
            if let Some(c) = cycles {
                cfg = cfg.with_mul_cycles(c).unwrap();
            }
            let r = Simulator::new(cfg, mem).simulate(&fc6);
            (
                LayerEnergy::compute(&cfg, &mem, &r),
                r.runtime_s,
                r.throughput_per_s,
            )
        };
        let (be, br, bt) = eval_fc(
            ComputingScheme::BinaryParallel,
            None,
            MemoryHierarchy::edge_with_sram(),
        );
        let (ue, ur_s, ut) = eval_fc(
            ComputingScheme::UnaryRate,
            Some(32),
            MemoryHierarchy::no_sram(),
        );
        let b = Efficiency::on_chip(&be, br, bt);
        let u = Efficiency::on_chip(&ue, ur_s, ut);
        let pei = improvement(u.power_eff, b.power_eff);
        let eei = improvement(u.energy_eff, b.energy_eff);
        assert!(pei > 10.0, "FC power-efficiency gain {pei}x too small");
        assert!(eei > 5.0, "FC energy-efficiency gain {eei}x too small");
    }

    #[test]
    fn total_efficiency_gains_mostly_vanish() {
        // Section V-G: "When considering the total energy and power with
        // the DRAM access, such improvements almost vanish."
        let (be, br, bt) = eval(
            ComputingScheme::BinaryParallel,
            None,
            MemoryHierarchy::edge_with_sram(),
        );
        let (ue, ur_s, ut) = eval(
            ComputingScheme::UnaryRate,
            Some(32),
            MemoryHierarchy::no_sram(),
        );
        let b_on = Efficiency::on_chip(&be, br, bt);
        let u_on = Efficiency::on_chip(&ue, ur_s, ut);
        let b_tot = Efficiency::total(&be, br, bt);
        let u_tot = Efficiency::total(&ue, ur_s, ut);
        let on_gain = improvement(u_on.power_eff, b_on.power_eff);
        let tot_gain = improvement(u_tot.power_eff, b_tot.power_eff);
        assert!(
            tot_gain < on_gain,
            "total gain {tot_gain} must trail on-chip {on_gain}"
        );
    }

    #[test]
    fn reduction_percent_signs() {
        assert!((reduction_percent(1.0, 4.0) - 75.0).abs() < 1e-12);
        assert!(reduction_percent(4.0, 1.0) < 0.0);
    }
}
