//! Faulted unary GEMM: bit-serial and word-packed paths, bit-identical.
//!
//! Both kernels evaluate `C[m][n] = A[m][k] · B[k][n]` as `m·k·n` unary
//! MAC windows with the same RNG wiring as the fault-free
//! `usystolic_core` kernels (IFM comparator on Sobol dimension 1 or a
//! counter, weight C-BSG on Sobol dimension 0), then inject the
//! [`DeviceFaults`] model:
//!
//! * **transient flips** — the per-window XOR mask of [`crate::mask`] is
//!   applied to the product stream. The serial kernel XORs cycle by
//!   cycle; the packed kernel starts from the prefix-popcount answer and
//!   adjusts per flip site using the identity
//!   `product[j] = enable[j] && cw[popcount(enable[..j])]`, which is
//!   exactly the bit the serial C-BSG emits at cycle `j`.
//! * **stuck-at PEs** — the product wire of an afflicted window is
//!   forced to the stuck value on every cycle (flips still invert it:
//!   a transient upset rides on top of the hard fault).
//! * **memory corruption** — operand magnitudes are XOR-corrupted once,
//!   before streaming, via [`usystolic_sim::WordCorruption`].
//!
//! Because masks, stuck lookups and corruption are pure functions of the
//! fault model, the two kernels return identical [`FaultReport`]s — the
//! module tests pin it and `tests/faults.rs` re-pins it end to end.

use crate::config::{DeviceFaults, FaultError};
use crate::mask::{window_mask, WindowMask};
use usystolic_obs::{JsonValue, ToJson};
use usystolic_sim::{Variable, WordCorruption};
use usystolic_unary::bsg::ConditionalBsg;
use usystolic_unary::coding::Coding;
use usystolic_unary::packed::{comparator_stream, sequence, PackedCbsg};
use usystolic_unary::rng::{CounterSource, SobolSource};
use usystolic_unary::{stream_len, SignMagnitude, MAX_BITWIDTH};

/// Which kernel implementation evaluates the faulted MAC windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKernel {
    /// Cycle-by-cycle reference: one comparator step per multiply cycle.
    Serial,
    /// Word-packed: prefix popcounts plus per-flip adjustment.
    Packed,
}

impl core::fmt::Display for FaultKernel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            FaultKernel::Serial => "serial",
            FaultKernel::Packed => "packed",
        })
    }
}

/// GEMM problem shape: `C[m][n] = A[m][k] · B[k][n]`, row-major slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmShape {
    /// Output rows.
    pub m: usize,
    /// Reduction depth.
    pub k: usize,
    /// Output columns.
    pub n: usize,
}

impl GemmShape {
    /// The window index of MAC `(mi, ki, ni)` — the key every fault mask
    /// is derived from, shared by all kernels and the binary baseline.
    #[must_use]
    pub fn window(&self, mi: usize, ki: usize, ni: usize) -> u64 {
        ((mi * self.k + ki) * self.n + ni) as u64
    }
}

/// One injected transient flip, identified by its window and cycle.
///
/// Site lists are the determinism oracle's finest grain: two runs (or
/// two kernels) under the same seed produce *equal* site lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// The MAC window ([`GemmShape::window`]).
    pub window: u64,
    /// The flipped cycle within the window (bit position for the binary
    /// baseline).
    pub cycle: u64,
}

impl ToJson for FaultSite {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("window", self.window.to_json()),
            ("cycle", self.cycle.to_json()),
        ])
    }
}

/// Cap on individually recorded [`FaultSite`]s per report; counts keep
/// accumulating past it.
pub const MAX_RECORDED_SITES: usize = 64;

/// Outcome of one faulted GEMM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// The accumulated outputs, row-major `m × n`. Unary kernels count
    /// product bits (the exact value scaled by the stream length); the
    /// binary baseline accumulates full products.
    pub output: Vec<i64>,
    /// Transient flips injected across all windows.
    pub transient_flips: u64,
    /// Windows evaluated by a stuck PE.
    pub stuck_windows: u64,
    /// Cycles (or register bits, for the binary baseline) forced by
    /// stuck PEs.
    pub stuck_cycles: u64,
    /// Operand words corrupted in memory before streaming.
    pub corrupted_words: u64,
    /// The first [`MAX_RECORDED_SITES`] transient-flip sites, in
    /// evaluation order.
    pub sites: Vec<FaultSite>,
}

impl FaultReport {
    /// FNV-1a digest over outputs and fault counters — one number whose
    /// equality across runs/kernels/worker counts is the cheap
    /// determinism check used by the CLIs and CI.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
        };
        for &o in &self.output {
            eat(o.cast_unsigned());
        }
        eat(self.transient_flips);
        eat(self.stuck_windows);
        eat(self.stuck_cycles);
        eat(self.corrupted_words);
        for s in &self.sites {
            eat(s.window);
            eat(s.cycle);
        }
        h
    }
}

impl ToJson for FaultReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            (
                "output",
                JsonValue::Array(self.output.iter().map(|&v| JsonValue::Int(v)).collect()),
            ),
            ("transient_flips", self.transient_flips.to_json()),
            ("stuck_windows", self.stuck_windows.to_json()),
            ("stuck_cycles", self.stuck_cycles.to_json()),
            ("corrupted_words", self.corrupted_words.to_json()),
            ("sites", self.sites.to_json()),
            ("checksum", self.checksum().to_json()),
        ])
    }
}

/// Validates bitwidth and operand lengths against the shape.
pub(crate) fn check_inputs(
    a_len: usize,
    b_len: usize,
    shape: GemmShape,
    bitwidth: u32,
) -> Result<(), FaultError> {
    if !(2..=MAX_BITWIDTH).contains(&bitwidth) {
        return Err(FaultError::UnsupportedBitwidth(bitwidth));
    }
    if a_len != shape.m * shape.k {
        return Err(FaultError::ShapeMismatch {
            operand: "A",
            expected: shape.m * shape.k,
            got: a_len,
        });
    }
    if b_len != shape.k * shape.n {
        return Err(FaultError::ShapeMismatch {
            operand: "B",
            expected: shape.k * shape.n,
            got: b_len,
        });
    }
    Ok(())
}

/// Converts operands to sign-magnitude, applying memory corruption to
/// the stored magnitudes (random-access, index-keyed, so the count and
/// the sites never depend on evaluation order). Returns the converted
/// slice and the number of corrupted words.
pub(crate) fn corrupted_operands(
    values: &[i64],
    region: Variable,
    memory: Option<&WordCorruption>,
    bitwidth: u32,
) -> (Vec<SignMagnitude>, u64) {
    let max = stream_len(bitwidth);
    let mut hits = 0u64;
    let sm = values
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let mut s = SignMagnitude::from_signed(v, bitwidth);
            if let Some(c) = memory {
                let mask = c.mask_for(region, i as u64);
                if mask != 0 {
                    hits += 1;
                    s.magnitude = (s.magnitude ^ mask).min(max);
                }
            }
            s
        })
        .collect();
    (sm, hits)
}

/// Folds one window's fault bookkeeping into the report.
pub(crate) fn record_window(
    report: &mut FaultReport,
    window: u64,
    mask: &WindowMask,
    stuck: Option<bool>,
    forced_cycles: usize,
) {
    report.transient_flips += mask.flips();
    if report.sites.len() < MAX_RECORDED_SITES && mask.flips() > 0 {
        for cycle in mask.cycles() {
            if report.sites.len() == MAX_RECORDED_SITES {
                break;
            }
            report.sites.push(FaultSite { window, cycle });
        }
    }
    if stuck.is_some() {
        report.stuck_windows += 1;
        report.stuck_cycles += forced_cycles as u64;
    }
}

/// Runs a faulted unary GEMM through the chosen kernel.
///
/// `a` is `m × k` and `b` is `k × n`, both row-major with `bitwidth`-bit
/// signed entries (clamped to sign-magnitude range). The output counts
/// signed product bits per entry: a fault-free window contributes
/// approximately `A[mi][ki] · B[ki][ni] / 2^(bitwidth-1)`.
///
/// Same `faults` ⇒ same [`FaultReport`] from both [`FaultKernel`]s, bit
/// for bit.
///
/// # Errors
///
/// Returns the [`DeviceFaults::validate`] errors, plus
/// [`FaultError::UnsupportedBitwidth`] and [`FaultError::ShapeMismatch`]
/// when the operands disagree with `shape`.
pub fn faulty_unary_gemm(
    a: &[i64],
    b: &[i64],
    shape: GemmShape,
    bitwidth: u32,
    coding: Coding,
    faults: &DeviceFaults,
    kernel: FaultKernel,
) -> Result<FaultReport, FaultError> {
    faults.validate()?;
    check_inputs(a.len(), b.len(), shape, bitwidth)?;
    let len = stream_len(bitwidth) as usize;
    // The fault-free wiring of `usystolic_core`: IFM enable comparator on
    // Sobol dimension 1 (rate) or a counter (temporal); weight C-BSG on
    // Sobol dimension 0. Sources reset per window, so one drained
    // sequence serves every window.
    let ifm_seq = match coding {
        Coding::Rate => sequence(&mut SobolSource::dimension(1, bitwidth - 1), len as u64),
        Coding::Temporal => sequence(&mut CounterSource::new(bitwidth - 1), len as u64),
    };
    let w_seq = sequence(&mut SobolSource::dimension(0, bitwidth - 1), len as u64);
    let (a_sm, hits_a) = corrupted_operands(a, Variable::Ifm, faults.memory.as_ref(), bitwidth);
    let (b_sm, hits_b) = corrupted_operands(b, Variable::Weight, faults.memory.as_ref(), bitwidth);
    let mut report = FaultReport {
        output: Vec::with_capacity(shape.m * shape.n),
        transient_flips: 0,
        stuck_windows: 0,
        stuck_cycles: 0,
        corrupted_words: hits_a + hits_b,
        sites: Vec::new(),
    };
    for mi in 0..shape.m {
        for ni in 0..shape.n {
            let mut acc = 0i64;
            for ki in 0..shape.k {
                let window = shape.window(mi, ki, ni);
                let x = a_sm[mi * shape.k + ki];
                let w = b_sm[ki * shape.n + ni];
                let stuck = faults.stuck_at(ki, ni);
                let mask = window_mask(faults.seed, window, len, faults.ber);
                record_window(&mut report, window, &mask, stuck, len);
                let ones = match kernel {
                    FaultKernel::Serial => serial_window(x, w, &ifm_seq, bitwidth, stuck, &mask),
                    FaultKernel::Packed => packed_window(x, w, &ifm_seq, &w_seq, stuck, &mask),
                };
                acc += x.product_increment(w) * ones.cast_signed();
            }
            report.output.push(acc);
        }
    }
    Ok(report)
}

/// Bit-serial evaluation of one faulted MAC window.
fn serial_window(
    x: SignMagnitude,
    w: SignMagnitude,
    ifm_seq: &[u64],
    bitwidth: u32,
    stuck: Option<bool>,
    mask: &WindowMask,
) -> u64 {
    let mut ones = 0u64;
    match stuck {
        Some(v) => {
            for j in 0..ifm_seq.len() {
                ones += u64::from(v ^ mask.flip(j));
            }
        }
        None => {
            let mut cbsg =
                ConditionalBsg::new(w.magnitude, SobolSource::dimension(0, bitwidth - 1));
            for (j, &s) in ifm_seq.iter().enumerate() {
                let bit = cbsg.step(s < x.magnitude) ^ mask.flip(j);
                ones += u64::from(bit);
            }
        }
    }
    ones
}

/// Word-packed evaluation of one faulted MAC window: the fault-free
/// prefix-popcount answer, adjusted per flip site via the serial/packed
/// product-bit identity.
fn packed_window(
    x: SignMagnitude,
    w: SignMagnitude,
    ifm_seq: &[u64],
    w_seq: &[u64],
    stuck: Option<bool>,
    mask: &WindowMask,
) -> u64 {
    if let Some(v) = stuck {
        // Forced product wire: flips invert the constant.
        return if v {
            ifm_seq.len() as u64 - mask.flips()
        } else {
            mask.flips()
        };
    }
    let enable = comparator_stream(ifm_seq, x.magnitude);
    let cw = PackedCbsg::from_stream(comparator_stream(w_seq, w.magnitude));
    let mut ones = cw.ones_given(enable.count_ones());
    for cycle in mask.cycles() {
        let j = cycle as usize;
        // product[j] = enable[j] && cw[popcount(enable[..j])]: the C-BSG
        // has advanced once per prior enabled cycle.
        let rank = enable.count_ones_first(j) as usize;
        let product = enable.get(j).unwrap_or(false) && cw.stream().get(rank).unwrap_or(false);
        if product {
            ones -= 1;
        } else {
            ones += 1;
        }
    }
    ones
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StuckAt;
    use usystolic_unary::rng::SplitMix64;

    fn matrix(rng: &mut SplitMix64, len: usize, hi: i64) -> Vec<i64> {
        (0..len).map(|_| rng.range_i64(-hi, hi)).collect()
    }

    fn run(
        faults: &DeviceFaults,
        coding: Coding,
        kernel: FaultKernel,
        bitwidth: u32,
    ) -> FaultReport {
        let shape = GemmShape { m: 3, k: 4, n: 2 };
        let mut rng = SplitMix64::new(99);
        let hi = (usystolic_unary::stream_len(bitwidth) - 1) as i64;
        let a = matrix(&mut rng, shape.m * shape.k, hi);
        let b = matrix(&mut rng, shape.k * shape.n, hi);
        faulty_unary_gemm(&a, &b, shape, bitwidth, coding, faults, kernel).expect("valid gemm")
    }

    #[test]
    fn serial_and_packed_agree_bit_for_bit() {
        for coding in [Coding::Rate, Coding::Temporal] {
            for seed in [1u64, 7, 42] {
                for ber in [0.0, 0.004, 0.08] {
                    let faults = DeviceFaults::new(seed)
                        .with_ber(ber)
                        .with_grid(4, 2)
                        .with_stuck(StuckAt {
                            row: 2,
                            col: 1,
                            value: true,
                        })
                        .with_memory(usystolic_sim::WordCorruption::new(seed, 0.1, 5));
                    let serial = run(&faults, coding, FaultKernel::Serial, 7);
                    let packed = run(&faults, coding, FaultKernel::Packed, 7);
                    assert_eq!(serial, packed, "{coding} seed {seed} ber {ber}");
                    assert_eq!(serial.checksum(), packed.checksum());
                }
            }
        }
    }

    #[test]
    fn quiet_faults_reproduce_the_fault_free_kernel() {
        let quiet = DeviceFaults::new(5);
        let report = run(&quiet, Coding::Rate, FaultKernel::Packed, 8);
        assert_eq!(report.transient_flips, 0);
        assert_eq!(report.stuck_windows, 0);
        assert_eq!(report.corrupted_words, 0);
        assert!(report.sites.is_empty());
        // The unary output approximates the exact product sum scaled by
        // the stream length; with Sobol sources the per-window error is
        // logarithmic in the stream length.
        let shape = GemmShape { m: 3, k: 4, n: 2 };
        let mut rng = SplitMix64::new(99);
        let a = matrix(&mut rng, shape.m * shape.k, 127);
        let b = matrix(&mut rng, shape.k * shape.n, 127);
        for mi in 0..shape.m {
            for ni in 0..shape.n {
                let exact: i64 = (0..shape.k)
                    .map(|ki| a[mi * shape.k + ki] * b[ki * shape.n + ni])
                    .sum();
                let got = report.output[mi * shape.n + ni] as f64;
                let want = exact as f64 / 128.0;
                assert!(
                    (got - want).abs() <= shape.k as f64 * 9.0,
                    "C[{mi}][{ni}] = {got}, exact/128 = {want}"
                );
            }
        }
    }

    #[test]
    fn same_seed_same_report_different_seed_different_flips() {
        let f1 = DeviceFaults::new(11).with_ber(0.01);
        let a = run(&f1, Coding::Rate, FaultKernel::Packed, 8);
        let b = run(&f1, Coding::Rate, FaultKernel::Packed, 8);
        assert_eq!(a, b);
        let f2 = DeviceFaults::new(12).with_ber(0.01);
        let c = run(&f2, Coding::Rate, FaultKernel::Packed, 8);
        assert_ne!(a.sites, c.sites);
        assert_ne!(a.checksum(), c.checksum());
    }

    #[test]
    fn stuck_pe_accounting_matches_the_grid_mapping() {
        // Direct grid (rows = k, cols = n): PE (1, 0) owns exactly the
        // windows with ki == 1, ni == 0 — one per output row.
        let shape = GemmShape { m: 3, k: 4, n: 2 };
        let faults = DeviceFaults::new(0).with_grid(4, 2).with_stuck(StuckAt {
            row: 1,
            col: 0,
            value: true,
        });
        let a = vec![0i64; shape.m * shape.k];
        let b = vec![0i64; shape.k * shape.n];
        let r = faulty_unary_gemm(&a, &b, shape, 8, Coding::Rate, &faults, FaultKernel::Packed)
            .expect("valid gemm");
        assert_eq!(r.stuck_windows, shape.m as u64);
        assert_eq!(r.stuck_cycles, shape.m as u64 * 128);
        // Stuck-at-1 forces 128 ones per afflicted window even with
        // all-zero operands; the sign of 0·0 is positive.
        for mi in 0..shape.m {
            assert_eq!(r.output[mi * shape.n], 128);
            assert_eq!(r.output[mi * shape.n + 1], 0);
        }
    }

    #[test]
    fn memory_corruption_is_counted_and_changes_output() {
        let shape = GemmShape { m: 2, k: 2, n: 2 };
        let a = vec![40i64, -30, 20, 10];
        let b = vec![5i64, -6, 7, 8];
        let clean = faulty_unary_gemm(
            &a,
            &b,
            shape,
            8,
            Coding::Rate,
            &DeviceFaults::new(1),
            FaultKernel::Packed,
        )
        .expect("valid gemm");
        let corrupted = faulty_unary_gemm(
            &a,
            &b,
            shape,
            8,
            Coding::Rate,
            &DeviceFaults::new(1).with_memory(usystolic_sim::WordCorruption::new(1, 1.0, 7)),
            FaultKernel::Packed,
        )
        .expect("valid gemm");
        // word_ber = 1 corrupts every stored operand word.
        assert_eq!(corrupted.corrupted_words, (a.len() + b.len()) as u64);
        assert_ne!(clean.output, corrupted.output);
    }

    #[test]
    fn rejects_bad_inputs() {
        let shape = GemmShape { m: 2, k: 2, n: 2 };
        let quiet = DeviceFaults::new(0);
        let short = faulty_unary_gemm(
            &[1, 2, 3],
            &[1, 2, 3, 4],
            shape,
            8,
            Coding::Rate,
            &quiet,
            FaultKernel::Serial,
        );
        assert!(matches!(
            short,
            Err(FaultError::ShapeMismatch { operand: "A", .. })
        ));
        let bad_width = faulty_unary_gemm(
            &[1, 2, 3, 4],
            &[1, 2, 3, 4],
            shape,
            1,
            Coding::Rate,
            &quiet,
            FaultKernel::Serial,
        );
        assert!(matches!(bad_width, Err(FaultError::UnsupportedBitwidth(1))));
        let bad_ber = faulty_unary_gemm(
            &[1, 2, 3, 4],
            &[1, 2, 3, 4],
            shape,
            8,
            Coding::Rate,
            &DeviceFaults::new(0).with_ber(-0.5),
            FaultKernel::Serial,
        );
        assert!(matches!(bad_ber, Err(FaultError::InvalidBer(_))));
    }

    #[test]
    fn site_recording_caps_but_counting_continues() {
        let faults = DeviceFaults::new(2).with_ber(0.5);
        let r = run(&faults, Coding::Rate, FaultKernel::Packed, 8);
        assert_eq!(r.sites.len(), MAX_RECORDED_SITES);
        assert!(r.transient_flips > MAX_RECORDED_SITES as u64);
    }

    #[test]
    fn report_json_carries_counters_and_checksum() {
        let faults = DeviceFaults::new(3).with_ber(0.02);
        let r = run(&faults, Coding::Temporal, FaultKernel::Serial, 7);
        let j = r.to_json();
        assert_eq!(
            j.get("transient_flips"),
            Some(&JsonValue::UInt(r.transient_flips))
        );
        assert_eq!(j.get("checksum"), Some(&JsonValue::UInt(r.checksum())));
        assert!(j.get("output").is_some() && j.get("sites").is_some());
    }
}
