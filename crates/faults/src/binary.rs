//! Binary baseline under the same fault model.
//!
//! A conventional MAC holds each product in a `2(N-1)+1`-bit register.
//! Applying the *same* per-bit error rate to that register (masks drawn
//! from the same `(seed, window)` SplitMix64 streams as the unary
//! kernels) exposes the asymmetry the paper's coding schemes exploit: a
//! unary flip is always worth one LSB of the product, while a binary
//! flip at bit `i` is worth `2^i` — up to twice the full product range
//! when the MSB goes.

use crate::config::{DeviceFaults, FaultError};
use crate::gemm::{check_inputs, corrupted_operands, record_window, FaultReport, GemmShape};
use crate::mask::window_mask;
use usystolic_sim::Variable;

/// Magnitude bits of the binary product register for `bitwidth`-bit
/// sign-magnitude operands: `|x·w| ≤ 2^(2(bitwidth-1))` needs
/// `2(bitwidth-1)+1` bits.
#[must_use]
pub fn product_register_bits(bitwidth: u32) -> usize {
    2 * (bitwidth as usize - 1) + 1
}

/// Runs the faulted binary GEMM baseline.
///
/// Operands are clamped to `bitwidth`-bit sign-magnitude range like the
/// unary kernels; the output accumulates full products (a scale of
/// `2^(bitwidth-1)` above [`crate::faulty_unary_gemm`]'s counts).
/// Transient flips XOR bits of the product-magnitude register as read
/// out — no clamping, exactly as a corrupted register would be consumed.
/// Stuck-at PEs force the whole register (all-ones or all-zeros);
/// memory corruption hits operands exactly as in the unary kernels.
///
/// # Errors
///
/// Returns the [`DeviceFaults::validate`] errors, plus
/// [`FaultError::UnsupportedBitwidth`] and [`FaultError::ShapeMismatch`]
/// when the operands disagree with `shape`.
pub fn faulty_binary_gemm(
    a: &[i64],
    b: &[i64],
    shape: GemmShape,
    bitwidth: u32,
    faults: &DeviceFaults,
) -> Result<FaultReport, FaultError> {
    faults.validate()?;
    check_inputs(a.len(), b.len(), shape, bitwidth)?;
    let reg_bits = product_register_bits(bitwidth);
    let (a_sm, hits_a) = corrupted_operands(a, Variable::Ifm, faults.memory.as_ref(), bitwidth);
    let (b_sm, hits_b) = corrupted_operands(b, Variable::Weight, faults.memory.as_ref(), bitwidth);
    let mut report = FaultReport {
        output: Vec::with_capacity(shape.m * shape.n),
        transient_flips: 0,
        stuck_windows: 0,
        stuck_cycles: 0,
        corrupted_words: hits_a + hits_b,
        sites: Vec::new(),
    };
    for mi in 0..shape.m {
        for ni in 0..shape.n {
            let mut acc = 0i64;
            for ki in 0..shape.k {
                let window = shape.window(mi, ki, ni);
                let x = a_sm[mi * shape.k + ki];
                let w = b_sm[ki * shape.n + ni];
                let stuck = faults.stuck_at(ki, ni);
                let mask = window_mask(faults.seed, window, reg_bits, faults.ber);
                record_window(&mut report, window, &mask, stuck, reg_bits);
                acc += match stuck {
                    Some(true) => ((1u64 << reg_bits) - 1).cast_signed(),
                    Some(false) => 0,
                    None => {
                        let mut magnitude = x.magnitude * w.magnitude;
                        for bit in mask.cycles() {
                            magnitude ^= 1u64 << bit;
                        }
                        x.product_increment(w) * magnitude.cast_signed()
                    }
                };
            }
            report.output.push(acc);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StuckAt;
    use usystolic_unary::rng::SplitMix64;

    fn operands(shape: GemmShape, hi: i64) -> (Vec<i64>, Vec<i64>) {
        let mut rng = SplitMix64::new(55);
        let a = (0..shape.m * shape.k)
            .map(|_| rng.range_i64(-hi, hi))
            .collect();
        let b = (0..shape.k * shape.n)
            .map(|_| rng.range_i64(-hi, hi))
            .collect();
        (a, b)
    }

    #[test]
    fn quiet_baseline_is_the_exact_matmul() {
        let shape = GemmShape { m: 3, k: 5, n: 2 };
        let (a, b) = operands(shape, 127);
        let r = faulty_binary_gemm(&a, &b, shape, 8, &DeviceFaults::new(0)).expect("valid gemm");
        for mi in 0..shape.m {
            for ni in 0..shape.n {
                let exact: i64 = (0..shape.k)
                    .map(|ki| a[mi * shape.k + ki] * b[ki * shape.n + ni])
                    .sum();
                assert_eq!(r.output[mi * shape.n + ni], exact);
            }
        }
        assert_eq!(r.transient_flips, 0);
        assert_eq!(r.checksum(), {
            let again =
                faulty_binary_gemm(&a, &b, shape, 8, &DeviceFaults::new(0)).expect("valid gemm");
            again.checksum()
        });
    }

    #[test]
    fn flips_are_deterministic_and_register_scaled() {
        let shape = GemmShape { m: 2, k: 3, n: 2 };
        let (a, b) = operands(shape, 100);
        let faults = DeviceFaults::new(9).with_ber(0.05);
        let r1 = faulty_binary_gemm(&a, &b, shape, 8, &faults).expect("valid gemm");
        let r2 = faulty_binary_gemm(&a, &b, shape, 8, &faults).expect("valid gemm");
        assert_eq!(r1, r2);
        // Bit positions stay inside the product register.
        assert!(r1.sites.iter().all(|s| s.cycle < 15));
        // 12 windows x 15 bits at BER 0.05 makes a flip overwhelmingly
        // likely under any healthy seed.
        assert!(r1.transient_flips > 0);
    }

    #[test]
    fn stuck_registers_force_extremes() {
        let shape = GemmShape { m: 1, k: 1, n: 1 };
        let up = DeviceFaults::new(0).with_grid(1, 1).with_stuck(StuckAt {
            row: 0,
            col: 0,
            value: true,
        });
        let r = faulty_binary_gemm(&[3], &[4], shape, 8, &up).expect("valid gemm");
        assert_eq!(r.output[0], (1 << 15) - 1);
        assert_eq!(r.stuck_cycles, 15);
        let down = DeviceFaults::new(0).with_grid(1, 1).with_stuck(StuckAt {
            row: 0,
            col: 0,
            value: false,
        });
        let r = faulty_binary_gemm(&[3], &[4], shape, 8, &down).expect("valid gemm");
        assert_eq!(r.output[0], 0);
    }

    #[test]
    fn register_width_covers_the_product_range() {
        assert_eq!(product_register_bits(8), 15);
        // 128 * 128 = 2^14 fits in 15 bits.
        assert!(128u64 * 128 < 1 << product_register_bits(8));
        assert_eq!(product_register_bits(2), 3);
    }

    #[test]
    fn rejects_invalid_models() {
        let shape = GemmShape { m: 1, k: 1, n: 1 };
        let e = faulty_binary_gemm(&[1], &[1], shape, 8, &DeviceFaults::new(0).with_ber(2.0));
        assert!(matches!(e, Err(FaultError::InvalidBer(_))));
        let e = faulty_binary_gemm(&[1, 2], &[1], shape, 8, &DeviceFaults::new(0));
        assert!(matches!(e, Err(FaultError::ShapeMismatch { .. })));
    }
}
