//! Deterministic fault injection for the uSystolic stack.
//!
//! Unary computing's resilience story (the paper's motivation for rate
//! coding, quantified by the CMU exploration work on unary matrix units)
//! is that a transient flip anywhere in a `2^(N-1)`-cycle product stream
//! perturbs the decoded product by exactly **one LSB**, where a flip in a
//! binary product register is worth up to `2^(2N-1)`. This crate makes
//! that claim measurable:
//!
//! * [`DeviceFaults`] describes a device-level fault model: transient
//!   flips at a configurable bit-error rate (BER), stuck-at-0/1 PE
//!   outputs, and corruption of memory-resident weight words (via
//!   [`usystolic_sim::WordCorruption`]).
//! * [`mask`] derives **word-granularity fault masks** from a
//!   SplitMix64 stream keyed per MAC window: transient flips are XOR
//!   masks, stuck-at faults AND/OR masks, so the packed kernel keeps its
//!   64-cycles-per-`u64` shape and stays bit-identical with the
//!   bit-serial reference under the same seed.
//! * [`faulty_unary_gemm`] runs a faulted unary GEMM through either the
//!   bit-serial or the word-packed kernel ([`FaultKernel`]); the two are
//!   bit-identical for every seed (`tests` pin it).
//! * [`faulty_binary_gemm`] is the binary baseline: the same BER applied
//!   to `2N`-bit product registers, where a single flip can be
//!   catastrophic.
//!
//! **Determinism contract**: every fault site is a pure function of
//! `(seed, window, cycle)` — same seed ⇒ same sites, same outcomes, same
//! [`FaultReport`], regardless of kernel path, evaluation order or worker
//! count. See `docs/faults.md`.

pub mod binary;
pub mod config;
pub mod gemm;
pub mod mask;

pub use binary::{faulty_binary_gemm, product_register_bits};
pub use config::{DeviceFaults, FaultError, StuckAt};
pub use gemm::{faulty_unary_gemm, FaultKernel, FaultReport, FaultSite, GemmShape};
pub use mask::{window_mask, WindowMask};
