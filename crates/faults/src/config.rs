//! Fault-model configuration: what to inject, where, and from which seed.
//!
//! A [`DeviceFaults`] value is the single source of truth for a faulted
//! run. Everything in it is plain data — the same value handed to the
//! bit-serial kernel, the packed kernel and the binary baseline produces
//! the same fault sites, because every site is derived from
//! `(seed, window, cycle)` and never from evaluation order.

use usystolic_obs::{JsonValue, ToJson};
use usystolic_sim::WordCorruption;

/// A processing element whose product output is stuck at a constant.
///
/// Under the weight-stationary mapping a MAC window `(mi, ki, ni)` is
/// evaluated by the physical PE at `(ki % rows, ni % cols)` of the
/// [`DeviceFaults`] grid; a stuck PE forces the product bit of every
/// window it computes, on every cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckAt {
    /// PE row in the physical grid.
    pub row: usize,
    /// PE column in the physical grid.
    pub col: usize,
    /// The constant the product wire is stuck at.
    pub value: bool,
}

impl ToJson for StuckAt {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("row", (self.row as u64).to_json()),
            ("col", (self.col as u64).to_json()),
            ("value", self.value.to_json()),
        ])
    }
}

/// The device-level fault model for one run.
///
/// Built with [`DeviceFaults::new`] plus the `with_*` builders; checked
/// once by [`validate`](Self::validate) (the GEMM entry points call it
/// for you).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceFaults {
    /// Master seed. Every fault site in the run — transient flips,
    /// memory corruption — is a pure function of this seed and a
    /// position, never of evaluation order.
    pub seed: u64,
    /// Transient bit-error rate: the probability that any single
    /// product-bit opportunity (one cycle of a unary stream, one bit of
    /// a binary product register) is inverted. `0.0` disables flips.
    pub ber: f64,
    /// Stuck-at PE faults. When several entries cover the same grid
    /// cell, the first match wins.
    pub stuck: Vec<StuckAt>,
    /// Physical PE grid rows (windows map by `ki % rows`).
    pub rows: usize,
    /// Physical PE grid columns (windows map by `ni % cols`).
    pub cols: usize,
    /// Optional corruption of operand words while they sit in DRAM/SRAM,
    /// applied once before streaming (see [`usystolic_sim::WordCorruption`]).
    pub memory: Option<WordCorruption>,
}

impl DeviceFaults {
    /// A quiet fault model (no flips, no stuck PEs, no memory
    /// corruption) on the default 8×8 PE grid.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ber: 0.0,
            stuck: Vec::new(),
            rows: 8,
            cols: 8,
            memory: None,
        }
    }

    /// Sets the transient bit-error rate.
    #[must_use]
    pub fn with_ber(mut self, ber: f64) -> Self {
        self.ber = ber;
        self
    }

    /// Adds a stuck-at PE fault.
    #[must_use]
    pub fn with_stuck(mut self, fault: StuckAt) -> Self {
        self.stuck.push(fault);
        self
    }

    /// Sets the physical PE grid the stuck-at coordinates refer to.
    #[must_use]
    pub fn with_grid(mut self, rows: usize, cols: usize) -> Self {
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Enables memory word corruption of the stored operands.
    #[must_use]
    pub fn with_memory(mut self, corruption: WordCorruption) -> Self {
        self.memory = Some(corruption);
        self
    }

    /// Whether this model injects nothing (a quiet run is bit-identical
    /// to the fault-free kernels).
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.ber <= 0.0
            && self.stuck.is_empty()
            && self.memory.as_ref().is_none_or(|m| m.word_ber <= 0.0)
    }

    /// Checks the model for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidBer`] when the bit-error rate is not
    /// a finite probability in `[0, 1]`, [`FaultError::EmptyGrid`] when
    /// either grid dimension is zero, and [`FaultError::StuckOutsideGrid`]
    /// when a stuck-at coordinate falls outside the grid.
    pub fn validate(&self) -> Result<(), FaultError> {
        if !self.ber.is_finite() || !(0.0..=1.0).contains(&self.ber) {
            return Err(FaultError::InvalidBer(self.ber));
        }
        if self.rows == 0 || self.cols == 0 {
            return Err(FaultError::EmptyGrid);
        }
        for s in &self.stuck {
            if s.row >= self.rows || s.col >= self.cols {
                return Err(FaultError::StuckOutsideGrid {
                    row: s.row,
                    col: s.col,
                    rows: self.rows,
                    cols: self.cols,
                });
            }
        }
        Ok(())
    }

    /// The stuck value (if any) forced on the window computed at
    /// reduction index `ki`, output column `ni`.
    #[must_use]
    pub fn stuck_at(&self, ki: usize, ni: usize) -> Option<bool> {
        self.stuck
            .iter()
            .find(|s| ki % self.rows == s.row && ni % self.cols == s.col)
            .map(|s| s.value)
    }
}

impl ToJson for DeviceFaults {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("seed", self.seed.to_json()),
            ("ber", self.ber.to_json()),
            ("stuck", self.stuck.to_json()),
            ("rows", (self.rows as u64).to_json()),
            ("cols", (self.cols as u64).to_json()),
            ("memory", self.memory.to_json()),
        ])
    }
}

/// Errors produced by the fault-injection layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// The bit-error rate is not a finite probability in `[0, 1]`.
    InvalidBer(f64),
    /// The PE grid has a zero dimension.
    EmptyGrid,
    /// A stuck-at fault names a PE outside the grid.
    StuckOutsideGrid {
        /// Requested row.
        row: usize,
        /// Requested column.
        col: usize,
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// An operand slice does not match the GEMM shape.
    ShapeMismatch {
        /// Which operand is wrong (`"A"` or `"B"`).
        operand: &'static str,
        /// Elements the shape demands.
        expected: usize,
        /// Elements the slice holds.
        got: usize,
    },
    /// A data bitwidth outside the supported range was requested.
    UnsupportedBitwidth(u32),
}

impl core::fmt::Display for FaultError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultError::InvalidBer(ber) => {
                write!(f, "bit-error rate {ber} is not a probability in [0, 1]")
            }
            FaultError::EmptyGrid => write!(f, "PE grid has a zero dimension"),
            FaultError::StuckOutsideGrid {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "stuck-at PE ({row}, {col}) is outside the {rows}x{cols} grid"
            ),
            FaultError::ShapeMismatch {
                operand,
                expected,
                got,
            } => write!(
                f,
                "operand {operand} holds {got} elements, shape demands {expected}"
            ),
            FaultError::UnsupportedBitwidth(w) => write!(
                f,
                "unsupported data bitwidth {w} (expected 2..={})",
                usystolic_unary::MAX_BITWIDTH
            ),
        }
    }
}

impl std::error::Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_default_validates() {
        let f = DeviceFaults::new(1);
        assert!(f.is_quiet());
        assert!(f.validate().is_ok());
        assert_eq!(f.stuck_at(3, 5), None);
    }

    #[test]
    fn builders_compose_and_validate() {
        let f = DeviceFaults::new(7)
            .with_ber(1e-3)
            .with_grid(4, 4)
            .with_stuck(StuckAt {
                row: 1,
                col: 2,
                value: true,
            })
            .with_memory(WordCorruption::new(7, 0.5, 7));
        assert!(!f.is_quiet());
        assert!(f.validate().is_ok());
        // ki % 4 == 1, ni % 4 == 2 hits the stuck PE.
        assert_eq!(f.stuck_at(5, 6), Some(true));
        assert_eq!(f.stuck_at(5, 7), None);
    }

    #[test]
    fn first_matching_stuck_entry_wins() {
        let f = DeviceFaults::new(0)
            .with_stuck(StuckAt {
                row: 0,
                col: 0,
                value: true,
            })
            .with_stuck(StuckAt {
                row: 0,
                col: 0,
                value: false,
            });
        assert_eq!(f.stuck_at(0, 0), Some(true));
    }

    #[test]
    fn validation_rejects_bad_models() {
        assert_eq!(
            DeviceFaults::new(0).with_ber(1.5).validate(),
            Err(FaultError::InvalidBer(1.5))
        );
        assert!(matches!(
            DeviceFaults::new(0).with_ber(f64::NAN).validate(),
            Err(FaultError::InvalidBer(b)) if b.is_nan()
        ));
        assert_eq!(
            DeviceFaults::new(0).with_grid(0, 8).validate(),
            Err(FaultError::EmptyGrid)
        );
        let out = DeviceFaults::new(0).with_grid(2, 2).with_stuck(StuckAt {
            row: 2,
            col: 0,
            value: false,
        });
        assert!(matches!(
            out.validate(),
            Err(FaultError::StuckOutsideGrid { .. })
        ));
    }

    #[test]
    fn nan_ber_compares_equal_in_error() {
        // PartialEq on FaultError with a NaN payload: NaN != NaN, so the
        // errors differ — validate() still reports InvalidBer.
        let e = DeviceFaults::new(0).with_ber(f64::NAN).validate();
        assert!(matches!(e, Err(FaultError::InvalidBer(b)) if b.is_nan()));
    }

    #[test]
    fn json_round_trips_structure() {
        let f = DeviceFaults::new(3).with_ber(0.25).with_stuck(StuckAt {
            row: 1,
            col: 1,
            value: false,
        });
        let j = f.to_json();
        assert_eq!(j.get("seed"), Some(&JsonValue::UInt(3)));
        assert!(j.get("stuck").is_some());
        assert_eq!(j.get("memory"), Some(&JsonValue::Null));
    }

    #[test]
    fn errors_display_meaningfully() {
        assert!(FaultError::InvalidBer(2.0).to_string().contains('2'));
        assert!(FaultError::EmptyGrid.to_string().contains("zero"));
        let s = FaultError::StuckOutsideGrid {
            row: 9,
            col: 0,
            rows: 8,
            cols: 8,
        }
        .to_string();
        assert!(s.contains("9") && s.contains("8x8"));
        let s = FaultError::ShapeMismatch {
            operand: "A",
            expected: 6,
            got: 5,
        }
        .to_string();
        assert!(s.contains('A') && s.contains('6') && s.contains('5'));
        assert!(FaultError::UnsupportedBitwidth(99)
            .to_string()
            .contains("99"));
    }
}
