//! Word-granularity fault masks from a per-window SplitMix64 stream.
//!
//! Transient flips are sampled with **geometric skips** (inverse-transform
//! sampling of the gap between Bernoulli successes), so building a mask
//! costs `O(flips)` rather than `O(cycles)` and the mask arrives already
//! packed 64 bits per word — the packed kernel XORs it word-at-a-time
//! while the bit-serial kernel queries it cycle-at-a-time, and both see
//! the exact same fault sites because the mask is a pure function of
//! `(seed, window)`.

use usystolic_unary::rng::SplitMix64;
use usystolic_unary::Bitstream;

/// Decorrelation constant mixed into the per-window key so the transient
/// stream never collides with the memory-corruption stream of
/// [`usystolic_sim::WordCorruption`] (which keys on region/index).
const WINDOW_STREAM_SALT: u64 = 0xD6E8_FEB8_6659_FD93;

/// The SplitMix64 generator owning fault decisions for one MAC window.
///
/// Shared by the unary kernels and the binary baseline: the same
/// `(seed, window)` always yields the same flip pattern, which is what
/// makes cross-kernel fault sites comparable.
#[must_use]
pub fn window_rng(seed: u64, window: u64) -> SplitMix64 {
    SplitMix64::new(seed ^ window.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ WINDOW_STREAM_SALT)
}

/// A packed XOR mask of transient flips over one window's cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowMask {
    bits: Bitstream,
}

impl WindowMask {
    /// Number of flips the mask injects.
    #[must_use]
    pub fn flips(&self) -> u64 {
        self.bits.count_ones()
    }

    /// Whether cycle `cycle` is flipped (false past the end) — the
    /// bit-serial kernel's per-cycle query.
    #[must_use]
    pub fn flip(&self, cycle: usize) -> bool {
        self.bits.get(cycle).unwrap_or(false)
    }

    /// The packed mask bits — the word-granularity view the packed
    /// kernel XORs against product words.
    #[must_use]
    pub fn bits(&self) -> &Bitstream {
        &self.bits
    }

    /// Flipped cycle indices in ascending order (the fault sites).
    #[must_use]
    pub fn cycles(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.flips() as usize);
        for (wi, &word) in self.bits.words().iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as u64;
                out.push(wi as u64 * 64 + bit);
                w &= w - 1;
            }
        }
        out
    }

    /// Number of cycles the mask covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the mask covers no cycles.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }
}

/// Samples the transient-flip mask for one window: each of `len` cycles
/// is flipped independently with probability `ber`, using geometric-skip
/// sampling from [`window_rng`].
///
/// `ber <= 0` yields an empty mask, `ber >= 1` a full mask; anything in
/// between draws gaps `g = floor(ln(1-u) / ln(1-ber))` between flips.
#[must_use]
pub fn window_mask(seed: u64, window: u64, len: usize, ber: f64) -> WindowMask {
    if ber <= 0.0 || len == 0 {
        return WindowMask {
            bits: Bitstream::zeros(len),
        };
    }
    if ber >= 1.0 {
        return WindowMask {
            bits: Bitstream::ones(len),
        };
    }
    let mut rng = window_rng(seed, window);
    let mut bits = Bitstream::zeros(len);
    let log_q = (1.0 - ber).ln(); // < 0 for ber in (0, 1)
    let mut pos: u64 = 0;
    loop {
        let u = rng.next_f64();
        // f64 -> u64 casts saturate, so astronomically long gaps simply
        // land past the end of the window.
        let gap = ((1.0 - u).ln() / log_q).floor() as u64;
        pos = pos.saturating_add(gap);
        if pos >= len as u64 {
            break;
        }
        bits.set(pos as usize, true);
        pos += 1;
    }
    WindowMask { bits }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_are_deterministic() {
        let a = window_mask(42, 7, 4096, 0.01);
        let b = window_mask(42, 7, 4096, 0.01);
        assert_eq!(a, b);
        assert_eq!(a.cycles(), b.cycles());
    }

    #[test]
    fn windows_and_seeds_decorrelate() {
        let a = window_mask(42, 7, 4096, 0.05);
        let b = window_mask(42, 8, 4096, 0.05);
        let c = window_mask(43, 7, 4096, 0.05);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn edge_rates() {
        let zero = window_mask(1, 0, 128, 0.0);
        assert_eq!(zero.flips(), 0);
        assert!(zero.cycles().is_empty());
        let one = window_mask(1, 0, 128, 1.0);
        assert_eq!(one.flips(), 128);
        assert!(one.flip(0) && one.flip(127));
        let empty = window_mask(1, 0, 0, 0.5);
        assert!(empty.is_empty());
        assert_eq!(empty.flips(), 0);
    }

    #[test]
    fn density_tracks_ber() {
        // 64 windows x 4096 cycles at BER 0.01: expect ~2621 flips; the
        // binomial std dev is ~51, so +-6 sigma bounds are generous.
        let total: u64 = (0..64).map(|w| window_mask(9, w, 4096, 0.01).flips()).sum();
        assert!(
            (2300..=2950).contains(&total),
            "flip density off: {total} of 262144 at BER 0.01"
        );
    }

    #[test]
    fn cycles_agree_with_per_cycle_queries() {
        let m = window_mask(3, 11, 1000, 0.02);
        let listed = m.cycles();
        let scanned: Vec<u64> = (0..1000u64).filter(|&j| m.flip(j as usize)).collect();
        assert_eq!(listed, scanned);
        assert_eq!(m.flips() as usize, listed.len());
        assert_eq!(m.len(), 1000);
        // Ascending and in range.
        assert!(listed.windows(2).all(|p| p[0] < p[1]));
        assert!(listed.iter().all(|&c| c < 1000));
    }

    #[test]
    fn mask_never_marks_cycles_past_len() {
        for w in 0..32 {
            let m = window_mask(5, w, 70, 0.5);
            assert!(m.cycles().iter().all(|&c| c < 70));
            assert!(!m.flip(70) && !m.flip(1000));
        }
    }
}
