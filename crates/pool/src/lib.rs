//! A host-side work-stealing worker pool shared across the workspace.
//!
//! Two consumers split their work into embarrassingly parallel indexed
//! phases: the serving simulator (profiling every `(workload, layer)` pair
//! before its event loop, folding per-request records after it) and the
//! GEMM executors (the independent weight-tile sweep of a lowered GEMM).
//! [`run_indexed`] runs those phases across `workers` `std::thread`s:
//! every worker owns a deque of task indices, pops from its own front, and
//! **steals from the back** of the busiest victim when it runs dry (the
//! classic Chase–Lev shape, expressed with mutexed deques since the
//! workspace is `forbid(unsafe)` and dependency-free).
//!
//! Determinism: each task writes its result into its own pre-allocated
//! slot, so the output vector is identical whatever the interleaving —
//! parallelism changes wall-clock time, never results. `workers == 1`
//! runs inline on the caller thread (no spawn, no locks taken by anyone
//! else), which is also the fallback when a spawn fails.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// Errors from the worker pool.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PoolError {
    /// A worker thread terminated without completing its tasks.
    WorkerFailed,
}

impl core::fmt::Display for PoolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PoolError::WorkerFailed => write!(f, "a worker thread failed before finishing"),
        }
    }
}

impl std::error::Error for PoolError {}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f(i)` for every `i in 0..tasks` across `workers` threads with
/// work stealing, returning the results in task order.
///
/// # Errors
///
/// Returns [`PoolError::WorkerFailed`] if a worker thread dies (e.g. a
/// panic inside `f`) before all tasks complete.
pub fn run_indexed<T, F>(workers: usize, tasks: usize, f: F) -> Result<Vec<T>, PoolError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1);
    if workers == 1 || tasks <= 1 {
        return Ok((0..tasks).map(&f).collect());
    }

    // Round-robin initial distribution across per-worker deques.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..tasks {
        lock(&queues[i % workers]).push_back(i);
    }
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                // Own work first (front), then steal from the deepest
                // victim's back. The own-queue guard is dropped before
                // any victim lock is taken (two statements, never two
                // locks held at once — no lock-order deadlock).
                let own = { lock(&queues[me]).pop_front() };
                let task = match own {
                    Some(t) => Some(t),
                    None => {
                        let victim = (0..workers)
                            .filter(|&v| v != me)
                            .max_by_key(|&v| lock(&queues[v]).len());
                        victim.and_then(|v| lock(&queues[v]).pop_back())
                    }
                };
                match task {
                    Some(i) => {
                        let out = f(i);
                        *lock(&slots[i]) = Some(out);
                    }
                    None => return,
                }
            });
        }
    });

    let mut out = Vec::with_capacity(tasks);
    for slot in slots {
        match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Some(v) => out.push(v),
            None => return Err(PoolError::WorkerFailed),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_land_in_task_order() {
        let out = run_indexed(4, 100, |i| i * i).expect("pool ok");
        assert_eq!(out.len(), 100);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
    }

    #[test]
    fn single_worker_runs_inline() {
        let out = run_indexed(1, 10, |i| i + 1).expect("pool ok");
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_tasks_is_empty() {
        let out: Vec<usize> = run_indexed(4, 0, |i| i).expect("pool ok");
        assert!(out.is_empty());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let task = |i: usize| {
            // Uneven task sizes to force stealing.
            let mut acc = 0u64;
            for k in 0..((i % 7) * 1000 + 1) as u64 {
                acc = acc.wrapping_mul(31).wrapping_add(k ^ i as u64);
            }
            acc
        };
        let one = run_indexed(1, 64, task).expect("pool ok");
        for workers in [2, 3, 4, 8] {
            assert_eq!(run_indexed(workers, 64, task).expect("pool ok"), one);
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed(8, 500, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        })
        .expect("pool ok");
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }
}
