//! Hostile-but-clean corpus: every construct below *looks* like a
//! violation to a substring scanner but lives in a comment, a literal
//! or test code. The lint must report nothing here. panic! .unwrap()

/// Doc comments may freely mention panic!("boom"), `.unwrap()`,
/// `x == 0.5`, HashMap, SystemTime and `total as i32`.
pub fn doc_heavy() -> &'static str {
    "a string with panic!(\"inner\") and .unwrap() and HashMap"
}

/* A block comment /* nested once /* and twice */ still */ mentioning
   .expect("no"), total as i32, std::time and SystemTime. */
pub fn raw_strings() -> usize {
    let s = r#"raw with "quotes", panic!, .unwrap(), 1.0 == 2.0"#;
    let b = b"byte string with .expect( inside";
    let m = r##"multi
line raw: unreachable!() and HashSet"##;
    s.len() + b.len() + m.len()
}

pub fn chars_not_lifetimes<'a>(x: &'a [u8]) -> (char, char, u8) {
    let quote = '"';
    let escaped = '\'';
    (quote, escaped, x.first().copied().unwrap_or(b'\n'))
}

pub fn waived(total: i64) -> u32 {
    // Bounded by the caller's contract: lint: allow(narrowing)
    total as u32
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_do_all_of_it() {
        let mut m = HashMap::new();
        m.insert("k", 1.0_f64);
        assert!(m.get("k").copied().unwrap() == 1.0);
        let folded = 300_i64 as u8;
        assert_ne!(folded as f64, 0.25);
        let sorted = [0.5_f64, 0.25]
            .iter()
            .max_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(sorted.is_some());
    }
}
