//! Seeded violations for the lint regression corpus: every rule fires
//! at a known line. The string waiver marker below must NOT suppress
//! its finding — only comments can waive.

pub fn panics(x: Option<u64>) -> u64 {
    let marker = "lint: allow(panic)";
    x.unwrap() + marker.len() as u64
}

pub fn narrows(total: i64) -> u32 {
    total as u32
}

pub fn clock() -> u64 {
    std::time::now_cycles()
}

pub fn float_eq(x: f64) -> bool {
    x == 0.25
}

pub fn tainted(keys: &[u64]) -> usize {
    let set: std::collections::HashSet<u64> = keys.iter().copied().collect();
    set.len()
}

pub fn unordered(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
    xs
}

pub fn undocumented(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| String::new())
}
