//! A hand-rolled Rust lexer for the repository lint.
//!
//! The previous scanner masked comments and string literals out of the
//! source and then grepped lines, which made every rule a substring
//! match and every new rule a fresh masking bug. This module tokenises
//! the source instead: rules pattern-match over a token stream in which
//! a `panic!` inside a doc comment is a [`TokenKind::LineComment`], a
//! `".unwrap()"` inside a raw string is a [`TokenKind::Str`], and `'a`
//! in `Vec<&'a str>` is a [`TokenKind::Lifetime`] — none of which can
//! collide with code tokens.
//!
//! The lexer is deliberately lossy where the lint does not care: all
//! punctuation becomes [`TokenKind::Punct`] (with a small set of
//! two-character operators kept whole so rules can match `::`, `==`,
//! `->` directly), keywords are ordinary [`TokenKind::Ident`]s, and
//! numeric suffixes stay attached to their literal. Comment text is
//! retained verbatim so waiver markers (`lint: allow(rule)`) can be
//! found *only* in comments, never in string literals.
//!
//! Every token records the 1-based line of its first character, which
//! is what findings report.

/// The coarse classification the lint rules match on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `as`, `r#type`).
    Ident,
    /// A lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime,
    /// Integer literal, any base, suffix attached (`0xFF`, `1_000u64`).
    Int,
    /// Float literal, suffix attached (`1.0`, `2e-3`, `1.5f32`).
    Float,
    /// Any string literal: plain, raw, byte or byte-raw, quotes kept.
    Str,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A `//` comment, text kept, including `///` and `//!` doc forms.
    LineComment,
    /// A (possibly nested) `/* */` comment, text kept.
    BlockComment,
    /// Punctuation: one of [`JOINED`] or a single character.
    Punct,
}

/// Two-character operators kept as a single [`TokenKind::Punct`] token.
/// Everything else is split into single characters. The set is exactly
/// what the rules need to match (`::`, `==`, `!=`, `<=`, `>=`, `->`)
/// plus the operators whose splitting would create false `=`/`<`/`>`
/// neighbours for the float-comparison rule.
const JOINED: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "..", "+=", "-=", "*=", "/=",
    "%=", "^=", "&=", "|=",
];

/// One token of the source, borrowing its text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// What the token is.
    pub kind: TokenKind,
    /// The exact source text, delimiters included.
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl<'a> Token<'a> {
    /// Whether this token is a comment of either form.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this is an identifier with exactly this text.
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this is a punctuation token with exactly this text.
    #[must_use]
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// Tokenises `source`. The lexer never fails: unterminated literals or
/// comments simply extend to the end of the input, and any byte it does
/// not recognise becomes a single-character [`TokenKind::Punct`]. This
/// is the right behaviour for a lint that must not crash on the code it
/// is criticising.
#[must_use]
pub fn lex(source: &str) -> Vec<Token<'_>> {
    Lexer {
        src: source,
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    tokens: Vec<Token<'a>>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.char_or_lifetime(),
                b'b' | b'r' if self.literal_prefix() => {}
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident(),
                _ => self.punct(),
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, start_line: usize) {
        self.tokens.push(Token {
            kind,
            text: &self.src[start..self.pos],
            line: start_line,
        });
    }

    /// Counts the newlines inside the token just consumed so `self.line`
    /// stays correct across multi-line literals and comments.
    fn advance_lines(&mut self, start: usize) {
        self.line += self.bytes[start..self.pos]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
    }

    fn line_comment(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokenKind::LineComment, start, start_line);
    }

    fn block_comment(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        self.push(TokenKind::BlockComment, start, start_line);
        self.advance_lines(start);
    }

    /// Consumes a plain (escaped) string literal starting at the current
    /// `"`. `start` points at the literal's first byte (before any `b`
    /// prefix the caller already consumed past).
    fn string(&mut self, start: usize) {
        let start_line = self.line;
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.pos = self.pos.min(self.bytes.len());
        self.push(TokenKind::Str, start, start_line);
        self.advance_lines(start);
    }

    /// Handles `b"…"`, `b'…'`, `r"…"`, `r#"…"#`, `br#"…"#`. Returns
    /// true if a literal was consumed; false means the `b`/`r` is just
    /// the start of an identifier (including raw identifiers `r#type`).
    fn literal_prefix(&mut self) -> bool {
        let start = self.pos;
        let mut i = self.pos;
        let mut raw = false;
        // Optional order: `b`, then `r`, i.e. b" b' r" br" are literals.
        if self.bytes[i] == b'b' {
            i += 1;
        }
        if self.bytes.get(i) == Some(&b'r') {
            i += 1;
            raw = true;
        }
        if raw {
            let mut hashes = 0usize;
            while self.bytes.get(i + hashes) == Some(&b'#') {
                hashes += 1;
            }
            if self.bytes.get(i + hashes) == Some(&b'"') {
                self.raw_string(start, i + hashes, hashes);
                return true;
            }
            return false; // raw identifier or plain ident starting r/br.
        }
        match self.bytes.get(i) {
            Some(&b'"') => {
                self.pos = i;
                self.string(start);
                true
            }
            Some(&b'\'') => {
                // Byte char b'x' — always a char, never a lifetime.
                self.pos = i + 1;
                self.char_body(start);
                true
            }
            _ => false,
        }
    }

    /// Consumes a raw string whose opening `"` is at `quote`, closed by
    /// `"` followed by `hashes` `#`s.
    fn raw_string(&mut self, start: usize, quote: usize, hashes: usize) {
        let start_line = self.line;
        self.pos = quote + 1;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"'
                && self.bytes[self.pos + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&b| b == b'#')
                    .count()
                    == hashes
            {
                self.pos += 1 + hashes;
                break;
            }
            self.pos += 1;
        }
        self.pos = self.pos.min(self.bytes.len());
        self.push(TokenKind::Str, start, start_line);
        self.advance_lines(start);
    }

    /// At a `'`: decides between a char literal and a lifetime the same
    /// way rustc does — `'x'` and `'\n'` are chars; `'a` followed by
    /// anything but a closing quote is a lifetime.
    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        let next = self.peek(1);
        let is_char = match next {
            Some(b'\\') => true,
            Some(c) if is_ident_start(c) => self.peek(2) == Some(b'\''),
            Some(b'\'') | None => false, // `''` or trailing quote: punt.
            Some(_) => true,             // '(' in '(', ' ' in ' ', digits…
        };
        if is_char {
            self.pos += 1;
            self.char_body(start);
        } else {
            self.pos += 1;
            while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                self.pos += 1;
            }
            self.push(TokenKind::Lifetime, start, self.line);
        }
    }

    /// Consumes the body of a char literal; `self.pos` is just past the
    /// opening quote.
    fn char_body(&mut self, start: usize) {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.pos = self.pos.min(self.bytes.len());
        self.push(TokenKind::Char, start, self.line);
    }

    fn number(&mut self) {
        let start = self.pos;
        let mut float = false;
        if self.bytes[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'))
        {
            self.pos += 2;
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.pos += 1;
            }
            self.push(TokenKind::Int, start, self.line);
            return;
        }
        self.digits();
        if self.peek(0) == Some(b'.') {
            // `1.5` and `1.` are floats; `1.max(2)` and `1..4` are not.
            let after = self.peek(1);
            let method = after.is_some_and(is_ident_start);
            let range = after == Some(b'.');
            if !method && !range {
                float = true;
                self.pos += 1;
                self.digits();
            }
        }
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let sign = matches!(self.peek(1), Some(b'+' | b'-'));
            let exp_at = if sign { 2 } else { 1 };
            if self.peek(exp_at).is_some_and(|b| b.is_ascii_digit()) {
                float = true;
                self.pos += exp_at;
                self.digits();
            }
        }
        // Suffix: u64, i8, f32, usize…  f-suffixes force float.
        let suffix_start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        if self.src[suffix_start..self.pos].starts_with('f') {
            float = true;
        }
        let kind = if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, start, self.line);
    }

    fn digits(&mut self) {
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_digit() || b == b'_')
        {
            self.pos += 1;
        }
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        self.push(TokenKind::Ident, start, self.line);
    }

    fn punct(&mut self) {
        let start = self.pos;
        if self.pos + 1 < self.bytes.len() {
            let pair = &self.src[self.pos..self.pos + 2];
            if JOINED.contains(&pair) {
                self.pos += 2;
                self.push(TokenKind::Punct, start, self.line);
                return;
            }
        }
        // Step over a full UTF-8 scalar so multi-byte characters inside
        // e.g. stray text never split into invalid slices.
        let mut end = self.pos + 1;
        while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
            end += 1;
        }
        self.pos = end;
        self.push(TokenKind::Punct, start, self.line);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// The enclosing-region flags of one token: computed in a single pass
/// over the stream by tracking brace depth, `#[cfg(test)]`/`#[test]`
/// attributes and `impl Trait for Type` headers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Region {
    /// Inside (or annotated by) a test region.
    pub test: bool,
    /// Inside an `impl Trait for Type` block.
    pub trait_impl: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegionKind {
    Test,
    TraitImpl,
}

/// Computes the [`Region`] of every token, parallel to `tokens`.
///
/// `#[test]` and `#[cfg(test)]` (but not `#[cfg(not(test))]`) mark the
/// item that follows: the region covers the attribute itself, the item
/// header and the full braced body. `impl … for …` headers with no `fn`
/// before the opening brace mark the body as a trait impl (inherent
/// impls — no `for` — do not).
#[must_use]
pub fn token_regions(tokens: &[Token<'_>]) -> Vec<Region> {
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let mut regions = vec![Region::default(); tokens.len()];
    let mut depth = 0usize;
    let mut stack: Vec<(RegionKind, usize)> = Vec::new();
    let mut pending: Option<RegionKind> = None;

    let mut c = 0usize;
    while c < code.len() {
        let i = code[c];
        let tok = &tokens[i];
        let in_test =
            pending == Some(RegionKind::Test) || stack.iter().any(|&(k, _)| k == RegionKind::Test);
        let in_trait = stack.iter().any(|&(k, _)| k == RegionKind::TraitImpl);
        regions[i] = Region {
            test: in_test,
            trait_impl: in_trait,
        };

        if tok.is_punct("#") {
            if let Some(end) = attribute_end(tokens, &code, c) {
                let mut is_test = false;
                let mut idents = Vec::new();
                for &j in &code[c..=end] {
                    if tokens[j].kind == TokenKind::Ident {
                        idents.push(tokens[j].text);
                    }
                    regions[j] = regions[i];
                }
                if idents == ["test"]
                    || (idents.first() == Some(&"cfg")
                        && idents.contains(&"test")
                        && !idents.contains(&"not"))
                {
                    is_test = true;
                }
                if is_test {
                    pending = Some(RegionKind::Test);
                }
                c = end + 1;
                continue;
            }
        }

        if tok.is_ident("impl") && pending.is_none() {
            // Scan the header up to its `{`; `for` without `fn` means a
            // trait impl (`impl Display for X`), not an inherent impl.
            let mut saw_for = false;
            let mut saw_fn = false;
            for &j in &code[c + 1..] {
                let t = &tokens[j];
                if t.is_punct("{") || t.is_punct(";") {
                    break;
                }
                saw_for |= t.is_ident("for");
                saw_fn |= t.is_ident("fn");
            }
            if saw_for && !saw_fn {
                pending = Some(RegionKind::TraitImpl);
            }
        }

        if tok.is_punct("{") {
            if let Some(kind) = pending.take() {
                stack.push((kind, depth));
            }
            depth += 1;
        } else if tok.is_punct("}") {
            depth = depth.saturating_sub(1);
            if stack.last().is_some_and(|&(_, d)| d >= depth) {
                stack.pop();
            }
        }
        c += 1;
    }

    // Comments inherit the region of the nearest following code token,
    // so a comment inside a test mod is test-region too.
    let mut next = Region::default();
    for i in (0..tokens.len()).rev() {
        if tokens[i].is_comment() {
            regions[i] = next;
        } else {
            next = regions[i];
        }
    }
    regions
}

/// If code-position `c` starts an attribute (`#` `[` … `]`, or the
/// inner form `#` `!` `[` … `]`), returns the code position of the
/// closing `]`.
fn attribute_end(tokens: &[Token<'_>], code: &[usize], c: usize) -> Option<usize> {
    let mut k = c + 1;
    if code.get(k).is_some_and(|&j| tokens[j].is_punct("!")) {
        k += 1;
    }
    if !code.get(k).is_some_and(|&j| tokens[j].is_punct("[")) {
        return None;
    }
    let mut depth = 0usize;
    for (pos, &j) in code.iter().enumerate().skip(k) {
        if tokens[j].is_punct("[") {
            depth += 1;
        } else if tokens[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return Some(pos);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text.to_string()))
            .collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let toks = kinds("pub fn f(x: u32) -> u32 { x }");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["pub", "fn", "f", "x", "u32", "u32", "x"]);
        assert!(toks.contains(&(TokenKind::Punct, "->".into())));
    }

    #[test]
    fn joined_operators_stay_whole() {
        let toks = kinds("a == b != c <= d >= e :: f");
        for op in ["==", "!=", "<=", ">=", "::"] {
            assert!(toks.contains(&(TokenKind::Punct, op.into())), "{op}");
        }
    }

    #[test]
    fn line_and_block_comments_keep_text() {
        let toks = lex("// top panic!\n/* block /* nested */ unwrap() */ fn f() {}");
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert!(toks[0].text.contains("panic!"));
        assert_eq!(toks[1].kind, TokenKind::BlockComment);
        assert!(toks[1].text.contains("unwrap()"));
        assert_eq!(toks[1].line, 2);
        assert!(toks[2].is_ident("fn"));
    }

    #[test]
    fn strings_swallow_their_contents() {
        let toks = lex(r#"let s = "panic! \" .unwrap()"; x"#);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("panic!"));
        assert!(toks.last().unwrap().is_ident("x"));
    }

    #[test]
    fn raw_and_byte_strings_lex_as_one_token() {
        let toks = lex("r#\"has \"quotes\" and panic!\"# b\"bytes\" br#\"raw bytes\"#");
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 3, "{toks:?}");
        assert!(strs[0].text.contains("panic!"));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = lex("let r#type = 1;");
        assert!(toks.iter().any(|t| t.is_ident("type")));
        assert!(toks.iter().all(|t| t.kind != TokenKind::Str));
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks = lex(r"fn f<'a>(x: &'a str) -> char { 'x' } let e = '\n'; let s = 'static;");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text)
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'static"]);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text)
            .collect();
        assert_eq!(chars, ["'x'", r"'\n'"]);
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let toks = kinds("1 1.5 1e3 1.5e-3 0xFF 0b1010 1_000u64 2.0f32 1.max(2) 0..4");
        let of = |kind: TokenKind| {
            toks.iter()
                .filter(|(k, _)| *k == kind)
                .map(|(_, t)| t.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(of(TokenKind::Float), ["1.5", "1e3", "1.5e-3", "2.0f32"]);
        assert_eq!(
            of(TokenKind::Int),
            ["1", "0xFF", "0b1010", "1_000u64", "1", "2", "0", "4"]
        );
    }

    #[test]
    fn lines_are_one_based_and_survive_multiline_tokens() {
        let src = "a\n\"two\nline\"\nb\n/* c\nd */\ne";
        let toks = lex(src);
        let line_of = |text: &str| toks.iter().find(|t| t.text == text).unwrap().line;
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("\"two\nline\""), 2);
        assert_eq!(line_of("b"), 4);
        assert_eq!(line_of("e"), 7);
    }

    #[test]
    fn regions_mark_cfg_test_blocks() {
        let src = "fn a() { x(); }\n#[cfg(test)]\nmod tests {\n  fn t() { y(); }\n}\nfn b() {}\n";
        let toks = lex(src);
        let regions = token_regions(&toks);
        let region_of = |text: &str, line: usize| {
            let i = toks
                .iter()
                .position(|t| t.text == text && t.line == line)
                .unwrap();
            regions[i]
        };
        assert!(!region_of("x", 1).test);
        assert!(region_of("y", 4).test);
        assert!(region_of("}", 5).test, "closing brace still in region");
        assert!(!region_of("b", 6).test);
    }

    #[test]
    fn regions_do_not_mark_cfg_not_test() {
        let src = "#[cfg(not(test))]\nmod real { fn f() { x(); } }\n";
        let toks = lex(src);
        let regions = token_regions(&toks);
        let i = toks.iter().position(|t| t.is_ident("x")).unwrap();
        assert!(!regions[i].test);
    }

    #[test]
    fn regions_mark_test_attribute_and_header() {
        let src = "#[test]\nfn t() { z(); }\nfn u() { w(); }\n";
        let toks = lex(src);
        let regions = token_regions(&toks);
        let at = |text: &str| {
            let i = toks.iter().position(|t| t.text == text).unwrap();
            regions[i]
        };
        assert!(at("t").test, "header after #[test] is test region");
        assert!(at("z").test);
        assert!(!at("w").test);
    }

    #[test]
    fn regions_mark_trait_impls_not_inherent_impls() {
        let src = "impl core::fmt::Display for X {\n  fn fmt(&self) { a(); }\n}\nimpl X {\n  pub fn new() { b(); }\n}\nfor x in 0..3 { c(); }\n";
        let toks = lex(src);
        let regions = token_regions(&toks);
        let at = |text: &str| {
            let i = toks.iter().position(|t| t.text == text).unwrap();
            regions[i]
        };
        assert!(at("a").trait_impl);
        assert!(!at("b").trait_impl, "inherent impl is not exempt");
        assert!(!at("c").trait_impl, "a for-loop is not an impl header");
    }

    #[test]
    fn comments_inherit_the_following_region() {
        let src = "#[cfg(test)]\nmod tests {\n  // inside\n  fn t() {}\n}\n// outside\nfn f() {}\n";
        let toks = lex(src);
        let regions = token_regions(&toks);
        let at = |text: &str| {
            let i = toks.iter().position(|t| t.text.contains(text)).unwrap();
            regions[i]
        };
        assert!(at("inside").test);
        assert!(!at("outside").test);
    }

    #[test]
    fn unterminated_tokens_do_not_panic() {
        for src in ["\"open", "/* open", "r#\"open", "'", "b\"open"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src}");
        }
    }
}
