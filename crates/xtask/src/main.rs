//! Workspace automation tasks (`cargo run -p xtask -- <task>`).
//!
//! The only task so far is `lint`: a zero-dependency source lint pass
//! enforcing repo-specific rules that clippy cannot express (see
//! [`rules`] for the rule table and the `// lint: allow(<rule>)` waiver
//! marker). It exits non-zero when any finding is reported, so CI and
//! `scripts/verify.sh` can gate on it.

mod lexer;
mod rules;

use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!("usage: cargo run -p xtask -- lint [--json]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut task = None;
    for a in &args {
        match a.as_str() {
            "--json" => json = true,
            "lint" if task.is_none() => task = Some("lint"),
            _ => usage(),
        }
    }
    match task {
        Some("lint") => {
            let code = run_lint(json);
            std::process::exit(code);
        }
        _ => usage(),
    }
}

/// Runs the lint over the workspace; returns the process exit code.
fn run_lint(json: bool) -> i32 {
    let root = workspace_root();
    let mut files = Vec::new();
    for dir in ["crates", "src"] {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(source) = std::fs::read_to_string(path) else {
            eprintln!("xtask: warning: unreadable file {rel}");
            continue;
        };
        scanned += 1;
        findings.extend(rules::lint_source(&rel, &source, rules::classify(&rel)));
    }

    if json {
        // Minimal inline JSON (xtask depends on nothing, not even obs).
        println!("[");
        for (i, f) in findings.iter().enumerate() {
            let comma = if i + 1 == findings.len() { "" } else { "," };
            println!(
                "  {{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}{comma}",
                f.file,
                f.line,
                f.rule,
                f.message.replace('\\', "\\\\").replace('"', "\\\"")
            );
        }
        println!("]");
    } else {
        for f in &findings {
            println!("{f}");
        }
        eprintln!(
            "xtask lint: {} file(s) scanned, {} finding(s)",
            scanned,
            findings.len()
        );
    }
    i32::from(!findings.is_empty())
}

/// The workspace root: two levels above this crate's manifest dir, or the
/// current directory when invoked outside cargo.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.ancestors().nth(2).map(Path::to_path_buf).unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}

/// Recursively collects `.rs` files, skipping build output and the
/// lint's own fixture corpus of deliberate violations.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" && name != "fixtures" {
                collect_rs_files(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_own_sources() {
        let root = workspace_root();
        let mut files = Vec::new();
        collect_rs_files(&root.join("crates").join("xtask"), &mut files);
        assert!(files
            .iter()
            .any(|p| p.file_name().is_some_and(|n| n == "rules.rs")));
    }

    #[test]
    fn workspace_root_contains_cargo_toml() {
        assert!(workspace_root().join("Cargo.toml").exists());
    }
}
