//! Source masking and region tracking for the lint pass.
//!
//! The lint rules operate on a *masked* copy of each file: comment text
//! and the contents of string/char literals are blanked out (replaced by
//! spaces) so that a `panic!` inside a doc comment or an error message
//! never trips a rule. Newlines are preserved byte-for-byte, so line
//! numbers in the masked copy match the original.
//!
//! On top of the masked text, [`line_regions`] classifies every line as
//! test code (inside a `#[cfg(test)]` block or after a `#[test]`
//! attribute) and/or trait-impl code (inside an `impl Trait for Type`
//! block), which several rules use to scope themselves to non-test
//! library code.

/// Blanks comments and literal contents out of Rust source.
///
/// Handles line comments, nested block comments, string literals with
/// escapes, raw strings (`r"…"`, `r#"…"#`, with optional `b` prefix),
/// char literals and lifetimes. The returned string has the same length
/// in lines as the input.
#[must_use]
pub fn mask_source(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment: blank to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut depth = 1;
                out.push(b' ');
                out.push(b' ');
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                i = mask_raw_string(bytes, i, &mut out);
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                out.push(b'b');
                i += 1;
                i = mask_plain_string(bytes, i, &mut out);
            }
            b'"' => {
                i = mask_plain_string(bytes, i, &mut out);
            }
            b'\'' => {
                i = mask_char_or_lifetime(bytes, i, &mut out);
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    // The input was valid UTF-8 and multi-byte sequences are only copied
    // verbatim or replaced by ASCII spaces, so the mask stays valid.
    String::from_utf8(out).unwrap_or_default()
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

fn mask_raw_string(bytes: &[u8], mut i: usize, out: &mut Vec<u8>) -> usize {
    // Copy the prefix (b, r, #s, opening quote) verbatim.
    if bytes[i] == b'b' {
        out.push(b'b');
        i += 1;
    }
    out.push(b'r');
    i += 1;
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        out.push(b'#');
        hashes += 1;
        i += 1;
    }
    out.push(b'"');
    i += 1;
    // Blank until `"` followed by `hashes` hash marks.
    while i < bytes.len() {
        if bytes[i] == b'"' && bytes[i + 1..].iter().take_while(|&&c| c == b'#').count() >= hashes {
            out.push(b'"');
            i += 1;
            for _ in 0..hashes {
                out.push(b'#');
                i += 1;
            }
            return i;
        }
        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
        i += 1;
    }
    i
}

fn mask_plain_string(bytes: &[u8], mut i: usize, out: &mut Vec<u8>) -> usize {
    out.push(b'"');
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                out.push(b' ');
                out.push(b' ');
                i += 2;
            }
            b'"' => {
                out.push(b'"');
                return i + 1;
            }
            b'\n' => {
                out.push(b'\n');
                i += 1;
            }
            _ => {
                out.push(b' ');
                i += 1;
            }
        }
    }
    i
}

fn mask_char_or_lifetime(bytes: &[u8], i: usize, out: &mut Vec<u8>) -> usize {
    // `'x'` or `'\…'` is a char literal; `'ident` is a lifetime.
    let is_char = match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&b'\''),
        None => false,
    };
    if !is_char {
        out.push(b'\'');
        return i + 1;
    }
    out.push(b'\'');
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => {
                out.push(b' ');
                out.push(b' ');
                j += 2;
            }
            b'\'' => {
                out.push(b'\'');
                return j + 1;
            }
            _ => {
                out.push(b' ');
                j += 1;
            }
        }
    }
    j
}

/// Per-line classification of a masked source file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineRegion {
    /// Inside a `#[cfg(test)]` block (or the attribute line itself).
    pub test: bool,
    /// Inside an `impl Trait for Type` block.
    pub trait_impl: bool,
}

/// Classifies every line of a masked source as test and/or trait-impl
/// code by tracking brace depth.
#[must_use]
pub fn line_regions(masked: &str) -> Vec<LineRegion> {
    #[derive(PartialEq)]
    enum Kind {
        Test,
        TraitImpl,
    }
    let mut regions = Vec::new();
    let mut stack: Vec<(Kind, u32)> = Vec::new();
    let mut depth: u32 = 0;
    let mut pending: Option<Kind> = None;

    for line in masked.lines() {
        let trimmed = line.trim_start();
        let mut region = LineRegion {
            test: stack.iter().any(|(k, _)| *k == Kind::Test),
            trait_impl: stack.iter().any(|(k, _)| *k == Kind::TraitImpl),
        };
        if trimmed.contains("#[cfg(test)]") || trimmed.starts_with("#[test]") {
            pending = Some(Kind::Test);
            region.test = true;
        } else if (trimmed.starts_with("impl ")
            || trimmed.starts_with("impl<")
            || trimmed.starts_with("unsafe impl"))
            && trimmed
                .split('{')
                .next()
                .is_some_and(|head| head.contains(" for ") && !head.contains("fn "))
        {
            pending = Some(Kind::TraitImpl);
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if let Some(kind) = pending.take() {
                        stack.push((kind, depth));
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if stack.last().is_some_and(|&(_, d)| d >= depth) {
                        stack.pop();
                    }
                }
                _ => {}
            }
        }
        region.test |= stack.iter().any(|(k, _)| *k == Kind::Test) || pending == Some(Kind::Test);
        region.trait_impl |= stack.iter().any(|(k, _)| *k == Kind::TraitImpl);
        regions.push(region);
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let src = "let a = 1; // panic!()\n/* unwrap() */ let b = 2;\n";
        let m = mask_source(src);
        assert!(!m.contains("panic"));
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let a = 1;"));
        assert!(m.contains("let b = 2;"));
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn masks_string_contents_but_keeps_quotes() {
        let m = mask_source("let s = \"call .unwrap() now\";");
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let s = \""));
        assert!(m.ends_with("\";"));
    }

    #[test]
    fn masks_raw_strings_and_escapes() {
        let m = mask_source(r##"let s = r#"panic!("x")"#; let t = "a\"panic!\"";"##);
        assert!(!m.contains("panic"));
    }

    #[test]
    fn keeps_lifetimes_masks_char_literals() {
        let m = mask_source("fn f<'a>(x: &'a str) -> char { '{' }");
        assert!(m.contains("<'a>"));
        assert!(!m.contains("'{'"), "char literal contents masked: {m}");
        // The masked brace no longer unbalances depth tracking.
        assert_eq!(m.matches('{').count(), 1);
    }

    #[test]
    fn nested_block_comments() {
        let m = mask_source("/* outer /* inner */ still comment */ code()");
        assert!(m.contains("code()"));
        assert!(!m.contains("inner"));
    }

    #[test]
    fn regions_mark_cfg_test_blocks() {
        let src = "\
pub fn lib() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
pub fn lib2() {}
";
        let m = mask_source(src);
        let r = line_regions(&m);
        assert!(!r[0].test);
        assert!(r[1].test, "attribute line is test");
        assert!(r[2].test);
        assert!(r[3].test);
        assert!(r[4].test, "closing brace still in region");
        assert!(!r[5].test);
    }

    #[test]
    fn regions_mark_trait_impls() {
        let src = "\
impl Widget {
    pub fn inherent(&self) {}
}
impl core::fmt::Display for Widget {
    fn fmt(&self) {}
}
";
        let r = line_regions(&mask_source(src));
        assert!(!r[0].trait_impl);
        assert!(!r[1].trait_impl);
        assert!(r[3].trait_impl);
        assert!(r[4].trait_impl);
    }

    #[test]
    fn for_loop_is_not_a_trait_impl() {
        let src = "\
impl Widget {
    pub fn f(&self) {
        for x in 0..3 {
            let _ = x;
        }
    }
}
";
        let r = line_regions(&mask_source(src));
        assert!(r.iter().all(|l| !l.trait_impl));
    }
}
