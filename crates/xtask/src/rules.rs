//! The repo-specific lint rules.
//!
//! Each rule is a textual check over a masked source file (comments and
//! literal contents blanked, see [`crate::scan`]). They enforce contracts
//! clippy cannot express for this workspace:
//!
//! | id | rule |
//! |---|---|
//! | `panic` | no `.unwrap()` / `.expect(` / `panic!` / `unreachable!` / `todo!` in non-test library code |
//! | `narrowing` | no lossy `as` narrowing to sub-64-bit integers in accumulator/shift paths (`crates/core`, `crates/unary`) |
//! | `wall-clock` | no `std::time` / `SystemTime` / `Instant` in `crates/sim` and `crates/unary` (cycle determinism) |
//! | `float-eq` | no `==` / `!=` against float literals in non-test code |
//! | `errors-doc` | public `Result`-returning fns document a `# Errors` section |
//!
//! Any rule can be waived for one site with a `// lint: allow(<id>)`
//! marker on the same line or the line above; the marker is expected to
//! carry a rationale in the surrounding comment.

use crate::scan::{line_regions, mask_source, LineRegion};

/// A single lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`panic`, `narrowing`, …).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl core::fmt::Display for Finding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Which rules apply to a file, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileRules {
    /// `panic` rule (non-test library code only).
    pub no_panic: bool,
    /// `narrowing` rule (accumulator/shift crates).
    pub no_narrowing: bool,
    /// `wall-clock` rule (cycle-deterministic crates).
    pub no_wall_clock: bool,
    /// `float-eq` rule.
    pub no_float_eq: bool,
    /// `errors-doc` rule (public API files).
    pub errors_doc: bool,
}

/// Derives the applicable rules from a workspace-relative path.
///
/// Library code is everything under `crates/*/src` and the facade `src/`,
/// except binary entry points (`src/bin`, `main.rs`, `build.rs`), the
/// `xtask` tool itself, and the `bench` experiment harness (whose library
/// modules exist to serve its `exp_*`/`sim_cli` binaries and may abort on
/// impossible configurations). The narrowing rule covers the
/// accumulator/shift implementation crates (`core`, `unary`); the
/// wall-clock rule covers the cycle-deterministic crates (`sim`, `unary`).
#[must_use]
pub fn classify(rel_path: &str) -> FileRules {
    let path = rel_path.replace('\\', "/");
    let in_tool = path.starts_with("crates/xtask") || path.starts_with("crates/bench");
    let is_bin =
        path.contains("/bin/") || path.ends_with("/main.rs") || path.ends_with("/build.rs");
    let is_lib = (path.starts_with("src/")
        || (path.starts_with("crates/") && path.contains("/src/")))
        && !is_bin
        && !in_tool;
    FileRules {
        no_panic: is_lib,
        no_narrowing: path.starts_with("crates/core/src") || path.starts_with("crates/unary/src"),
        no_wall_clock: path.starts_with("crates/sim/src") || path.starts_with("crates/unary/src"),
        no_float_eq: true,
        errors_doc: is_lib,
    }
}

/// Runs every applicable rule over one file.
#[must_use]
pub fn lint_source(rel_path: &str, source: &str, rules: FileRules) -> Vec<Finding> {
    let masked = mask_source(source);
    let regions = line_regions(&masked);
    let raw_lines: Vec<&str> = source.lines().collect();
    let code_lines: Vec<&str> = masked.lines().collect();
    let mut findings = Vec::new();

    let allowed = |idx: usize, rule: &str| -> bool {
        let marker = format!("lint: allow({rule})");
        raw_lines.get(idx).is_some_and(|l| l.contains(&marker))
            || idx > 0 && raw_lines.get(idx - 1).is_some_and(|l| l.contains(&marker))
    };
    let mut push = |idx: usize, rule: &'static str, message: String| {
        if !allowed(idx, rule) {
            findings.push(Finding {
                file: rel_path.to_owned(),
                line: idx + 1,
                rule,
                message,
            });
        }
    };

    for (idx, code) in code_lines.iter().enumerate() {
        let region = regions.get(idx).copied().unwrap_or_default();

        if rules.no_panic && !region.test {
            for token in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
                if code.contains(token) {
                    push(
                        idx,
                        "panic",
                        format!("`{token}` in library code; return a typed error instead"),
                    );
                }
            }
            if contains_unwrap_call(code) {
                push(
                    idx,
                    "panic",
                    "`.unwrap()` in library code; return a typed error instead".to_owned(),
                );
            }
            if code.contains(".expect(") {
                push(
                    idx,
                    "panic",
                    "`.expect(…)` in library code; return a typed error instead".to_owned(),
                );
            }
        }

        if rules.no_narrowing && !region.test {
            if let Some(ty) = narrowing_cast(code) {
                push(
                    idx,
                    "narrowing",
                    format!(
                        "lossy `as {ty}` narrowing in an accumulator/shift path; \
                         use `try_from` or mark `// lint: allow(narrowing)` with a range argument"
                    ),
                );
            }
        }

        if rules.no_wall_clock {
            for token in ["std::time", "SystemTime", "Instant"] {
                if code.contains(token) {
                    push(
                        idx,
                        "wall-clock",
                        format!(
                            "`{token}` in a cycle-deterministic crate; simulated time must come \
                             from the cycle counter"
                        ),
                    );
                }
            }
        }

        if rules.no_float_eq && !region.test && float_literal_eq(code) {
            push(
                idx,
                "float-eq",
                "float literal compared with `==`/`!=`; compare against an epsilon or \
                 restructure"
                    .to_owned(),
            );
        }
    }

    if rules.errors_doc {
        check_errors_docs(rel_path, &code_lines, &raw_lines, &regions, &mut findings);
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Matches `.unwrap()` but not `.unwrap_or(…)` / `.unwrap_or_else(…)` /
/// `.unwrap_or_default()`.
fn contains_unwrap_call(code: &str) -> bool {
    code.match_indices(".unwrap")
        .any(|(i, _)| code[i + ".unwrap".len()..].starts_with("()"))
}

/// Detects `as <narrow-int>` casts; returns the target type.
fn narrowing_cast(code: &str) -> Option<&'static str> {
    const NARROW: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];
    for (i, _) in code.match_indices(" as ") {
        let rest = &code[i + 4..];
        let target: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if let Some(ty) = NARROW.iter().find(|t| **t == target) {
            return Some(ty);
        }
    }
    None
}

/// Detects a float literal adjacent to `==` or `!=`.
fn float_literal_eq(code: &str) -> bool {
    for op in ["==", "!="] {
        for (i, _) in code.match_indices(op) {
            // `!=` shares a suffix with `==` at i+1; skip half-matches.
            if op == "=="
                && i > 0
                && (code.as_bytes()[i - 1] == b'!'
                    || code.as_bytes()[i - 1] == b'<'
                    || code.as_bytes()[i - 1] == b'>')
            {
                continue;
            }
            let before = code[..i]
                .trim_end()
                .rsplit(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '_'))
                .next()
                .unwrap_or("");
            let after = code[i + 2..]
                .trim_start()
                .split(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '_'))
                .next()
                .unwrap_or("");
            if is_float_literal(before) || is_float_literal(after) {
                return true;
            }
        }
    }
    false
}

fn is_float_literal(token: &str) -> bool {
    let t = token
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches('_');
    t.contains('.') && !t.is_empty() && t.parse::<f64>().is_ok()
}

/// Enforces `# Errors` doc sections on public `Result`-returning fns
/// (trait impls inherit their trait's docs and are exempt).
fn check_errors_docs(
    rel_path: &str,
    code_lines: &[&str],
    raw_lines: &[&str],
    regions: &[LineRegion],
    findings: &mut Vec<Finding>,
) {
    let mut docs_have_errors = false;
    let mut docs_present = false;

    for idx in 0..code_lines.len() {
        let raw = raw_lines.get(idx).copied().unwrap_or("");
        let trimmed_raw = raw.trim_start();
        let region = regions.get(idx).copied().unwrap_or_default();

        if trimmed_raw.starts_with("///") {
            docs_present = true;
            docs_have_errors |= trimmed_raw.contains("# Errors");
            continue;
        }
        if trimmed_raw.starts_with("#[") || trimmed_raw.is_empty() {
            continue; // attributes/blank lines between docs and item
        }

        let code = code_lines[idx];
        let is_pub_fn = code.trim_start().starts_with("pub fn ")
            || code.trim_start().starts_with("pub const fn ")
            || code.trim_start().starts_with("pub async fn ");
        if is_pub_fn && !region.test && !region.trait_impl {
            // Join the signature up to the body/terminator.
            let mut sig = String::new();
            for line in code_lines.iter().skip(idx) {
                if let Some(head) = line.split(['{', ';']).next() {
                    sig.push_str(head);
                    sig.push(' ');
                    if head.len() != line.len() {
                        break;
                    }
                } else {
                    break;
                }
            }
            let returns_result = sig
                .split_once("->")
                .is_some_and(|(_, ret)| ret.contains("Result"));
            if returns_result && !docs_have_errors {
                let marker = "lint: allow(errors-doc)";
                let waived = (idx.saturating_sub(8)..=idx)
                    .any(|j| raw_lines.get(j).is_some_and(|l| l.contains(marker)));
                if !waived {
                    findings.push(Finding {
                        file: rel_path.to_owned(),
                        line: idx + 1,
                        rule: "errors-doc",
                        message: if docs_present {
                            "public `Result`-returning fn lacks a `# Errors` doc section".to_owned()
                        } else {
                            "public `Result`-returning fn is undocumented (needs a `# Errors` \
                             section)"
                                .to_owned()
                        },
                    });
                }
            }
        }
        docs_have_errors = false;
        docs_present = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_rules() -> FileRules {
        classify("crates/core/src/fake.rs")
    }

    fn lint(src: &str) -> Vec<Finding> {
        lint_source("crates/core/src/fake.rs", src, lib_rules())
    }

    fn rule_lines(findings: &[Finding], rule: &str) -> Vec<usize> {
        findings
            .iter()
            .filter(|f| f.rule == rule)
            .map(|f| f.line)
            .collect()
    }

    // -- seeded-violation fixtures: one per rule, proving each fires ----

    #[test]
    fn catches_unwrap_expect_and_panic() {
        let src = "\
pub fn f(x: Option<u64>) -> u64 {
    let a = x.unwrap();
    let b = x.expect(\"present\");
    if a == 0 { panic!(\"zero\") }
    a + b
}
";
        let lines = rule_lines(&lint(src), "panic");
        assert_eq!(lines, vec![2, 3, 4]);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "\
pub fn f(x: Option<u64>) -> u64 {
    x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()
}
";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn test_code_and_strings_and_comments_are_exempt_from_panic() {
        let src = "\
pub fn f() -> &'static str {
    // a comment mentioning panic!(…) and .unwrap()
    \"string mentioning .unwrap()\"
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
        panic!(\"test code may panic\");
    }
}
";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn catches_narrowing_casts() {
        let src = "\
pub fn acc(total: i64) -> i64 {
    let folded = total as i32;
    i64::from(folded)
}
";
        assert_eq!(rule_lines(&lint(src), "narrowing"), vec![2]);
    }

    #[test]
    fn narrowing_allows_marked_sites_and_widening() {
        let src = "\
pub fn acc(total: i64, small: u8) -> i64 {
    let w = small as u64 as i64; // widening is fine
    // Bounded by MAX_BITWIDTH: lint: allow(narrowing)
    let n = total as u32;
    w + i64::from(n)
}
";
        assert!(rule_lines(&lint(src), "narrowing").is_empty());
    }

    #[test]
    fn catches_wall_clock_in_sim() {
        let src = "\
pub fn now() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
";
        let f = lint_source(
            "crates/sim/src/fake.rs",
            src,
            classify("crates/sim/src/fake.rs"),
        );
        assert!(!rule_lines(&f, "wall-clock").is_empty());
        // Same source in a non-deterministic crate is allowed.
        let f = lint_source(
            "crates/hw/src/fake.rs",
            src,
            classify("crates/hw/src/fake.rs"),
        );
        assert!(rule_lines(&f, "wall-clock").is_empty());
    }

    #[test]
    fn catches_float_literal_equality() {
        let src = "\
pub fn f(x: f64) -> bool {
    if x == 0.0 {
        return true;
    }
    x != 1.5
}
";
        assert_eq!(rule_lines(&lint(src), "float-eq"), vec![2, 5]);
    }

    #[test]
    fn integer_equality_and_field_access_are_fine() {
        let src = "\
pub fn f(s: &S) -> bool {
    s.n == 0 && s.next.m != 3 && 0.0f64.max(1.0) > 0.5
}
";
        assert!(rule_lines(&lint(src), "float-eq").is_empty());
    }

    #[test]
    fn catches_missing_errors_doc() {
        let src = "\
/// Parses a widget.
pub fn parse(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| String::new())
}
";
        assert_eq!(rule_lines(&lint(src), "errors-doc"), vec![2]);
    }

    #[test]
    fn errors_doc_satisfied_or_exempt() {
        let src = "\
/// Parses a widget.
///
/// # Errors
///
/// Returns a message on malformed input.
pub fn parse(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| String::new())
}

impl core::str::FromStr for W {
    type Err = String;
    pub fn from_str(s: &str) -> Result<Self, String> {
        parse(s).map(W)
    }
}

pub fn infallible(x: u32) -> u32 {
    x + 1
}
";
        assert!(rule_lines(&lint(src), "errors-doc").is_empty());
    }

    #[test]
    fn multiline_signatures_are_joined() {
        let src = "\
/// Does a thing.
pub fn long_signature(
    a: u32,
    b: u32,
) -> Result<u32, String> {
    Ok(a + b)
}
";
        assert_eq!(rule_lines(&lint(src), "errors-doc"), vec![2]);
    }

    #[test]
    fn classify_scopes_rules_by_path() {
        assert!(classify("crates/unary/src/mul.rs").no_panic);
        assert!(classify("crates/unary/src/mul.rs").no_narrowing);
        assert!(classify("crates/unary/src/mul.rs").no_wall_clock);
        assert!(classify("crates/sim/src/trace.rs").no_wall_clock);
        assert!(!classify("crates/sim/src/trace.rs").no_narrowing);
        assert!(!classify("crates/bench/src/bin/sim_cli.rs").no_panic);
        assert!(!classify("crates/bench/src/table.rs").no_panic);
        assert!(classify("crates/bench/src/table.rs").no_float_eq);
        assert!(!classify("crates/xtask/src/main.rs").no_panic);
        assert!(classify("src/lib.rs").no_panic);
    }

    #[test]
    fn findings_render_with_location() {
        let f = Finding {
            file: "crates/core/src/pe.rs".into(),
            line: 7,
            rule: "panic",
            message: "msg".into(),
        };
        assert_eq!(f.to_string(), "crates/core/src/pe.rs:7: [panic] msg");
    }
}
