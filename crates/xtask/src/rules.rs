//! The repo-specific lint rules.
//!
//! Each rule is a pattern match over the token stream produced by
//! [`crate::lexer`] — a `panic!` inside a doc comment or a raw string
//! is a comment/string token and can never match a rule that inspects
//! code tokens. The rules enforce contracts clippy cannot express for
//! this workspace:
//!
//! | id | rule |
//! |---|---|
//! | `panic` | no `.unwrap()` / `.expect(` / `panic!` / `unreachable!` / `todo!` in non-test library code |
//! | `narrowing` | no lossy `as` narrowing to sub-64-bit integers in accumulator/shift paths (`crates/core`, `crates/unary`) |
//! | `wall-clock` | no `std::time` / `SystemTime` / `Instant` in `crates/des`, `crates/sim` and `crates/unary` (cycle determinism) |
//! | `float-eq` | no `==` / `!=` against float literals in non-test code |
//! | `determinism` | no `HashMap` / `HashSet` in result-affecting crates (`core`, `des`, `sim`, `serve`, `unary`): their iteration order varies run to run |
//! | `float-ord` | no `sort_by`/`max_by`/`min_by` closures built on `partial_cmp` in non-test code; NaN silently reorders — use `total_cmp` |
//! | `errors-doc` | public `Result`-returning fns document a `# Errors` section |
//!
//! Any rule can be waived for one site with a `// lint: allow(<id>)`
//! marker on the same line or the line above; the marker is expected to
//! carry a rationale in the surrounding comment. Waivers are recognised
//! **only inside comments** — the same text in a string literal does
//! not waive anything.

use crate::lexer::{lex, token_regions, Token, TokenKind};

/// A single lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`panic`, `narrowing`, …).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl core::fmt::Display for Finding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Which rules apply to a file, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileRules {
    /// `panic` rule (non-test library code only).
    pub no_panic: bool,
    /// `narrowing` rule (accumulator/shift crates).
    pub no_narrowing: bool,
    /// `wall-clock` rule (cycle-deterministic crates).
    pub no_wall_clock: bool,
    /// `float-eq` rule.
    pub no_float_eq: bool,
    /// `determinism` rule (result-affecting crates).
    pub no_determinism: bool,
    /// `float-ord` rule.
    pub no_float_ord: bool,
    /// `errors-doc` rule (public API files).
    pub errors_doc: bool,
}

/// Derives the applicable rules from a workspace-relative path.
///
/// Library code is everything under `crates/*/src` and the facade `src/`,
/// except binary entry points (`src/bin`, `main.rs`, `build.rs`), the
/// `xtask` tool itself, and the `bench` experiment harness (whose library
/// modules exist to serve its `exp_*`/`sim_cli` binaries and may abort on
/// impossible configurations). The narrowing rule covers the
/// accumulator/shift implementation crates (`core`, `unary`); the
/// wall-clock rule covers the cycle-deterministic crates (`des`, `sim`,
/// `unary`); the determinism-taint rule covers every crate whose output
/// feeds simulation results (`core`, `des`, `faults`, `sim`, `serve`,
/// `unary`). Files
/// under a `fixtures/` directory are the lint's own regression corpus of
/// deliberate violations and are exempt from everything.
#[must_use]
pub fn classify(rel_path: &str) -> FileRules {
    let path = rel_path.replace('\\', "/");
    if path.contains("/fixtures/") {
        return FileRules::default();
    }
    let in_tool = path.starts_with("crates/xtask") || path.starts_with("crates/bench");
    let is_bin =
        path.contains("/bin/") || path.ends_with("/main.rs") || path.ends_with("/build.rs");
    let is_lib = (path.starts_with("src/")
        || (path.starts_with("crates/") && path.contains("/src/")))
        && !is_bin
        && !in_tool;
    let result_affecting = [
        "crates/core/src",
        "crates/des/src",
        "crates/faults/src",
        "crates/sim/src",
        "crates/serve/src",
        "crates/unary/src",
    ]
    .iter()
    .any(|p| path.starts_with(p));
    FileRules {
        no_panic: is_lib,
        no_narrowing: path.starts_with("crates/core/src") || path.starts_with("crates/unary/src"),
        no_wall_clock: path.starts_with("crates/des/src")
            || path.starts_with("crates/sim/src")
            || path.starts_with("crates/unary/src"),
        no_float_eq: true,
        no_determinism: result_affecting,
        no_float_ord: true,
        errors_doc: is_lib,
    }
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const NARROW: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];
const FLOAT_SORTS: [&str; 5] = [
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
];

/// Runs every applicable rule over one file.
#[must_use]
pub fn lint_source(rel_path: &str, source: &str, rules: FileRules) -> Vec<Finding> {
    let tokens = lex(source);
    let regions = token_regions(&tokens);
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let waivers = collect_waivers(&tokens);
    let mut findings = Vec::new();

    let waived = |line: usize, rule: &str| -> bool {
        waivers
            .iter()
            .any(|(l, r)| r == rule && (*l == line || *l + 1 == line))
    };

    for c in 0..code.len() {
        let t = &tokens[code[c]];
        let region = regions[code[c]];
        let next = |k: usize| code.get(c + k).map(|&i| &tokens[i]);
        let mut push = |line: usize, rule: &'static str, message: String| {
            if !waived(line, rule) {
                findings.push(Finding {
                    file: rel_path.to_owned(),
                    line,
                    rule,
                    message,
                });
            }
        };

        if rules.no_panic && !region.test {
            if t.kind == TokenKind::Ident
                && PANIC_MACROS.contains(&t.text)
                && next(1).is_some_and(|n| n.is_punct("!"))
            {
                push(
                    t.line,
                    "panic",
                    format!(
                        "`{}!` in library code; return a typed error instead",
                        t.text
                    ),
                );
            }
            if t.is_punct(".") && next(2).is_some_and(|n| n.is_punct("(")) {
                if next(1).is_some_and(|n| n.is_ident("unwrap"))
                    && next(3).is_some_and(|n| n.is_punct(")"))
                {
                    push(
                        t.line,
                        "panic",
                        "`.unwrap()` in library code; return a typed error instead".to_owned(),
                    );
                }
                if next(1).is_some_and(|n| n.is_ident("expect")) {
                    push(
                        t.line,
                        "panic",
                        "`.expect(…)` in library code; return a typed error instead".to_owned(),
                    );
                }
            }
        }

        if rules.no_narrowing && !region.test && t.is_ident("as") {
            if let Some(n) = next(1) {
                if n.kind == TokenKind::Ident && NARROW.contains(&n.text) {
                    push(
                        n.line,
                        "narrowing",
                        format!(
                            "lossy `as {}` narrowing in an accumulator/shift path; \
                             use `try_from` or mark `// lint: allow(narrowing)` with a range \
                             argument",
                            n.text
                        ),
                    );
                }
            }
        }

        if rules.no_wall_clock {
            if t.is_ident("SystemTime") || t.is_ident("Instant") {
                push(
                    t.line,
                    "wall-clock",
                    format!(
                        "`{}` in a cycle-deterministic crate; simulated time must come from the \
                         cycle counter",
                        t.text
                    ),
                );
            }
            if t.is_ident("std")
                && next(1).is_some_and(|n| n.is_punct("::"))
                && next(2).is_some_and(|n| n.is_ident("time"))
            {
                push(
                    t.line,
                    "wall-clock",
                    "`std::time` in a cycle-deterministic crate; simulated time must come from \
                     the cycle counter"
                        .to_owned(),
                );
            }
        }

        if rules.no_float_eq && !region.test && (t.is_punct("==") || t.is_punct("!=")) {
            let prev_float = c > 0 && tokens[code[c - 1]].kind == TokenKind::Float;
            let next_float = next(1).is_some_and(|n| n.kind == TokenKind::Float);
            if prev_float || next_float {
                push(
                    t.line,
                    "float-eq",
                    "float literal compared with `==`/`!=`; compare against an epsilon or \
                     restructure"
                        .to_owned(),
                );
            }
        }

        if rules.no_determinism && !region.test && (t.is_ident("HashMap") || t.is_ident("HashSet"))
        {
            push(
                t.line,
                "determinism",
                format!(
                    "`{}` has run-to-run iteration order; use `BTreeMap`/`BTreeSet` (or a Vec) \
                     in result-affecting code",
                    t.text
                ),
            );
        }

        if rules.no_float_ord
            && !region.test
            && t.kind == TokenKind::Ident
            && FLOAT_SORTS.contains(&t.text)
            && next(1).is_some_and(|n| n.is_punct("("))
        {
            // Scan the call's argument list for a partial_cmp comparator.
            let mut depth = 0usize;
            let mut uses_partial = false;
            for &i in &code[c + 1..] {
                let u = &tokens[i];
                if u.is_punct("(") {
                    depth += 1;
                } else if u.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if u.is_ident("partial_cmp") {
                    uses_partial = true;
                }
            }
            if uses_partial {
                push(
                    t.line,
                    "float-ord",
                    format!(
                        "`{}` comparator built on `partial_cmp` silently reorders on NaN; use \
                         `total_cmp` or compare extracted keys",
                        t.text
                    ),
                );
            }
        }
    }

    if rules.errors_doc {
        check_errors_docs(rel_path, &tokens, &regions, &waivers, &mut findings);
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Extracts `lint: allow(<rule>)` waiver markers from comment tokens
/// only, each with the 1-based line the marker sits on (block comments
/// may carry a marker on any of their lines).
fn collect_waivers(tokens: &[Token<'_>]) -> Vec<(usize, String)> {
    const MARKER: &str = "lint: allow(";
    let mut out = Vec::new();
    for t in tokens {
        if !t.is_comment() {
            continue;
        }
        for (i, _) in t.text.match_indices(MARKER) {
            let line = t.line + t.text[..i].matches('\n').count();
            let rest = &t.text[i + MARKER.len()..];
            if let Some(end) = rest.find(')') {
                out.push((line, rest[..end].to_owned()));
            }
        }
    }
    out
}

/// Enforces `# Errors` doc sections on public `Result`-returning fns
/// (trait impls inherit their trait's docs and are exempt).
///
/// Walks the raw token stream so doc comments can be tracked: `///`
/// lines set the doc state, attributes are transparent, and any other
/// code token detaches the docs from what follows.
fn check_errors_docs(
    rel_path: &str,
    tokens: &[Token<'_>],
    regions: &[crate::lexer::Region],
    waivers: &[(usize, String)],
    findings: &mut Vec<Finding>,
) {
    let mut docs_present = false;
    let mut docs_have_errors = false;
    let next_code = |mut k: usize| -> Option<usize> {
        while k < tokens.len() {
            if !tokens[k].is_comment() {
                return Some(k);
            }
            k += 1;
        }
        None
    };

    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::LineComment && t.text.starts_with("///") {
            docs_present = true;
            docs_have_errors |= t.text.contains("# Errors");
            i += 1;
            continue;
        }
        if t.is_comment() {
            i += 1;
            continue;
        }
        // Attributes between the docs and the item are transparent.
        if t.is_punct("#") {
            let mut k = next_code(i + 1);
            if k.is_some_and(|k| tokens[k].is_punct("!")) {
                k = next_code(k.unwrap_or(i) + 1);
            }
            if let Some(open) = k.filter(|&k| tokens[k].is_punct("[")) {
                let mut depth = 0usize;
                let mut j = open;
                while j < tokens.len() {
                    if tokens[j].is_punct("[") {
                        depth += 1;
                    } else if tokens[j].is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }

        if t.is_ident("pub") {
            let region = regions[i];
            // `pub(crate)`/`pub(super)` items are not public API.
            let mut k = next_code(i + 1);
            while k.is_some_and(|k| {
                tokens[k].is_ident("const")
                    || tokens[k].is_ident("async")
                    || tokens[k].is_ident("unsafe")
            }) {
                k = next_code(k.unwrap_or(i) + 1);
            }
            if k.is_some_and(|k| tokens[k].is_ident("fn")) && !region.test && !region.trait_impl {
                let mut in_return = false;
                let mut returns_result = false;
                let mut j = k.unwrap_or(i) + 1;
                while j < tokens.len() {
                    let u = &tokens[j];
                    if u.is_punct("{") || u.is_punct(";") {
                        break;
                    }
                    if u.is_punct("->") {
                        in_return = true;
                    } else if in_return && u.is_ident("Result") {
                        returns_result = true;
                    }
                    j += 1;
                }
                if returns_result && !docs_have_errors {
                    let waived = waivers.iter().any(|(l, r)| {
                        r == "errors-doc" && (t.line.saturating_sub(8)..=t.line).contains(l)
                    });
                    if !waived {
                        findings.push(Finding {
                            file: rel_path.to_owned(),
                            line: t.line,
                            rule: "errors-doc",
                            message: if docs_present {
                                "public `Result`-returning fn lacks a `# Errors` doc section"
                                    .to_owned()
                            } else {
                                "public `Result`-returning fn is undocumented (needs a \
                                 `# Errors` section)"
                                    .to_owned()
                            },
                        });
                    }
                }
            }
        }
        docs_present = false;
        docs_have_errors = false;
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_rules() -> FileRules {
        classify("crates/core/src/fake.rs")
    }

    fn lint(src: &str) -> Vec<Finding> {
        lint_source("crates/core/src/fake.rs", src, lib_rules())
    }

    fn rule_lines(findings: &[Finding], rule: &str) -> Vec<usize> {
        findings
            .iter()
            .filter(|f| f.rule == rule)
            .map(|f| f.line)
            .collect()
    }

    // -- seeded-violation fixtures: one per rule, proving each fires ----

    #[test]
    fn catches_unwrap_expect_and_panic() {
        let src = "\
pub fn f(x: Option<u64>) -> u64 {
    let a = x.unwrap();
    let b = x.expect(\"present\");
    if a == 0 { panic!(\"zero\") }
    a + b
}
";
        let lines = rule_lines(&lint(src), "panic");
        assert_eq!(lines, vec![2, 3, 4]);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "\
pub fn f(x: Option<u64>) -> u64 {
    x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()
}
";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn test_code_and_strings_and_comments_are_exempt_from_panic() {
        let src = "\
pub fn f() -> &'static str {
    // a comment mentioning panic!(…) and .unwrap()
    \"string mentioning .unwrap()\"
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
        panic!(\"test code may panic\");
    }
}
";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn catches_narrowing_casts() {
        let src = "\
pub fn acc(total: i64) -> i64 {
    let folded = total as i32;
    i64::from(folded)
}
";
        assert_eq!(rule_lines(&lint(src), "narrowing"), vec![2]);
    }

    #[test]
    fn narrowing_allows_marked_sites_and_widening() {
        let src = "\
pub fn acc(total: i64, small: u8) -> i64 {
    let w = small as u64 as i64; // widening is fine
    // Bounded by MAX_BITWIDTH: lint: allow(narrowing)
    let n = total as u32;
    w + i64::from(n)
}
";
        assert!(rule_lines(&lint(src), "narrowing").is_empty());
    }

    #[test]
    fn catches_wall_clock_in_sim() {
        let src = "\
pub fn now() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
";
        let f = lint_source(
            "crates/sim/src/fake.rs",
            src,
            classify("crates/sim/src/fake.rs"),
        );
        assert!(!rule_lines(&f, "wall-clock").is_empty());
        // Same source in a non-deterministic crate is allowed.
        let f = lint_source(
            "crates/hw/src/fake.rs",
            src,
            classify("crates/hw/src/fake.rs"),
        );
        assert!(rule_lines(&f, "wall-clock").is_empty());
    }

    #[test]
    fn catches_float_literal_equality() {
        let src = "\
pub fn f(x: f64) -> bool {
    if x == 0.0 {
        return true;
    }
    x != 1.5
}
";
        assert_eq!(rule_lines(&lint(src), "float-eq"), vec![2, 5]);
    }

    #[test]
    fn integer_equality_and_field_access_are_fine() {
        let src = "\
pub fn f(s: &S) -> bool {
    s.n == 0 && s.next.m != 3 && 0.0f64.max(1.0) > 0.5
}
";
        assert!(rule_lines(&lint(src), "float-eq").is_empty());
    }

    #[test]
    fn catches_hash_collections_in_result_affecting_code() {
        let src = "\
use std::collections::HashMap;
pub fn order(keys: &[u64]) -> Vec<u64> {
    let mut m = HashMap::new();
    for k in keys { m.insert(*k, ()); }
    m.into_keys().collect()
}
";
        let f = lint_source(
            "crates/sim/src/fake.rs",
            src,
            classify("crates/sim/src/fake.rs"),
        );
        assert_eq!(rule_lines(&f, "determinism"), vec![1, 3]);
        // Outside the result-affecting crates the rule is off.
        let f = lint_source(
            "crates/obs/src/fake.rs",
            src,
            classify("crates/obs/src/fake.rs"),
        );
        assert!(rule_lines(&f, "determinism").is_empty());
    }

    #[test]
    fn determinism_exempts_test_code_and_waived_sites() {
        let src = "\
// Scratch set; iteration order never observed: lint: allow(determinism)
pub fn waived() -> std::collections::HashSet<u64> {
    std::collections::HashSet::new()
}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let _ = HashMap::<u64, u64>::new(); }
}
";
        let f = lint_source(
            "crates/core/src/fake.rs",
            src,
            classify("crates/core/src/fake.rs"),
        );
        // Only the un-waived second HashSet mention (line 3) fires.
        assert_eq!(rule_lines(&f, "determinism"), vec![3]);
    }

    #[test]
    fn catches_partial_cmp_comparators() {
        let src = "\
pub fn order(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
    xs.sort_by(f64::total_cmp);
    xs
}
";
        assert_eq!(rule_lines(&lint(src), "float-ord"), vec![2]);
    }

    #[test]
    fn partial_cmp_outside_sorts_is_fine() {
        let src = "\
impl PartialOrd for W {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        self.0.partial_cmp(&other.0)
    }
}
";
        assert!(rule_lines(&lint(src), "float-ord").is_empty());
    }

    #[test]
    fn catches_missing_errors_doc() {
        let src = "\
/// Parses a widget.
pub fn parse(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| String::new())
}
";
        assert_eq!(rule_lines(&lint(src), "errors-doc"), vec![2]);
    }

    #[test]
    fn errors_doc_satisfied_or_exempt() {
        let src = "\
/// Parses a widget.
///
/// # Errors
///
/// Returns a message on malformed input.
pub fn parse(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| String::new())
}

impl core::str::FromStr for W {
    type Err = String;
    pub fn from_str(s: &str) -> Result<Self, String> {
        parse(s).map(W)
    }
}

pub fn infallible(x: u32) -> u32 {
    x + 1
}
";
        assert!(rule_lines(&lint(src), "errors-doc").is_empty());
    }

    #[test]
    fn multiline_signatures_are_joined() {
        let src = "\
/// Does a thing.
pub fn long_signature(
    a: u32,
    b: u32,
) -> Result<u32, String> {
    Ok(a + b)
}
";
        assert_eq!(rule_lines(&lint(src), "errors-doc"), vec![2]);
    }

    #[test]
    fn classify_scopes_rules_by_path() {
        assert!(classify("crates/unary/src/mul.rs").no_panic);
        assert!(classify("crates/unary/src/mul.rs").no_narrowing);
        assert!(classify("crates/unary/src/mul.rs").no_wall_clock);
        assert!(classify("crates/unary/src/mul.rs").no_determinism);
        assert!(classify("crates/sim/src/trace.rs").no_wall_clock);
        assert!(!classify("crates/sim/src/trace.rs").no_narrowing);
        assert!(classify("crates/serve/src/scheduler.rs").no_determinism);
        assert!(classify("crates/des/src/queue.rs").no_determinism);
        assert!(classify("crates/des/src/queue.rs").no_wall_clock);
        assert!(classify("crates/des/src/queue.rs").no_panic);
        assert!(!classify("crates/des/src/queue.rs").no_narrowing);
        assert!(classify("crates/faults/src/mask.rs").no_determinism);
        assert!(classify("crates/faults/src/mask.rs").no_panic);
        assert!(!classify("crates/obs/src/sketch.rs").no_determinism);
        assert!(!classify("crates/bench/src/bin/sim_cli.rs").no_panic);
        assert!(!classify("crates/bench/src/table.rs").no_panic);
        assert!(classify("crates/bench/src/table.rs").no_float_eq);
        assert!(classify("crates/bench/src/table.rs").no_float_ord);
        assert!(!classify("crates/xtask/src/main.rs").no_panic);
        assert!(classify("src/lib.rs").no_panic);
    }

    #[test]
    fn fixture_corpus_is_exempt_from_workspace_linting() {
        let rules = classify("crates/xtask/fixtures/seeded.rs");
        assert!(!rules.no_panic);
        assert!(!rules.no_float_eq);
        assert!(!rules.no_determinism);
        assert!(!rules.errors_doc);
    }

    #[test]
    fn findings_render_with_location() {
        let f = Finding {
            file: "crates/core/src/pe.rs".into(),
            line: 7,
            rule: "panic",
            message: "msg".into(),
        };
        assert_eq!(f.to_string(), "crates/core/src/pe.rs:7: [panic] msg");
    }

    // -- the on-disk regression corpus (see ../fixtures/) ---------------

    fn all_rules() -> FileRules {
        FileRules {
            no_panic: true,
            no_narrowing: true,
            no_wall_clock: true,
            no_float_eq: true,
            no_determinism: true,
            no_float_ord: true,
            errors_doc: true,
        }
    }

    #[test]
    fn hostile_but_clean_corpus_yields_zero_findings() {
        let src = include_str!("../fixtures/clean_tricky.rs");
        let f = lint_source("fixtures/clean_tricky.rs", src, all_rules());
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn seeded_corpus_fires_every_rule_at_the_exact_line() {
        let src = include_str!("../fixtures/seeded.rs");
        let f = lint_source("fixtures/seeded.rs", src, all_rules());
        let got: Vec<(usize, &str)> = f.iter().map(|f| (f.line, f.rule)).collect();
        assert_eq!(
            got,
            vec![
                (7, "panic"),
                (11, "narrowing"),
                (15, "wall-clock"),
                (19, "float-eq"),
                (23, "determinism"),
                (28, "float-ord"),
                (32, "errors-doc"),
            ],
            "{f:#?}"
        );
    }
}
