//! # usystolic-des — the unified discrete-event core
//!
//! One deterministic event engine behind both simulation front ends:
//! `usystolic_sim`'s layer pipeline and `usystolic_serve`'s fleet event
//! loop schedule, cancel and dispatch through the same
//! [`EventQueue`]. The queue is a binary heap over the total order
//! `(time, event class, insertion sequence)` — no hash containers, no
//! wall clock — so the pop order, and therefore every simulation built
//! on it, is a pure function of the inputs.
//!
//! The surface is three small pieces:
//!
//! * [`EventQueue`] / [`Event`] — the calendar. Every `schedule` returns
//!   an [`EventId`] token; `cancel`/`reschedule` use lazy tombstones so
//!   retraction is `O(log n)` amortised without disturbing heap order.
//! * [`Component`] / [`Engine`] / [`Port`] — the typed wiring. A
//!   component handles events with a [`Context`] that can schedule
//!   follow-ups; ports are explicit FIFO channels between producer and
//!   consumer components, so dataflow is visible in the types rather
//!   than hidden in shared state.
//! * [`Fidelity`] — the per-tile model resolution switch:
//!   [`Fidelity::CycleAccurate`] re-derives timing from first principles
//!   at every dispatch, [`Fidelity::Packed`] uses the hoisted exact
//!   closed forms (same bits, faster — the timing analogue of the
//!   word-packed kernel), and [`Fidelity::Analytic`] trades exactness
//!   for `O(1)` closed-form estimates so thousand-instance fleets
//!   simulate in seconds.
//!
//! When a `usystolic_obs` session is installed, the queue counts
//! `des.events.{scheduled,dispatched,cancelled}` and the engine records
//! a `des.queue_depth{component}` gauge/series — all on the sequential
//! event loop, so snapshots stay worker-count invariant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod component;
pub mod fidelity;
pub mod queue;

pub use component::{Component, Context, Engine, Port};
pub use fidelity::Fidelity;
pub use queue::{Event, EventId, EventQueue, Scheduled};
