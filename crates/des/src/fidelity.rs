//! The per-tile model-resolution switch.
//!
//! Every component resolves its fidelity at dispatch time, so one fleet
//! can mix tiers: a tile under study runs cycle-accurate while the other
//! 255 instances run the analytic closed form.

use std::fmt;
use std::str::FromStr;

use usystolic_obs::{JsonValue, ToJson};

/// How faithfully a component models timing when it handles an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Fidelity {
    /// Re-derive timing from first principles (fold walks, per-variable
    /// SRAM stalls) at every dispatch. Bit-identical reference tier.
    #[default]
    CycleAccurate,
    /// Hoisted exact closed forms — the same bits as
    /// [`CycleAccurate`](Self::CycleAccurate), computed without the
    /// per-fold walk. The timing analogue of the word-packed kernel.
    Packed,
    /// `O(1)` closed-form estimates (linear interpolation over the
    /// `analyze` ServiceEstimate). Approximate; trades exactness for
    /// fleet-scale speed.
    Analytic,
}

impl Fidelity {
    /// All tiers, highest fidelity first.
    pub const ALL: [Fidelity; 3] = [
        Fidelity::CycleAccurate,
        Fidelity::Packed,
        Fidelity::Analytic,
    ];

    /// Stable lowercase label used for CLI flags, JSON, and obs labels.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Fidelity::CycleAccurate => "cycle",
            Fidelity::Packed => "packed",
            Fidelity::Analytic => "analytic",
        }
    }

    /// Whether this tier reproduces the cycle-accurate timing bits
    /// exactly (true for everything except [`Analytic`](Self::Analytic)).
    #[must_use]
    pub fn is_exact(self) -> bool {
        !matches!(self, Fidelity::Analytic)
    }
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing an unknown fidelity name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFidelityError(String);

impl fmt::Display for ParseFidelityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown fidelity '{}' (expected cycle|packed|analytic)",
            self.0
        )
    }
}

impl std::error::Error for ParseFidelityError {}

impl FromStr for Fidelity {
    type Err = ParseFidelityError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "cycle" | "cycle-accurate" | "cycleaccurate" => Ok(Fidelity::CycleAccurate),
            "packed" => Ok(Fidelity::Packed),
            "analytic" | "analytical" => Ok(Fidelity::Analytic),
            other => Err(ParseFidelityError(other.to_string())),
        }
    }
}

impl ToJson for Fidelity {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.label().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_label_round_trip() {
        for tier in Fidelity::ALL {
            assert_eq!(tier.label().parse::<Fidelity>(), Ok(tier));
            assert_eq!(tier.to_string(), tier.label());
        }
    }

    #[test]
    fn accepts_spelling_variants() {
        assert_eq!(
            "cycle-accurate".parse::<Fidelity>(),
            Ok(Fidelity::CycleAccurate)
        );
        assert_eq!("CYCLE".parse::<Fidelity>(), Ok(Fidelity::CycleAccurate));
        assert_eq!("analytical".parse::<Fidelity>(), Ok(Fidelity::Analytic));
    }

    #[test]
    fn rejects_unknown_names() {
        assert!("fast".parse::<Fidelity>().is_err());
    }

    #[test]
    fn default_is_cycle_accurate_and_exactness_is_tiered() {
        assert_eq!(Fidelity::default(), Fidelity::CycleAccurate);
        assert!(Fidelity::CycleAccurate.is_exact());
        assert!(Fidelity::Packed.is_exact());
        assert!(!Fidelity::Analytic.is_exact());
    }
}
