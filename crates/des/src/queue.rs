//! The deterministic future-event list.
//!
//! Simulated time is an integer cycle counter. Events are totally
//! ordered by `(cycle, class, seq)`: the [`Event::class`] byte decides
//! which kinds fire first at the same cycle (e.g. completions before
//! arrivals), and `seq` — a monotonically assigned insertion number —
//! breaks every remaining tie, so the pop order is a pure function of
//! the schedule calls. Cancellation is lazy: `cancel` drops the
//! [`EventId`] from the live set and `pop` skips dead heap entries,
//! keeping both operations `O(log n)` without re-heapifying.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// A schedulable event payload.
///
/// The only requirement is a same-cycle dispatch [`class`](Self::class):
/// at equal timestamps, lower classes fire first; within one class,
/// insertion order (FIFO) decides.
pub trait Event {
    /// Same-cycle tie order (lower fires first). Defaults to one class
    /// for everything, i.e. pure FIFO at equal timestamps.
    fn class(&self) -> u8 {
        0
    }
}

/// Token returned by [`EventQueue::schedule`]; identifies one scheduled
/// event for [`cancel`](EventQueue::cancel) /
/// [`reschedule`](EventQueue::reschedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventId(u64);

/// One event as popped from the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Cycle at which the event fires.
    pub at: u64,
    /// The schedule token it was created with.
    pub id: EventId,
    /// The payload.
    pub event: E,
}

/// Heap entry ordered as a max-heap on the *reversed* deterministic key
/// `(at, class, seq)`, so `BinaryHeap::pop` yields the earliest event.
/// Ordering ignores the payload entirely, so `E` needs no `Ord`.
#[derive(Debug, Clone, Copy)]
struct Entry<E> {
    at: u64,
    class: u8,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    fn key(&self) -> (u64, u8, u64) {
        (self.at, self.class, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-heap of future events with token-based
/// cancellation.
#[derive(Debug)]
pub struct EventQueue<E: Event> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers scheduled and neither popped nor cancelled. A
    /// heap entry whose seq is no longer here is a dead tombstone that
    /// `pop` discards.
    live: BTreeSet<u64>,
    next_seq: u64,
}

impl<E: Event> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Event> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            live: BTreeSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at cycle `at`; returns a token for
    /// [`cancel`](Self::cancel) / [`reschedule`](Self::reschedule).
    pub fn schedule(&mut self, at: u64, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            class: event.class(),
            seq,
            event,
        });
        self.live.insert(seq);
        usystolic_obs::with(|o| o.metrics.count("des.events.scheduled", 1));
        EventId(seq)
    }

    /// Cancels a scheduled event. Returns `true` when the token named a
    /// still-pending event, `false` when it already fired or was already
    /// cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let hit = self.live.remove(&id.0);
        if hit {
            usystolic_obs::with(|o| o.metrics.count("des.events.cancelled", 1));
        }
        hit
    }

    /// Cancels `id` and schedules `event` at the new cycle in one step.
    /// Returns the replacement token (the old one is dead either way).
    pub fn reschedule(&mut self, id: EventId, at: u64, event: E) -> EventId {
        self.cancel(id);
        self.schedule(at, event)
    }

    /// Pops the next live event in deterministic `(at, class, seq)`
    /// order, skipping cancelled entries.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        while let Some(entry) = self.heap.pop() {
            if !self.live.remove(&entry.seq) {
                continue; // cancelled tombstone
            }
            usystolic_obs::with(|o| o.metrics.count("des.events.dispatched", 1));
            return Some(Scheduled {
                at: entry.at,
                id: EventId(entry.seq),
                event: entry.event,
            });
        }
        None
    }

    /// The cycle of the next live event, without popping it.
    #[must_use]
    pub fn peek_at(&self) -> Option<u64> {
        self.heap
            .iter()
            .filter(|e| self.live.contains(&e.seq))
            .map(|e| e.key())
            .min()
            .map(|(at, _, _)| at)
    }

    /// Number of pending (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no live events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Tagged(u8, u64);

    impl Event for Tagged {
        fn class(&self) -> u8 {
            self.0
        }
    }

    fn drain(q: &mut EventQueue<Tagged>) -> Vec<(u64, u8, u64)> {
        std::iter::from_fn(|| q.pop())
            .map(|s| (s.at, s.event.0, s.event.1))
            .collect()
    }

    #[test]
    fn pops_in_cycle_order() {
        let mut q = EventQueue::new();
        q.schedule(30, Tagged(0, 1));
        q.schedule(10, Tagged(0, 2));
        q.schedule(20, Tagged(0, 3));
        let order: Vec<u64> = drain(&mut q).iter().map(|&(at, _, _)| at).collect();
        assert_eq!(order, [10, 20, 30]);
        assert!(q.is_empty());
    }

    #[test]
    fn class_orders_same_cycle_events() {
        let mut q = EventQueue::new();
        q.schedule(10, Tagged(5, 1));
        q.schedule(10, Tagged(3, 2));
        q.schedule(10, Tagged(0, 3));
        q.schedule(10, Tagged(1, 4));
        let classes: Vec<u8> = drain(&mut q).iter().map(|&(_, c, _)| c).collect();
        assert_eq!(classes, [0, 1, 3, 5]);
    }

    #[test]
    fn insertion_order_breaks_remaining_ties() {
        let mut q = EventQueue::new();
        q.schedule(5, Tagged(0, 7));
        q.schedule(5, Tagged(0, 9));
        let tags: Vec<u64> = drain(&mut q).iter().map(|&(_, _, t)| t).collect();
        assert_eq!(tags, [7, 9]);
    }

    #[test]
    fn cancel_skips_the_event_and_fixes_len() {
        let mut q = EventQueue::new();
        let a = q.schedule(10, Tagged(0, 1));
        q.schedule(20, Tagged(0, 2));
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert!(!q.cancel(a), "double cancel is a no-op");
        let rest = drain(&mut q);
        assert_eq!(rest, [(20, 0, 2)]);
    }

    #[test]
    fn cancel_after_pop_returns_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(10, Tagged(0, 1));
        assert!(q.pop().is_some());
        assert!(!q.cancel(a));
        assert!(q.is_empty());
    }

    #[test]
    fn reschedule_moves_the_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(10, Tagged(0, 1));
        q.schedule(20, Tagged(0, 2));
        q.reschedule(a, 30, Tagged(0, 1));
        let order: Vec<u64> = drain(&mut q).iter().map(|&(_, _, t)| t).collect();
        assert_eq!(order, [2, 1]);
    }

    #[test]
    fn peek_at_sees_through_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule(10, Tagged(0, 1));
        q.schedule(20, Tagged(0, 2));
        assert_eq!(q.peek_at(), Some(10));
        q.cancel(a);
        assert_eq!(q.peek_at(), Some(20));
    }

    #[test]
    fn stale_token_for_unscheduled_seq_is_rejected() {
        let mut q: EventQueue<Tagged> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
        assert!(q.is_empty());
    }
}
