//! Typed wiring: components, the dispatch engine, and FIFO ports.
//!
//! A [`Component`] owns model state and handles popped events through a
//! [`Context`] that can schedule or cancel follow-ups on the shared
//! calendar. [`Port`]s are explicit named FIFO channels between a
//! producer and a consumer component, so dataflow shows up in the types
//! instead of hiding in shared mutable state. The [`Engine`] drives one
//! component over one queue sequentially — obs side effects happen in
//! pop order, which keeps metric snapshots worker-count invariant.

use std::collections::VecDeque;

use crate::fidelity::Fidelity;
use crate::queue::{Event, EventId, EventQueue, Scheduled};

/// Handle given to a component while it processes one event.
///
/// Wraps the shared queue with the current simulated time and the
/// engine's fidelity tier; follow-up events are scheduled here.
pub struct Context<'a, E: Event> {
    queue: &'a mut EventQueue<E>,
    now: u64,
    fidelity: Fidelity,
}

impl<'a, E: Event> Context<'a, E> {
    /// Current simulated cycle (the timestamp of the event in flight).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The engine's fidelity tier, resolved per dispatch.
    #[must_use]
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// Schedules a follow-up event at an absolute cycle. Scheduling in
    /// the past is clamped to `now` so causality cannot run backwards.
    pub fn schedule_at(&mut self, at: u64, event: E) -> EventId {
        self.queue.schedule(at.max(self.now), event)
    }

    /// Schedules a follow-up event `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: u64, event: E) -> EventId {
        self.queue.schedule(self.now.saturating_add(delay), event)
    }

    /// Cancels a previously scheduled event; `true` if it was pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Pending events remaining on the calendar (excluding the one in
    /// flight).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// A simulation model that reacts to events.
pub trait Component<E: Event> {
    /// Stable name used as the `component` label on `des.queue_depth`.
    fn name(&self) -> &'static str;

    /// Handles one popped event; follow-ups go through `ctx`.
    fn handle(&mut self, event: Scheduled<E>, ctx: &mut Context<'_, E>);
}

/// Sequential dispatch loop: pops events in deterministic order and
/// feeds them to a component until the calendar drains.
#[derive(Debug, Clone, Copy, Default)]
pub struct Engine {
    fidelity: Fidelity,
}

impl Engine {
    /// Creates an engine at the given fidelity tier.
    #[must_use]
    pub fn new(fidelity: Fidelity) -> Self {
        Self { fidelity }
    }

    /// The tier every dispatch resolves.
    #[must_use]
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// Runs `component` until `queue` is empty; returns the timestamp of
    /// the last dispatched event (0 when the queue started empty).
    ///
    /// Per dispatch, when an obs session is installed, this counts
    /// `des.dispatch{fidelity}` and records the post-handle
    /// `des.queue_depth{component}` gauge and time series — all on this
    /// sequential loop, so snapshots do not depend on worker count.
    pub fn run<E: Event, C: Component<E>>(
        &self,
        queue: &mut EventQueue<E>,
        component: &mut C,
    ) -> u64 {
        let mut last = 0;
        while let Some(scheduled) = queue.pop() {
            last = scheduled.at;
            let mut ctx = Context {
                queue,
                now: scheduled.at,
                fidelity: self.fidelity,
            };
            component.handle(scheduled, &mut ctx);
            if usystolic_obs::is_enabled() {
                let labels = [("component", component.name())];
                let depth = queue.len() as f64;
                usystolic_obs::count_labeled(
                    "des.dispatch",
                    &[("fidelity", self.fidelity.label())],
                    1,
                );
                usystolic_obs::gauge_labeled("des.queue_depth", &labels, depth);
                usystolic_obs::series_record_labeled("des.queue_depth", &labels, last, depth);
            }
        }
        last
    }
}

/// A named FIFO channel between two components.
///
/// Producers [`send`](Self::send), consumers [`recv`](Self::recv);
/// order is strictly first-in first-out, so a pipeline wired through
/// ports is as deterministic as the calendar driving it.
#[derive(Debug)]
pub struct Port<T> {
    name: &'static str,
    fifo: VecDeque<T>,
}

impl<T> Port<T> {
    /// Creates an empty port with a stable diagnostic name.
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            fifo: VecDeque::new(),
        }
    }

    /// The port's diagnostic name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Enqueues a value at the tail.
    pub fn send(&mut self, value: T) {
        self.fifo.push_back(value);
    }

    /// Dequeues the head value, if any.
    pub fn recv(&mut self) -> Option<T> {
        self.fifo.pop_front()
    }

    /// Peeks at the head value without dequeuing.
    #[must_use]
    pub fn peek(&self) -> Option<&T> {
        self.fifo.front()
    }

    /// Number of queued values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether the port holds no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Ping {
        Kick(u64),
        Echo,
    }

    impl Event for Ping {}

    struct Echoer {
        seen: Vec<(u64, Ping)>,
    }

    impl Component<Ping> for Echoer {
        fn name(&self) -> &'static str {
            "echoer"
        }

        fn handle(&mut self, event: Scheduled<Ping>, ctx: &mut Context<'_, Ping>) {
            self.seen.push((event.at, event.event));
            if let Ping::Kick(delay) = event.event {
                ctx.schedule_in(delay, Ping::Echo);
            }
        }
    }

    #[test]
    fn engine_drains_follow_ups_and_reports_last_cycle() {
        let mut queue = EventQueue::new();
        queue.schedule(10, Ping::Kick(5));
        queue.schedule(12, Ping::Kick(1));
        let mut echoer = Echoer { seen: Vec::new() };
        let last = Engine::new(Fidelity::Packed).run(&mut queue, &mut echoer);
        assert_eq!(last, 15);
        assert_eq!(
            echoer.seen,
            [
                (10, Ping::Kick(5)),
                (12, Ping::Kick(1)),
                (13, Ping::Echo),
                (15, Ping::Echo),
            ]
        );
        assert!(queue.is_empty());
    }

    #[test]
    fn context_clamps_past_schedules_to_now() {
        struct PastScheduler {
            fired: Vec<u64>,
        }
        impl Component<Ping> for PastScheduler {
            fn name(&self) -> &'static str {
                "past"
            }
            fn handle(&mut self, event: Scheduled<Ping>, ctx: &mut Context<'_, Ping>) {
                self.fired.push(event.at);
                if matches!(event.event, Ping::Kick(_)) {
                    ctx.schedule_at(0, Ping::Echo); // in the past → clamped
                }
            }
        }
        let mut queue = EventQueue::new();
        queue.schedule(7, Ping::Kick(0));
        let mut c = PastScheduler { fired: Vec::new() };
        let last = Engine::default().run(&mut queue, &mut c);
        assert_eq!(last, 7, "clamped echo fires at now, not before");
        assert_eq!(c.fired, [7, 7]);
    }

    #[test]
    fn empty_queue_run_returns_zero() {
        let mut queue: EventQueue<Ping> = EventQueue::new();
        let mut echoer = Echoer { seen: Vec::new() };
        assert_eq!(Engine::default().run(&mut queue, &mut echoer), 0);
        assert!(echoer.seen.is_empty());
    }

    #[test]
    fn port_is_fifo() {
        let mut p = Port::new("gemm.out");
        assert_eq!(p.name(), "gemm.out");
        assert!(p.is_empty());
        p.send(1);
        p.send(2);
        p.send(3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.peek(), Some(&1));
        assert_eq!(p.recv(), Some(1));
        assert_eq!(p.recv(), Some(2));
        assert_eq!(p.recv(), Some(3));
        assert_eq!(p.recv(), None);
    }
}
