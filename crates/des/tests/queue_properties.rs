//! Property tests for the event calendar: random schedule / cancel /
//! reschedule / pop sequences checked against a brute-force reference
//! model that sorts a `Vec` by the documented `(at, class, seq)` key.
//!
//! Randomness comes from [`SplitMix64`] with fixed seeds — the sequences
//! are deterministic across runs and platforms, so a failure is always
//! reproducible from the seed printed in the assertion message.

use usystolic_des::{Event, EventId, EventQueue, Scheduled};
use usystolic_unary::rng::SplitMix64;

/// Payload carrying its own class byte and a unique tag for identity
/// checks against the reference model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Item {
    class: u8,
    tag: u64,
}

impl Event for Item {
    fn class(&self) -> u8 {
        self.class
    }
}

/// Brute-force reference: a flat list of pending events, popped by
/// scanning for the minimum `(at, class, seq)` key.
#[derive(Default)]
struct Model {
    pending: Vec<(u64, u8, u64, Item)>, // (at, class, seq, payload)
    next_seq: u64,
}

impl Model {
    fn schedule(&mut self, at: u64, item: Item) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push((at, item.class, seq, item));
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        let before = self.pending.len();
        self.pending.retain(|&(_, _, s, _)| s != seq);
        self.pending.len() < before
    }

    fn pop(&mut self) -> Option<(u64, Item)> {
        let idx = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, &(at, class, seq, _))| (at, class, seq))
            .map(|(i, _)| i)?;
        let (at, _, _, item) = self.pending.remove(idx);
        Some((at, item))
    }
}

/// One random operation mix: `ops` weighted steps against both the real
/// queue and the model, checking every observable after each step.
fn run_random_ops(seed: u64, ops: usize) {
    let mut rng = SplitMix64::new(seed);
    let mut queue: EventQueue<Item> = EventQueue::new();
    let mut model = Model::default();
    // Live tokens from both sides, kept aligned by construction: the
    // queue assigns sequence numbers in the same order the model does.
    let mut tokens: Vec<(EventId, u64)> = Vec::new();
    let mut next_tag = 0u64;

    for step in 0..ops {
        let ctx = |extra: &str| format!("seed={seed} step={step} {extra}");
        match rng.next_u64() % 10 {
            // schedule: 5/10
            0..=4 => {
                let at = rng.next_u64() % 64; // dense → many ties
                let class = (rng.next_u64() % 3) as u8;
                let tag = next_tag;
                next_tag += 1;
                let item = Item { class, tag };
                let id = queue.schedule(at, item);
                let seq = model.schedule(at, item);
                tokens.push((id, seq));
            }
            // cancel a random live token: 2/10
            5 | 6 if !tokens.is_empty() => {
                let i = (rng.next_u64() % tokens.len() as u64) as usize;
                let (id, seq) = tokens.swap_remove(i);
                let real = queue.cancel(id);
                let expect = model.cancel(seq);
                assert_eq!(real, expect, "{}", ctx("cancel disagreed"));
            }
            // reschedule a random live token: 1/10
            7 if !tokens.is_empty() => {
                let i = (rng.next_u64() % tokens.len() as u64) as usize;
                let (id, seq) = tokens.swap_remove(i);
                let at = rng.next_u64() % 64;
                let class = (rng.next_u64() % 3) as u8;
                let tag = next_tag;
                next_tag += 1;
                let item = Item { class, tag };
                let new_id = queue.reschedule(id, at, item);
                model.cancel(seq);
                let new_seq = model.schedule(at, item);
                tokens.push((new_id, new_seq));
            }
            // pop: 2/10 (plus the fall-through arms above when empty)
            _ => {
                let real = queue.pop();
                let expect = model.pop();
                match (real, expect) {
                    (None, None) => {}
                    (Some(Scheduled { at, id, event }), Some((m_at, m_item))) => {
                        assert_eq!(at, m_at, "{}", ctx("pop cycle"));
                        assert_eq!(event, m_item, "{}", ctx("pop payload"));
                        tokens.retain(|&(t, _)| t != id);
                        model.cancel(u64::MAX); // no-op, keeps shape parallel
                                                // A popped token must be dead on both sides.
                        assert!(!queue.cancel(id), "{}", ctx("popped token still live"));
                    }
                    (real, expect) => {
                        panic!(
                            "{}: queue {real:?} vs model {expect:?}",
                            ctx("pop presence")
                        );
                    }
                }
            }
        }
        assert_eq!(queue.len(), model.pending.len(), "{}", ctx("len"));
        assert_eq!(
            queue.is_empty(),
            model.pending.is_empty(),
            "{}",
            ctx("is_empty")
        );
        let expect_peek = model
            .pending
            .iter()
            .map(|&(at, class, seq, _)| (at, class, seq))
            .min()
            .map(|(at, _, _)| at);
        assert_eq!(queue.peek_at(), expect_peek, "{}", ctx("peek_at"));
    }

    // Drain both sides: the tail order must match exactly.
    while let Some(expect) = model.pop() {
        let real = queue.pop().expect("queue drained before model");
        assert_eq!((real.at, real.event), expect, "seed={seed} drain order");
    }
    assert!(queue.pop().is_none(), "seed={seed} queue outlived model");
}

#[test]
fn random_op_sequences_match_the_reference_model() {
    for seed in [1, 7, 42, 0xDEAD_BEEF, 0x5EED_5EED_5EED] {
        run_random_ops(seed, 600);
    }
}

#[test]
fn heap_order_holds_for_random_bulk_schedules() {
    // Pure schedule-then-drain: pops must be sorted by (at, class, seq),
    // i.e. non-decreasing cycle, and FIFO within (cycle, class).
    for seed in [3, 11, 99] {
        let mut rng = SplitMix64::new(seed);
        let mut queue = EventQueue::new();
        let mut seq_of: Vec<(u64, u8, u64)> = Vec::new(); // (at, class, tag)
        for tag in 0..500 {
            let at = rng.next_u64() % 32;
            let class = (rng.next_u64() % 4) as u8;
            queue.schedule(at, Item { class, tag });
            seq_of.push((at, class, tag));
        }
        let mut prev: Option<(u64, u8, u64)> = None;
        while let Some(s) = queue.pop() {
            let key = (s.at, s.event.class, s.event.tag);
            if let Some(p) = prev {
                assert!(
                    p < key,
                    "seed={seed}: pop order regressed: {p:?} then {key:?}"
                );
            }
            prev = Some(key);
        }
        // Every scheduled event came back out exactly once (tags are
        // unique and the final key comparison is strict).
        assert!(queue.is_empty());
    }
}

#[test]
fn fifo_holds_under_interleaved_cancels() {
    // Same cycle, same class: survivors must pop in insertion order no
    // matter which subset was cancelled in between.
    for seed in [5, 17, 23] {
        let mut rng = SplitMix64::new(seed);
        let mut queue = EventQueue::new();
        let mut ids = Vec::new();
        for tag in 0..200u64 {
            ids.push((queue.schedule(10, Item { class: 0, tag }), tag));
        }
        let mut survivors: Vec<u64> = Vec::new();
        for (id, tag) in ids {
            if rng.next_bool() {
                assert!(queue.cancel(id));
            } else {
                survivors.push(tag);
            }
        }
        let popped: Vec<u64> = std::iter::from_fn(|| queue.pop())
            .map(|s| s.event.tag)
            .collect();
        assert_eq!(popped, survivors, "seed={seed}");
    }
}

#[test]
fn reschedule_storm_keeps_exactly_one_live_copy() {
    // Repeatedly rescheduling the same logical event must never leak a
    // duplicate dispatch, whatever the cycle sequence.
    for seed in [2, 13] {
        let mut rng = SplitMix64::new(seed);
        let mut queue = EventQueue::new();
        let mut id = queue.schedule(rng.next_u64() % 100, Item { class: 0, tag: 0 });
        for _ in 0..300 {
            id = queue.reschedule(id, rng.next_u64() % 100, Item { class: 0, tag: 0 });
        }
        assert_eq!(queue.len(), 1, "seed={seed}");
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_none(), "seed={seed}: duplicate dispatch");
    }
}
