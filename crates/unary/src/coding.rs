//! Rate and temporal coding of binary data into unary bitstreams (Fig. 3).
//!
//! An `N`-bit binary magnitude `x` is converted into a `2^(N-1)`-bit stream
//! whose fraction of ones equals `x / 2^(N-1)`. Rate coding compares `x`
//! against a pseudo-random sequence (random-looking bit order); temporal
//! coding compares against a counter (all ones up front). Both encode the
//! *same value*; only the bit order differs, which is what determines
//! correlation behaviour and early-termination fidelity.

use crate::bitstream::Bitstream;
use crate::rng::{CounterSource, NumberSource};
use crate::{stream_len, UnaryError};

/// Interpretation of a bitstream's probability as a value
/// (Section II-B1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// Unsigned: `V = P(1)` in `[0, 1]`.
    Unipolar,
    /// Signed: `V = 2 P(1) - 1` in `[-1, 1]`.
    Bipolar,
}

impl Polarity {
    /// Decodes a probability of ones into a value under this polarity.
    #[must_use]
    pub fn decode(self, p_one: f64) -> f64 {
        match self {
            Polarity::Unipolar => p_one,
            Polarity::Bipolar => 2.0 * p_one - 1.0,
        }
    }

    /// Encodes a value in the polarity's range into a probability of ones.
    ///
    /// Values are clamped to the representable range.
    #[must_use]
    pub fn encode(self, value: f64) -> f64 {
        match self {
            Polarity::Unipolar => value.clamp(0.0, 1.0),
            Polarity::Bipolar => (value.clamp(-1.0, 1.0) + 1.0) / 2.0,
        }
    }
}

impl core::fmt::Display for Polarity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Polarity::Unipolar => "unipolar",
            Polarity::Bipolar => "bipolar",
        })
    }
}

/// The coding family of a bitstream generator (Fig. 3): which number
/// sequence feeds the comparator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Coding {
    /// Rate coding: pseudo-random comparator input, random bit order.
    Rate,
    /// Temporal coding: counter comparator input, deterministic bit order.
    Temporal,
}

impl core::fmt::Display for Coding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Coding::Rate => "rate",
            Coding::Temporal => "temporal",
        })
    }
}

/// Cycle-level rate encoder: `bit = (source.next() < magnitude)`.
///
/// This is the `SRC → CMP ← RNG` structure of Fig. 3a. The magnitude is a
/// `bitwidth`-bit unsigned value in `0..=2^(bitwidth-1)`; a magnitude of
/// `2^(bitwidth-1)` encodes exactly 1.0 (an all-ones stream).
#[derive(Debug, Clone)]
pub struct RateEncoder<S> {
    magnitude: u64,
    source: S,
}

impl<S: NumberSource> RateEncoder<S> {
    /// Creates a unipolar rate encoder for an `N`-bit magnitude.
    ///
    /// # Panics
    ///
    /// Panics if `source.width() != bitwidth - 1`, or if the magnitude
    /// exceeds `2^(bitwidth-1)`.
    #[must_use]
    pub fn unipolar(magnitude: u64, bitwidth: u32, source: S) -> Self {
        let max = stream_len(bitwidth);
        assert!(
            magnitude <= max,
            "magnitude {magnitude} exceeds 2^({bitwidth}-1) = {max}"
        );
        assert_eq!(
            u64::from(source.width()),
            u64::from(bitwidth - 1),
            "number source width must match bitwidth - 1"
        );
        Self { magnitude, source }
    }

    /// Emits the next bit of the stream and advances the number source.
    pub fn next_bit(&mut self) -> bool {
        self.source.next() < self.magnitude
    }

    /// Generates the full `2^(bitwidth-1)`-bit stream.
    #[must_use]
    pub fn stream(&mut self) -> Bitstream {
        let len = self.source.period();
        (0..len).map(|_| self.next_bit()).collect()
    }

    /// Generates the first `len` bits of the stream (early-terminated).
    #[must_use]
    pub fn stream_prefix(&mut self, len: usize) -> Bitstream {
        (0..len).map(|_| self.next_bit()).collect()
    }

    /// Resets the underlying number source.
    pub fn reset(&mut self) {
        self.source.reset();
    }

    /// The stationary magnitude being encoded.
    #[must_use]
    pub fn magnitude(&self) -> u64 {
        self.magnitude
    }
}

/// Cycle-level temporal encoder: `bit = (counter < magnitude)` — the
/// `SRC → CMP ← CNT` structure of Fig. 3b. The emitted stream is
/// `magnitude` ones followed by zeros.
#[derive(Debug, Clone)]
pub struct TemporalEncoder {
    inner: RateEncoder<CounterSource>,
}

impl TemporalEncoder {
    /// Creates a unipolar temporal encoder for an `N`-bit magnitude.
    ///
    /// # Panics
    ///
    /// Panics if the magnitude exceeds `2^(bitwidth-1)`.
    #[must_use]
    pub fn unipolar(magnitude: u64, bitwidth: u32) -> Self {
        Self {
            inner: RateEncoder::unipolar(magnitude, bitwidth, CounterSource::new(bitwidth - 1)),
        }
    }

    /// Emits the next bit of the stream.
    pub fn next_bit(&mut self) -> bool {
        self.inner.next_bit()
    }

    /// Generates the full stream: `magnitude` ones then zeros.
    #[must_use]
    pub fn stream(&mut self) -> Bitstream {
        self.inner.stream()
    }

    /// Resets the internal counter.
    pub fn reset(&mut self) {
        self.inner.reset();
    }
}

/// Encodes an `N`-bit magnitude into a full unipolar bitstream using the
/// given number source.
///
/// Convenience wrapper over [`RateEncoder`]; the source decides whether the
/// result is rate coded (RNG) or temporal coded (counter).
///
/// # Errors
///
/// Returns [`UnaryError::MagnitudeOverflow`] if `magnitude > 2^(bitwidth-1)`
/// and [`UnaryError::UnsupportedBitwidth`] for a bad bitwidth.
pub fn encode_unipolar<S: NumberSource>(
    magnitude: u64,
    bitwidth: u32,
    source: S,
) -> Result<Bitstream, UnaryError> {
    if !(2..=crate::MAX_BITWIDTH).contains(&bitwidth) {
        return Err(UnaryError::UnsupportedBitwidth(bitwidth));
    }
    if magnitude > stream_len(bitwidth) {
        return Err(UnaryError::MagnitudeOverflow {
            magnitude,
            bitwidth,
        });
    }
    Ok(RateEncoder::unipolar(magnitude, bitwidth, source).stream())
}

/// Decodes a unipolar bitstream back to an integer magnitude at the given
/// bitwidth: `round(P(1) * 2^(bitwidth-1))`.
///
/// Pure integer nearest-rounding (half away from zero), so the result is
/// exact even when `ones * scale` exceeds the 53-bit `f64` mantissa —
/// `round(ones·scale / len)` computed as `(2·ones·scale + len) / (2·len)`
/// in 128-bit arithmetic.
#[must_use]
pub fn decode_unipolar(stream: &Bitstream, bitwidth: u32) -> u64 {
    let len = stream.len() as u128;
    if len == 0 {
        return 0;
    }
    let scale = u128::from(stream_len(bitwidth));
    let ones = u128::from(stream.count_ones());
    ((2 * ones * scale + len) / (2 * len)) as u64
}

/// Encodes a signed `bitwidth`-bit level into a **bipolar** bitstream of
/// length `2^bitwidth` (Fig. 3's signed interpretation: `V_b = 2P − 1`).
///
/// The source must emit `bitwidth`-bit numbers — bipolar streams carry
/// one extra resolution bit, which is exactly why the bipolar uMUL costs
/// twice the cycles of the unipolar one (Section III-A).
///
/// # Errors
///
/// Returns [`UnaryError::MagnitudeOverflow`] if `|level| > 2^(bitwidth-1)`
/// and [`UnaryError::UnsupportedBitwidth`] for a bad bitwidth.
///
/// # Example
///
/// ```
/// use usystolic_unary::coding::{decode_bipolar, encode_bipolar};
/// use usystolic_unary::rng::SobolSource;
///
/// let bs = encode_bipolar(-64, 8, SobolSource::dimension(0, 8))?;
/// assert_eq!(bs.len(), 256);
/// assert_eq!(decode_bipolar(&bs, 8), -64);
/// # Ok::<(), usystolic_unary::UnaryError>(())
/// ```
pub fn encode_bipolar<S: NumberSource>(
    level: i64,
    bitwidth: u32,
    source: S,
) -> Result<Bitstream, UnaryError> {
    if !(2..=crate::MAX_BITWIDTH).contains(&bitwidth) {
        return Err(UnaryError::UnsupportedBitwidth(bitwidth));
    }
    let half = stream_len(bitwidth) as i64;
    if level.abs() > half {
        return Err(UnaryError::MagnitudeOverflow {
            magnitude: level.unsigned_abs(),
            bitwidth,
        });
    }
    if u64::from(source.width()) != u64::from(bitwidth) {
        return Err(UnaryError::UnsupportedBitwidth(source.width()));
    }
    let threshold = (level + half) as u64;
    let mut src = source;
    Ok((0..(1u64 << bitwidth))
        .map(|_| src.next() < threshold)
        .collect())
}

/// Decodes a bipolar bitstream back to a signed level:
/// `round((2·P(1) − 1) · 2^(bitwidth-1))`.
///
/// Pure integer nearest-rounding (half away from zero, matching
/// `f64::round`), exact at any stream length — no float round-trip.
#[must_use]
pub fn decode_bipolar(stream: &Bitstream, bitwidth: u32) -> i64 {
    let scale = i128::from(stream_len(bitwidth));
    let len = stream.len() as i128;
    if len == 0 {
        // An empty stream has bipolar value −1 by convention.
        return (-scale) as i64;
    }
    let num = (2 * i128::from(stream.count_ones()) - len) * scale;
    let half = if num >= 0 { len } else { -len };
    ((2 * num + half) / (2 * len)) as i64
}

impl usystolic_obs::ToJson for Polarity {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::Str(
            match self {
                Polarity::Unipolar => "unipolar",
                Polarity::Bipolar => "bipolar",
            }
            .to_owned(),
        )
    }
}

impl usystolic_obs::ToJson for Coding {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::Str(self.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SobolSource;

    #[test]
    fn polarity_decode_encode_roundtrip() {
        assert!((Polarity::Unipolar.decode(0.25) - 0.25).abs() < 1e-12);
        assert!((Polarity::Bipolar.decode(0.25) + 0.5).abs() < 1e-12);
        assert!((Polarity::Bipolar.encode(-0.5) - 0.25).abs() < 1e-12);
        // Clamping.
        assert!((Polarity::Unipolar.encode(2.0) - 1.0).abs() < 1e-12);
        assert!((Polarity::Bipolar.encode(-3.0)).abs() < 1e-12);
    }

    #[test]
    fn rate_coding_is_exact_over_full_period() {
        // Sobol emits every value exactly once per period, so the count of
        // ones equals the magnitude exactly — for every magnitude.
        for mag in [0u64, 1, 7, 64, 127, 128] {
            let bs = encode_unipolar(mag, 8, SobolSource::dimension(0, 7)).unwrap();
            assert_eq!(bs.len(), 128);
            assert_eq!(bs.count_ones(), mag, "magnitude {mag}");
        }
    }

    #[test]
    fn temporal_coding_emits_leading_ones() {
        let bs = TemporalEncoder::unipolar(5, 4).stream();
        assert_eq!(bs.to_string(), "11111000");
    }

    #[test]
    fn figure3_example_half() {
        // Fig. 3: P = 0.5 for both codings of an 8/16 value (bitwidth 5).
        let rate = encode_unipolar(8, 5, SobolSource::dimension(0, 4)).unwrap();
        assert!((rate.unipolar_value() - 0.5).abs() < 1e-12);
        let temporal = TemporalEncoder::unipolar(8, 5).stream();
        assert!((temporal.unipolar_value() - 0.5).abs() < 1e-12);
        assert_eq!(temporal.to_string(), "1111111100000000");
    }

    #[test]
    fn decode_inverts_encode() {
        for mag in 0..=128u64 {
            let bs = encode_unipolar(mag, 8, SobolSource::dimension(2, 7)).unwrap();
            assert_eq!(decode_unipolar(&bs, 8), mag);
        }
    }

    #[test]
    fn overflow_is_an_error() {
        let err = encode_unipolar(129, 8, SobolSource::dimension(0, 7)).unwrap_err();
        assert_eq!(
            err,
            UnaryError::MagnitudeOverflow {
                magnitude: 129,
                bitwidth: 8
            }
        );
    }

    #[test]
    fn bad_bitwidth_is_an_error() {
        let err = encode_unipolar(0, 1, SobolSource::dimension(0, 7)).unwrap_err();
        assert_eq!(err, UnaryError::UnsupportedBitwidth(1));
    }

    #[test]
    fn stream_prefix_is_a_prefix() {
        let mut enc = RateEncoder::unipolar(77, 8, SobolSource::dimension(0, 7));
        let prefix = enc.stream_prefix(32);
        enc.reset();
        let full = enc.stream();
        for i in 0..32 {
            assert_eq!(prefix.get(i), full.get(i));
        }
    }

    #[test]
    fn encoder_reset_replays() {
        let mut enc = RateEncoder::unipolar(50, 8, SobolSource::dimension(1, 7));
        let a = enc.stream();
        enc.reset();
        let b = enc.stream();
        assert_eq!(a, b);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Polarity::Unipolar.to_string(), "unipolar");
        assert_eq!(Coding::Rate.to_string(), "rate");
        assert_eq!(Coding::Temporal.to_string(), "temporal");
    }

    #[test]
    fn bipolar_roundtrip_over_full_range() {
        for level in [-128i64, -77, -1, 0, 1, 99, 128] {
            let bs = encode_bipolar(level, 8, SobolSource::dimension(0, 8)).unwrap();
            assert_eq!(decode_bipolar(&bs, 8), level, "level {level}");
        }
    }

    #[test]
    fn bipolar_streams_are_twice_as_long() {
        let uni = encode_unipolar(64, 8, SobolSource::dimension(0, 7)).unwrap();
        let bi = encode_bipolar(64, 8, SobolSource::dimension(0, 8)).unwrap();
        assert_eq!(bi.len(), 2 * uni.len());
    }

    /// A `len`-bit stream whose first `ones` bits are set — the shape of a
    /// temporal stream, built directly so wide-bitwidth tests skip the
    /// multi-million-cycle encoder loop.
    fn stream_with_ones(ones: usize, len: usize) -> Bitstream {
        assert!(ones <= len);
        let mut words = vec![u64::MAX; ones.div_ceil(64)];
        if !ones.is_multiple_of(64) {
            *words.last_mut().unwrap() &= (1u64 << (ones % 64)) - 1;
        }
        Bitstream::from_words(words, len)
    }

    #[test]
    fn integer_decode_round_trips_at_max_bitwidth() {
        // Pin the integer nearest-rounding rewrite at the widest supported
        // streams: stream_len(24) = 2^23, where ones·scale reaches 2^46 and
        // any intermediate truncation would show. Unipolar round-trip…
        let len = stream_len(crate::MAX_BITWIDTH) as usize;
        for mag in [0usize, 1, 2, len / 3, len / 2, len - 1, len] {
            let bs = stream_with_ones(mag, len);
            assert_eq!(
                decode_unipolar(&bs, crate::MAX_BITWIDTH),
                mag as u64,
                "unipolar magnitude {mag}"
            );
        }
        // …and bipolar at the doubled stream length 2^24, where the decoded
        // level is exactly `ones − len`.
        let blen = 2 * len;
        for level in [-(len as i64), -1, 0, 1, 7, len as i64] {
            let ones = (level + len as i64) as usize;
            let bs = stream_with_ones(ones, blen);
            assert_eq!(
                decode_bipolar(&bs, crate::MAX_BITWIDTH),
                level,
                "bipolar level {level}"
            );
        }
    }

    #[test]
    fn integer_decode_rounds_half_away_from_zero() {
        // Exact-half cases: an 8·scale-long stream makes the decoded value
        // move in steps of 1/4 per set bit — `(ones − 512) / 4` — so ±x.5
        // and ±x.25 are all reachable and must round away from zero,
        // matching the old `f64::round` behaviour bit for bit.
        let scale = stream_len(8); // 128
        let len = 8 * scale as usize; // value = (ones − 512) / 4
        for (ones, expect) in [(514usize, 1i64), (513, 0), (511, 0), (510, -1), (506, -2)] {
            let bs = stream_with_ones(ones, len);
            assert_eq!(decode_bipolar(&bs, 8), expect, "ones {ones}");
        }
        // Unipolar halves round up: 2.5 → 3 at quarter-steps.
        let bs = stream_with_ones(10, 512);
        assert_eq!(decode_unipolar(&bs, 8), 3); // 10·128/512 = 2.5
        let bs = stream_with_ones(0, 512);
        assert_eq!(decode_unipolar(&bs, 8), 0);
        // Empty streams keep their conventional values.
        assert_eq!(decode_unipolar(&Bitstream::new(), 8), 0);
        assert_eq!(decode_bipolar(&Bitstream::new(), 8), -128);
    }

    #[test]
    fn bipolar_errors() {
        assert!(encode_bipolar(200, 8, SobolSource::dimension(0, 8)).is_err());
        assert!(encode_bipolar(0, 1, SobolSource::dimension(0, 8)).is_err());
        // Wrong source width.
        assert!(encode_bipolar(0, 8, SobolSource::dimension(0, 7)).is_err());
    }
}
