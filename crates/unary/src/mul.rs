//! Cycle-level unary multipliers.
//!
//! * [`UnipolarMul`] — the uMUL of Fig. 4: a stationary magnitude, a
//!   conditional bitstream generator and an AND gate. uSystolic uses this
//!   on sign-magnitude data (Section III-A), which **halves** both the area
//!   and the cycle count relative to the bipolar multiplier.
//! * [`BipolarMul`] — the bipolar uMUL used by the uGEMM-H baseline
//!   (Section IV-C2): multiplies signed data directly in bipolar coding,
//!   spending twice the cycles (`2^N` vs `2^(N-1)`) and roughly twice the
//!   hardware (two conditional generators instead of one).

use crate::bsg::ConditionalBsg;
use crate::rng::NumberSource;
use crate::stream_len;

/// Unipolar uMUL with conditional bitstream generation (Fig. 4).
///
/// The stationary operand (e.g. the weight magnitude `|W|`) is stored in
/// binary. The streaming operand arrives as an *enable* bitstream (e.g. the
/// rate- or temporal-coded IFM magnitude). Each cycle:
///
/// 1. if the enable bit is 0 the output bit is 0 and the RNG holds;
/// 2. if the enable bit is 1 the RNG advances and the output bit is
///    `rng < |W|`.
///
/// Over the full `2^(N-1)` cycles the number of output ones is
/// `≈ |I|·|W| / 2^(N-1)` — with a Sobol source the error is below one count.
///
/// # Example
///
/// ```
/// use usystolic_unary::mul::UnipolarMul;
/// use usystolic_unary::coding::RateEncoder;
/// use usystolic_unary::rng::SobolSource;
///
/// let mut mul = UnipolarMul::new(100, 8, SobolSource::dimension(0, 7));
/// let mut ifm = RateEncoder::unipolar(77, 8, SobolSource::dimension(1, 7));
/// let ones: u32 = (0..128).map(|_| u32::from(mul.step(ifm.next_bit()))).sum();
/// assert!((i64::from(ones) - (77 * 100 / 128)).abs() <= 1);
/// ```
#[derive(Debug, Clone)]
pub struct UnipolarMul<S> {
    cbsg: ConditionalBsg<S>,
    bitwidth: u32,
    cycles: u64,
}

impl<S: NumberSource> UnipolarMul<S> {
    /// Creates a multiplier with stationary magnitude `weight_magnitude`
    /// for `bitwidth`-bit data, over `source` (which must emit
    /// `bitwidth - 1`-bit numbers).
    ///
    /// # Panics
    ///
    /// Panics if the magnitude exceeds `2^(bitwidth-1)` or the source width
    /// does not match.
    #[must_use]
    pub fn new(weight_magnitude: u64, bitwidth: u32, source: S) -> Self {
        let max = stream_len(bitwidth);
        assert!(
            weight_magnitude <= max,
            "weight magnitude {weight_magnitude} exceeds {max}"
        );
        assert_eq!(
            source.width(),
            bitwidth - 1,
            "number source width must be bitwidth - 1"
        );
        Self {
            cbsg: ConditionalBsg::new(weight_magnitude, source),
            bitwidth,
            cycles: 0,
        }
    }

    /// Processes one cycle with the streaming operand's bit; returns the
    /// product bit (the AND-gate output).
    pub fn step(&mut self, enable: bool) -> bool {
        self.cycles += 1;
        self.cbsg.step(enable)
    }

    /// Full multiplication cycle count for this bitwidth: `2^(bitwidth-1)`.
    #[must_use]
    pub fn full_cycles(&self) -> u64 {
        stream_len(self.bitwidth)
    }

    /// Cycles elapsed since construction or [`reset`](Self::reset).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Loads a new stationary magnitude (weight preload) and resets state.
    ///
    /// # Panics
    ///
    /// Panics if the magnitude exceeds `2^(bitwidth-1)`.
    pub fn load(&mut self, weight_magnitude: u64) {
        assert!(weight_magnitude <= stream_len(self.bitwidth));
        self.cbsg.set_magnitude(weight_magnitude);
        self.reset();
    }

    /// Resets the RNG and cycle counter without changing the magnitude.
    pub fn reset(&mut self) {
        self.cbsg.reset();
        self.cycles = 0;
    }

    /// Data bitwidth `N`.
    #[must_use]
    pub fn bitwidth(&self) -> u32 {
        self.bitwidth
    }

    /// The stationary magnitude.
    #[must_use]
    pub fn weight_magnitude(&self) -> u64 {
        self.cbsg.magnitude()
    }
}

/// Bipolar uMUL (the uGEMM/uGEMM-H multiplier).
///
/// Operates directly on signed values in bipolar coding with streams of
/// length `2^N` (one extra bit of resolution is needed for the sign, which
/// is why it costs **twice** the cycles of [`UnipolarMul`]). It keeps two
/// conditional generators — one for enabled (input = 1) cycles and one for
/// disabled cycles — so that
///
/// ```text
/// out = input ? (r1 < T) : !(r0 < T)      where T encodes (w + 1) / 2
/// ```
///
/// which realises the XNOR identity `2·p_y − 1 = (2·p_a − 1)(2·p_b − 1)`
/// with low variance. The doubled generator is the "twice the area" of
/// Section IV-C2.
#[derive(Debug, Clone)]
pub struct BipolarMul<S> {
    ones_gen: ConditionalBsg<S>,
    zeros_gen: ConditionalBsg<S>,
    bitwidth: u32,
    cycles: u64,
}

impl<S: NumberSource> BipolarMul<S> {
    /// Creates a bipolar multiplier for `bitwidth`-bit signed data with
    /// stationary value `weight` in `[-2^(bitwidth-1), 2^(bitwidth-1)]`.
    ///
    /// `source_ones` and `source_zeros` must emit `bitwidth`-bit numbers
    /// (the bipolar stream length is `2^bitwidth`).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is out of range or the source widths mismatch.
    #[must_use]
    pub fn new(weight: i64, bitwidth: u32, source_ones: S, source_zeros: S) -> Self {
        let half = stream_len(bitwidth) as i64;
        assert!(
            (-half..=half).contains(&weight),
            "weight {weight} out of [-{half}, {half}]"
        );
        assert_eq!(
            source_ones.width(),
            bitwidth,
            "ones source width must be bitwidth"
        );
        assert_eq!(
            source_zeros.width(),
            bitwidth,
            "zeros source width must be bitwidth"
        );
        // Bipolar threshold encoding (w + half) of 2*half.
        let threshold = (weight + half) as u64;
        Self {
            ones_gen: ConditionalBsg::new(threshold, source_ones),
            zeros_gen: ConditionalBsg::new(threshold, source_zeros),
            bitwidth,
            cycles: 0,
        }
    }

    /// Processes one cycle with the streaming operand's bipolar bit;
    /// returns the bipolar product bit.
    pub fn step(&mut self, input: bool) -> bool {
        self.cycles += 1;
        if input {
            self.ones_gen.step(true)
        } else {
            !self.zeros_gen.step(true)
        }
    }

    /// Full multiplication cycle count: `2^bitwidth` — twice the unipolar
    /// multiplier's.
    #[must_use]
    pub fn full_cycles(&self) -> u64 {
        1u64 << self.bitwidth
    }

    /// Cycles elapsed since construction or reset.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Resets both generators and the cycle counter.
    pub fn reset(&mut self) {
        self.ones_gen.reset();
        self.zeros_gen.reset();
        self.cycles = 0;
    }

    /// Data bitwidth `N`.
    #[must_use]
    pub fn bitwidth(&self) -> u32 {
        self.bitwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coding::{RateEncoder, TemporalEncoder};
    use crate::rng::SobolSource;

    fn unipolar_product(w: u64, i: u64, bitwidth: u32) -> u64 {
        let mut mul = UnipolarMul::new(w, bitwidth, SobolSource::dimension(0, bitwidth - 1));
        let mut ifm = RateEncoder::unipolar(i, bitwidth, SobolSource::dimension(1, bitwidth - 1));
        (0..stream_len(bitwidth))
            .filter(|_| mul.step(ifm.next_bit()))
            .count() as u64
    }

    #[test]
    fn unipolar_product_near_exact() {
        for (w, i) in [
            (100u64, 77u64),
            (128, 128),
            (0, 77),
            (77, 0),
            (1, 1),
            (64, 64),
        ] {
            let ones = unipolar_product(w, i, 8);
            let exact = (w as f64) * (i as f64) / 128.0;
            assert!(
                (ones as f64 - exact).abs() <= 1.0,
                "w={w} i={i}: {ones} vs {exact}"
            );
        }
    }

    #[test]
    fn unipolar_with_temporal_input_is_accurate() {
        // Temporal IFM coding (counter-generated contiguous ones) still
        // multiplies accurately because the weight RNG is conditioned on
        // the enable bits, not their placement.
        let mut mul = UnipolarMul::new(100, 8, SobolSource::dimension(0, 7));
        let mut ifm = TemporalEncoder::unipolar(77, 8);
        let ones = (0..128).filter(|_| mul.step(ifm.next_bit())).count() as f64;
        let exact = 100.0 * 77.0 / 128.0;
        assert!((ones - exact).abs() <= 1.0);
    }

    #[test]
    fn unipolar_load_replaces_weight() {
        let mut mul = UnipolarMul::new(10, 8, SobolSource::dimension(0, 7));
        mul.step(true);
        mul.load(128);
        assert_eq!(mul.cycles(), 0);
        assert_eq!(mul.weight_magnitude(), 128);
        // Full-scale weight: every enabled cycle emits 1.
        assert!(mul.step(true));
    }

    #[test]
    fn unipolar_full_cycles_matches_paper() {
        let mul = UnipolarMul::new(1, 8, SobolSource::dimension(0, 7));
        assert_eq!(mul.full_cycles(), 128);
        let mul16 = UnipolarMul::new(1, 16, SobolSource::dimension(0, 15));
        assert_eq!(mul16.full_cycles(), 32_768);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn unipolar_rejects_overflow_weight() {
        let _ = UnipolarMul::new(129, 8, SobolSource::dimension(0, 7));
    }

    fn bipolar_product(w: i64, i: i64, bitwidth: u32) -> f64 {
        let mut mul = BipolarMul::new(
            w,
            bitwidth,
            SobolSource::dimension(0, bitwidth),
            SobolSource::dimension(2, bitwidth),
        );
        let len = 1u64 << bitwidth;
        let half = stream_len(bitwidth) as i64;
        // Bipolar-encode the input with an independent Sobol dimension.
        let mut input = RateEncoder::unipolar(
            (i + half) as u64,
            bitwidth + 1,
            SobolSource::dimension(1, bitwidth),
        );
        let ones = (0..len).filter(|_| mul.step(input.next_bit())).count() as f64;
        2.0 * ones / len as f64 - 1.0
    }

    #[test]
    fn bipolar_product_accurate_for_signed_data() {
        for (w, i) in [
            (100i64, -77i64),
            (-100, -77),
            (64, 64),
            (-128, 128),
            (0, 77),
        ] {
            let got = bipolar_product(w, i, 8);
            let exact = (w as f64 / 128.0) * (i as f64 / 128.0);
            assert!((got - exact).abs() < 0.03, "w={w} i={i}: {got} vs {exact}");
        }
    }

    #[test]
    fn bipolar_costs_twice_the_cycles() {
        let uni = UnipolarMul::new(0, 8, SobolSource::dimension(0, 7));
        let bi = BipolarMul::new(
            0,
            8,
            SobolSource::dimension(0, 8),
            SobolSource::dimension(1, 8),
        );
        assert_eq!(bi.full_cycles(), 2 * uni.full_cycles());
    }

    #[test]
    fn bipolar_reset_replays() {
        let mut m = BipolarMul::new(
            37,
            8,
            SobolSource::dimension(0, 8),
            SobolSource::dimension(1, 8),
        );
        let a: Vec<bool> = (0..32).map(|c| m.step(c % 3 == 0)).collect();
        m.reset();
        assert_eq!(m.cycles(), 0);
        let b: Vec<bool> = (0..32).map(|c| m.step(c % 3 == 0)).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn bipolar_rejects_out_of_range_weight() {
        let _ = BipolarMul::new(
            200,
            8,
            SobolSource::dimension(0, 8),
            SobolSource::dimension(1, 8),
        );
    }
}
