//! Early termination and effective bitwidth (Section III-C).
//!
//! Rate-coded uSystolic may stop a multiplication after `2^(n-1)` of the
//! full `2^(N-1)` cycles. Only the `n` most significant output bits are
//! then produced — `n` is the **effective bitwidth** (EBT) — and the
//! partial result must be scaled back by a left shift of `N − n` at the
//! top-row shifters. Temporal coding admits no early termination (the
//! leading-ones bit order would bias the product), which the constructor
//! enforces.

use crate::coding::Coding;

/// An early-termination policy: full data bitwidth `N` plus the effective
/// bitwidth `n ≤ N` actually computed.
///
/// # Example
///
/// ```
/// use usystolic_unary::EarlyTermination;
///
/// // The paper's "6-32" point: 6-bit EBT on 8-bit data, 32 multiply cycles.
/// let et = EarlyTermination::new(8, 6).unwrap();
/// assert_eq!(et.mul_cycles(), 32);
/// assert_eq!(et.mac_cycles(), 33);
/// assert_eq!(et.shift(), 2);
/// assert_eq!(et.scale(10), 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EarlyTermination {
    full_bitwidth: u32,
    effective_bitwidth: u32,
}

/// Error constructing an [`EarlyTermination`] policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EtError {
    /// `effective_bitwidth` was zero or exceeded the full bitwidth.
    InvalidEffectiveBitwidth {
        /// Requested EBT.
        effective: u32,
        /// Full data bitwidth.
        full: u32,
    },
    /// Early termination was requested for temporal coding
    /// (Section II-B3: significant accuracy loss — not supported).
    TemporalCodingUnsupported,
}

impl core::fmt::Display for EtError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EtError::InvalidEffectiveBitwidth { effective, full } => {
                write!(f, "effective bitwidth {effective} not in 1..={full}")
            }
            EtError::TemporalCodingUnsupported => {
                f.write_str("early termination is unsupported for temporal coding")
            }
        }
    }
}

impl std::error::Error for EtError {}

impl EarlyTermination {
    /// Creates a policy computing `effective_bitwidth` of `full_bitwidth`
    /// bits.
    ///
    /// # Errors
    ///
    /// Returns [`EtError::InvalidEffectiveBitwidth`] unless
    /// `1 <= effective_bitwidth <= full_bitwidth`.
    pub fn new(full_bitwidth: u32, effective_bitwidth: u32) -> Result<Self, EtError> {
        if effective_bitwidth == 0 || effective_bitwidth > full_bitwidth {
            return Err(EtError::InvalidEffectiveBitwidth {
                effective: effective_bitwidth,
                full: full_bitwidth,
            });
        }
        Ok(Self {
            full_bitwidth,
            effective_bitwidth,
        })
    }

    /// The no-termination policy (`n = N`).
    #[must_use]
    pub fn full(bitwidth: u32) -> Self {
        Self {
            full_bitwidth: bitwidth,
            effective_bitwidth: bitwidth,
        }
    }

    /// Creates a policy checked against the coding: temporal coding only
    /// admits the full-length policy.
    ///
    /// # Errors
    ///
    /// Returns [`EtError::TemporalCodingUnsupported`] if a truncating
    /// policy is requested for [`Coding::Temporal`], or
    /// [`EtError::InvalidEffectiveBitwidth`] for a bad EBT.
    pub fn for_coding(
        coding: Coding,
        full_bitwidth: u32,
        effective_bitwidth: u32,
    ) -> Result<Self, EtError> {
        if coding == Coding::Temporal && effective_bitwidth != full_bitwidth {
            return Err(EtError::TemporalCodingUnsupported);
        }
        Self::new(full_bitwidth, effective_bitwidth)
    }

    /// Full data bitwidth `N`.
    #[must_use]
    pub fn full_bitwidth(&self) -> u32 {
        self.full_bitwidth
    }

    /// Effective bitwidth `n`.
    #[must_use]
    pub fn effective_bitwidth(&self) -> u32 {
        self.effective_bitwidth
    }

    /// Unary multiplication cycles: `2^(n-1)`.
    #[must_use]
    pub fn mul_cycles(&self) -> u64 {
        1u64 << (self.effective_bitwidth - 1)
    }

    /// MAC cycles: `2^(n-1) + 1` (one extra accumulation cycle,
    /// Section III-C).
    #[must_use]
    pub fn mac_cycles(&self) -> u64 {
        self.mul_cycles() + 1
    }

    /// Left-shift amount `N − n` applied by the top-row shifters.
    #[must_use]
    pub fn shift(&self) -> u32 {
        self.full_bitwidth - self.effective_bitwidth
    }

    /// Scales an early-terminated partial result back to `N`-bit range.
    #[must_use]
    pub fn scale(&self, partial: i64) -> i64 {
        partial << self.shift()
    }

    /// Whether this policy truncates at all.
    #[must_use]
    pub fn terminates_early(&self) -> bool {
        self.effective_bitwidth < self.full_bitwidth
    }

    /// Recovers the policy from a multiply cycle count, the notation used
    /// in the paper's figures ("Unary-32c" etc.).
    ///
    /// # Errors
    ///
    /// Returns [`EtError::InvalidEffectiveBitwidth`] if `mul_cycles` is not
    /// a power of two representable within `full_bitwidth`.
    pub fn from_mul_cycles(full_bitwidth: u32, mul_cycles: u64) -> Result<Self, EtError> {
        if !mul_cycles.is_power_of_two() {
            return Err(EtError::InvalidEffectiveBitwidth {
                effective: 0,
                full: full_bitwidth,
            });
        }
        let n = mul_cycles.trailing_zeros() + 1;
        Self::new(full_bitwidth, n)
    }
}

impl core::fmt::Display for EarlyTermination {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Paper notation: (effective bitwidth)-(cycle count), e.g. "6-32".
        write!(f, "{}-{}", self.effective_bitwidth, self.mul_cycles())
    }
}

impl usystolic_obs::ToJson for EarlyTermination {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("full_bitwidth", self.full_bitwidth().to_json()),
            ("effective_bitwidth", self.effective_bitwidth().to_json()),
            ("mul_cycles", self.mul_cycles().to_json()),
            ("shift", self.shift().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ebt_cycle_pairs() {
        // Fig. 9 x-axis: 6-32, 7-64, 8-128, 9-256, 10-512, 11-1024, 12-2048.
        for (ebt, cycles) in [
            (6u32, 32u64),
            (7, 64),
            (8, 128),
            (9, 256),
            (10, 512),
            (11, 1024),
            (12, 2048),
        ] {
            let et = EarlyTermination::new(12, ebt).unwrap();
            assert_eq!(et.mul_cycles(), cycles, "EBT {ebt}");
            assert_eq!(et.to_string(), format!("{ebt}-{cycles}"));
        }
    }

    #[test]
    fn mac_cycles_adds_one() {
        let et = EarlyTermination::full(8);
        assert_eq!(et.mac_cycles(), 129);
        assert!(!et.terminates_early());
    }

    #[test]
    fn scale_shifts_by_n_minus_ebt() {
        let et = EarlyTermination::new(8, 6).unwrap();
        assert_eq!(et.shift(), 2);
        assert_eq!(et.scale(-3), -12);
        let full = EarlyTermination::full(8);
        assert_eq!(full.scale(100), 100);
    }

    #[test]
    fn invalid_ebt_rejected() {
        assert!(EarlyTermination::new(8, 0).is_err());
        assert!(EarlyTermination::new(8, 9).is_err());
        assert!(EarlyTermination::new(8, 8).is_ok());
    }

    #[test]
    fn temporal_coding_blocks_early_termination() {
        assert_eq!(
            EarlyTermination::for_coding(Coding::Temporal, 8, 6).unwrap_err(),
            EtError::TemporalCodingUnsupported
        );
        assert!(EarlyTermination::for_coding(Coding::Temporal, 8, 8).is_ok());
        assert!(EarlyTermination::for_coding(Coding::Rate, 8, 6).is_ok());
    }

    #[test]
    fn from_mul_cycles_roundtrip() {
        let et = EarlyTermination::from_mul_cycles(8, 32).unwrap();
        assert_eq!(et.effective_bitwidth(), 6);
        assert!(EarlyTermination::from_mul_cycles(8, 33).is_err());
        assert!(
            EarlyTermination::from_mul_cycles(8, 256).is_err(),
            "EBT 9 > N 8"
        );
    }

    #[test]
    fn error_display() {
        let e = EarlyTermination::new(8, 9).unwrap_err();
        assert!(e.to_string().contains("9"));
        assert!(EtError::TemporalCodingUnsupported
            .to_string()
            .contains("temporal"));
    }
}
