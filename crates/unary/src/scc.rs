//! Stochastic cross-correlation (SCC).
//!
//! SCC measures the similarity of two bitstreams' bit placements (Alaghi &
//! Hayes \[2\]). `SCC = 0` is necessary and sufficient for an AND gate to be
//! an accurate unipolar multiplier (Section II-B2, Eq. 1). `SCC = +1` means
//! maximal overlap (AND degenerates to `min`), `SCC = -1` minimal overlap
//! (AND degenerates to `max(a + b - 1, 0)`).

use crate::bitstream::Bitstream;
use crate::UnaryError;

/// Computes the stochastic cross-correlation of two equal-length
/// bitstreams.
///
/// Let `p_a`, `p_b` be the ones-probabilities and `p_ab` the joint
/// ones-probability. Then
///
/// ```text
///            p_ab − p_a·p_b
/// SCC = ────────────────────────────────          if p_ab > p_a·p_b
///        min(p_a, p_b) − p_a·p_b
///
///            p_ab − p_a·p_b
/// SCC = ────────────────────────────────          otherwise
///        p_a·p_b − max(p_a + p_b − 1, 0)
/// ```
///
/// Degenerate streams (all-zero or all-one operands) have an undefined
/// correlation; this returns `0.0` for them, matching the convention that
/// they multiply exactly through an AND gate anyway.
///
/// # Errors
///
/// Returns [`UnaryError::LengthMismatch`] if the streams differ in length.
///
/// # Example
///
/// ```
/// use usystolic_unary::{scc, Bitstream};
///
/// let a: Bitstream = "11001100".chars().map(|c| c == '1').collect();
/// let same = a.clone();
/// assert!((scc(&a, &same).unwrap() - 1.0).abs() < 1e-12);
/// let opposite = a.not();
/// assert!((scc(&a, &opposite).unwrap() + 1.0).abs() < 1e-12);
/// ```
pub fn scc(a: &Bitstream, b: &Bitstream) -> Result<f64, UnaryError> {
    if a.len() != b.len() {
        return Err(UnaryError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    let n = a.len() as f64;
    if a.is_empty() {
        return Ok(0.0);
    }
    let p_a = a.count_ones() as f64 / n;
    let p_b = b.count_ones() as f64 / n;
    let p_ab = a.overlap(b)? as f64 / n;
    let indep = p_a * p_b;
    let delta = p_ab - indep;
    let denom = if delta > 0.0 {
        p_a.min(p_b) - indep
    } else {
        indep - (p_a + p_b - 1.0).max(0.0)
    };
    if denom.abs() < 1e-15 {
        return Ok(0.0);
    }
    Ok((delta / denom).clamp(-1.0, 1.0))
}

/// Root-mean-square error of an AND-gate product against the exact
/// real-valued product, for diagnostics of multiplier accuracy.
///
/// # Errors
///
/// Returns [`UnaryError::LengthMismatch`] if the streams differ in length.
pub fn and_product_error(a: &Bitstream, b: &Bitstream) -> Result<f64, UnaryError> {
    let p = a.and(b)?;
    Ok((p.unipolar_value() - a.unipolar_value() * b.unipolar_value()).abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coding::encode_unipolar;
    use crate::rng::SobolSource;

    fn bs(s: &str) -> Bitstream {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn identical_streams_have_scc_one() {
        let a = bs("10110010");
        assert!((scc(&a, &a.clone()).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn complementary_streams_have_scc_minus_one() {
        let a = bs("11110000");
        let b = bs("00001111");
        assert!((scc(&a, &b).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_sobol_dimensions_have_near_zero_scc() {
        let a = encode_unipolar(77, 8, SobolSource::dimension(0, 7)).unwrap();
        let b = encode_unipolar(100, 8, SobolSource::dimension(1, 7)).unwrap();
        let c = scc(&a, &b).unwrap();
        assert!(c.abs() < 0.15, "SCC {c} not near zero");
    }

    #[test]
    fn same_dimension_same_value_is_fully_correlated() {
        let a = encode_unipolar(64, 8, SobolSource::dimension(0, 7)).unwrap();
        let b = encode_unipolar(64, 8, SobolSource::dimension(0, 7)).unwrap();
        assert!((scc(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_streams_are_zero() {
        let zeros = Bitstream::zeros(16);
        let ones = Bitstream::ones(16);
        let x = bs("1010101010101010");
        assert_eq!(scc(&zeros, &x).unwrap(), 0.0);
        assert_eq!(scc(&ones, &x).unwrap(), 0.0);
        assert_eq!(scc(&Bitstream::new(), &Bitstream::new()).unwrap(), 0.0);
    }

    #[test]
    fn zero_scc_gives_accurate_and_product() {
        // The core claim of Eq. 1: zero SCC ⇒ AND is an accurate multiplier.
        let a = encode_unipolar(90, 8, SobolSource::dimension(0, 7)).unwrap();
        let b = encode_unipolar(50, 8, SobolSource::dimension(3, 7)).unwrap();
        let err = and_product_error(&a, &b).unwrap();
        assert!(err < 0.05, "AND product error {err} too large");
    }

    #[test]
    fn correlated_streams_give_poor_and_product() {
        // SCC = 1 ⇒ AND degenerates to min(p_a, p_b).
        let a = encode_unipolar(90, 8, SobolSource::dimension(0, 7)).unwrap();
        let b = encode_unipolar(50, 8, SobolSource::dimension(0, 7)).unwrap();
        let p = a.and(&b).unwrap();
        let min = (50.0f64 / 128.0).min(90.0 / 128.0);
        assert!((p.unipolar_value() - min).abs() < 1e-9);
        let exact = (90.0 / 128.0) * (50.0 / 128.0);
        assert!((p.unipolar_value() - exact).abs() > 0.1);
    }

    #[test]
    fn mismatch_is_error() {
        assert!(scc(&Bitstream::zeros(4), &Bitstream::zeros(5)).is_err());
        assert!(and_product_error(&Bitstream::zeros(4), &Bitstream::zeros(5)).is_err());
    }
}
