//! Deterministic number sources for bitstream generation.
//!
//! A comparator-based bitstream generator (Fig. 3 of the paper) compares the
//! stationary binary source value `SRC` against a fresh number every cycle:
//!
//! * **rate coding** draws from a pseudo-random generator — the paper uses
//!   the low-discrepancy **Sobol** generator \[42\], here [`SobolSource`], with
//!   a maximal-length **LFSR** ([`LfsrSource`]) as the classic alternative;
//! * **temporal coding** draws from a plain **counter** ([`CounterSource`]),
//!   yielding deterministic, contiguous bit patterns.
//!
//! All sources emit `width`-bit numbers and are periodic with period
//! `2^width` (the LFSR has period `2^width - 1`; it never emits the
//! all-zero state and is wrapped to still behave sensibly as a comparator
//! input).

/// A deterministic source of `width`-bit numbers driving a comparator-based
/// bitstream generator.
///
/// Implementors are cycle-level hardware models: each [`next`](Self::next)
/// call corresponds to one clock edge on the RNG/CNT block of Fig. 3.
pub trait NumberSource {
    /// Advances the source by one cycle and returns the new number in
    /// `0..2^width()`.
    fn next(&mut self) -> u64;

    /// Bit width of the emitted numbers.
    fn width(&self) -> u32;

    /// Restores the source to its initial state.
    fn reset(&mut self);

    /// Period after which the emitted sequence repeats.
    fn period(&self) -> u64 {
        1u64 << self.width()
    }
}

impl<S: NumberSource + ?Sized> NumberSource for Box<S> {
    fn next(&mut self) -> u64 {
        (**self).next()
    }
    fn width(&self) -> u32 {
        (**self).width()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn period(&self) -> u64 {
        (**self).period()
    }
}

/// Direction-number seeds for the first 16 Sobol dimensions
/// (degree `s`, polynomial coefficient mask `a`, initial odd values `m`),
/// after Joe & Kuo. Dimension 0 is the van der Corput sequence in base 2
/// (handled specially).
const SOBOL_SEEDS: &[(u32, u64, &[u64])] = &[
    (1, 0, &[1]),
    (2, 1, &[1, 3]),
    (3, 1, &[1, 3, 1]),
    (3, 2, &[1, 1, 1]),
    (4, 1, &[1, 1, 3, 3]),
    (4, 4, &[1, 3, 5, 13]),
    (5, 2, &[1, 1, 5, 5, 17]),
    (5, 4, &[1, 1, 5, 5, 5]),
    (5, 7, &[1, 1, 7, 11, 19]),
    (5, 11, &[1, 1, 5, 1, 1]),
    (5, 13, &[1, 1, 1, 3, 11]),
    (5, 14, &[1, 3, 5, 5, 31]),
    (6, 1, &[1, 3, 3, 9, 7, 49]),
    (6, 13, &[1, 1, 1, 15, 21, 21]),
    (6, 16, &[1, 3, 1, 13, 27, 49]),
];

/// Number of distinct Sobol dimensions available from
/// [`SobolSource::dimension`].
pub const SOBOL_DIMENSIONS: usize = SOBOL_SEEDS.len() + 1;

/// Gray-code Sobol low-discrepancy sequence generator.
///
/// This is the paper's high-quality RNG \[42\] (Section III-B configures the
/// RNG in uSystolic to be Sobol). Two properties matter for unary
/// computing:
///
/// 1. Over a full period of `2^width` outputs every value in
///    `0..2^width` appears **exactly once** (the generator matrix is
///    invertible), so a comparator against threshold `T` emits exactly `T`
///    ones — rate coding is *exact* over a full stream.
/// 2. Any prefix of `k` outputs contains `⌊k·T/2^width⌋` or `⌈k·T/2^width⌉`
///    values below `T` for dimension 0 (low discrepancy), which is what
///    makes early termination accurate.
///
/// # Example
///
/// ```
/// use usystolic_unary::rng::{NumberSource, SobolSource};
///
/// let mut s = SobolSource::dimension(0, 4);
/// let first: Vec<u64> = (0..8).map(|_| s.next()).collect();
/// assert_eq!(first, [0, 8, 12, 4, 6, 14, 10, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct SobolSource {
    direction: Vec<u64>,
    width: u32,
    state: u64,
    index: u64,
}

impl SobolSource {
    /// Creates the Sobol generator for `dimension` (0-based, up to
    /// [`SOBOL_DIMENSIONS`]) emitting `width`-bit numbers.
    ///
    /// Dimension 0 is the base-2 van der Corput (bit-reversal) sequence;
    /// higher dimensions use Joe–Kuo direction numbers. Dimensions wrap
    /// modulo [`SOBOL_DIMENSIONS`] so that callers may index freely (e.g.
    /// one dimension per array row).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 63.
    #[must_use]
    pub fn dimension(dimension: usize, width: u32) -> Self {
        assert!(width > 0 && width < 64, "unsupported Sobol width {width}");
        let dimension = dimension % SOBOL_DIMENSIONS;
        let direction = if dimension == 0 {
            // v_j = 2^(width - j): plain bit-reversed counter.
            (1..=width as u64)
                .map(|j| 1u64 << (width as u64 - j))
                .collect()
        } else {
            let (s, a, m_init) = SOBOL_SEEDS[dimension - 1];
            let mut m: Vec<u64> = m_init.to_vec();
            for j in s as usize..width as usize {
                // Recurrence: m_j = 2 a_1 m_{j-1} ^ 4 a_2 m_{j-2} ^ ...
                //             ^ 2^s m_{j-s} ^ m_{j-s}
                let mut val = m[j - s as usize] ^ (m[j - s as usize] << s);
                for k in 1..s as usize {
                    let a_k = (a >> (s as usize - 1 - k)) & 1;
                    if a_k == 1 {
                        val ^= m[j - k] << k;
                    }
                }
                m.push(val);
            }
            (0..width as usize)
                .map(|j| m[j] << (width as usize - j - 1))
                .collect()
        };
        Self {
            direction,
            width,
            state: 0,
            index: 0,
        }
    }

    /// The sequence index of the *next* output (0 before the first call to
    /// `next`).
    #[must_use]
    pub fn index(&self) -> u64 {
        self.index
    }
}

impl NumberSource for SobolSource {
    fn next(&mut self) -> u64 {
        // Gray-code construction: output for index i is the running XOR of
        // direction numbers selected by the trailing-zero count. The first
        // output (index 0) is 0.
        let out = self.state;
        let c = self.index.trailing_ones() as usize % self.direction.len();
        self.state ^= self.direction[c];
        self.index = self.index.wrapping_add(1);
        out
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn reset(&mut self) {
        self.state = 0;
        self.index = 0;
    }
}

/// Fibonacci maximal-length LFSR emitting `width`-bit numbers.
///
/// A cheap hardware RNG often used in stochastic-computing literature as
/// the low-cost (but higher-variance) alternative to Sobol. The register
/// never reaches the all-zero state, so its period is `2^width - 1`.
#[derive(Debug, Clone)]
pub struct LfsrSource {
    state: u64,
    seed: u64,
    width: u32,
    taps: u64,
}

/// Maximal-length feedback tap masks for LFSR widths 2..=24 (taps are the
/// XOR'd bit positions of a Fibonacci LFSR, LSB = stage 1).
const LFSR_TAPS: [u64; 23] = [
    0b11,                            // 2
    0b110,                           // 3
    0b1100,                          // 4
    0b1_0100,                        // 5
    0b11_0000,                       // 6
    0b110_0000,                      // 7
    0b1011_1000,                     // 8
    0b1_0001_0000,                   // 9
    0b10_0100_0000,                  // 10
    0b101_0000_0000,                 // 11
    0b1110_0000_1000,                // 12 (x^12+x^11+x^10+x^4+1)
    0b1_1100_1000_0000,              // 13 (x^13+x^12+x^11+x^8+1)
    0b11_1000_0000_0010,             // 14 (x^14+x^13+x^12+x^2+1)
    0b110_0000_0000_0000,            // 15
    0b1101_0000_0000_1000,           // 16 (x^16+x^15+x^13+x^4+1)
    0b1_0010_0000_0000_0000,         // 17
    0b10_0000_0100_0000_0000,        // 18
    0b111_0010_0000_0000_0000,       // 19 — x^19+x^18+x^17+x^14+1
    0b1001_0000_0000_0000_0000,      // 20
    0b1_0100_0000_0000_0000_0000,    // 21
    0b11_0000_0000_0000_0000_0000,   // 22
    0b100_0010_0000_0000_0000_0000,  // 23 — x^23+x^18+1
    0b1110_0000_1000_0000_0000_0000, // 24 — x^24+x^23+x^22+x^17+1
];

impl LfsrSource {
    /// Creates a maximal-length LFSR of `width` bits seeded with `seed`
    /// (forced non-zero internally).
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `2..=24`.
    #[must_use]
    pub fn new(width: u32, seed: u64) -> Self {
        assert!((2..=24).contains(&width), "unsupported LFSR width {width}");
        let mask = (1u64 << width) - 1;
        let seed = if seed & mask == 0 { 1 } else { seed & mask };
        Self {
            state: seed,
            seed,
            width,
            taps: LFSR_TAPS[(width - 2) as usize],
        }
    }
}

impl NumberSource for LfsrSource {
    fn next(&mut self) -> u64 {
        let out = self.state;
        let feedback = (self.state & self.taps).count_ones() as u64 & 1;
        self.state = ((self.state << 1) | feedback) & ((1u64 << self.width) - 1);
        out
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn reset(&mut self) {
        self.state = self.seed;
    }

    fn period(&self) -> u64 {
        (1u64 << self.width) - 1
    }
}

/// Plain wrapping up-counter: the CNT block of temporal coding (Fig. 3b).
///
/// Comparing a value `T` against the counter yields a stream whose first
/// `T` bits are ones — deterministic temporal coding.
#[derive(Debug, Clone, Default)]
pub struct CounterSource {
    width: u32,
    state: u64,
    start: u64,
}

impl CounterSource {
    /// Creates a `width`-bit counter starting from 0.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 63.
    #[must_use]
    pub fn new(width: u32) -> Self {
        Self::starting_at(width, 0)
    }

    /// Creates a `width`-bit counter with an arbitrary phase (used to model
    /// staggered rows).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 63.
    #[must_use]
    pub fn starting_at(width: u32, start: u64) -> Self {
        assert!(width > 0 && width < 64, "unsupported counter width {width}");
        let start = start & ((1u64 << width) - 1);
        Self {
            width,
            state: start,
            start,
        }
    }
}

impl NumberSource for CounterSource {
    fn next(&mut self) -> u64 {
        let out = self.state;
        self.state = (self.state + 1) & ((1u64 << self.width) - 1);
        out
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn reset(&mut self) {
        self.state = self.start;
    }
}

/// Deterministic 64-bit software PRNG (SplitMix64, Steele et al.).
///
/// This is **not** a hardware number source like [`SobolSource`] or
/// [`LfsrSource`] — it is the workspace's replacement for the external
/// `rand` crate wherever experiments need reproducible test tensors,
/// weight initialisation or shuffles. One multiply-xorshift round per
/// output, full 64-bit state, and a fixed seed gives a fixed sequence on
/// every platform.
///
/// # Example
///
/// ```
/// use usystolic_unary::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits of the next output).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        // Rejection sampling over the largest multiple of n.
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// A uniform boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_period(src: &mut dyn NumberSource) -> Vec<u64> {
        (0..src.period()).map(|_| src.next()).collect()
    }

    #[test]
    fn sobol_dim0_is_bit_reversal() {
        let mut s = SobolSource::dimension(0, 3);
        let seq = full_period(&mut s);
        assert_eq!(seq, [0, 4, 6, 2, 3, 7, 5, 1]);
    }

    #[test]
    fn sobol_every_dimension_is_a_permutation() {
        for dim in 0..SOBOL_DIMENSIONS {
            let mut s = SobolSource::dimension(dim, 8);
            let mut seq = full_period(&mut s);
            seq.sort_unstable();
            let expect: Vec<u64> = (0..256).collect();
            assert_eq!(seq, expect, "dimension {dim} is not a permutation");
        }
    }

    #[test]
    fn sobol_prefix_balance_dim0() {
        // Low-discrepancy property that makes early termination work:
        // among the first k outputs, the count below T is within 1+eps of
        // k*T/2^w.
        let w = 8;
        let t = 100u64;
        let mut s = SobolSource::dimension(0, w);
        let mut below = 0u64;
        for k in 1..=256u64 {
            if s.next() < t {
                below += 1;
            }
            let ideal = (k * t) as f64 / 256.0;
            // Star-discrepancy bound for radical-inverse sequences: the
            // prefix count deviates by at most ~log2(k) + 1.
            let bound = (k as f64).log2() + 1.0;
            assert!(
                (below as f64 - ideal).abs() <= bound,
                "prefix {k}: {below} vs ideal {ideal} (bound {bound})"
            );
        }
    }

    #[test]
    fn sobol_reset_restores_sequence() {
        let mut s = SobolSource::dimension(3, 6);
        let a: Vec<u64> = (0..10).map(|_| s.next()).collect();
        s.reset();
        let b: Vec<u64> = (0..10).map(|_| s.next()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sobol_dimensions_differ() {
        let mut a = SobolSource::dimension(0, 8);
        let mut b = SobolSource::dimension(1, 8);
        let sa: Vec<u64> = (0..16).map(|_| a.next()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn lfsr_has_maximal_period() {
        for width in 2..=16u32 {
            let mut l = LfsrSource::new(width, 1);
            let mut seen = std::collections::HashSet::new();
            for _ in 0..l.period() {
                assert!(seen.insert(l.next()), "width {width}: state repeated early");
            }
            // After a full period the state returns to the seed.
            assert_eq!(l.next(), 1, "width {width}: period is not maximal");
        }
    }

    #[test]
    fn lfsr_never_emits_zero() {
        let mut l = LfsrSource::new(8, 42);
        for _ in 0..255 {
            assert_ne!(l.next(), 0);
        }
    }

    #[test]
    fn lfsr_zero_seed_is_coerced() {
        let mut l = LfsrSource::new(4, 0);
        assert_ne!(l.next(), 0);
    }

    #[test]
    fn counter_counts_and_wraps() {
        let mut c = CounterSource::new(2);
        assert_eq!(
            (0..6).map(|_| c.next()).collect::<Vec<_>>(),
            [0, 1, 2, 3, 0, 1]
        );
    }

    #[test]
    fn counter_with_phase() {
        let mut c = CounterSource::starting_at(3, 6);
        assert_eq!((0..4).map(|_| c.next()).collect::<Vec<_>>(), [6, 7, 0, 1]);
        c.reset();
        assert_eq!(c.next(), 6);
    }

    #[test]
    fn splitmix_is_deterministic_and_uniform_enough() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Crude uniformity: mean of 4k floats within 5% of 0.5.
        let mut r = SplitMix64::new(1);
        let mean: f64 = (0..4096).map(|_| r.next_f64()).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.025, "mean {mean}");
    }

    #[test]
    fn splitmix_ranges_stay_in_bounds() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let v = r.range_i64(-1, 1);
            assert!((-1..=1).contains(&v));
        }
        // All three values of [-1, 1] appear.
        let mut seen = [false; 3];
        let mut r = SplitMix64::new(4);
        for _ in 0..100 {
            seen[(r.range_i64(-1, 1) + 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn splitmix_below_zero_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn boxed_source_delegates() {
        let mut b: Box<dyn NumberSource> = Box::new(CounterSource::new(4));
        assert_eq!(b.width(), 4);
        assert_eq!(b.period(), 16);
        assert_eq!(b.next(), 0);
        b.reset();
        assert_eq!(b.next(), 0);
    }
}
