//! Sign-magnitude conversion.
//!
//! uSystolic multiplies two signed operands in **sign-magnitude** format
//! with a *unipolar* uMUL (Section III-A): the magnitudes multiply through
//! the cheap unipolar path while the XOR of the sign bits decides whether
//! the product bits are accumulated positively or negatively. Conversion
//! happens once at the array edge (leftmost column / top row).

/// A signed value split into a sign bit and an absolute magnitude, as held
/// in the WSIGN/WABS and ISIGN/IABS registers of Fig. 7.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct SignMagnitude {
    /// True for negative values.
    pub negative: bool,
    /// Absolute value, in `0..=2^(bitwidth-1)`.
    pub magnitude: u64,
}

impl SignMagnitude {
    /// Converts a signed integer, clamping to the representable range of
    /// `bitwidth`-bit sign-magnitude data: `[-2^(b-1), 2^(b-1)]`.
    ///
    /// Note the range is symmetric (unlike two's complement): `-2^(b-1)` is
    /// representable because the magnitude field spans `0..=2^(b-1)`, where
    /// the maximum encodes exactly 1.0 in unary.
    ///
    /// # Panics
    ///
    /// Panics if `bitwidth` is outside `2..=crate::MAX_BITWIDTH`.
    #[must_use]
    pub fn from_signed(value: i64, bitwidth: u32) -> Self {
        let max = crate::stream_len(bitwidth) as i64;
        let clamped = value.clamp(-max, max);
        Self {
            negative: clamped < 0,
            magnitude: clamped.unsigned_abs(),
        }
    }

    /// Recovers the signed integer value.
    #[must_use]
    pub fn to_signed(self) -> i64 {
        let m = self.magnitude as i64;
        if self.negative {
            -m
        } else {
            m
        }
    }

    /// Sign of the product of two sign-magnitude values — the XOR gate of
    /// Fig. 7 (left): negative iff exactly one operand is negative.
    #[must_use]
    pub fn product_negative(self, other: Self) -> bool {
        self.negative ^ other.negative
    }

    /// The +1 / -1 increment this operand pair contributes per asserted
    /// product bit when accumulated in binary.
    #[must_use]
    pub fn product_increment(self, other: Self) -> i64 {
        if self.product_negative(other) {
            -1
        } else {
            1
        }
    }
}

impl core::fmt::Display for SignMagnitude {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}{}",
            if self.negative { "-" } else { "+" },
            self.magnitude
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_signed() {
        for v in [-128i64, -5, 0, 7, 127, 128] {
            let sm = SignMagnitude::from_signed(v, 8);
            assert_eq!(sm.to_signed(), v, "value {v}");
        }
    }

    #[test]
    fn clamps_out_of_range() {
        assert_eq!(SignMagnitude::from_signed(1000, 8).to_signed(), 128);
        assert_eq!(SignMagnitude::from_signed(-1000, 8).to_signed(), -128);
    }

    #[test]
    fn negative_zero_is_positive_zero() {
        let sm = SignMagnitude::from_signed(0, 8);
        assert!(!sm.negative);
        assert_eq!(sm.magnitude, 0);
    }

    #[test]
    fn product_sign_is_xor() {
        let pos = SignMagnitude::from_signed(3, 8);
        let neg = SignMagnitude::from_signed(-3, 8);
        assert!(!pos.product_negative(pos));
        assert!(pos.product_negative(neg));
        assert!(neg.product_negative(pos));
        assert!(!neg.product_negative(neg));
        assert_eq!(pos.product_increment(neg), -1);
        assert_eq!(neg.product_increment(neg), 1);
    }

    #[test]
    fn display_shows_sign() {
        assert_eq!(SignMagnitude::from_signed(-7, 8).to_string(), "-7");
        assert_eq!(SignMagnitude::from_signed(7, 8).to_string(), "+7");
    }
}
