//! Word-packed bitstream generation: 64 multiply cycles per `u64` word.
//!
//! The bit-serial generators of [`crate::bsg`] advance one comparator per
//! clock edge; simulating an `N`-bit rate-coded MAC window that way costs
//! `2^(N-1)` scalar iterations. This module evaluates the same comparators
//! word-at-a-time over a **precomputed number-source sequence**, packing 64
//! comparator bits into each [`Bitstream`] word, so downstream reductions
//! collapse to word AND + `count_ones` (the same trick tubGEMM/tuGEMM use
//! to evaluate unary streams in wide chunks).
//!
//! The conditional generator (C-BSG, Fig. 4 of the paper) needs one extra
//! observation to pack: its RNG advances **only on enabled cycles**, so
//! after `k` enable bits the RNG has emitted exactly the first `k` entries
//! of its free-running sequence. The number of asserted product bits of a
//! whole MAC window is therefore a *prefix popcount*:
//!
//! ```text
//! ones(window) = #{ j < popcount(enable) : seq_rng[j] < |W| }
//! ```
//!
//! which [`PackedCbsg`] answers in `O(words)` via
//! [`Bitstream::count_ones_first`]. `tests::packed_cbsg_matches_bit_serial`
//! proves bit-exact equivalence against [`crate::bsg::ConditionalBsg`].

use crate::bitstream::Bitstream;
use crate::rng::NumberSource;

/// Closed-form prefix count of the base-2 Sobol sequence (dimension 0):
/// the number of indices `i < prefix` whose output
/// `seq[i] = bitrev(gray(i))` is below `threshold`, in `O(width)` — no
/// drained sequence, no comparator stream.
///
/// This is the tuGEMM-style shortcut for temporal-coded MAC windows: the
/// weight C-BSG of every uSystolic PE is driven by
/// [`crate::rng::SobolSource::dimension`]`(0, w)`, whose output at index
/// `i` is the bit-reversal of the Gray code of `i`. Fixing the top bits
/// of `i` fixes the *low* bits of the output, and the free low bits of
/// `i` sweep the output's high bits bijectively — so the count below a
/// threshold decomposes over the set bits of `prefix` into one interval
/// count each (a digit DP with no table).
///
/// Agrees exactly with counting a drained sequence
/// (`tests::vdc_prefix_count_matches_sobol_dimension_zero`).
///
/// # Panics
///
/// Panics if `width` is 0 or ≥ 64, or if `prefix` exceeds the period
/// `2^width` (the Gray-code generator is not periodic past one period,
/// so a longer prefix has no closed form).
#[must_use]
pub fn vdc_prefix_count(width: u32, prefix: u64, threshold: u64) -> u64 {
    assert!(width > 0 && width < 64, "unsupported Sobol width {width}");
    let period = 1u64 << width;
    assert!(
        prefix <= period,
        "prefix {prefix} exceeds the Sobol period {period}"
    );
    let threshold = threshold.min(period);
    if threshold == 0 {
        return 0;
    }
    if prefix == period {
        // Full period: the sequence is a permutation of 0..2^width.
        return threshold;
    }
    // Gray bit b of the prefix lands at output bit `width - 1 - b`; the
    // classes below `prefix` differ from it only in one flipped bit.
    let gray = prefix ^ (prefix >> 1);
    let mut fixed_low = 0u64;
    let mut count = 0u64;
    for b in (0..width).rev() {
        let pos = width - 1 - b;
        let gbit = (gray >> b) & 1;
        if (prefix >> b) & 1 == 1 {
            // Class `i_b = 0` (indices below `prefix` sharing the higher
            // bits): its Gray bit b is flipped relative to `gray`, its
            // low `pos + 1` output bits are fixed, and its `b` free index
            // bits sweep the output's high bits over `0..2^b` — count
            // the outputs `high · 2^(pos+1) + class_low < threshold`.
            let class_low = fixed_low | ((gbit ^ 1) << pos);
            if threshold > class_low {
                count += ((threshold - class_low - 1) >> (pos + 1)) + 1;
            }
        }
        fixed_low |= gbit << pos;
    }
    count
}

/// Closed-form prefix count of a wrapping counter source: the number of
/// cycles `t < cycles` with `t mod 2^width < threshold` — the enable-bit
/// popcount of a **temporal-coded** MAC window, with no drained sequence
/// (temporal streams are `threshold` ones then zeros, per period).
#[must_use]
pub fn counter_prefix_count(width: u32, cycles: u64, threshold: u64) -> u64 {
    assert!(width > 0 && width < 64, "unsupported counter width {width}");
    let period = 1u64 << width;
    let threshold = threshold.min(period);
    (cycles >> width) * threshold + (cycles & (period - 1)).min(threshold)
}

/// Drains `len` outputs from a number source into a plain vector, exactly
/// as `len` bit-serial [`NumberSource::next`] calls would (the source is
/// left in the same state).
///
/// This is the precomputation step of the packed generators: sources reset
/// per MAC window, so one drained sequence serves every window of a tile.
#[must_use]
pub fn sequence<S: NumberSource + ?Sized>(source: &mut S, len: u64) -> Vec<u64> {
    let mut seq = Vec::with_capacity(len as usize);
    for _ in 0..len {
        seq.push(source.next());
    }
    seq
}

/// Compares a stationary `magnitude` against every entry of a precomputed
/// source sequence, packing 64 comparator bits per `u64` word.
///
/// The result equals the stream a bit-serial [`crate::bsg::Bsg`] over the
/// same source would emit, bit for bit (`tests::comparator_matches_bsg`).
#[must_use]
pub fn comparator_stream(seq: &[u64], magnitude: u64) -> Bitstream {
    let mut words = Vec::with_capacity(seq.len().div_ceil(64));
    let mut word = 0u64;
    for (i, &v) in seq.iter().enumerate() {
        if v < magnitude {
            word |= 1u64 << (i % 64);
        }
        if i % 64 == 63 {
            words.push(word);
            word = 0;
        }
    }
    if !seq.len().is_multiple_of(64) {
        words.push(word);
    }
    Bitstream::from_words(words, seq.len())
}

/// A word-packed conditional bitstream generator: the whole-window answer
/// of a [`crate::bsg::ConditionalBsg`] without stepping it cycle by cycle.
///
/// Construction drains `max_enabled` outputs from the RNG (advancing it
/// exactly as `max_enabled` enabled cycles would) and packs the comparator
/// bits; [`ones_given`](Self::ones_given) then answers "how many product
/// bits does a window with `k` enable ones assert?" in `O(k / 64)` — the
/// RNG-advance gating is captured by the prefix length instead of a
/// per-cycle branch.
///
/// # Example
///
/// ```
/// use usystolic_unary::bsg::ConditionalBsg;
/// use usystolic_unary::packed::PackedCbsg;
/// use usystolic_unary::rng::SobolSource;
///
/// // Bit-serial reference: |W| = 100 gated by 77 enabled cycles.
/// let mut serial = ConditionalBsg::new(100, SobolSource::dimension(0, 7));
/// let ones = (0..77).filter(|_| serial.step(true)).count() as u64;
///
/// let packed = PackedCbsg::new(100, &mut SobolSource::dimension(0, 7), 128);
/// assert_eq!(packed.ones_given(77), ones);
/// ```
#[derive(Debug, Clone)]
pub struct PackedCbsg {
    stream: Bitstream,
}

impl PackedCbsg {
    /// Packs the comparator of `magnitude` against the next `max_enabled`
    /// outputs of `source` (the largest enable count any window may
    /// present — the multiply-cycle count for rate/temporal coding).
    #[must_use]
    pub fn new<S: NumberSource + ?Sized>(magnitude: u64, source: &mut S, max_enabled: u64) -> Self {
        let seq = sequence(source, max_enabled);
        Self {
            stream: comparator_stream(&seq, magnitude),
        }
    }

    /// Wraps an already-packed comparator stream (e.g. one shared sequence
    /// compared against many weight magnitudes).
    #[must_use]
    pub fn from_stream(stream: Bitstream) -> Self {
        Self { stream }
    }

    /// Product-bit count of a MAC window whose enable stream carried
    /// `enabled_cycles` ones (clamped to the packed budget).
    #[must_use]
    pub fn ones_given(&self, enabled_cycles: u64) -> u64 {
        self.stream
            .count_ones_first((enabled_cycles as usize).min(self.stream.len()))
    }

    /// The packed comparator stream (one bit per *enabled* cycle).
    #[must_use]
    pub fn stream(&self) -> &Bitstream {
        &self.stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsg::{Bsg, ConditionalBsg};
    use crate::rng::{CounterSource, LfsrSource, SobolSource};

    #[test]
    fn vdc_prefix_count_matches_sobol_dimension_zero() {
        // Brute-force pin against the real weight-RNG sequence: for every
        // prefix 0..=period (covering the word boundaries 0/63/64/65/128)
        // and a spread of thresholds, the closed form must equal a drained
        // sequence count.
        for width in [1u32, 2, 3, 5, 7, 8] {
            let period = 1u64 << width;
            let seq = sequence(&mut SobolSource::dimension(0, width), period);
            for threshold in [0, 1, period / 3, period / 2, period - 1, period, period + 5] {
                let mut running = 0u64;
                for prefix in 0..=period {
                    assert_eq!(
                        vdc_prefix_count(width, prefix, threshold),
                        running,
                        "width {width}, prefix {prefix}, threshold {threshold}"
                    );
                    if prefix < period && seq[prefix as usize] < threshold {
                        running += 1;
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the Sobol period")]
    fn vdc_prefix_count_rejects_prefixes_past_the_period() {
        // The Sobol recurrence wraps its direction index, so the second
        // period is NOT a repeat of the first — a longer prefix has no
        // closed form and must be refused, not silently extrapolated.
        let _ = vdc_prefix_count(4, 17, 3);
    }

    #[test]
    fn counter_prefix_count_matches_counter_source() {
        // Counter sources ARE periodic, so prefixes past the period (the
        // multi-period enable streams of folded windows) are exact too.
        for width in [1u32, 3, 6] {
            let period = 1u64 << width;
            let seq = sequence(&mut CounterSource::new(width), 3 * period);
            for threshold in [0, 1, period / 2, period - 1, period, period + 9] {
                let mut running = 0u64;
                for cycles in 0..=3 * period {
                    assert_eq!(
                        counter_prefix_count(width, cycles, threshold),
                        running,
                        "width {width}, cycles {cycles}, threshold {threshold}"
                    );
                    if cycles < 3 * period && seq[cycles as usize] < threshold {
                        running += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn sequence_matches_serial_next_and_leaves_same_state() {
        let mut packed_src = SobolSource::dimension(2, 7);
        let seq = sequence(&mut packed_src, 100);
        let mut serial_src = SobolSource::dimension(2, 7);
        let serial: Vec<u64> = (0..100).map(|_| serial_src.next()).collect();
        assert_eq!(seq, serial);
        // Both sources continue identically afterwards.
        assert_eq!(packed_src.next(), serial_src.next());
    }

    #[test]
    fn comparator_matches_bsg() {
        for magnitude in [0u64, 1, 64, 100, 127, 128] {
            let seq = sequence(&mut SobolSource::dimension(0, 7), 128);
            let packed = comparator_stream(&seq, magnitude);
            let mut bsg = Bsg::new(magnitude, SobolSource::dimension(0, 7));
            let serial: Bitstream = (0..128).map(|_| bsg.next_bit()).collect();
            assert_eq!(packed, serial, "magnitude {magnitude}");
        }
    }

    #[test]
    fn comparator_word_boundaries() {
        // Lengths straddling the word boundary; counter source makes the
        // expected count exact: #{ i < len : i mod 2^6 < magnitude }.
        for len in [0usize, 63, 64, 65, 128] {
            let seq = sequence(&mut CounterSource::new(6), len as u64);
            let packed = comparator_stream(&seq, 40);
            let expect = seq.iter().filter(|&&v| v < 40).count() as u64;
            assert_eq!(packed.count_ones(), expect, "len {len}");
            assert_eq!(packed.len(), len);
        }
    }

    #[test]
    fn packed_cbsg_matches_bit_serial() {
        // Gate the C-BSG with every enable density over the full window and
        // several magnitudes; the packed prefix count must agree exactly.
        for magnitude in [0u64, 3, 64, 100, 128] {
            let packed = PackedCbsg::new(magnitude, &mut SobolSource::dimension(0, 7), 128);
            for enabled in [0u64, 1, 63, 64, 65, 77, 128] {
                let mut serial = ConditionalBsg::new(magnitude, SobolSource::dimension(0, 7));
                let mut ones = 0u64;
                for cycle in 0..128 {
                    // An arbitrary but fixed enable pattern with exactly
                    // `enabled` ones: the first `enabled` cycles.
                    if serial.step(cycle < enabled) {
                        ones += 1;
                    }
                }
                assert_eq!(
                    packed.ones_given(enabled),
                    ones,
                    "|W| {magnitude}, {enabled} enabled"
                );
            }
        }
    }

    #[test]
    fn packed_cbsg_gating_is_order_independent() {
        // The C-BSG only sees *how many* enable ones have passed, never
        // where they sit — scattering the enables must not change the
        // window count. This is the identity the packed kernel relies on.
        let packed = PackedCbsg::new(90, &mut SobolSource::dimension(0, 7), 128);
        let mut serial = ConditionalBsg::new(90, SobolSource::dimension(0, 7));
        let mut ones = 0u64;
        let mut enabled = 0u64;
        for cycle in 0..128u64 {
            let e = cycle % 3 != 1; // scattered enable pattern
            if serial.step(e) {
                ones += 1;
            }
            if e {
                enabled += 1;
            }
        }
        assert_eq!(serial.enabled_cycles(), enabled);
        assert_eq!(packed.ones_given(enabled), ones);
    }

    #[test]
    fn packed_cbsg_works_over_any_source() {
        // LFSR and counter sources pack identically to their serial forms.
        let packed = PackedCbsg::new(17, &mut LfsrSource::new(7, 5), 127);
        let mut serial = ConditionalBsg::new(17, LfsrSource::new(7, 5));
        let ones = (0..100).filter(|_| serial.step(true)).count() as u64;
        assert_eq!(packed.ones_given(100), ones);
        let s = PackedCbsg::from_stream(packed.stream().clone());
        assert_eq!(s.ones_given(100), ones);
    }

    #[test]
    fn ones_given_clamps_to_budget() {
        let packed = PackedCbsg::new(128, &mut CounterSource::new(7), 32);
        assert_eq!(packed.ones_given(1000), 32);
        assert_eq!(packed.stream().len(), 32);
    }
}
