//! Accumulation structures for unary and hybrid unary-binary computing.
//!
//! Fully streaming unary (FSU) designs like uGEMM aggregate product
//! bitstreams *in the unary domain* ([`MuxAdder`], [`ParallelCounter`],
//! [`OrAdder`]), which is where their accuracy loss comes from
//! (Section II-B4a). Hybrid designs — uSystolic included — accumulate the
//! product bits *in binary* with a plain signed counter, the
//! [`BinaryAccumulator`] (the OREG + ADD of Fig. 7), which is lossless up
//! to its register width.

use crate::bitstream::Bitstream;
use crate::rng::NumberSource;
use crate::UnaryError;

/// Saturating unary adder: a plain OR gate.
///
/// Exact only when inputs never overlap; otherwise it under-counts
/// (saturation). Listed for completeness of the unary background.
#[derive(Debug, Clone, Copy, Default)]
pub struct OrAdder;

impl OrAdder {
    /// ORs two equal-length streams.
    ///
    /// # Errors
    ///
    /// Returns [`UnaryError::LengthMismatch`] if lengths differ.
    pub fn add(&self, a: &Bitstream, b: &Bitstream) -> Result<Bitstream, UnaryError> {
        a.or(b)
    }
}

/// Scaled unary adder: a MUX selecting one input per cycle.
///
/// Computes the *average* of its inputs (`(a + b) / 2` for two inputs), so
/// a tree of MUX adders loses `log2(n)` bits of magnitude — another FSU
/// accuracy cost uSystolic avoids.
#[derive(Debug, Clone)]
pub struct MuxAdder<S> {
    select: S,
}

impl<S: NumberSource> MuxAdder<S> {
    /// Creates a MUX adder whose select line is driven by `select` (a
    /// 1-bit-equivalent decision is taken from the source's LSB).
    #[must_use]
    pub fn new(select: S) -> Self {
        Self { select }
    }

    /// Adds (averages) two equal-length streams.
    ///
    /// # Errors
    ///
    /// Returns [`UnaryError::LengthMismatch`] if lengths differ.
    pub fn add(&mut self, a: &Bitstream, b: &Bitstream) -> Result<Bitstream, UnaryError> {
        if a.len() != b.len() {
            return Err(UnaryError::LengthMismatch {
                left: a.len(),
                right: b.len(),
            });
        }
        Ok((0..a.len())
            .map(|i| {
                let pick_a = self.select.next() & 1 == 0;
                if pick_a {
                    a.get(i).unwrap_or(false)
                } else {
                    b.get(i).unwrap_or(false)
                }
            })
            .collect())
    }
}

/// Accumulative parallel counter (APC): counts the ones across `n` parallel
/// product bits each cycle and adds the count to a binary register.
///
/// This is the uADD structure that converts a *column* of bitstreams to a
/// binary sum; uGEMM uses it at its outputs.
#[derive(Debug, Clone, Default)]
pub struct ParallelCounter {
    total: u64,
    cycles: u64,
}

impl ParallelCounter {
    /// Creates an empty counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one cycle's worth of parallel bits.
    pub fn step(&mut self, bits: &[bool]) {
        self.total += bits.iter().filter(|&&b| b).count() as u64;
        self.cycles += 1;
    }

    /// Total ones counted so far.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cycles consumed so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Resets the counter.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Signed binary accumulator with a bounded register width: the
/// reduced-resolution OREG of Fig. 7.
///
/// uSystolic's HUB flow keeps the output at the *input* resolution
/// (`N` bits instead of the `2N` bits a binary multiplier would produce,
/// Section III-A), so the OREG can be `N` bits smaller than in binary
/// designs. The accumulator saturates at its width bounds and records
/// whether saturation ever occurred, so experiments can quantify the
/// accuracy cost of a too-narrow register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryAccumulator {
    value: i64,
    width: u32,
    saturated: bool,
}

impl BinaryAccumulator {
    /// Creates a zeroed accumulator with a signed register of `width` bits
    /// (range `[-2^(width-1), 2^(width-1) - 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `2..=63`.
    #[must_use]
    pub fn new(width: u32) -> Self {
        assert!(
            (2..=63).contains(&width),
            "unsupported accumulator width {width}"
        );
        Self {
            value: 0,
            width,
            saturated: false,
        }
    }

    /// Adds a signed amount (e.g. ±1 per product bit, or a partial sum from
    /// the PE below), saturating at the register bounds.
    pub fn add(&mut self, amount: i64) {
        let min = -(1i64 << (self.width - 1));
        let max = (1i64 << (self.width - 1)) - 1;
        let sum = self.value.saturating_add(amount);
        if sum > max {
            self.value = max;
            self.saturated = true;
        } else if sum < min {
            self.value = min;
            self.saturated = true;
        } else {
            self.value = sum;
        }
    }

    /// Adds +1 or -1 for an asserted product bit with the given sign — the
    /// MUX + ADD path of Fig. 7.
    pub fn add_bit(&mut self, negative: bool) {
        self.add(if negative { -1 } else { 1 });
    }

    /// Current register value.
    #[must_use]
    pub fn value(&self) -> i64 {
        self.value
    }

    /// Register width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Whether any addition saturated.
    #[must_use]
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    /// Drains the register: returns the value and clears it (the OFM is
    /// streamed out and the OREG reused, step 4 of Fig. 7).
    pub fn drain(&mut self) -> i64 {
        let v = self.value;
        self.value = 0;
        self.saturated = false;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SobolSource;

    fn bs(s: &str) -> Bitstream {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn or_adder_saturates() {
        let a = bs("1100");
        let b = bs("1010");
        let sum = OrAdder.add(&a, &b).unwrap();
        assert_eq!(sum.count_ones(), 3); // 2 + 2 would need 4; OR gives 3.
    }

    #[test]
    fn mux_adder_averages() {
        let a = Bitstream::ones(256);
        let b = Bitstream::zeros(256);
        let sum = MuxAdder::new(SobolSource::dimension(0, 8))
            .add(&a, &b)
            .unwrap();
        assert!((sum.unipolar_value() - 0.5).abs() < 0.02);
    }

    #[test]
    fn mux_adder_rejects_mismatch() {
        let a = Bitstream::ones(8);
        let b = Bitstream::ones(9);
        assert!(MuxAdder::new(SobolSource::dimension(0, 8))
            .add(&a, &b)
            .is_err());
    }

    #[test]
    fn parallel_counter_counts() {
        let mut pc = ParallelCounter::new();
        pc.step(&[true, false, true]);
        pc.step(&[true, true, true]);
        assert_eq!(pc.total(), 5);
        assert_eq!(pc.cycles(), 2);
        pc.reset();
        assert_eq!(pc.total(), 0);
    }

    #[test]
    fn accumulator_adds_signed_bits() {
        let mut acc = BinaryAccumulator::new(8);
        for _ in 0..5 {
            acc.add_bit(false);
        }
        for _ in 0..2 {
            acc.add_bit(true);
        }
        assert_eq!(acc.value(), 3);
        assert!(!acc.saturated());
    }

    #[test]
    fn accumulator_saturates_at_width() {
        let mut acc = BinaryAccumulator::new(4); // range [-8, 7]
        acc.add(100);
        assert_eq!(acc.value(), 7);
        assert!(acc.saturated());
        acc.drain();
        acc.add(-100);
        assert_eq!(acc.value(), -8);
        assert!(acc.saturated());
    }

    #[test]
    fn accumulator_drain_clears() {
        let mut acc = BinaryAccumulator::new(8);
        acc.add(42);
        assert_eq!(acc.drain(), 42);
        assert_eq!(acc.value(), 0);
        assert!(!acc.saturated());
    }

    #[test]
    #[should_panic(expected = "unsupported accumulator width")]
    fn accumulator_rejects_width_one() {
        let _ = BinaryAccumulator::new(1);
    }
}
