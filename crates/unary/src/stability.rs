//! Normalized stability — the cross-level early-termination metric
//! (Wu, Yin & San Miguel, ASP-DAC 2021 \[72\], which Section II-B3 builds
//! its early-termination reliability argument on).
//!
//! A bitstream's *running value* after `t` bits is the fraction of ones
//! seen so far. The stream has **stabilised** at the first cycle `T`
//! after which the running value never strays more than `ε` from its
//! final value; the *normalized stability* is `1 − T / L`. Rate-coded
//! low-discrepancy streams stabilise early (high stability), which is why
//! they can be early-terminated with little accuracy loss; temporal
//! streams keep drifting until the very end (stability ≈ 0), which is why
//! the paper forbids terminating them.

use crate::bitstream::Bitstream;

/// The first cycle index `T` (1-based bit count) after which the running
/// unipolar value stays within `epsilon` of the stream's final value, and
/// the derived normalized stability `1 − T / L`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stability {
    /// Bits consumed before the value stabilised (0 means stable from the
    /// first bit).
    pub stabilization_bits: usize,
    /// Normalized stability in `[0, 1]`; larger is better.
    pub normalized: f64,
}

/// Measures the stability of a bitstream under the error bound `epsilon`.
///
/// Returns a stability of 1.0 for an empty stream (trivially stable).
///
/// # Panics
///
/// Panics if `epsilon` is negative.
///
/// # Example
///
/// ```
/// use usystolic_unary::stability::stability;
/// use usystolic_unary::Bitstream;
///
/// // An alternating stream reaches its final value 0.5 almost
/// // immediately — high stability.
/// let alternating: Bitstream = (0..64).map(|i| i % 2 == 0).collect();
/// let s = stability(&alternating, 0.05);
/// assert!(s.normalized > 0.6);
///
/// // A temporal (leading-ones) stream only settles at the very end.
/// let temporal: Bitstream = (0..64).map(|i| i < 32).collect();
/// let t = stability(&temporal, 0.05);
/// assert!(t.normalized < s.normalized);
/// ```
#[must_use]
pub fn stability(stream: &Bitstream, epsilon: f64) -> Stability {
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    let len = stream.len();
    if len == 0 {
        return Stability {
            stabilization_bits: 0,
            normalized: 1.0,
        };
    }
    let final_value = stream.unipolar_value();
    let mut ones = 0usize;
    // Find the last prefix whose running value violates the bound.
    let mut last_violation = 0usize;
    for (i, bit) in stream.iter().enumerate() {
        if bit {
            ones += 1;
        }
        let running = ones as f64 / (i + 1) as f64;
        if (running - final_value).abs() > epsilon {
            last_violation = i + 1;
        }
    }
    Stability {
        stabilization_bits: last_violation,
        normalized: 1.0 - last_violation as f64 / len as f64,
    }
}

/// Recommends the smallest effective bitwidth whose truncated running
/// value is within `epsilon` of the full-stream value — an offline ET
/// advisor in the spirit of the metric-based characterisation the paper
/// cites (\[69\], \[72\]).
///
/// Returns the full bitwidth when no earlier point qualifies.
///
/// # Panics
///
/// Panics if the stream length is not `2^(bitwidth-1)`.
#[must_use]
pub fn recommend_ebt(stream: &Bitstream, bitwidth: u32, epsilon: f64) -> u32 {
    let len = crate::stream_len(bitwidth);
    assert_eq!(
        stream.len() as u64,
        len,
        "stream length must match the bitwidth"
    );
    let final_value = stream.unipolar_value();
    for ebt in 1..bitwidth {
        let prefix_len = (1usize << (ebt - 1)).min(stream.len());
        let ones = stream.iter().take(prefix_len).filter(|&b| b).count();
        let running = ones as f64 / prefix_len as f64;
        if (running - final_value).abs() <= epsilon {
            return ebt;
        }
    }
    bitwidth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coding::{encode_unipolar, TemporalEncoder};
    use crate::rng::SobolSource;

    #[test]
    fn constant_streams_are_fully_stable() {
        let ones = Bitstream::ones(128);
        let s = stability(&ones, 0.01);
        assert_eq!(s.stabilization_bits, 0);
        assert!((s.normalized - 1.0).abs() < 1e-12);
        let zeros = Bitstream::zeros(128);
        assert!((stability(&zeros, 0.01).normalized - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_is_trivially_stable() {
        assert_eq!(stability(&Bitstream::new(), 0.1).normalized, 1.0);
    }

    #[test]
    fn rate_coding_is_more_stable_than_temporal() {
        // The structural reason rate coding early-terminates safely
        // (Section II-B3) and temporal coding does not.
        let magnitude = 77;
        let rate =
            encode_unipolar(magnitude, 8, SobolSource::dimension(0, 7)).expect("valid encode");
        let temporal = TemporalEncoder::unipolar(magnitude, 8).stream();
        let sr = stability(&rate, 0.05);
        let st = stability(&temporal, 0.05);
        assert!(
            sr.normalized > st.normalized + 0.2,
            "rate {} vs temporal {}",
            sr.normalized,
            st.normalized
        );
    }

    #[test]
    fn looser_bounds_raise_stability() {
        let rate = encode_unipolar(90, 8, SobolSource::dimension(1, 7)).expect("valid encode");
        let tight = stability(&rate, 0.01);
        let loose = stability(&rate, 0.2);
        assert!(loose.normalized >= tight.normalized);
    }

    #[test]
    fn recommend_ebt_finds_early_point_for_rate_coding() {
        let rate = encode_unipolar(64, 8, SobolSource::dimension(0, 7)).expect("valid encode");
        let ebt = recommend_ebt(&rate, 8, 0.05);
        assert!(
            ebt < 8,
            "rate coding should admit early termination, got EBT {ebt}"
        );
    }

    #[test]
    fn recommend_ebt_refuses_temporal_coding() {
        // A mid-range temporal stream's prefixes are all-ones — far from
        // the final value — so the advisor returns the full bitwidth.
        let temporal = TemporalEncoder::unipolar(64, 8).stream();
        assert_eq!(recommend_ebt(&temporal, 8, 0.05), 8);
    }

    #[test]
    #[should_panic(expected = "stream length")]
    fn recommend_ebt_checks_length() {
        let _ = recommend_ebt(&Bitstream::ones(10), 8, 0.1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_epsilon_rejected() {
        let _ = stability(&Bitstream::ones(4), -0.1);
    }
}
