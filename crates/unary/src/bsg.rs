//! Bitstream generators: plain (BSG) and conditional (C-BSG).
//!
//! The conditional bitstream generator is the key accuracy mechanism of the
//! uMUL (Fig. 4 of the paper): one operand's bitstream acts as the *enable*
//! of the RNG that generates the other operand's bitstream. The RNG only
//! advances on enabled cycles, which makes the generated stream conditioned
//! on the enable stream and drives the stochastic cross-correlation to zero
//! (Eq. 1: `SCC = 0 ⇔ C-BSG(B, R)`).

use crate::rng::NumberSource;

/// Plain comparator bitstream generator: compares a stationary magnitude
/// with a free-running number source every cycle.
#[derive(Debug, Clone)]
pub struct Bsg<S> {
    magnitude: u64,
    source: S,
}

impl<S: NumberSource> Bsg<S> {
    /// Creates a generator for `magnitude` over the given source.
    #[must_use]
    pub fn new(magnitude: u64, source: S) -> Self {
        Self { magnitude, source }
    }

    /// Emits the next bit, always advancing the source.
    pub fn next_bit(&mut self) -> bool {
        self.source.next() < self.magnitude
    }

    /// Resets the source to its initial state.
    pub fn reset(&mut self) {
        self.source.reset();
    }

    /// Updates the stationary magnitude (e.g. a new weight is preloaded).
    pub fn set_magnitude(&mut self, magnitude: u64) {
        self.magnitude = magnitude;
    }

    /// The stationary magnitude.
    #[must_use]
    pub fn magnitude(&self) -> u64 {
        self.magnitude
    }
}

/// Conditional bitstream generator (C-BSG, Fig. 4).
///
/// The source advances **only when the enable bit is 1**; on disabled
/// cycles the output is forced to 0. Feeding the IFM bitstream as the
/// enable of the weight RNG yields a product stream whose number of ones
/// over a full period is (nearly) exactly `|I|·|W| / 2^(N-1)` when the
/// source is low-discrepancy.
#[derive(Debug, Clone)]
pub struct ConditionalBsg<S> {
    magnitude: u64,
    source: S,
    enabled_cycles: u64,
}

impl<S: NumberSource> ConditionalBsg<S> {
    /// Creates a conditional generator for `magnitude` over the given
    /// source.
    #[must_use]
    pub fn new(magnitude: u64, source: S) -> Self {
        Self {
            magnitude,
            source,
            enabled_cycles: 0,
        }
    }

    /// Processes one cycle: if `enable` is set, advances the source and
    /// compares; otherwise emits 0 and holds the source.
    ///
    /// The returned bit is the AND-gate output of the uMUL: it is 1 only
    /// when the enable bit is 1 **and** the conditionally generated bit is
    /// 1.
    pub fn step(&mut self, enable: bool) -> bool {
        if !enable {
            return false;
        }
        self.enabled_cycles += 1;
        self.source.next() < self.magnitude
    }

    /// Number of cycles the source has been advanced (ones seen on the
    /// enable input).
    #[must_use]
    pub fn enabled_cycles(&self) -> u64 {
        self.enabled_cycles
    }

    /// Resets the source and the enabled-cycle counter.
    pub fn reset(&mut self) {
        self.source.reset();
        self.enabled_cycles = 0;
    }

    /// Updates the stationary magnitude without touching the source state.
    pub fn set_magnitude(&mut self, magnitude: u64) {
        self.magnitude = magnitude;
    }

    /// The stationary magnitude.
    #[must_use]
    pub fn magnitude(&self) -> u64 {
        self.magnitude
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::Bitstream;
    use crate::rng::{CounterSource, SobolSource};

    #[test]
    fn plain_bsg_counts_exactly_over_period() {
        let mut g = Bsg::new(100, SobolSource::dimension(0, 7));
        let ones = (0..128).filter(|_| g.next_bit()).count();
        assert_eq!(ones, 100);
    }

    #[test]
    fn cbsg_holds_source_when_disabled() {
        let mut g = ConditionalBsg::new(64, SobolSource::dimension(0, 7));
        assert!(!g.step(false));
        assert!(!g.step(false));
        assert_eq!(g.enabled_cycles(), 0);
        g.step(true);
        assert_eq!(g.enabled_cycles(), 1);
    }

    #[test]
    fn figure4_example() {
        // Fig. 4: SRC value 8/16 gated by enable stream of value 8/16
        // produces a 4/16 product stream. Reproduce with a counter source
        // so the "RNG" output is deterministic (0,1,2,... only on enabled
        // cycles); enable = alternating bits.
        let mut g = ConditionalBsg::new(8, CounterSource::new(4));
        let enable: Bitstream = "0101010101010101".chars().map(|c| c == '1').collect();
        let out: Bitstream = enable.iter().map(|e| g.step(e)).collect();
        // Counter runs 0..7 on the 8 enabled cycles; all are < 8 → every
        // enabled cycle emits 1? No: counter emits 0..7 < 8 → 8 ones. With
        // a *counter* the product degenerates to min(); use Sobol for the
        // accurate product below. Here we simply verify gating.
        assert_eq!(out.count_ones(), 8);
        assert_eq!(
            out.and(&enable).unwrap(),
            out,
            "output only on enabled cycles"
        );
    }

    #[test]
    fn cbsg_product_is_accurate_with_sobol() {
        // |I| = 77/128, |W| = 100/128 → product ones should be
        // round(77 * 100 / 128) = 60 ± 1 over the full 128-cycle stream.
        let mut enable_gen = Bsg::new(77, SobolSource::dimension(1, 7));
        let mut g = ConditionalBsg::new(100, SobolSource::dimension(0, 7));
        let mut ones = 0u64;
        for _ in 0..128 {
            let e = enable_gen.next_bit();
            if g.step(e) {
                ones += 1;
            }
        }
        let exact = 77.0 * 100.0 / 128.0;
        assert!((ones as f64 - exact).abs() <= 1.0, "{ones} vs {exact}");
    }

    #[test]
    fn cbsg_reset_clears_state() {
        let mut g = ConditionalBsg::new(5, SobolSource::dimension(0, 3));
        for i in 0..6 {
            g.step(i % 2 == 0);
        }
        g.reset();
        assert_eq!(g.enabled_cycles(), 0);
        // Replays identically after reset.
        let a: Vec<bool> = (0..8).map(|i| g.step(i % 3 != 0)).collect();
        g.reset();
        let b: Vec<bool> = (0..8).map(|i| g.step(i % 3 != 0)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn set_magnitude_swaps_weight() {
        let mut g = Bsg::new(0, SobolSource::dimension(0, 7));
        assert!(!g.next_bit());
        g.set_magnitude(128);
        assert_eq!(g.magnitude(), 128);
        assert!(g.next_bit(), "magnitude 2^(N-1) always compares true");
    }
}
