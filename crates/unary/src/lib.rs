//! Unary computing substrate for the uSystolic reproduction.
//!
//! This crate implements everything the paper's computing kernel is built
//! from (Section II-B of the paper):
//!
//! * [`bitstream`] — packed serial bitstreams, the data representation of
//!   unary computing.
//! * [`rng`] — deterministic number sources used by bitstream generators:
//!   a gray-code [Sobol](rng::SobolSource) low-discrepancy generator (the
//!   paper's RNG of choice, Section III-B), a maximal-length
//!   [LFSR](rng::LfsrSource) and a plain [counter](rng::CounterSource)
//!   for temporal coding.
//! * [`coding`] — rate and temporal coding of binary data into unipolar or
//!   bipolar bitstreams (Fig. 3) and decoding back.
//! * [`bsg`] — comparator-based bitstream generators, including the
//!   *conditional* bitstream generator (C-BSG) that underpins the accurate
//!   uMUL of Fig. 4.
//! * [`packed`] — word-packed bitstream generation: the same comparators
//!   evaluated 64 cycles per `u64` word over precomputed source
//!   sequences, bit-exact against the serial generators.
//! * [`mod@scc`] — the stochastic cross-correlation metric; `SCC == 0` is the
//!   necessary-and-sufficient condition for accurate unary multiplication
//!   (Eq. 1).
//! * [`mul`] — cycle-level unipolar and bipolar unary multipliers.
//! * [`add`] — unary accumulation structures (OR / MUX / parallel-counter)
//!   and the binary accumulator used by hybrid unary-binary designs.
//! * [`sign`] — sign-magnitude conversion helpers used at the array edge.
//! * [`et`] — early-termination policies and the *effective bitwidth*
//!   arithmetic of Section III-C.
//!
//! # Example
//!
//! Multiply two 8-bit magnitudes with the rate-coded C-BSG uMUL and compare
//! against the exact product:
//!
//! ```
//! use usystolic_unary::mul::UnipolarMul;
//! use usystolic_unary::rng::SobolSource;
//!
//! let bitwidth = 8; // bitstream length 2^(8-1) = 128
//! let mut m = UnipolarMul::new(100, bitwidth, SobolSource::dimension(0, bitwidth - 1));
//! // Drive the multiplier with a rate-coded enable stream for 77/128.
//! let mut ones = 0u32;
//! let mut enable = usystolic_unary::coding::RateEncoder::unipolar(77, bitwidth,
//!     SobolSource::dimension(1, bitwidth - 1));
//! for _ in 0..128 {
//!     let e = enable.next_bit();
//!     if m.step(e) { ones += 1; }
//! }
//! let approx = f64::from(ones) / 128.0;
//! let exact = (100.0 / 128.0) * (77.0 / 128.0);
//! assert!((approx - exact).abs() < 0.02);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod add;
pub mod bitstream;
pub mod bsg;
pub mod coding;
pub mod div;
pub mod et;
pub mod mul;
pub mod packed;
pub mod rng;
pub mod scc;
pub mod sign;
pub mod stability;

pub use bitstream::Bitstream;
pub use coding::{Polarity, RateEncoder, TemporalEncoder};
pub use et::EarlyTermination;
pub use mul::{BipolarMul, UnipolarMul};
pub use rng::{CounterSource, LfsrSource, NumberSource, SobolSource};
pub use scc::scc;
pub use sign::SignMagnitude;

/// Errors produced by the unary substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UnaryError {
    /// A magnitude does not fit in the requested bitwidth.
    MagnitudeOverflow {
        /// The offending magnitude.
        magnitude: u64,
        /// The data bitwidth it must fit in (as `2^(bitwidth-1)`).
        bitwidth: u32,
    },
    /// A bitwidth outside the supported `2..=MAX_BITWIDTH` range was given.
    UnsupportedBitwidth(u32),
    /// Two bitstreams of different lengths were combined.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
}

impl core::fmt::Display for UnaryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            UnaryError::MagnitudeOverflow {
                magnitude,
                bitwidth,
            } => write!(
                f,
                "magnitude {magnitude} exceeds 2^({bitwidth}-1) for {bitwidth}-bit data"
            ),
            UnaryError::UnsupportedBitwidth(w) => {
                write!(
                    f,
                    "unsupported data bitwidth {w} (expected 2..={MAX_BITWIDTH})"
                )
            }
            UnaryError::LengthMismatch { left, right } => {
                write!(f, "bitstream length mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for UnaryError {}

/// Largest supported data bitwidth.
///
/// Bitstream lengths grow as `2^(N-1)`, so 24-bit data (8 Mi-bit streams) is
/// a practical ceiling for the functional simulator.
pub const MAX_BITWIDTH: u32 = 24;

/// Unary bitstream length for `bitwidth`-bit signed data in sign-magnitude
/// form: `2^(bitwidth-1)` (Section III-A of the paper).
///
/// # Panics
///
/// Panics if `bitwidth` is outside `2..=MAX_BITWIDTH`.
#[must_use]
pub fn stream_len(bitwidth: u32) -> u64 {
    assert!(
        (2..=MAX_BITWIDTH).contains(&bitwidth),
        "unsupported bitwidth {bitwidth}"
    );
    1u64 << (bitwidth - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_len_matches_paper() {
        // An 8-bit operand becomes a 128-bit unipolar stream (Section III-A).
        assert_eq!(stream_len(8), 128);
        assert_eq!(stream_len(16), 32_768);
        assert_eq!(stream_len(2), 2);
    }

    #[test]
    #[should_panic(expected = "unsupported bitwidth")]
    fn stream_len_rejects_zero() {
        let _ = stream_len(0);
    }

    #[test]
    fn error_display_is_meaningful() {
        let e = UnaryError::MagnitudeOverflow {
            magnitude: 300,
            bitwidth: 8,
        };
        assert!(e.to_string().contains("300"));
        let e = UnaryError::LengthMismatch { left: 4, right: 8 };
        assert!(e.to_string().contains("4"));
        let e = UnaryError::UnsupportedBitwidth(99);
        assert!(e.to_string().contains("99"));
    }
}
