//! Packed serial bitstreams.
//!
//! A [`Bitstream`] is the fundamental datum of unary computing: a finite
//! sequence of bits whose *fraction of ones* encodes a value (Fig. 3 of the
//! paper). Bits are stored packed, 64 per word, in stream order (bit 0 is
//! the first cycle).

use crate::UnaryError;

/// A finite serial bitstream, packed 64 bits per word.
///
/// The value of a bitstream depends on its polarity interpretation, see
/// [`crate::coding::Polarity`]. `Bitstream` itself is polarity-agnostic; it
/// only knows its bits.
///
/// # Example
///
/// ```
/// use usystolic_unary::Bitstream;
///
/// let bs: Bitstream = [true, false, true, true].into_iter().collect();
/// assert_eq!(bs.len(), 4);
/// assert_eq!(bs.count_ones(), 3);
/// assert!((bs.unipolar_value() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bitstream {
    words: Vec<u64>,
    len: usize,
}

impl Bitstream {
    /// Creates an empty bitstream.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an all-zero bitstream of `len` bits.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an all-one bitstream of `len` bits.
    #[must_use]
    pub fn ones(len: usize) -> Self {
        let mut bs = Self {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        bs.mask_tail();
        bs
    }

    /// Creates a bitstream with capacity reserved for `len` bits.
    #[must_use]
    pub fn with_capacity(len: usize) -> Self {
        Self {
            words: Vec::with_capacity(len.div_ceil(64)),
            len: 0,
        }
    }

    /// Creates a bitstream of `len` bits directly from packed words (64
    /// bits per word, bit 0 of word 0 is the first cycle) — the entry
    /// point of the word-packed generators in [`crate::packed`].
    ///
    /// `words` is resized to exactly `len.div_ceil(64)` words (missing
    /// words are zero-filled, surplus words dropped) and any bits of the
    /// last word beyond `len` are masked off, so `count_ones`-based
    /// reductions never see stray tail bits.
    #[must_use]
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        words.resize(len.div_ceil(64), 0);
        let mut bs = Self { words, len };
        bs.mask_tail();
        bs
    }

    /// The packed backing words (64 bits per word, in stream order). Bits
    /// of the last word at positions `>= len % 64` are always zero.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of 1-bits among the first `n` bits of the stream (prefix
    /// popcount): full words via `count_ones`, plus a masked tail word.
    ///
    /// `n` is clamped to the stream length, so `count_ones_first(len())`
    /// equals [`count_ones`](Self::count_ones).
    #[must_use]
    pub fn count_ones_first(&self, n: usize) -> u64 {
        let n = n.min(self.len);
        let full = n / 64;
        let mut ones = popcount_words(&self.words[..full]);
        let tail = n % 64;
        if tail != 0 {
            ones += u64::from((self.words[full] & ((1u64 << tail) - 1)).count_ones());
        }
        ones
    }

    /// Number of bits in the stream.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stream holds no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit to the end of the stream.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        let offset = self.len % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << offset;
        }
        self.len += 1;
    }

    /// Returns the bit at `index`, or `None` past the end.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<bool> {
        if index >= self.len {
            return None;
        }
        Some(self.words[index / 64] >> (index % 64) & 1 == 1)
    }

    /// Sets the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn set(&mut self, index: usize, bit: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let mask = 1u64 << (index % 64);
        if bit {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Number of 1-bits in the stream.
    #[must_use]
    pub fn count_ones(&self) -> u64 {
        popcount_words(&self.words)
    }

    /// Unipolar value of the stream: `P(1)` (Section II-B1, `V_u = P`).
    ///
    /// Returns `0.0` for an empty stream.
    #[must_use]
    pub fn unipolar_value(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.count_ones() as f64 / self.len as f64
    }

    /// Bipolar value of the stream: `2 P(1) - 1` (Section II-B1, `V_b`).
    ///
    /// Returns `-1.0` for an empty stream (by convention of `P = 0`).
    #[must_use]
    pub fn bipolar_value(&self) -> f64 {
        2.0 * self.unipolar_value() - 1.0
    }

    /// Bitwise AND of two equal-length streams (the naive unipolar
    /// multiplier of Section II-B2).
    ///
    /// # Errors
    ///
    /// Returns [`UnaryError::LengthMismatch`] if lengths differ.
    pub fn and(&self, other: &Self) -> Result<Self, UnaryError> {
        self.zip_words(other, |a, b| a & b)
    }

    /// Bitwise OR of two equal-length streams (a saturating unary adder).
    ///
    /// # Errors
    ///
    /// Returns [`UnaryError::LengthMismatch`] if lengths differ.
    pub fn or(&self, other: &Self) -> Result<Self, UnaryError> {
        self.zip_words(other, |a, b| a | b)
    }

    /// Bitwise XOR of two equal-length streams (a bipolar multiplier takes
    /// the XNOR; XOR is its complement).
    ///
    /// # Errors
    ///
    /// Returns [`UnaryError::LengthMismatch`] if lengths differ.
    pub fn xor(&self, other: &Self) -> Result<Self, UnaryError> {
        self.zip_words(other, |a, b| a ^ b)
    }

    /// Bitwise XNOR of two equal-length streams (the naive *bipolar*
    /// multiplier).
    ///
    /// # Errors
    ///
    /// Returns [`UnaryError::LengthMismatch`] if lengths differ.
    pub fn xnor(&self, other: &Self) -> Result<Self, UnaryError> {
        let mut out = self.zip_words(other, |a, b| !(a ^ b))?;
        out.mask_tail();
        Ok(out)
    }

    /// Logical complement of the stream.
    #[must_use]
    pub fn not(&self) -> Self {
        let mut out = Self {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// Number of positions where both streams are 1 (overlap count used by
    /// the SCC metric).
    ///
    /// # Errors
    ///
    /// Returns [`UnaryError::LengthMismatch`] if lengths differ.
    pub fn overlap(&self, other: &Self) -> Result<u64, UnaryError> {
        if self.len != other.len {
            return Err(UnaryError::LengthMismatch {
                left: self.len,
                right: other.len,
            });
        }
        Ok(self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| u64::from((a & b).count_ones()))
            .sum())
    }

    /// Iterator over the bits in stream order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { bs: self, index: 0 }
    }

    /// Truncates the stream to its first `len` bits (an early-terminated
    /// view of the stream). A no-op if `len >= self.len()`.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len {
            return;
        }
        self.len = len;
        self.words.truncate(len.div_ceil(64));
        self.mask_tail();
    }

    /// Rotates the stream left by `mid` bits (used to model the one-cycle
    /// lag of the spatial-temporal bitstream reuse pipeline).
    #[must_use]
    pub fn rotate_left(&self, mid: usize) -> Self {
        if self.len == 0 {
            return self.clone();
        }
        let mid = mid % self.len;
        let mut out = Self::with_capacity(self.len);
        for i in 0..self.len {
            out.push(self.get((i + mid) % self.len).unwrap_or(false));
        }
        out
    }

    /// Delays the stream by `lag` cycles, inserting `fill` bits at the front
    /// and dropping the tail; models a chain of D flip-flops (IDFF / RREG in
    /// Fig. 7 of the paper).
    #[must_use]
    pub fn delayed(&self, lag: usize, fill: bool) -> Self {
        let mut out = Self::with_capacity(self.len);
        for i in 0..self.len {
            if i < lag {
                out.push(fill);
            } else {
                out.push(self.get(i - lag).unwrap_or(false));
            }
        }
        out
    }

    fn zip_words(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Result<Self, UnaryError> {
        if self.len != other.len {
            return Err(UnaryError::LengthMismatch {
                left: self.len,
                right: other.len,
            });
        }
        Ok(Self {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            len: self.len,
        })
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// Multi-word popcount reduction: four independent accumulator chains per
/// iteration, so wide streams (bitwidth ≥ 8 → ≥ 2 words, uGEMM-H → 4+)
/// keep several `popcnt` units in flight instead of serialising every word
/// behind one add — the multi-word layout ROADMAP's kernel item asks for.
fn popcount_words(words: &[u64]) -> u64 {
    let mut chunks = words.chunks_exact(4);
    let (mut a, mut b, mut c, mut d) = (0u64, 0u64, 0u64, 0u64);
    for quad in chunks.by_ref() {
        a += u64::from(quad[0].count_ones());
        b += u64::from(quad[1].count_ones());
        c += u64::from(quad[2].count_ones());
        d += u64::from(quad[3].count_ones());
    }
    let mut rest = 0u64;
    for word in chunks.remainder() {
        rest += u64::from(word.count_ones());
    }
    a + b + c + d + rest
}

impl FromIterator<bool> for Bitstream {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut bs = Bitstream::new();
        for bit in iter {
            bs.push(bit);
        }
        bs
    }
}

impl Extend<bool> for Bitstream {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for bit in iter {
            self.push(bit);
        }
    }
}

impl<'a> IntoIterator for &'a Bitstream {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl core::fmt::Display for Bitstream {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for bit in self.iter() {
            f.write_str(if bit { "1" } else { "0" })?;
        }
        Ok(())
    }
}

/// Borrowing iterator over the bits of a [`Bitstream`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    bs: &'a Bitstream,
    index: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let bit = self.bs.get(self.index)?;
        self.index += 1;
        Some(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.bs.len - self.index;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_str(s: &str) -> Bitstream {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn push_and_get_roundtrip() {
        let mut bs = Bitstream::new();
        let pattern = [true, false, true, true, false];
        for &b in &pattern {
            bs.push(b);
        }
        assert_eq!(bs.len(), 5);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(bs.get(i), Some(b));
        }
        assert_eq!(bs.get(5), None);
    }

    #[test]
    fn crosses_word_boundary() {
        let bits: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let bs: Bitstream = bits.iter().copied().collect();
        assert_eq!(bs.len(), 200);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(bs.get(i), Some(b), "bit {i}");
        }
        assert_eq!(bs.count_ones(), bits.iter().filter(|&&b| b).count() as u64);
    }

    #[test]
    fn unipolar_and_bipolar_values() {
        let bs = from_str("0101010101010101"); // paper Fig. 3a: P = 0.5
        assert!((bs.unipolar_value() - 0.5).abs() < 1e-12);
        assert!(bs.bipolar_value().abs() < 1e-12);
    }

    #[test]
    fn and_matches_figure_4() {
        // Fig. 4 example: 8/16 AND 8/16 (correctly decorrelated) -> 4/16.
        let a = from_str("0101010101010101");
        let b = from_str("0100010001000100"); // 4/16 after C-BSG gating
        let p = a.and(&b).unwrap();
        assert_eq!(p.count_ones(), 4);
    }

    #[test]
    fn xnor_is_bipolar_multiplier_on_extremes() {
        let one = Bitstream::ones(32); // bipolar +1
        let minus_one = Bitstream::zeros(32); // bipolar -1
        let p = one.xnor(&minus_one).unwrap();
        assert!((p.bipolar_value() + 1.0).abs() < 1e-12);
        let p = minus_one.xnor(&minus_one).unwrap();
        assert!((p.bipolar_value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let a = Bitstream::ones(8);
        let b = Bitstream::ones(9);
        assert_eq!(
            a.and(&b).unwrap_err(),
            UnaryError::LengthMismatch { left: 8, right: 9 }
        );
        assert!(a.overlap(&b).is_err());
    }

    #[test]
    fn not_masks_tail_bits() {
        let bs = Bitstream::zeros(10);
        let inv = bs.not();
        assert_eq!(inv.count_ones(), 10);
        assert_eq!(inv.len(), 10);
    }

    #[test]
    fn ones_masks_tail() {
        let bs = Bitstream::ones(70);
        assert_eq!(bs.count_ones(), 70);
    }

    #[test]
    fn truncate_is_early_termination() {
        let mut bs = from_str("1111000011110000");
        bs.truncate(8);
        assert_eq!(bs.len(), 8);
        assert_eq!(bs.count_ones(), 4);
        bs.truncate(100); // no-op
        assert_eq!(bs.len(), 8);
    }

    #[test]
    fn delayed_inserts_fill_bits() {
        let bs = from_str("1010");
        let d = bs.delayed(1, false);
        assert_eq!(d.to_string(), "0101");
        let d2 = bs.delayed(2, true);
        assert_eq!(d2.to_string(), "1110");
    }

    #[test]
    fn rotate_left_wraps() {
        let bs = from_str("1000");
        assert_eq!(bs.rotate_left(1).to_string(), "0001");
        assert_eq!(bs.rotate_left(4).to_string(), "1000");
        assert_eq!(bs.rotate_left(5).to_string(), "0001");
    }

    #[test]
    fn display_roundtrip() {
        let s = "011010011";
        assert_eq!(from_str(s).to_string(), s);
    }

    #[test]
    fn iterator_has_exact_size() {
        let bs = Bitstream::ones(17);
        let it = bs.iter();
        assert_eq!(it.len(), 17);
        assert_eq!(it.count(), 17);
    }

    #[test]
    fn overlap_counts_joint_ones() {
        let a = from_str("1100");
        let b = from_str("1010");
        assert_eq!(a.overlap(&b).unwrap(), 1);
    }

    /// Lengths straddling the 64-bit word boundary, where a stray tail bit
    /// would silently corrupt every `count_ones`-based reduction.
    const EDGE_LENGTHS: [usize; 5] = [0, 63, 64, 65, 128];

    #[test]
    fn tail_masking_at_word_boundaries() {
        for len in EDGE_LENGTHS {
            // `ones`, `not` and `xnor` all write full words and then mask.
            let ones = Bitstream::ones(len);
            assert_eq!(ones.count_ones(), len as u64, "ones({len})");
            let zeros = Bitstream::zeros(len);
            assert_eq!(zeros.not().count_ones(), len as u64, "not/zeros({len})");
            assert_eq!(
                zeros.xnor(&zeros).unwrap().count_ones(),
                len as u64,
                "xnor({len})"
            );
            // No bit beyond `len` is set in the backing words.
            for (i, w) in ones.words().iter().enumerate() {
                let valid = (len - i * 64).min(64);
                let mask = if valid == 64 {
                    u64::MAX
                } else {
                    (1u64 << valid) - 1
                };
                assert_eq!(w & !mask, 0, "stray tail bits at len {len}, word {i}");
            }
        }
    }

    #[test]
    fn zip_words_at_word_boundaries() {
        for len in EDGE_LENGTHS {
            let a: Bitstream = (0..len).map(|i| i % 2 == 0).collect();
            let b: Bitstream = (0..len).map(|i| i % 3 == 0).collect();
            let and = a.and(&b).unwrap();
            let or = a.or(&b).unwrap();
            let xor = a.xor(&b).unwrap();
            let expect = |f: fn(bool, bool) -> bool| {
                (0..len).filter(|&i| f(i % 2 == 0, i % 3 == 0)).count() as u64
            };
            assert_eq!(and.count_ones(), expect(|x, y| x && y), "and({len})");
            assert_eq!(or.count_ones(), expect(|x, y| x || y), "or({len})");
            assert_eq!(xor.count_ones(), expect(|x, y| x ^ y), "xor({len})");
        }
    }

    #[test]
    fn from_iterator_at_word_boundaries() {
        for len in EDGE_LENGTHS {
            let bits: Vec<bool> = (0..len).map(|i| i % 5 != 0).collect();
            let bs: Bitstream = bits.iter().copied().collect();
            assert_eq!(bs.len(), len);
            assert_eq!(
                bs.count_ones(),
                bits.iter().filter(|&&b| b).count() as u64,
                "len {len}"
            );
            assert_eq!(bs.words().len(), len.div_ceil(64));
        }
    }

    #[test]
    fn from_words_masks_and_resizes() {
        // Surplus set bits beyond `len` must be dropped.
        let bs = Bitstream::from_words(vec![u64::MAX, u64::MAX, u64::MAX], 65);
        assert_eq!(bs.len(), 65);
        assert_eq!(bs.words().len(), 2);
        assert_eq!(bs.count_ones(), 65);
        // Missing words are zero-filled.
        let bs = Bitstream::from_words(vec![0b1011], 128);
        assert_eq!(bs.words().len(), 2);
        assert_eq!(bs.count_ones(), 3);
        // Round-trips through the bit accessor.
        assert_eq!(bs.get(0), Some(true));
        assert_eq!(bs.get(1), Some(true));
        assert_eq!(bs.get(2), Some(false));
        assert_eq!(bs.get(127), Some(false));
        // Empty stream.
        let bs = Bitstream::from_words(vec![7], 0);
        assert!(bs.is_empty());
        assert_eq!(bs.count_ones(), 0);
    }

    #[test]
    fn prefix_popcount_matches_scalar() {
        for len in EDGE_LENGTHS {
            let bits: Vec<bool> = (0..len).map(|i| (i * 7) % 3 == 0).collect();
            let bs: Bitstream = bits.iter().copied().collect();
            for n in [0, 1, 62, 63, 64, 65, 100, len, len + 7] {
                let expect = bits.iter().take(n).filter(|&&b| b).count() as u64;
                assert_eq!(bs.count_ones_first(n), expect, "len {len}, prefix {n}");
            }
            assert_eq!(bs.count_ones_first(bs.len()), bs.count_ones());
        }
    }

    #[test]
    fn multiword_popcount_at_chunk_boundaries() {
        // The 4-words-per-chain reduction must agree with a scalar count at
        // every remainder class of the chunk width (0..=3 leftover words)
        // and across the chunk boundary itself.
        for len in [0usize, 191, 192, 255, 256, 257, 320, 449, 512] {
            let bits: Vec<bool> = (0..len).map(|i| (i * 11) % 5 < 2).collect();
            let bs: Bitstream = bits.iter().copied().collect();
            let expect = bits.iter().filter(|&&b| b).count() as u64;
            assert_eq!(bs.count_ones(), expect, "len {len}");
            for n in [0, 1, 63, 64, 65, 255, 256, 257, len] {
                let prefix = bits.iter().take(n).filter(|&&b| b).count() as u64;
                assert_eq!(bs.count_ones_first(n), prefix, "len {len}, prefix {n}");
            }
        }
    }
}
