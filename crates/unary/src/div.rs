//! In-stream stochastic division via correlation (CORDIV) — the
//! companion kernel the paper cites as \[71\] ("In-Stream Stochastic
//! Division and Square Root via Correlation", Wu & San Miguel, DAC 2019).
//!
//! Division is the classic hard operation of unary computing. CORDIV
//! exploits *maximal* correlation between dividend and divisor streams
//! (the opposite regime from the uMUL's zero-SCC requirement): when both
//! streams are generated from the same number source, a 1 in the dividend
//! implies a 1 in the divisor (for `a ≤ b`), and
//!
//! ```text
//! out = divisor_bit ? dividend_bit : last_quotient_bit
//! ```
//!
//! converges to `P(a) / P(b)`. The single history flip-flop makes the
//! hardware as trivial as the uMUL's AND gate.

/// The CORDIV in-stream divider: one multiplexer and one D flip-flop.
#[derive(Debug, Clone, Default)]
pub struct CorDiv {
    last_quotient: bool,
    ones: u64,
    cycles: u64,
}

impl CorDiv {
    /// Creates a divider with a cleared history bit.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes one cycle of (dividend, divisor) bits, returning the
    /// quotient bit.
    ///
    /// For accurate results the two streams must be **maximally
    /// correlated** (generated from the same number source) and the
    /// dividend value must not exceed the divisor value.
    pub fn step(&mut self, dividend: bool, divisor: bool) -> bool {
        let out = if divisor {
            dividend
        } else {
            self.last_quotient
        };
        if divisor {
            self.last_quotient = dividend;
        }
        self.ones += u64::from(out);
        self.cycles += 1;
        out
    }

    /// Running quotient estimate `P(out)`.
    #[must_use]
    pub fn quotient(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.ones as f64 / self.cycles as f64
    }

    /// Cycles processed.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Resets the divider.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Divides two magnitudes by streaming maximally-correlated encodings
/// through a [`CorDiv`] for one full period.
///
/// # Panics
///
/// Panics if `dividend > divisor`, if `divisor` is zero, or if the
/// magnitudes exceed `2^(bitwidth-1)`.
#[must_use]
pub fn divide(dividend: u64, divisor: u64, bitwidth: u32) -> f64 {
    use crate::rng::{NumberSource, SobolSource};
    let max = crate::stream_len(bitwidth);
    assert!(divisor > 0, "division by zero");
    assert!(dividend <= divisor, "CORDIV requires dividend <= divisor");
    assert!(divisor <= max, "divisor exceeds range");
    // The same source drives both comparators: maximal correlation.
    let mut src = SobolSource::dimension(0, bitwidth - 1);
    let mut div = CorDiv::new();
    for _ in 0..max {
        let r = src.next();
        div.step(r < dividend, r < divisor);
    }
    div.quotient()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divides_simple_ratios() {
        // CORDIV's history bit assumes the divisor's ones are spread
        // through the stream, so representative (non-vanishing) operand
        // magnitudes are used — the regime DNN activations live in.
        for (a, b) in [(32u64, 64u64), (64, 128), (48, 96), (100, 100), (0, 77)] {
            let q = divide(a, b, 8);
            let exact = a as f64 / b as f64;
            // CORDIV's published mean error is a few percent; allow the
            // same here.
            assert!(
                (q - exact).abs() < 0.08,
                "{a}/{b}: got {q}, expected {exact}"
            );
        }
    }

    #[test]
    fn accuracy_improves_with_bitwidth() {
        // Constant ratio 0.75 across widths.
        let err = |bits: u32| {
            let max = crate::stream_len(bits);
            (divide(3 * max / 8, max / 2, bits) - 0.75).abs()
        };
        assert!(err(12) <= err(6) + 1e-9);
        assert!(err(12) < 0.02);
    }

    #[test]
    fn divider_state_machine() {
        let mut d = CorDiv::new();
        assert_eq!(d.quotient(), 0.0);
        // Divisor 1 passes the dividend through.
        assert!(d.step(true, true));
        // Divisor 0 replays the stored quotient bit.
        assert!(d.step(false, false));
        assert_eq!(d.cycles(), 2);
        d.reset();
        assert_eq!(d.cycles(), 0);
        // After reset, divisor-0 cycles replay the cleared history.
        assert!(!d.step(true, false));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_divisor_panics() {
        let _ = divide(1, 0, 8);
    }

    #[test]
    #[should_panic(expected = "dividend <= divisor")]
    fn oversized_dividend_panics() {
        let _ = divide(100, 50, 8);
    }
}
