//! Memory traffic accounting per GEMM layer.
//!
//! Traffic is derived from the weight-stationary tile mapping, at two
//! levels:
//!
//! * **array-side traffic** — what the PEs actually consume/produce:
//!   expanded (im2col) IFM streams, one weight preload per tile, and
//!   partial-sum write/read pairs per row fold. This is what the SRAM
//!   serves when present.
//! * **DRAM traffic** — with SRAM, only compulsory transfers reach DRAM
//!   (raw IFM once per column-fold group when it does not fit, each weight
//!   once, the final OFM once, plus partial-sum spills when the working
//!   set overflows); without SRAM, the array-side traffic hits DRAM
//!   directly — which is exactly why binary designs cannot drop the SRAM
//!   and crawling uSystolic can (Section V-B).

use crate::memory::MemoryHierarchy;
use usystolic_core::{SystolicConfig, TileMapping};
use usystolic_gemm::GemmConfig;

/// Byte counts per GEMM variable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VariableTraffic {
    /// Input-feature-map bytes.
    pub ifm: u64,
    /// Weight bytes.
    pub weight: u64,
    /// Output-feature-map bytes (partial + final).
    pub ofm: u64,
}

impl VariableTraffic {
    /// Total bytes across the three variables.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.ifm + self.weight + self.ofm
    }
}

/// The complete traffic picture of one layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayerTraffic {
    /// Bytes served by the on-chip SRAM (zero when SRAM is absent).
    pub sram: VariableTraffic,
    /// Bytes served by the off-chip DRAM.
    pub dram: VariableTraffic,
}

/// Bytes per element at the array's input interfaces (IFM and weights).
#[must_use]
pub fn input_elem_bytes(bitwidth: u32) -> u64 {
    u64::from(bitwidth.div_ceil(8))
}

/// Bytes per OFM element.
///
/// Binary designs produce `2N`-bit products/partials; the HUB designs
/// (uSystolic and uGEMM-H) keep the output at the input resolution
/// (Section III-A), halving OFM traffic.
#[must_use]
pub fn output_elem_bytes(config: &SystolicConfig) -> u64 {
    use usystolic_core::ComputingScheme as S;
    match config.scheme() {
        S::BinaryParallel | S::BinarySerial => u64::from((2 * config.bitwidth()).div_ceil(8)),
        S::UGemmHybrid | S::UnaryRate | S::UnaryTemporal => {
            u64::from(config.bitwidth().div_ceil(8))
        }
    }
}

/// Computes the layer's traffic under the given array and memory
/// configuration.
#[must_use]
pub fn layer_traffic(
    gemm: &GemmConfig,
    config: &SystolicConfig,
    memory: &MemoryHierarchy,
) -> LayerTraffic {
    let map = TileMapping::new(gemm, config.rows(), config.cols());
    let in_bytes = input_elem_bytes(config.bitwidth());
    let out_bytes = output_elem_bytes(config);

    let m = map.m() as u64;
    let k = map.k() as u64;
    let n = map.n() as u64;
    let row_folds = map.row_folds() as u64;
    let col_folds = map.col_folds() as u64;

    // Array-side (streamed) volumes.
    let ifm_streamed = m * k * col_folds * in_bytes; // every column fold re-streams all vectors
    let weight_streamed = k * n * in_bytes; // each weight preloaded exactly once
                                            // Partial sums: per column fold, each output written once per row fold
                                            // and read back once per subsequent row fold.
    let ofm_streamed = m * n * (2 * row_folds - 1) * out_bytes;

    // Compulsory (raw) volumes.
    let ifm_raw = gemm.input_elems() * in_bytes;
    let ofm_final = m * n * out_bytes;

    let traffic = match memory.sram {
        Some(sram) => {
            // SRAM serves the streamed traffic; DRAM sees compulsory
            // transfers plus capacity-miss refetches/spills.
            let ifm_fits = ifm_raw <= sram.capacity_bytes;
            let dram_ifm = if ifm_fits {
                ifm_raw
            } else {
                ifm_raw * col_folds
            };
            // Weights always stream through once (weight-stationary reuse
            // happens in the PEs, not the SRAM).
            let dram_weight = weight_streamed;
            // Partial-sum working set per column fold.
            let ofm_ws = m * map.cols_in_fold(0) as u64 * out_bytes;
            let ofm_fits = ofm_ws <= sram.capacity_bytes;
            let dram_ofm = if ofm_fits { ofm_final } else { ofm_streamed };
            LayerTraffic {
                sram: VariableTraffic {
                    ifm: ifm_streamed + dram_ifm, // reads by array + fills from DRAM
                    weight: 2 * weight_streamed,  // fill + drain to the array
                    ofm: ofm_streamed + dram_ofm,
                },
                dram: VariableTraffic {
                    ifm: dram_ifm,
                    weight: dram_weight,
                    ofm: dram_ofm,
                },
            }
        }
        None => LayerTraffic {
            sram: VariableTraffic::default(),
            dram: VariableTraffic {
                ifm: ifm_streamed,
                weight: weight_streamed,
                ofm: ofm_streamed,
            },
        },
    };
    usystolic_obs::with(|o| {
        o.metrics.count("sim.dram_bytes", traffic.dram.total());
        o.metrics.count("sim.dram_ifm_bytes", traffic.dram.ifm);
        o.metrics
            .count("sim.dram_weight_bytes", traffic.dram.weight);
        o.metrics.count("sim.dram_ofm_bytes", traffic.dram.ofm);
        o.metrics.count("sim.sram_bytes", traffic.sram.total());
    });
    traffic
}

impl usystolic_obs::ToJson for VariableTraffic {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("ifm", self.ifm.to_json()),
            ("weight", self.weight.to_json()),
            ("ofm", self.ofm.to_json()),
            ("total", self.total().to_json()),
        ])
    }
}

impl usystolic_obs::ToJson for LayerTraffic {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("sram", self.sram.to_json()),
            ("dram", self.dram.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usystolic_core::ComputingScheme;

    fn edge(scheme: ComputingScheme) -> SystolicConfig {
        SystolicConfig::edge(scheme, 8)
    }

    #[test]
    fn element_bytes() {
        assert_eq!(input_elem_bytes(8), 1);
        assert_eq!(input_elem_bytes(16), 2);
        assert_eq!(output_elem_bytes(&edge(ComputingScheme::BinaryParallel)), 2);
        assert_eq!(output_elem_bytes(&edge(ComputingScheme::UnaryRate)), 1);
        assert_eq!(output_elem_bytes(&edge(ComputingScheme::UGemmHybrid)), 1);
    }

    #[test]
    fn no_sram_routes_streams_to_dram() {
        let gemm = GemmConfig::matmul(4, 24, 28).unwrap();
        let cfg = edge(ComputingScheme::UnaryRate);
        let t = layer_traffic(&gemm, &cfg, &MemoryHierarchy::no_sram());
        assert_eq!(t.sram.total(), 0);
        // 2 row folds, 2 col folds.
        assert_eq!(t.dram.ifm, 4 * 24 * 2);
        assert_eq!(t.dram.weight, 24 * 28);
        assert_eq!(t.dram.ofm, 4 * 28 * 3);
    }

    #[test]
    fn sram_reduces_dram_traffic() {
        let gemm = GemmConfig::conv(27, 27, 96, 5, 5, 1, 64).unwrap();
        let cfg = edge(ComputingScheme::BinaryParallel);
        let with = layer_traffic(&gemm, &cfg, &MemoryHierarchy::edge_with_sram());
        let without = layer_traffic(&gemm, &cfg, &MemoryHierarchy::no_sram());
        assert!(with.dram.total() < without.dram.total());
        assert!(with.sram.total() > 0);
    }

    #[test]
    fn ifm_refetched_when_it_overflows_sram() {
        // Raw IFM of 256 KB exceeds the 64 KB edge SRAM slice.
        let gemm = GemmConfig::conv(512, 512, 1, 3, 3, 1, 64).unwrap();
        let cfg = edge(ComputingScheme::BinaryParallel);
        let t = layer_traffic(&gemm, &cfg, &MemoryHierarchy::edge_with_sram());
        let map = TileMapping::new(&gemm, 12, 14);
        assert_eq!(t.dram.ifm, gemm.input_elems() * map.col_folds() as u64);
    }

    #[test]
    fn binary_ofm_traffic_doubles_unary() {
        let gemm = GemmConfig::matmul(8, 12, 14).unwrap();
        let mem = MemoryHierarchy::no_sram();
        let b = layer_traffic(&gemm, &edge(ComputingScheme::BinaryParallel), &mem);
        let u = layer_traffic(&gemm, &edge(ComputingScheme::UnaryRate), &mem);
        assert_eq!(b.dram.ofm, 2 * u.dram.ofm);
        assert_eq!(b.dram.ifm, u.dram.ifm);
    }

    #[test]
    fn totals_add_up() {
        let v = VariableTraffic {
            ifm: 1,
            weight: 2,
            ofm: 3,
        };
        assert_eq!(v.total(), 6);
    }
}
