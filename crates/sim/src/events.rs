//! The network pipeline as discrete-event components.
//!
//! [`Simulator::simulate_network`](crate::Simulator::simulate_network)
//! no longer walks layers in a bare `for` loop: it schedules a
//! [`SimEvent::LayerStart`] for the first layer on a `usystolic_des`
//! calendar and lets a [`NetworkDriver`] component chain the rest. Each
//! start simulates its layer (same obs side effects, same order as the
//! old loop), pushes the [`LayerReport`] onto an output [`Port`], and
//! schedules the [`SimEvent::LayerDone`] at the layer's runtime horizon;
//! the done event starts the next layer, so the calendar's final
//! timestamp is the network makespan in cycles.
//!
//! `LayerDone` carries class 0 and `LayerStart` class 1: a completion
//! always dispatches before a start scheduled at the same cycle, the
//! same discipline the serving engine uses for its completion/arrival
//! races.

use crate::report::{LayerReport, Simulator};
use usystolic_des::{Component, Context, Event, Port, Scheduled};
use usystolic_gemm::GemmConfig;

/// Events of the layer pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// Layer `index` finished; the next layer may start this cycle.
    LayerDone {
        /// Index into the network's layer list.
        index: usize,
    },
    /// Begin simulating layer `index`.
    LayerStart {
        /// Index into the network's layer list.
        index: usize,
    },
}

impl Event for SimEvent {
    fn class(&self) -> u8 {
        match self {
            SimEvent::LayerDone { .. } => 0,
            SimEvent::LayerStart { .. } => 1,
        }
    }
}

/// Drives one network through the calendar, layer by layer.
///
/// Borrows the simulator and the layer list; collects per-layer reports
/// on an internal port in execution order.
pub struct NetworkDriver<'a> {
    simulator: &'a Simulator,
    layers: &'a [GemmConfig],
    reports: Port<LayerReport>,
}

impl<'a> NetworkDriver<'a> {
    /// Wires a driver over a simulator and its network.
    #[must_use]
    pub fn new(simulator: &'a Simulator, layers: &'a [GemmConfig]) -> Self {
        Self {
            simulator,
            layers,
            reports: Port::new("network.reports"),
        }
    }

    /// Drains the collected reports in layer order.
    #[must_use]
    pub fn into_reports(mut self) -> Vec<LayerReport> {
        let mut out = Vec::with_capacity(self.reports.len());
        while let Some(r) = self.reports.recv() {
            out.push(r);
        }
        out
    }
}

impl Component<SimEvent> for NetworkDriver<'_> {
    fn name(&self) -> &'static str {
        "network"
    }

    fn handle(&mut self, event: Scheduled<SimEvent>, ctx: &mut Context<'_, SimEvent>) {
        match event.event {
            SimEvent::LayerStart { index } => {
                let report = self.simulator.simulate(&self.layers[index]);
                ctx.schedule_in(report.timing.runtime_cycles, SimEvent::LayerDone { index });
                self.reports.send(report);
            }
            SimEvent::LayerDone { index } => {
                let next = index + 1;
                if next < self.layers.len() {
                    ctx.schedule_in(0, SimEvent::LayerStart { index: next });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryHierarchy;
    use usystolic_core::{ComputingScheme, SystolicConfig};
    use usystolic_des::{Engine, EventQueue, Fidelity};

    fn layers() -> Vec<GemmConfig> {
        vec![
            GemmConfig::conv(31, 31, 96, 5, 5, 1, 256).unwrap(),
            GemmConfig::matmul(1, 9216, 4096).unwrap(),
        ]
    }

    #[test]
    fn driver_reproduces_the_plain_loop() {
        let sim = Simulator::new(
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8),
            MemoryHierarchy::no_sram(),
        );
        let direct: Vec<LayerReport> = layers().iter().map(|l| sim.simulate(l)).collect();
        let driven = sim.simulate_network(&layers());
        assert_eq!(driven, direct);
    }

    #[test]
    fn calendar_ends_at_the_network_makespan() {
        let sim = Simulator::new(
            SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
            MemoryHierarchy::edge_with_sram(),
        );
        let net = layers();
        let expected: u64 = net
            .iter()
            .map(|l| sim.simulate(l).timing.runtime_cycles)
            .sum();
        let mut events = EventQueue::new();
        events.schedule(0, SimEvent::LayerStart { index: 0 });
        let mut driver = NetworkDriver::new(&sim, &net);
        let makespan = Engine::new(sim.fidelity()).run(&mut events, &mut driver);
        assert_eq!(makespan, expected);
        assert_eq!(driver.into_reports().len(), net.len());
    }

    #[test]
    fn packed_fidelity_is_bit_identical_per_layer() {
        let cycle = Simulator::new(
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
                .with_mul_cycles(128)
                .unwrap(),
            MemoryHierarchy::edge_with_sram(),
        );
        let packed = cycle.with_fidelity(Fidelity::Packed);
        assert_eq!(
            cycle.simulate_network(&layers()),
            packed.simulate_network(&layers())
        );
    }

    #[test]
    fn analytic_fidelity_never_slows_a_layer_down() {
        // Dropping the SRAM service bound can only shorten runtimes.
        let exact = Simulator::new(
            SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
            MemoryHierarchy::edge_with_sram(),
        );
        let analytic = exact.with_fidelity(Fidelity::Analytic);
        for (e, a) in exact
            .simulate_network(&layers())
            .iter()
            .zip(analytic.simulate_network(&layers()))
        {
            assert!(a.timing.runtime_cycles <= e.timing.runtime_cycles);
        }
    }
}
