//! Memory hierarchy models (Section IV-C3 of the paper).
//!
//! Three on-chip SRAMs (one per GEMM variable: IFM, weight, OFM) may be
//! present or absent; the off-chip memory is a DDR3 DRAM. Capacities
//! follow the paper: the edge configuration splits Eyeriss's 192 KB evenly
//! (64 KB per variable), the cloud configuration splits the TPU's 24 MB
//! (8 MB per variable); both use 16 banks per SRAM. The DRAM is a 1 GB
//! DDR3 chip with 8 banks and 8192-bit pages.

/// The three GEMM variables that own memory resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variable {
    /// Input feature map.
    Ifm,
    /// Weights.
    Weight,
    /// Output feature map (partial sums and final outputs).
    Ofm,
}

impl Variable {
    /// All three variables.
    pub const ALL: [Variable; 3] = [Variable::Ifm, Variable::Weight, Variable::Ofm];
}

impl core::fmt::Display for Variable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Variable::Ifm => "IFM",
            Variable::Weight => "W",
            Variable::Ofm => "OFM",
        })
    }
}

/// One double-buffered on-chip SRAM serving a single variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SramSpec {
    /// Capacity in bytes (per variable).
    pub capacity_bytes: u64,
    /// Bank count (16 in both paper configurations).
    pub banks: u32,
    /// Bytes deliverable per bank per cycle (wide TPU-style reads).
    pub word_bytes: u32,
}

impl SramSpec {
    /// Peak bandwidth in bytes per cycle.
    #[must_use]
    pub fn bytes_per_cycle(&self) -> u64 {
        u64::from(self.banks) * u64::from(self.word_bytes)
    }
}

/// The off-chip DRAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramSpec {
    /// Capacity in bytes (1 GB in the paper).
    pub capacity_bytes: u64,
    /// Bank count (8 in the paper).
    pub banks: u32,
    /// Page size in bits (8192 in the paper).
    pub page_bits: u32,
    /// Peak bandwidth in bytes per core cycle at the array clock.
    pub peak_bytes_per_cycle: f64,
    /// Streaming efficiency: fraction of peak sustained for the systolic
    /// access patterns (row-buffer hits across 8 banks).
    pub efficiency: f64,
}

impl DramSpec {
    /// The paper's DRAM: 22 nm 1 GB DDR3, 8 banks, 8192-bit page. The
    /// sustained rate models a 64-bit DDR3-1600 part (12.8 GB/s peak, 75 %
    /// streaming efficiency) seen from a 400 MHz core clock.
    #[must_use]
    pub fn ddr3_1gb() -> Self {
        Self {
            capacity_bytes: 1 << 30,
            banks: 8,
            page_bits: 8192,
            peak_bytes_per_cycle: 32.0, // 12.8 GB/s at 400 MHz
            efficiency: 0.75,
        }
    }

    /// Sustained bandwidth in bytes per cycle.
    #[must_use]
    pub fn sustained_bytes_per_cycle(&self) -> f64 {
        self.peak_bytes_per_cycle * self.efficiency
    }
}

/// A complete memory hierarchy: optional per-variable SRAMs plus DRAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryHierarchy {
    /// The per-variable SRAM, or `None` when on-chip SRAM is eliminated.
    pub sram: Option<SramSpec>,
    /// The off-chip DRAM.
    pub dram: DramSpec,
}

/// Total on-chip SRAM of the edge configuration (Eyeriss: 108 KB global +
/// 168 × 0.5 KB scratchpads = 192 KB).
pub const EDGE_SRAM_TOTAL: u64 = 192 * 1024;
/// Total on-chip SRAM of the cloud configuration (TPU: 24 MB).
pub const CLOUD_SRAM_TOTAL: u64 = 24 * 1024 * 1024;

impl MemoryHierarchy {
    /// Edge hierarchy with SRAM: 64 KB per variable, 16 banks.
    #[must_use]
    pub fn edge_with_sram() -> Self {
        Self {
            sram: Some(SramSpec {
                capacity_bytes: EDGE_SRAM_TOTAL / 3,
                banks: 16,
                word_bytes: 8,
            }),
            dram: DramSpec::ddr3_1gb(),
        }
    }

    /// Cloud hierarchy with SRAM: 8 MB per variable, 16 banks, wide words.
    #[must_use]
    pub fn cloud_with_sram() -> Self {
        Self {
            sram: Some(SramSpec {
                capacity_bytes: CLOUD_SRAM_TOTAL / 3,
                banks: 16,
                word_bytes: 32,
            }),
            dram: DramSpec::ddr3_1gb(),
        }
    }

    /// A hierarchy with on-chip SRAM eliminated (Section III-E): the array
    /// feeds straight from DRAM.
    #[must_use]
    pub fn no_sram() -> Self {
        Self {
            sram: None,
            dram: DramSpec::ddr3_1gb(),
        }
    }

    /// A hierarchy with an arbitrary per-variable SRAM capacity — the
    /// continuous design space Section V-G points at ("a small-sized
    /// on-chip SRAM can reduce the off-chip DRAM access cost"). Zero
    /// bytes eliminates the SRAM.
    #[must_use]
    pub fn with_sram_capacity(bytes_per_variable: u64) -> Self {
        if bytes_per_variable == 0 {
            return Self::no_sram();
        }
        Self {
            sram: Some(SramSpec {
                capacity_bytes: bytes_per_variable,
                banks: 16,
                word_bytes: 8,
            }),
            dram: DramSpec::ddr3_1gb(),
        }
    }

    /// Whether on-chip SRAM is present.
    #[must_use]
    pub fn has_sram(&self) -> bool {
        self.sram.is_some()
    }
}

impl usystolic_obs::ToJson for Variable {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::Str(self.to_string())
    }
}

impl usystolic_obs::ToJson for SramSpec {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("capacity_bytes", self.capacity_bytes.to_json()),
            ("banks", self.banks.to_json()),
            ("word_bytes", self.word_bytes.to_json()),
        ])
    }
}

impl usystolic_obs::ToJson for DramSpec {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("capacity_bytes", self.capacity_bytes.to_json()),
            ("banks", self.banks.to_json()),
            ("page_bits", self.page_bits.to_json()),
            ("peak_bytes_per_cycle", self.peak_bytes_per_cycle.to_json()),
            ("efficiency", self.efficiency.to_json()),
        ])
    }
}

impl usystolic_obs::ToJson for MemoryHierarchy {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("sram", self.sram.to_json()),
            ("dram", self.dram.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_splits_eyeriss_sram_evenly() {
        let m = MemoryHierarchy::edge_with_sram();
        let s = m.sram.unwrap();
        assert_eq!(s.capacity_bytes, 64 * 1024);
        assert_eq!(s.banks, 16);
    }

    #[test]
    fn cloud_splits_tpu_sram_evenly() {
        let m = MemoryHierarchy::cloud_with_sram();
        assert_eq!(m.sram.unwrap().capacity_bytes, 8 * 1024 * 1024);
    }

    #[test]
    fn dram_matches_paper_parameters() {
        let d = DramSpec::ddr3_1gb();
        assert_eq!(d.capacity_bytes, 1 << 30);
        assert_eq!(d.banks, 8);
        assert_eq!(d.page_bits, 8192);
        assert!(d.sustained_bytes_per_cycle() > 0.0);
        assert!(d.sustained_bytes_per_cycle() <= d.peak_bytes_per_cycle);
    }

    #[test]
    fn no_sram_eliminates_sram() {
        let m = MemoryHierarchy::no_sram();
        assert!(!m.has_sram());
        assert!(MemoryHierarchy::edge_with_sram().has_sram());
    }

    #[test]
    fn sram_bandwidth_is_banks_times_word() {
        let s = SramSpec {
            capacity_bytes: 1024,
            banks: 16,
            word_bytes: 8,
        };
        assert_eq!(s.bytes_per_cycle(), 128);
    }

    #[test]
    fn variables_display() {
        assert_eq!(Variable::Ifm.to_string(), "IFM");
        assert_eq!(Variable::ALL.len(), 3);
    }
}
