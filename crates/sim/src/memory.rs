//! Memory hierarchy models (Section IV-C3 of the paper).
//!
//! Three on-chip SRAMs (one per GEMM variable: IFM, weight, OFM) may be
//! present or absent; the off-chip memory is a DDR3 DRAM. Capacities
//! follow the paper: the edge configuration splits Eyeriss's 192 KB evenly
//! (64 KB per variable), the cloud configuration splits the TPU's 24 MB
//! (8 MB per variable); both use 16 banks per SRAM. The DRAM is a 1 GB
//! DDR3 chip with 8 banks and 8192-bit pages.

/// The three GEMM variables that own memory resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variable {
    /// Input feature map.
    Ifm,
    /// Weights.
    Weight,
    /// Output feature map (partial sums and final outputs).
    Ofm,
}

impl Variable {
    /// All three variables.
    pub const ALL: [Variable; 3] = [Variable::Ifm, Variable::Weight, Variable::Ofm];
}

impl core::fmt::Display for Variable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Variable::Ifm => "IFM",
            Variable::Weight => "W",
            Variable::Ofm => "OFM",
        })
    }
}

/// One double-buffered on-chip SRAM serving a single variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SramSpec {
    /// Capacity in bytes (per variable).
    pub capacity_bytes: u64,
    /// Bank count (16 in both paper configurations).
    pub banks: u32,
    /// Bytes deliverable per bank per cycle (wide TPU-style reads).
    pub word_bytes: u32,
}

impl SramSpec {
    /// Peak bandwidth in bytes per cycle.
    #[must_use]
    pub fn bytes_per_cycle(&self) -> u64 {
        u64::from(self.banks) * u64::from(self.word_bytes)
    }
}

/// The off-chip DRAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramSpec {
    /// Capacity in bytes (1 GB in the paper).
    pub capacity_bytes: u64,
    /// Bank count (8 in the paper).
    pub banks: u32,
    /// Page size in bits (8192 in the paper).
    pub page_bits: u32,
    /// Peak bandwidth in bytes per core cycle at the array clock.
    pub peak_bytes_per_cycle: f64,
    /// Streaming efficiency: fraction of peak sustained for the systolic
    /// access patterns (row-buffer hits across 8 banks).
    pub efficiency: f64,
}

impl DramSpec {
    /// The paper's DRAM: 22 nm 1 GB DDR3, 8 banks, 8192-bit page. The
    /// sustained rate models a 64-bit DDR3-1600 part (12.8 GB/s peak, 75 %
    /// streaming efficiency) seen from a 400 MHz core clock.
    #[must_use]
    pub fn ddr3_1gb() -> Self {
        Self {
            capacity_bytes: 1 << 30,
            banks: 8,
            page_bits: 8192,
            peak_bytes_per_cycle: 32.0, // 12.8 GB/s at 400 MHz
            efficiency: 0.75,
        }
    }

    /// Sustained bandwidth in bytes per cycle.
    #[must_use]
    pub fn sustained_bytes_per_cycle(&self) -> f64 {
        self.peak_bytes_per_cycle * self.efficiency
    }
}

/// A complete memory hierarchy: optional per-variable SRAMs plus DRAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryHierarchy {
    /// The per-variable SRAM, or `None` when on-chip SRAM is eliminated.
    pub sram: Option<SramSpec>,
    /// The off-chip DRAM.
    pub dram: DramSpec,
}

/// Total on-chip SRAM of the edge configuration (Eyeriss: 108 KB global +
/// 168 × 0.5 KB scratchpads = 192 KB).
pub const EDGE_SRAM_TOTAL: u64 = 192 * 1024;
/// Total on-chip SRAM of the cloud configuration (TPU: 24 MB).
pub const CLOUD_SRAM_TOTAL: u64 = 24 * 1024 * 1024;

impl MemoryHierarchy {
    /// Edge hierarchy with SRAM: 64 KB per variable, 16 banks.
    #[must_use]
    pub fn edge_with_sram() -> Self {
        Self {
            sram: Some(SramSpec {
                capacity_bytes: EDGE_SRAM_TOTAL / 3,
                banks: 16,
                word_bytes: 8,
            }),
            dram: DramSpec::ddr3_1gb(),
        }
    }

    /// Cloud hierarchy with SRAM: 8 MB per variable, 16 banks, wide words.
    #[must_use]
    pub fn cloud_with_sram() -> Self {
        Self {
            sram: Some(SramSpec {
                capacity_bytes: CLOUD_SRAM_TOTAL / 3,
                banks: 16,
                word_bytes: 32,
            }),
            dram: DramSpec::ddr3_1gb(),
        }
    }

    /// A hierarchy with on-chip SRAM eliminated (Section III-E): the array
    /// feeds straight from DRAM.
    #[must_use]
    pub fn no_sram() -> Self {
        Self {
            sram: None,
            dram: DramSpec::ddr3_1gb(),
        }
    }

    /// A hierarchy with an arbitrary per-variable SRAM capacity — the
    /// continuous design space Section V-G points at ("a small-sized
    /// on-chip SRAM can reduce the off-chip DRAM access cost"). Zero
    /// bytes eliminates the SRAM.
    #[must_use]
    pub fn with_sram_capacity(bytes_per_variable: u64) -> Self {
        if bytes_per_variable == 0 {
            return Self::no_sram();
        }
        Self {
            sram: Some(SramSpec {
                capacity_bytes: bytes_per_variable,
                banks: 16,
                word_bytes: 8,
            }),
            dram: DramSpec::ddr3_1gb(),
        }
    }

    /// Whether on-chip SRAM is present.
    #[must_use]
    pub fn has_sram(&self) -> bool {
        self.sram.is_some()
    }
}

/// Deterministic word-corruption hook for memory-resident operands.
///
/// Models retention/transfer upsets in the DRAM (or an SRAM bank) holding
/// a GEMM variable: each stored word of `word_bits` bits is upset with
/// probability `word_ber`, and an upset flips exactly one uniformly
/// chosen bit (the single-bit-upset model DRAM ECC literature uses).
///
/// Corruption is a pure function of `(seed, region, index)` — callers may
/// query words in any order, any number of times, and always see the same
/// mask, which is what keeps fault injection bit-identical across kernel
/// paths and worker counts. A zero mask means the word is clean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WordCorruption {
    /// Seed of the corruption pattern.
    pub seed: u64,
    /// Per-word upset probability in `[0, 1]`.
    pub word_ber: f64,
    /// Bits per stored word (the operand bitwidth).
    pub word_bits: u32,
}

impl WordCorruption {
    /// A corruption model upsetting `word_bits`-bit words with
    /// probability `word_ber` under `seed`.
    #[must_use]
    pub fn new(seed: u64, word_ber: f64, word_bits: u32) -> Self {
        Self {
            seed,
            word_ber,
            word_bits,
        }
    }

    /// The XOR mask for word `index` of `region` (zero when the word is
    /// clean). Deterministic and random-access: the per-word RNG stream
    /// is keyed by `(seed, region, index)`.
    #[must_use]
    pub fn mask_for(&self, region: Variable, index: u64) -> u64 {
        if self.word_ber <= 0.0 || self.word_bits == 0 {
            return 0;
        }
        let region_key = match region {
            Variable::Ifm => 1u64,
            Variable::Weight => 2,
            Variable::Ofm => 3,
        };
        let key = self
            .seed
            .wrapping_add(region_key.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let mut rng = usystolic_unary::rng::SplitMix64::new(key);
        if self.word_ber >= 1.0 || rng.next_f64() < self.word_ber {
            1u64 << rng.below(u64::from(self.word_bits))
        } else {
            0
        }
    }

    /// Applies the mask of every word in `words` (treated as region
    /// `region`, indexed from 0) in place, returning how many words were
    /// corrupted.
    pub fn corrupt(&self, region: Variable, words: &mut [u64]) -> u64 {
        let mut hit = 0;
        for (i, w) in words.iter_mut().enumerate() {
            let mask = self.mask_for(region, i as u64);
            if mask != 0 {
                *w ^= mask;
                hit += 1;
            }
        }
        hit
    }
}

impl usystolic_obs::ToJson for WordCorruption {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("seed", self.seed.to_json()),
            ("word_ber", self.word_ber.to_json()),
            ("word_bits", self.word_bits.to_json()),
        ])
    }
}

impl usystolic_obs::ToJson for Variable {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::Str(self.to_string())
    }
}

impl usystolic_obs::ToJson for SramSpec {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("capacity_bytes", self.capacity_bytes.to_json()),
            ("banks", self.banks.to_json()),
            ("word_bytes", self.word_bytes.to_json()),
        ])
    }
}

impl usystolic_obs::ToJson for DramSpec {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("capacity_bytes", self.capacity_bytes.to_json()),
            ("banks", self.banks.to_json()),
            ("page_bits", self.page_bits.to_json()),
            ("peak_bytes_per_cycle", self.peak_bytes_per_cycle.to_json()),
            ("efficiency", self.efficiency.to_json()),
        ])
    }
}

impl usystolic_obs::ToJson for MemoryHierarchy {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("sram", self.sram.to_json()),
            ("dram", self.dram.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_splits_eyeriss_sram_evenly() {
        let m = MemoryHierarchy::edge_with_sram();
        let s = m.sram.unwrap();
        assert_eq!(s.capacity_bytes, 64 * 1024);
        assert_eq!(s.banks, 16);
    }

    #[test]
    fn cloud_splits_tpu_sram_evenly() {
        let m = MemoryHierarchy::cloud_with_sram();
        assert_eq!(m.sram.unwrap().capacity_bytes, 8 * 1024 * 1024);
    }

    #[test]
    fn dram_matches_paper_parameters() {
        let d = DramSpec::ddr3_1gb();
        assert_eq!(d.capacity_bytes, 1 << 30);
        assert_eq!(d.banks, 8);
        assert_eq!(d.page_bits, 8192);
        assert!(d.sustained_bytes_per_cycle() > 0.0);
        assert!(d.sustained_bytes_per_cycle() <= d.peak_bytes_per_cycle);
    }

    #[test]
    fn no_sram_eliminates_sram() {
        let m = MemoryHierarchy::no_sram();
        assert!(!m.has_sram());
        assert!(MemoryHierarchy::edge_with_sram().has_sram());
    }

    #[test]
    fn sram_bandwidth_is_banks_times_word() {
        let s = SramSpec {
            capacity_bytes: 1024,
            banks: 16,
            word_bytes: 8,
        };
        assert_eq!(s.bytes_per_cycle(), 128);
    }

    #[test]
    fn variables_display() {
        assert_eq!(Variable::Ifm.to_string(), "IFM");
        assert_eq!(Variable::ALL.len(), 3);
    }

    #[test]
    fn corruption_is_deterministic_and_random_access() {
        let c = WordCorruption::new(7, 0.25, 8);
        // Same (region, index) always gives the same mask, in any order.
        let forward: Vec<u64> = (0..256).map(|i| c.mask_for(Variable::Weight, i)).collect();
        let backward: Vec<u64> = (0..256)
            .rev()
            .map(|i| c.mask_for(Variable::Weight, i))
            .collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        // Regions decorrelate.
        let ifm: Vec<u64> = (0..256).map(|i| c.mask_for(Variable::Ifm, i)).collect();
        assert_ne!(forward, ifm);
        // Upsets are single-bit and land inside the word.
        for m in forward.iter().filter(|&&m| m != 0) {
            assert_eq!(m.count_ones(), 1);
            assert!(*m < 1 << 8);
        }
        // Rate roughly matches word_ber (coarse: 256 draws at 25%).
        let hits = forward.iter().filter(|&&m| m != 0).count();
        assert!((20..=110).contains(&hits), "{hits} upsets of 256");
    }

    #[test]
    fn corruption_edge_rates() {
        let clean = WordCorruption::new(1, 0.0, 8);
        assert!((0..64).all(|i| clean.mask_for(Variable::Weight, i) == 0));
        let always = WordCorruption::new(1, 1.0, 8);
        assert!((0..64).all(|i| always.mask_for(Variable::Weight, i) != 0));
        let mut words = vec![0u64; 64];
        assert_eq!(always.corrupt(Variable::Weight, &mut words), 64);
        assert!(words.iter().all(|&w| w.count_ones() == 1));
        // Zero-width words can never corrupt.
        assert_eq!(WordCorruption::new(1, 1.0, 0).mask_for(Variable::Ifm, 0), 0);
    }
}
