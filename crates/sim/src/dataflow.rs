//! Dataflow comparison: weight-stationary vs input-stationary.
//!
//! The paper fixes the weight-stationary (WS) dataflow (Section II-A), but
//! footnote 1 observes that C-BSG "allows the dataflow to be either input
//! or weight stationary". This module models the input-stationary (IS)
//! alternative at the timing/traffic level, quantifying when each wins:
//!
//! * **WS** pins a `K×N` weight tile and streams the `M` input vectors —
//!   efficient when the *stationary* `N` dimension fills the array
//!   columns (FC layers, where `N` is in the thousands);
//! * **IS** pins a `K×M` input tile and streams the `N` weight vectors —
//!   efficient when `M ≫ N` (early conv layers with many pixels but few
//!   output channels, which leave a WS array's columns mostly idle).
//!
//! Either way the winner is the dataflow whose stationary dimension
//! utilises the columns best — the quantified version of "DNN dataflow
//! choice is overrated" \[73\]: for the bulk of AlexNet's layers both
//! dataflows land within a small factor.

use crate::memory::MemoryHierarchy;
use crate::traffic::{input_elem_bytes, output_elem_bytes, LayerTraffic, VariableTraffic};
use usystolic_core::SystolicConfig;
use usystolic_gemm::GemmConfig;

/// The stationary operand of the systolic schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// Weights stay in the PEs; inputs stream (the paper's choice).
    WeightStationary,
    /// Inputs stay in the PEs; weights stream (footnote 1's alternative).
    InputStationary,
}

impl core::fmt::Display for Dataflow {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Dataflow::WeightStationary => "weight-stationary",
            Dataflow::InputStationary => "input-stationary",
        })
    }
}

/// The generalised fold structure: `stationary_cols` values are pinned per
/// tile and `streamed` vectors pass through each tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Folds {
    row_folds: u64,
    col_folds: u64,
    last_rows: u64,
    last_cols: u64,
    rows: u64,
    cols: u64,
    streamed: u64,
}

fn folds(gemm: &GemmConfig, config: &SystolicConfig, dataflow: Dataflow) -> Folds {
    let k = gemm.reduction_len() as u64;
    let m = gemm.output_pixels() as u64;
    let n = gemm.output_channels() as u64;
    let (stationary_cols, streamed) = match dataflow {
        Dataflow::WeightStationary => (n, m),
        Dataflow::InputStationary => (m, n),
    };
    let rows = config.rows() as u64;
    let cols = config.cols() as u64;
    Folds {
        row_folds: k.div_ceil(rows),
        col_folds: stationary_cols.div_ceil(cols),
        last_rows: k - (k.div_ceil(rows) - 1) * rows,
        last_cols: stationary_cols - (stationary_cols.div_ceil(cols) - 1) * cols,
        rows,
        cols,
        streamed,
    }
}

/// Stall-free compute cycles under the chosen dataflow.
#[must_use]
pub fn ideal_cycles_with(gemm: &GemmConfig, config: &SystolicConfig, dataflow: Dataflow) -> u64 {
    let f = folds(gemm, config, dataflow);
    let mac = config.mac_cycles();
    let mut total = 0u64;
    for rf in 0..f.row_folds {
        let r = if rf + 1 == f.row_folds {
            f.last_rows
        } else {
            f.rows
        };
        for cf in 0..f.col_folds {
            let c = if cf + 1 == f.col_folds {
                f.last_cols
            } else {
                f.cols
            };
            total += r + f.streamed * mac + (r + c).saturating_sub(2);
        }
    }
    total
}

/// Streamed DRAM traffic under the chosen dataflow (no-SRAM accounting, as
/// the unary designs run).
#[must_use]
pub fn layer_traffic_with(
    gemm: &GemmConfig,
    config: &SystolicConfig,
    dataflow: Dataflow,
) -> LayerTraffic {
    let f = folds(gemm, config, dataflow);
    let in_bytes = input_elem_bytes(config.bitwidth());
    let out_bytes = output_elem_bytes(config);
    let k = gemm.reduction_len() as u64;
    let m = gemm.output_pixels() as u64;
    let n = gemm.output_channels() as u64;
    let dram = match dataflow {
        Dataflow::WeightStationary => VariableTraffic {
            ifm: m * k * f.col_folds * in_bytes,
            weight: k * n * in_bytes,
            ofm: m * n * (2 * f.row_folds - 1) * out_bytes,
        },
        Dataflow::InputStationary => VariableTraffic {
            // Inputs are the preloaded (stationary) operand: once each.
            ifm: m * k * in_bytes,
            // Weights stream: every input-column fold re-streams them.
            weight: k * n * f.col_folds * in_bytes,
            ofm: m * n * (2 * f.row_folds - 1) * out_bytes,
        },
    };
    LayerTraffic {
        sram: VariableTraffic::default(),
        dram,
    }
}

/// Runtime cycles under the chosen dataflow against a shared memory
/// hierarchy (no-SRAM): max of compute and DRAM service.
#[must_use]
pub fn runtime_cycles_with(
    gemm: &GemmConfig,
    config: &SystolicConfig,
    memory: &MemoryHierarchy,
    dataflow: Dataflow,
) -> u64 {
    let ideal = ideal_cycles_with(gemm, config, dataflow);
    let traffic = layer_traffic_with(gemm, config, dataflow);
    let dram =
        (traffic.dram.total() as f64 / memory.dram.sustained_bytes_per_cycle()).ceil() as u64;
    ideal.max(dram)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usystolic_core::ComputingScheme;

    fn edge() -> SystolicConfig {
        SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
            .with_mul_cycles(128)
            .expect("valid EBT")
    }

    #[test]
    fn ws_matches_the_base_model() {
        // The generalised WS path must agree with the dedicated model.
        let gemm = GemmConfig::conv(15, 15, 64, 3, 3, 1, 96).expect("valid layer");
        let cfg = edge();
        assert_eq!(
            ideal_cycles_with(&gemm, &cfg, Dataflow::WeightStationary),
            crate::runtime::ideal_cycles(&gemm, &cfg)
        );
        let base = crate::traffic::layer_traffic(&gemm, &cfg, &MemoryHierarchy::no_sram());
        let gen = layer_traffic_with(&gemm, &cfg, Dataflow::WeightStationary);
        assert_eq!(base.dram, gen.dram);
    }

    #[test]
    fn ws_wins_on_batch1_fc_layers() {
        // FC with M=1: the IS array pins a single input column (1/14th
        // utilisation) and re-streams all weights per row fold; WS fills
        // its columns with the 1024 output channels.
        let fc = GemmConfig::matmul(1, 1024, 1024).expect("valid layer");
        let cfg = edge();
        let ws = ideal_cycles_with(&fc, &cfg, Dataflow::WeightStationary);
        let is = ideal_cycles_with(&fc, &cfg, Dataflow::InputStationary);
        assert!(
            ws < is / 4,
            "WS {ws} should be far below IS {is} for batch-1 FC"
        );
    }

    #[test]
    fn is_wins_on_few_channel_conv_layers() {
        // Conv with M ≫ N: WS leaves most columns idle (only 8 output
        // channels); IS pins the abundant pixels instead.
        let conv = GemmConfig::conv(31, 31, 16, 5, 5, 1, 8).expect("valid layer");
        let cfg = edge();
        let ws = ideal_cycles_with(&conv, &cfg, Dataflow::WeightStationary);
        let is = ideal_cycles_with(&conv, &cfg, Dataflow::InputStationary);
        assert!(is < ws, "IS {is} should beat WS {ws} for few-channel conv");
    }

    #[test]
    fn traffic_mirrors_the_stationary_operand() {
        let gemm = GemmConfig::matmul(40, 48, 56).expect("valid layer");
        let cfg = edge();
        let ws = layer_traffic_with(&gemm, &cfg, Dataflow::WeightStationary);
        let is = layer_traffic_with(&gemm, &cfg, Dataflow::InputStationary);
        // WS reads each weight once but re-streams inputs per column
        // fold; IS is the exact mirror.
        assert_eq!(ws.dram.weight, 48 * 56);
        assert_eq!(is.dram.ifm, 40 * 48);
        assert!(ws.dram.ifm > is.dram.ifm);
        assert!(is.dram.weight > ws.dram.weight);
    }

    #[test]
    fn runtime_covers_memory_service() {
        let gemm = GemmConfig::matmul(1, 512, 512).expect("valid layer");
        let cfg = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
        let mem = MemoryHierarchy::no_sram();
        for df in [Dataflow::WeightStationary, Dataflow::InputStationary] {
            let rt = runtime_cycles_with(&gemm, &cfg, &mem, df);
            assert!(rt >= ideal_cycles_with(&gemm, &cfg, df), "{df}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Dataflow::WeightStationary.to_string(), "weight-stationary");
        assert_eq!(Dataflow::InputStationary.to_string(), "input-stationary");
    }
}
