//! Synchronisation-slack analysis (Sections III-A and V-H).
//!
//! "Long MAC cycles allow to better hide timing fluctuation of data
//! synchronization in the FIFO, even without on-chip SRAM" (§III-A), and
//! at the system level the "simple runtime control can hide packet
//! routing variation in the interconnection" (§V-H). This module makes
//! that slack concrete: a PE only stalls when its next operand arrives
//! later than the *slack* its MAC interval leaves after the transfer
//! itself, so a design tolerates any delivery jitter up to that slack.

use usystolic_core::SystolicConfig;

/// The synchronisation-slack budget of a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlackBudget {
    /// Cycles between consecutive operand deliveries to a PE (the MAC
    /// interval).
    pub interval_cycles: u64,
    /// Cycles the transfer itself needs at the interface.
    pub transfer_cycles: u64,
}

impl SlackBudget {
    /// Derives the budget from an array configuration: one operand per
    /// MAC interval, one interface cycle per transfer.
    #[must_use]
    pub fn for_config(config: &SystolicConfig) -> Self {
        Self {
            interval_cycles: config.mac_cycles(),
            transfer_cycles: 1,
        }
    }

    /// The jitter (in cycles) the design absorbs without stalling.
    #[must_use]
    pub fn tolerated_jitter(&self) -> u64 {
        self.interval_cycles.saturating_sub(self.transfer_cycles)
    }

    /// Stall cycles incurred by a delivery arriving `jitter` cycles late.
    #[must_use]
    pub fn stall_for(&self, jitter: u64) -> u64 {
        jitter.saturating_sub(self.tolerated_jitter())
    }

    /// Expected per-delivery stall under a worst-case-`max_jitter`
    /// uniform jitter distribution (deterministic closed form: the mean
    /// of `max(0, j − slack)` for `j` uniform on `0..=max_jitter`).
    #[must_use]
    pub fn expected_stall(&self, max_jitter: u64) -> f64 {
        let slack = self.tolerated_jitter();
        if max_jitter <= slack {
            return 0.0;
        }
        let n = max_jitter + 1;
        // Sum over j = slack+1 ..= max_jitter of (j - slack).
        let k = max_jitter - slack;
        (k * (k + 1)) as f64 / 2.0 / n as f64
    }

    /// Relative throughput under jitter: interval over
    /// (interval + expected stall).
    #[must_use]
    pub fn throughput_retention(&self, max_jitter: u64) -> f64 {
        let interval = self.interval_cycles as f64;
        interval / (interval + self.expected_stall(max_jitter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usystolic_core::ComputingScheme;

    fn budget(scheme: ComputingScheme, cycles: Option<u64>) -> SlackBudget {
        let mut cfg = SystolicConfig::edge(scheme, 8);
        if let Some(c) = cycles {
            cfg = cfg.with_mul_cycles(c).expect("valid EBT");
        }
        SlackBudget::for_config(&cfg)
    }

    #[test]
    fn unary_slack_dwarfs_binary() {
        let bp = budget(ComputingScheme::BinaryParallel, None);
        let ur = budget(ComputingScheme::UnaryRate, Some(128));
        assert_eq!(bp.tolerated_jitter(), 0, "binary parallel has zero slack");
        assert_eq!(ur.tolerated_jitter(), 128);
    }

    #[test]
    fn stall_kicks_in_past_the_slack() {
        let ur = budget(ComputingScheme::UnaryRate, Some(32));
        assert_eq!(ur.stall_for(0), 0);
        assert_eq!(ur.stall_for(32), 0);
        assert_eq!(ur.stall_for(40), 8);
    }

    #[test]
    fn expected_stall_closed_form() {
        // slack 0, jitter uniform on 0..=4: mean = (1+2+3+4)/5 = 2.
        let bp = budget(ComputingScheme::BinaryParallel, None);
        assert!((bp.expected_stall(4) - 2.0).abs() < 1e-12);
        // Fully within slack: zero.
        let ur = budget(ComputingScheme::UnaryRate, Some(128));
        assert_eq!(ur.expected_stall(100), 0.0);
    }

    #[test]
    fn unary_retains_throughput_under_jitter_binary_does_not() {
        // §V-H: the long MAC interval hides interconnect variation.
        let jitter = 16u64;
        let bp = budget(ComputingScheme::BinaryParallel, None).throughput_retention(jitter);
        let bs = budget(ComputingScheme::BinarySerial, None).throughput_retention(jitter);
        let ur = budget(ComputingScheme::UnaryRate, Some(64)).throughput_retention(jitter);
        assert!(bp < 0.2, "binary parallel collapses: {bp}");
        assert!(bs > bp, "serial {bs} tolerates more than parallel {bp}");
        assert!(
            (ur - 1.0).abs() < 1e-12,
            "unary fully hides the jitter: {ur}"
        );
    }

    #[test]
    fn retention_is_monotone_in_interval() {
        let jitter = 40u64;
        let mut last = 0.0;
        for cycles in [32u64, 64, 128] {
            let r = budget(ComputingScheme::UnaryRate, Some(cycles)).throughput_retention(jitter);
            assert!(r >= last);
            last = r;
        }
    }
}
