//! The layer-level simulation report: the [`Simulator`] ties traffic and
//! timing together and converts them to the physical units the paper
//! plots (GB/s bandwidth, layers/s throughput).

use crate::events::{NetworkDriver, SimEvent};
use crate::memory::MemoryHierarchy;
use crate::runtime::{
    ideal_cycles_closed_form, layer_timing_from_parts, layer_timing_from_traffic, LayerTiming,
};
use crate::traffic::{layer_traffic, LayerTraffic};
use usystolic_core::{SystolicConfig, TileMapping};
use usystolic_des::{Engine, EventQueue, Fidelity};
use usystolic_gemm::GemmConfig;
use usystolic_obs::ToJson;

/// The array clock of every synthesised design: 400 MHz (Section IV-C2).
pub const CLOCK_HZ: f64 = 400.0e6;

/// Everything the timing simulator knows about one layer's execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerReport {
    /// Cycle-level timing.
    pub timing: LayerTiming,
    /// Byte traffic at both memory levels.
    pub traffic: LayerTraffic,
    /// Wall-clock runtime in seconds at [`CLOCK_HZ`].
    pub runtime_s: f64,
    /// Average DRAM bandwidth in GB/s over the layer (Fig. 10's upper
    /// plane).
    pub dram_bandwidth_gbps: f64,
    /// Average SRAM bandwidth in GB/s (Fig. 10's lower plane; zero when
    /// SRAM is absent).
    pub sram_bandwidth_gbps: f64,
    /// Layer throughput: layers per second (Fig. 12).
    pub throughput_per_s: f64,
    /// Average MAC (PE) utilisation of the tile mapping.
    pub utilization: f64,
    /// Total MAC operations of the layer.
    pub macs: u64,
}

/// A configured timing simulator (array + memory hierarchy + clock).
///
/// # Example
///
/// ```
/// use usystolic_core::{ComputingScheme, SystolicConfig};
/// use usystolic_sim::{MemoryHierarchy, Simulator};
/// use usystolic_gemm::GemmConfig;
///
/// let array = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
///     .with_mul_cycles(128).unwrap();
/// let sim = Simulator::new(array, MemoryHierarchy::no_sram());
/// let conv2 = GemmConfig::conv(31, 31, 96, 5, 5, 1, 256).unwrap();
/// let report = sim.simulate(&conv2);
/// // Crawling bytes: well under 1 GB/s of DRAM, no SRAM at all.
/// assert!(report.dram_bandwidth_gbps < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Simulator {
    config: SystolicConfig,
    memory: MemoryHierarchy,
    clock_hz: f64,
    fidelity: Fidelity,
}

impl Simulator {
    /// Creates a simulator at the paper's 400 MHz clock, at
    /// [`Fidelity::CycleAccurate`].
    #[must_use]
    pub fn new(config: SystolicConfig, memory: MemoryHierarchy) -> Self {
        Self {
            config,
            memory,
            clock_hz: CLOCK_HZ,
            fidelity: Fidelity::CycleAccurate,
        }
    }

    /// Overrides the model fidelity. [`Fidelity::Packed`] swaps the
    /// fold-walk compute model for its closed form (bit-identical,
    /// `O(1)` per layer); [`Fidelity::Analytic`] additionally drops the
    /// per-variable SRAM service bound (exact for compute- or DRAM-bound
    /// layers — the paper's crawling regime — and optimistic otherwise).
    #[must_use]
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// The model fidelity layers are simulated at.
    #[must_use]
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// Overrides the clock (Hz).
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` is not positive.
    #[must_use]
    pub fn with_clock(mut self, clock_hz: f64) -> Self {
        assert!(clock_hz > 0.0, "clock must be positive");
        self.clock_hz = clock_hz;
        self
    }

    /// The array configuration.
    #[must_use]
    pub fn config(&self) -> &SystolicConfig {
        &self.config
    }

    /// The memory hierarchy.
    #[must_use]
    pub fn memory(&self) -> &MemoryHierarchy {
        &self.memory
    }

    /// The clock in Hz.
    #[must_use]
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Simulates one GEMM layer.
    #[must_use]
    pub fn simulate(&self, gemm: &GemmConfig) -> LayerReport {
        let traffic = layer_traffic(gemm, &self.config, &self.memory);
        let timing = match self.fidelity {
            // The reference: walk every fold of the tile mapping.
            Fidelity::CycleAccurate => {
                layer_timing_from_traffic(gemm, &self.config, &self.memory, &traffic)
            }
            // Closed-form compute, full memory model — same bits, O(1).
            Fidelity::Packed => layer_timing_from_parts(
                ideal_cycles_closed_form(gemm, &self.config),
                &self.memory,
                &traffic,
                true,
            ),
            // Closed-form compute, DRAM bound only.
            Fidelity::Analytic => layer_timing_from_parts(
                ideal_cycles_closed_form(gemm, &self.config),
                &self.memory,
                &traffic,
                false,
            ),
        };
        let runtime_s = timing.runtime_cycles as f64 / self.clock_hz;
        let gb = 1.0e9;
        let map = TileMapping::new(gemm, self.config.rows(), self.config.cols());
        let report = LayerReport {
            timing,
            traffic,
            runtime_s,
            dram_bandwidth_gbps: traffic.dram.total() as f64 / runtime_s / gb,
            sram_bandwidth_gbps: traffic.sram.total() as f64 / runtime_s / gb,
            throughput_per_s: 1.0 / runtime_s,
            utilization: map.utilization(),
            macs: gemm.macs(),
        };
        usystolic_obs::with(|o| {
            let scheme_label = self.config.scheme().label();
            o.metrics.count("sim.layers", 1);
            o.metrics
                .count_labeled("sim.layers", &[("scheme", scheme_label)], 1);
            o.metrics.count("sim.macs", report.macs);
            o.metrics.count_labeled(
                "sim.runtime_cycles_by_scheme",
                &[("scheme", scheme_label)],
                report.timing.runtime_cycles,
            );
            o.metrics
                .gauge("sim.dram_bandwidth_gbps", report.dram_bandwidth_gbps);
            o.metrics.gauge("sim.utilization", report.utilization);
            // One simulated cycle maps to one microsecond-unit tick on the
            // PID_SIM lane; layers abut on a virtual cursor the session
            // advances because the timing model is analytic.
            let ts = o.sim_cycles as f64;
            let args = o.correlated_args(vec![
                ("scheme".to_owned(), self.config.scheme().to_json()),
                ("macs".to_owned(), report.macs.to_json()),
                (
                    "ideal_cycles".to_owned(),
                    report.timing.ideal_cycles.to_json(),
                ),
                (
                    "stall_cycles".to_owned(),
                    report.timing.stall_cycles.to_json(),
                ),
                (
                    "dram_bytes".to_owned(),
                    report.traffic.dram.total().to_json(),
                ),
                ("utilization".to_owned(), report.utilization.to_json()),
            ]);
            o.tracer.complete(
                format!("layer {}", self.config.scheme().label()),
                "sim",
                usystolic_obs::PID_SIM,
                0,
                ts,
                report.timing.runtime_cycles as f64,
                args,
            );
            o.tracer.counter(
                "sim.dram_bandwidth_gbps",
                "sim",
                usystolic_obs::PID_SIM,
                ts,
                report.dram_bandwidth_gbps,
            );
            o.sim_cycles += report.timing.runtime_cycles;
        });
        report
    }

    /// Simulates a sequence of layers (e.g. a network), returning one
    /// report per layer.
    ///
    /// Layers are driven through the shared `usystolic_des` calendar: a
    /// [`NetworkDriver`] component simulates each layer when its
    /// [`SimEvent::LayerStart`] fires and chains the next start behind
    /// the [`SimEvent::LayerDone`] at the layer's runtime horizon — the
    /// event clock ends at the network makespan. The per-layer reports
    /// (and their obs side effects) are identical to calling
    /// [`Self::simulate`] in a loop; the calendar adds only `des.*`
    /// instrumentation.
    #[must_use]
    pub fn simulate_network(&self, layers: &[GemmConfig]) -> Vec<LayerReport> {
        let mut events = EventQueue::new();
        if !layers.is_empty() {
            events.schedule(0, SimEvent::LayerStart { index: 0 });
        }
        let mut driver = NetworkDriver::new(self, layers);
        let _makespan = Engine::new(self.fidelity).run(&mut events, &mut driver);
        driver.into_reports()
    }
}

impl usystolic_obs::ToJson for LayerReport {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("timing", self.timing.to_json()),
            ("traffic", self.traffic.to_json()),
            ("runtime_s", self.runtime_s.to_json()),
            ("dram_bandwidth_gbps", self.dram_bandwidth_gbps.to_json()),
            ("sram_bandwidth_gbps", self.sram_bandwidth_gbps.to_json()),
            ("throughput_per_s", self.throughput_per_s.to_json()),
            ("utilization", self.utilization.to_json()),
            ("macs", self.macs.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usystolic_core::ComputingScheme;

    fn alexnet_conv2() -> GemmConfig {
        GemmConfig::conv(31, 31, 96, 5, 5, 1, 256).unwrap()
    }

    #[test]
    fn report_units_are_consistent() {
        let sim = Simulator::new(
            SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
            MemoryHierarchy::edge_with_sram(),
        );
        let r = sim.simulate(&alexnet_conv2());
        assert!((r.runtime_s - r.timing.runtime_cycles as f64 / CLOCK_HZ).abs() < 1e-12);
        assert!((r.throughput_per_s * r.runtime_s - 1.0).abs() < 1e-9);
        assert!(r.dram_bandwidth_gbps > 0.0);
        assert!(r.sram_bandwidth_gbps > 0.0);
        assert!(r.utilization > 0.0 && r.utilization <= 1.0);
        assert_eq!(r.macs, alexnet_conv2().macs());
    }

    #[test]
    fn longer_mac_cycles_reduce_dram_bandwidth() {
        // Fig. 10 (edge): more multiplication cycles always decrease DRAM
        // bandwidth under light contention.
        let mem = MemoryHierarchy::no_sram();
        let mut last = f64::INFINITY;
        for cycles in [32u64, 64, 128] {
            let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
                .with_mul_cycles(cycles)
                .unwrap();
            let r = Simulator::new(cfg, mem).simulate(&alexnet_conv2());
            assert!(
                r.dram_bandwidth_gbps < last,
                "{cycles}c: {} not below {last}",
                r.dram_bandwidth_gbps
            );
            last = r.dram_bandwidth_gbps;
        }
    }

    #[test]
    fn unary_dram_bandwidth_is_crawling() {
        // Paper: [0.11, 0.47] GB/s for compute-bound conv layers without
        // SRAM. Check the order of magnitude.
        let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
            .with_mul_cycles(32)
            .unwrap();
        let r = Simulator::new(cfg, MemoryHierarchy::no_sram()).simulate(&alexnet_conv2());
        assert!(
            r.dram_bandwidth_gbps < 1.0,
            "unary conv bandwidth {} should crawl",
            r.dram_bandwidth_gbps
        );
    }

    #[test]
    fn binary_needs_orders_of_magnitude_more_bandwidth() {
        let mem = MemoryHierarchy::no_sram();
        let bp = Simulator::new(
            SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
            mem,
        )
        .simulate(&alexnet_conv2());
        let ur = Simulator::new(
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
                .with_mul_cycles(128)
                .unwrap(),
            mem,
        )
        .simulate(&alexnet_conv2());
        assert!(
            bp.dram_bandwidth_gbps > 10.0 * ur.dram_bandwidth_gbps,
            "BP {} vs UR {}",
            bp.dram_bandwidth_gbps,
            ur.dram_bandwidth_gbps
        );
    }

    #[test]
    fn early_termination_scales_throughput_almost_linearly() {
        // Section V-D takeaway: on the edge, throughput grows almost
        // linearly with the reciprocal of MAC cycles.
        let mem = MemoryHierarchy::no_sram();
        let t32 = Simulator::new(
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
                .with_mul_cycles(32)
                .unwrap(),
            mem,
        )
        .simulate(&alexnet_conv2())
        .throughput_per_s;
        let t128 = Simulator::new(
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
                .with_mul_cycles(128)
                .unwrap(),
            mem,
        )
        .simulate(&alexnet_conv2())
        .throughput_per_s;
        let ratio = t32 / t128;
        assert!(
            (ratio - 129.0 / 33.0).abs() / (129.0 / 33.0) < 0.1,
            "ratio {ratio} should be near {}",
            129.0 / 33.0
        );
    }

    #[test]
    fn network_simulation_reports_per_layer() {
        let sim = Simulator::new(
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8),
            MemoryHierarchy::no_sram(),
        );
        let layers = [alexnet_conv2(), GemmConfig::matmul(1, 9216, 4096).unwrap()];
        let reports = sim.simulate_network(&layers);
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn custom_clock_rescales_time() {
        let cfg = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
        let mem = MemoryHierarchy::edge_with_sram();
        let base = Simulator::new(cfg, mem).simulate(&alexnet_conv2());
        let fast = Simulator::new(cfg, mem)
            .with_clock(800.0e6)
            .simulate(&alexnet_conv2());
        assert!((fast.runtime_s - base.runtime_s / 2.0).abs() < 1e-9);
    }
}
