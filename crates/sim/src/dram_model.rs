//! Bank/page-level DRAM analysis of execution traces.
//!
//! The paper's DRAM is an 8-bank, 8192-bit-page DDR3 chip
//! (Section IV-C3). This module replays a [`TraceGenerator`](crate::trace::TraceGenerator) trace
//! against that structure and reports:
//!
//! * the **row-buffer (page) hit rate** — how often consecutive accesses
//!   to a bank stay in the open page;
//! * the **same-cycle bank-conflict rate** — how many accesses collide on
//!   a bank within one cycle and must serialise. Binary-parallel arrays
//!   demand many words per cycle and conflict heavily; byte-crawling
//!   uSystolic rarely issues more than one access per cycle — the
//!   microarchitectural face of the paper's contention argument.

use crate::memory::DramSpec;
use crate::trace::TraceEvent;
use std::collections::BTreeMap;

/// Result of replaying a trace against the DRAM bank/page structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramAnalysis {
    /// Total accesses replayed.
    pub accesses: u64,
    /// Accesses that hit an already-open page.
    pub page_hits: u64,
    /// Accesses that collided with another access to the same bank in the
    /// same cycle (beyond the first).
    pub same_cycle_conflicts: u64,
}

impl DramAnalysis {
    /// Page hit rate in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.page_hits as f64 / self.accesses as f64
    }

    /// Fraction of accesses that had to serialise behind a same-cycle
    /// bank conflict.
    #[must_use]
    pub fn conflict_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.same_cycle_conflicts as f64 / self.accesses as f64
    }

    /// An effective-bandwidth efficiency estimate: page hits stream at
    /// full rate, misses pay an activate penalty, conflicts serialise.
    #[must_use]
    pub fn effective_efficiency(&self) -> f64 {
        let miss_penalty = 0.4; // activate+precharge amortisation
        let base = self.hit_rate() + (1.0 - self.hit_rate()) * miss_penalty;
        base / (1.0 + self.conflict_rate())
    }
}

/// Replays a (cycle-sorted) trace against the DRAM's bank/page structure.
#[must_use]
pub fn analyze_trace(events: &[TraceEvent], dram: &DramSpec) -> DramAnalysis {
    let page_bytes = u64::from(dram.page_bits) / 8;
    let banks = u64::from(dram.banks);
    // Open row per bank. BTreeMap keeps any future iteration over bank
    // state deterministic (the determinism-taint lint bans HashMap here).
    let mut open_rows: BTreeMap<u64, u64> = BTreeMap::new();
    let mut analysis = DramAnalysis {
        accesses: 0,
        page_hits: 0,
        same_cycle_conflicts: 0,
    };
    let mut cycle_bank_use: BTreeMap<u64, u64> = BTreeMap::new();
    let mut current_cycle = u64::MAX;

    for e in events {
        if e.cycle != current_cycle {
            current_cycle = e.cycle;
            cycle_bank_use.clear();
        }
        let page = e.address / page_bytes;
        let bank = page % banks;
        let row = page / banks;
        analysis.accesses += 1;
        match open_rows.insert(bank, row) {
            Some(prev) if prev == row => analysis.page_hits += 1,
            _ => {}
        }
        let uses = cycle_bank_use.entry(bank).or_insert(0);
        if *uses > 0 {
            analysis.same_cycle_conflicts += 1;
        }
        *uses += 1;
    }
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryHierarchy;
    use crate::trace::TraceGenerator;
    use usystolic_core::{ComputingScheme, SystolicConfig};
    use usystolic_gemm::GemmConfig;

    fn analysis_for(scheme: ComputingScheme, mul_cycles: Option<u64>) -> DramAnalysis {
        let mut cfg = SystolicConfig::edge(scheme, 8);
        if let Some(c) = mul_cycles {
            cfg = cfg.with_mul_cycles(c).expect("valid EBT");
        }
        let gemm = GemmConfig::conv(9, 9, 4, 3, 3, 1, 8).expect("valid layer");
        let events = TraceGenerator::new(cfg, gemm).generate();
        analyze_trace(&events, &MemoryHierarchy::no_sram().dram)
    }

    #[test]
    fn crawling_unary_has_fewer_bank_conflicts() {
        let bp = analysis_for(ComputingScheme::BinaryParallel, None);
        let ur = analysis_for(ComputingScheme::UnaryRate, Some(128));
        assert!(
            ur.conflict_rate() < bp.conflict_rate() / 2.0,
            "unary conflicts {} vs binary {}",
            ur.conflict_rate(),
            bp.conflict_rate()
        );
        assert!(bp.same_cycle_conflicts > 0, "binary parallel must conflict");
    }

    #[test]
    fn rates_are_bounded() {
        for scheme in [ComputingScheme::BinaryParallel, ComputingScheme::UnaryRate] {
            let a = analysis_for(scheme, None);
            assert!((0.0..=1.0).contains(&a.hit_rate()));
            assert!(a.conflict_rate() >= 0.0);
            assert!(a.effective_efficiency() > 0.0 && a.effective_efficiency() <= 1.0);
            assert!(a.accesses > 0);
        }
    }

    #[test]
    fn conflicts_reduce_effective_efficiency() {
        let bp = analysis_for(ComputingScheme::BinaryParallel, None);
        let ur = analysis_for(ComputingScheme::UnaryRate, Some(128));
        assert!(ur.effective_efficiency() >= bp.effective_efficiency());
    }

    #[test]
    fn empty_trace_is_degenerate_zero() {
        let a = analyze_trace(&[], &MemoryHierarchy::no_sram().dram);
        assert_eq!(a.hit_rate(), 0.0);
        assert_eq!(a.conflict_rate(), 0.0);
        assert_eq!(a.accesses, 0);
    }

    #[test]
    fn sequential_stream_hits_pages() {
        // A pure sequential stream within one region should mostly hit.
        use crate::memory::Variable;
        use crate::trace::{Access, IFM_BASE};
        let events: Vec<TraceEvent> = (0..4096u64)
            .map(|i| TraceEvent {
                cycle: i,
                variable: Variable::Ifm,
                access: Access::Read,
                address: IFM_BASE + i,
                bytes: 1,
            })
            .collect();
        let a = analyze_trace(&events, &MemoryHierarchy::no_sram().dram);
        assert!(a.hit_rate() > 0.9, "sequential hit rate {}", a.hit_rate());
        assert_eq!(a.same_cycle_conflicts, 0);
    }
}
