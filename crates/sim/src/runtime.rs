//! Layer runtime model: ideal weight-stationary pipeline cycles plus
//! memory-contention stalls.
//!
//! The compute side follows the SCALE-Sim pipeline model: per weight tile,
//! `R'` preload cycles, then `M` input vectors at one vector per MAC
//! interval with `R' + C' − 2` cycles of systolic skew. The memory side
//! converts the layer's DRAM and SRAM traffic into minimum service cycles
//! at the sustained bandwidths; the runtime is the maximum of compute and
//! memory service (perfectly overlapped double buffering), and the
//! difference to the ideal compute time is the *memory contention
//! overhead* of Section V-D.

use crate::memory::MemoryHierarchy;
use crate::traffic::{layer_traffic, LayerTraffic};
use usystolic_core::{SystolicConfig, TileMapping};
use usystolic_gemm::GemmConfig;

/// Cycle-level timing of one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerTiming {
    /// Stall-free compute cycles of the weight-stationary pipeline.
    pub ideal_cycles: u64,
    /// Cycles added by memory contention.
    pub stall_cycles: u64,
    /// Total runtime cycles.
    pub runtime_cycles: u64,
}

impl LayerTiming {
    /// Memory-contention overhead: `stall / ideal` (the percentage the
    /// paper quotes, e.g. "+161.8 % average runtime overhead").
    #[must_use]
    pub fn overhead(&self) -> f64 {
        self.stall_cycles as f64 / self.ideal_cycles as f64
    }
}

/// Ideal (stall-free) compute cycles of a layer.
#[must_use]
pub fn ideal_cycles(gemm: &GemmConfig, config: &SystolicConfig) -> u64 {
    let map = TileMapping::new(gemm, config.rows(), config.cols());
    let m = map.m() as u64;
    let mac = config.mac_cycles();
    let mut total = 0u64;
    for rf in 0..map.row_folds() {
        for cf in 0..map.col_folds() {
            let r = map.rows_in_fold(rf) as u64;
            let c = map.cols_in_fold(cf) as u64;
            // Preload R' rows, stream M vectors at the MAC interval, drain
            // through the systolic skew.
            total += r + m * mac + (r + c).saturating_sub(2);
        }
    }
    total
}

/// Closed-form ideal cycles: the fold walk of [`ideal_cycles`] summed
/// analytically. Every full-size fold contributes the same term, and the
/// ragged last row/column folds only shift the per-fold `R'`/`C'` sums,
/// which telescope to the mapped `K` and `N` totals:
///
/// ```text
/// Σ_rf Σ_cf (r + m·mac + r + c − 2)
///   = 2·col_folds·K + row_folds·N + row_folds·col_folds·(m·mac − 2)
/// ```
///
/// (`r + c ≥ 2` always holds, so the walk's `saturating_sub` is exact.)
/// Bit-identical to [`ideal_cycles`] in `O(1)` — the packed fidelity
/// tier's compute model.
#[must_use]
pub fn ideal_cycles_closed_form(gemm: &GemmConfig, config: &SystolicConfig) -> u64 {
    let map = TileMapping::new(gemm, config.rows(), config.cols());
    let rf = map.row_folds() as u64;
    let cf = map.col_folds() as u64;
    let m = map.m() as u64;
    let mac = config.mac_cycles();
    // Sum before subtraction dominates the subtrahend (each tile's
    // `2r + c − 2 ≥ 1`), so the u64 subtraction cannot underflow.
    2 * cf * map.k() as u64 + rf * map.n() as u64 + rf * cf * m * mac - 2 * rf * cf
}

/// Computes the layer timing under the given memory hierarchy.
#[must_use]
pub fn layer_timing(
    gemm: &GemmConfig,
    config: &SystolicConfig,
    memory: &MemoryHierarchy,
) -> LayerTiming {
    let traffic = layer_traffic(gemm, config, memory);
    layer_timing_from_traffic(gemm, config, memory, &traffic)
}

/// Computes the layer timing from pre-computed traffic (avoids recomputing
/// traffic when both are needed).
#[must_use]
pub fn layer_timing_from_traffic(
    gemm: &GemmConfig,
    config: &SystolicConfig,
    memory: &MemoryHierarchy,
    traffic: &LayerTraffic,
) -> LayerTiming {
    layer_timing_from_parts(ideal_cycles(gemm, config), memory, traffic, true)
}

/// Computes the layer timing from a pre-computed ideal-cycle count —
/// the fidelity tiers' entry point. The packed tier passes the
/// closed-form ideal ([`ideal_cycles_closed_form`], bit-identical to the
/// walk); the analytic tier additionally sets `model_sram = false` to
/// skip the per-variable SRAM service bound, keeping only the DRAM bound
/// (exact whenever the layer is compute- or DRAM-bound, which is the
/// paper's crawling regime).
#[must_use]
pub fn layer_timing_from_parts(
    ideal: u64,
    memory: &MemoryHierarchy,
    traffic: &LayerTraffic,
    model_sram: bool,
) -> LayerTiming {
    let dram_cycles =
        (traffic.dram.total() as f64 / memory.dram.sustained_bytes_per_cycle()).ceil() as u64;
    let sram_cycles = match memory.sram {
        Some(_) if !model_sram => 0,
        Some(s) => {
            let per_var = [traffic.sram.ifm, traffic.sram.weight, traffic.sram.ofm];
            per_var
                .iter()
                .map(|&b| (b as f64 / s.bytes_per_cycle() as f64).ceil() as u64)
                .max()
                .unwrap_or(0)
        }
        None => 0,
    };
    let runtime = ideal.max(dram_cycles).max(sram_cycles);
    let timing = LayerTiming {
        ideal_cycles: ideal,
        stall_cycles: runtime - ideal,
        runtime_cycles: runtime,
    };
    usystolic_obs::with(|o| {
        o.metrics.count("sim.ideal_cycles", timing.ideal_cycles);
        o.metrics.count("sim.stall_cycles", timing.stall_cycles);
        o.metrics.count("sim.runtime_cycles", timing.runtime_cycles);
        o.metrics
            .observe("sim.layer_overhead_pct", timing.overhead() * 100.0);
    });
    timing
}

impl usystolic_obs::ToJson for LayerTiming {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("ideal_cycles", self.ideal_cycles.to_json()),
            ("stall_cycles", self.stall_cycles.to_json()),
            ("runtime_cycles", self.runtime_cycles.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usystolic_core::ComputingScheme;

    #[test]
    fn ideal_cycles_scale_with_mac_interval() {
        let gemm = GemmConfig::matmul(100, 12, 14).unwrap();
        let bp = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
        let ur = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
            .with_mul_cycles(128)
            .unwrap();
        let a = ideal_cycles(&gemm, &bp);
        let b = ideal_cycles(&gemm, &ur);
        // The 129× MAC interval dominates (preload/skew dilute it a bit).
        assert!(b > 90 * a && b < 130 * a, "{b} vs {a}");
    }

    #[test]
    fn folds_multiply_cycles() {
        let small = GemmConfig::matmul(10, 12, 14).unwrap();
        let doubled = GemmConfig::matmul(10, 24, 14).unwrap();
        let cfg = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
        assert_eq!(ideal_cycles(&doubled, &cfg), 2 * ideal_cycles(&small, &cfg));
    }

    #[test]
    fn binary_without_sram_stalls() {
        // A memory-hungry layer on binary parallel with no SRAM is
        // DRAM-bound (the paper's 10.49 GB/s point).
        let gemm = GemmConfig::conv(27, 27, 96, 5, 5, 1, 256).unwrap();
        let cfg = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
        let t = layer_timing(&gemm, &cfg, &MemoryHierarchy::no_sram());
        assert!(t.stall_cycles > 0, "expected DRAM-bound run");
        assert!(t.overhead() > 0.5);
    }

    #[test]
    fn crawling_unary_hides_memory_without_sram() {
        // The headline claim: uSystolic with long MAC intervals needs so
        // little bandwidth that removing SRAM costs (almost) nothing.
        let gemm = GemmConfig::conv(27, 27, 96, 5, 5, 1, 256).unwrap();
        let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
            .with_mul_cycles(128)
            .unwrap();
        let t = layer_timing(&gemm, &cfg, &MemoryHierarchy::no_sram());
        assert_eq!(t.stall_cycles, 0, "unary should be compute-bound");
    }

    #[test]
    fn sram_removes_binary_stalls_on_edge() {
        let gemm = GemmConfig::conv(13, 13, 192, 3, 3, 1, 384).unwrap();
        let cfg = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
        let without = layer_timing(&gemm, &cfg, &MemoryHierarchy::no_sram());
        let with = layer_timing(&gemm, &cfg, &MemoryHierarchy::edge_with_sram());
        assert!(with.runtime_cycles <= without.runtime_cycles);
    }

    #[test]
    fn cloud_binary_has_more_contention_than_edge() {
        // Section V-D: heavy memory contention for binary parallel on the
        // cloud configuration.
        let gemm = GemmConfig::conv(27, 27, 96, 5, 5, 1, 256).unwrap();
        let edge = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
        let cloud = SystolicConfig::cloud(ComputingScheme::BinaryParallel, 8);
        let te = layer_timing(&gemm, &edge, &MemoryHierarchy::edge_with_sram());
        let tc = layer_timing(&gemm, &cloud, &MemoryHierarchy::cloud_with_sram());
        assert!(
            tc.overhead() > te.overhead(),
            "cloud {} vs edge {}",
            tc.overhead(),
            te.overhead()
        );
    }

    #[test]
    fn closed_form_matches_the_fold_walk_exactly() {
        // Ragged folds in both dimensions, every scheme, long and short
        // MAC intervals: the closed form is the walk, bit for bit.
        let shapes = [
            GemmConfig::matmul(1, 1, 1).unwrap(),
            GemmConfig::matmul(64, 64, 64).unwrap(),
            GemmConfig::matmul(100, 12, 14).unwrap(),
            GemmConfig::matmul(3, 17, 33).unwrap(),
            GemmConfig::conv(31, 31, 96, 5, 5, 1, 256).unwrap(),
            GemmConfig::conv(13, 13, 192, 3, 3, 1, 384).unwrap(),
        ];
        let configs = [
            SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
                .with_mul_cycles(128)
                .unwrap(),
            SystolicConfig::cloud(ComputingScheme::UnaryTemporal, 8),
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
                .with_mul_cycles(32)
                .unwrap(),
        ];
        for gemm in &shapes {
            for cfg in &configs {
                assert_eq!(
                    ideal_cycles_closed_form(gemm, cfg),
                    ideal_cycles(gemm, cfg),
                    "closed form diverged for {gemm:?} on {:?}",
                    cfg.scheme()
                );
            }
        }
    }

    #[test]
    fn parts_timing_without_sram_model_keeps_the_dram_bound() {
        let gemm = GemmConfig::conv(27, 27, 96, 5, 5, 1, 256).unwrap();
        let cfg = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
        let memory = MemoryHierarchy::edge_with_sram();
        let traffic = layer_traffic(&gemm, &cfg, &memory);
        let ideal = ideal_cycles(&gemm, &cfg);
        let full = layer_timing_from_parts(ideal, &memory, &traffic, true);
        let no_sram = layer_timing_from_parts(ideal, &memory, &traffic, false);
        assert!(no_sram.runtime_cycles <= full.runtime_cycles);
        assert_eq!(
            full,
            layer_timing_from_traffic(&gemm, &cfg, &memory, &traffic)
        );
    }

    #[test]
    fn runtime_is_max_of_compute_and_memory() {
        let gemm = GemmConfig::matmul(4, 12, 14).unwrap();
        let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8);
        let t = layer_timing(&gemm, &cfg, &MemoryHierarchy::no_sram());
        assert_eq!(t.runtime_cycles, t.ideal_cycles + t.stall_cycles);
    }
}
