//! uSystolic-Sim substitute: the timing and memory-hierarchy simulator.
//!
//! The paper's bandwidth (Fig. 10) and throughput (Fig. 12) numbers come
//! from a customised systolic-array simulator adapted from ARM's
//! SCALE-Sim, supporting varying computing schemes, data bitwidths and
//! memory-contention-aware scheduling. This crate rebuilds that
//! functionality:
//!
//! * [`memory`] — the paper's memory hierarchy: optional per-variable
//!   double-buffered SRAMs (edge: 64 KB × 3, cloud: 8 MB × 3, 16 banks)
//!   and a 1 GB DDR3 DRAM (8 banks, 8192-bit pages).
//! * [`traffic`] — per-layer byte traffic at the SRAM and DRAM levels,
//!   derived from the weight-stationary tile mapping.
//! * [`runtime`] — ideal pipeline cycles plus memory-contention stalls.
//! * [`report`] — [`Simulator`]: one call per layer returning bandwidth,
//!   runtime, throughput and utilisation in the paper's units.
//! * [`events`] — the network pipeline as `usystolic_des` components:
//!   [`Simulator::simulate_network`] drives layers through the shared
//!   discrete-event calendar at a configurable [`Fidelity`]
//!   (cycle-accurate and packed are bit-identical; analytic drops the
//!   SRAM service bound for speed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataflow;
pub mod dram_model;
pub mod events;
pub mod jitter;
pub mod memory;
pub mod multi;
pub mod report;
pub mod runtime;
pub mod trace;
pub mod traffic;

pub use dataflow::{ideal_cycles_with, layer_traffic_with, runtime_cycles_with, Dataflow};
pub use dram_model::{analyze_trace, DramAnalysis};
pub use events::{NetworkDriver, SimEvent};
pub use jitter::SlackBudget;
pub use memory::{DramSpec, MemoryHierarchy, SramSpec, Variable, WordCorruption};
pub use multi::{battery_lifetime, LifetimeReport, MultiInstanceSystem, ScalingReport};
pub use report::{LayerReport, Simulator, CLOCK_HZ};
pub use runtime::{ideal_cycles, ideal_cycles_closed_form, layer_timing, LayerTiming};
pub use trace::{Access, TraceEvent, TraceGenerator};
pub use traffic::{layer_traffic, LayerTraffic, VariableTraffic};
pub use usystolic_des::Fidelity;
