//! System-level modelling of tiled uSystolic instances (Section V-H).
//!
//! "When considering multiple tiled uSystolic instances with
//! interconnections, uSystolic's low bandwidth empowers better
//! scalability." This module models `n` identical array instances running
//! data-parallel work against one shared DRAM: each instance's ideal
//! compute time is unchanged, but the DRAM must now serve the *sum* of
//! the instances' traffic. Low-bandwidth (byte-crawling) designs scale
//! almost linearly; high-bandwidth binary designs hit the memory wall.

use crate::memory::MemoryHierarchy;
use crate::report::{Simulator, CLOCK_HZ};
use crate::runtime::layer_timing_from_traffic;
use crate::traffic::layer_traffic;
use usystolic_core::SystolicConfig;
use usystolic_gemm::GemmConfig;

/// The scaling behaviour of `n` instances on one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingReport {
    /// Instance count.
    pub instances: usize,
    /// Aggregate throughput (layers/s across all instances).
    pub aggregate_throughput: f64,
    /// Scaling efficiency: aggregate throughput over `n×` the
    /// single-instance throughput, in `(0, 1]`.
    pub scaling_efficiency: f64,
    /// Whether the shared DRAM limits the system.
    pub dram_limited: bool,
}

impl usystolic_obs::ToJson for ScalingReport {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("instances", self.instances.to_json()),
            ("aggregate_throughput", self.aggregate_throughput.to_json()),
            ("scaling_efficiency", self.scaling_efficiency.to_json()),
            ("dram_limited", self.dram_limited.to_json()),
        ])
    }
}

/// A system of identical array instances sharing one DRAM.
///
/// # Example
///
/// ```
/// use usystolic_core::{ComputingScheme, SystolicConfig};
/// use usystolic_sim::{MemoryHierarchy, MultiInstanceSystem};
/// use usystolic_gemm::GemmConfig;
///
/// let sys = MultiInstanceSystem::new(
///     SystolicConfig::edge(ComputingScheme::UnaryRate, 8).with_mul_cycles(128)?,
///     MemoryHierarchy::no_sram(),
/// );
/// let layer = GemmConfig::conv(31, 31, 96, 5, 5, 1, 256)?;
/// // Byte-crawling instances share one DRAM almost perfectly.
/// assert!(sys.scale(&layer, 16).scaling_efficiency > 0.95);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiInstanceSystem {
    config: SystolicConfig,
    memory: MemoryHierarchy,
}

impl MultiInstanceSystem {
    /// Creates the system descriptor (instances are chosen per query).
    #[must_use]
    pub fn new(config: SystolicConfig, memory: MemoryHierarchy) -> Self {
        Self { config, memory }
    }

    /// Scaling of `instances` copies running data-parallel replicas of
    /// `gemm`.
    ///
    /// # Panics
    ///
    /// Panics if `instances` is zero.
    #[must_use]
    pub fn scale(&self, gemm: &GemmConfig, instances: usize) -> ScalingReport {
        assert!(instances > 0, "need at least one instance");
        let traffic = layer_traffic(gemm, &self.config, &self.memory);
        let single = layer_timing_from_traffic(gemm, &self.config, &self.memory, &traffic);
        // Shared DRAM: n instances demand n× the bytes in the same window.
        let dram_cycles = (instances as f64 * traffic.dram.total() as f64
            / self.memory.dram.sustained_bytes_per_cycle())
        .ceil() as u64;
        let sram_bound = single.runtime_cycles.max(single.ideal_cycles);
        let system_cycles = sram_bound.max(dram_cycles);
        let per_layer_s = system_cycles as f64 / CLOCK_HZ;
        let aggregate = instances as f64 / per_layer_s;
        let one = Simulator::new(self.config, self.memory).simulate(gemm);
        let report = ScalingReport {
            instances,
            aggregate_throughput: aggregate,
            scaling_efficiency: aggregate / (instances as f64 * one.throughput_per_s),
            dram_limited: dram_cycles > sram_bound,
        };
        usystolic_obs::with(|o| {
            // Per-instance-count breakdown: the label keeps every scaling
            // query of one sweep as its own series.
            let n = instances.to_string();
            let scheme = self.config.scheme().label();
            o.metrics.count("sim.scaling_queries", 1);
            o.metrics.gauge_labeled(
                "sim.scaling_efficiency",
                &[("instances", &n), ("scheme", scheme)],
                report.scaling_efficiency,
            );
            o.metrics.gauge_labeled(
                "sim.aggregate_throughput",
                &[("instances", &n), ("scheme", scheme)],
                report.aggregate_throughput,
            );
        });
        report
    }

    /// The largest instance count that still scales with at least
    /// `min_efficiency` (searching 1..=max), i.e. where the system hits
    /// the memory wall.
    #[must_use]
    pub fn max_instances(&self, gemm: &GemmConfig, min_efficiency: f64, max: usize) -> usize {
        let mut best = 1;
        for n in 1..=max {
            if self.scale(gemm, n).scaling_efficiency >= min_efficiency {
                best = n;
            } else {
                break;
            }
        }
        best
    }
}

/// A battery-lifetime estimate (the §V-H edge scenario: "if the power
/// supply … is running out, early termination improves energy and power
/// efficiency to prolong the system lifespan").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeReport {
    /// Inferences achievable from the energy budget.
    pub inferences: f64,
    /// Seconds of continuous operation the budget sustains.
    pub lifetime_s: f64,
}

/// Estimates how many runs of `layers` a given on-chip energy budget
/// sustains, given per-layer energy and runtime from the caller's
/// hardware model (joules and seconds per full pass).
#[must_use]
pub fn battery_lifetime(
    energy_per_pass_j: f64,
    runtime_per_pass_s: f64,
    budget_j: f64,
) -> LifetimeReport {
    let inferences = if energy_per_pass_j > 0.0 {
        budget_j / energy_per_pass_j
    } else {
        0.0
    };
    LifetimeReport {
        inferences,
        lifetime_s: inferences * runtime_per_pass_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usystolic_core::ComputingScheme;

    fn conv_layer() -> GemmConfig {
        GemmConfig::conv(31, 31, 96, 5, 5, 1, 256).expect("valid layer")
    }

    #[test]
    fn single_instance_is_perfectly_efficient() {
        let sys = MultiInstanceSystem::new(
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8),
            MemoryHierarchy::no_sram(),
        );
        let r = sys.scale(&conv_layer(), 1);
        assert!((r.scaling_efficiency - 1.0).abs() < 1e-9);
        assert_eq!(r.instances, 1);
    }

    #[test]
    fn crawling_unary_scales_further_than_binary() {
        // Section V-H: low bandwidth empowers better scalability.
        let unary = MultiInstanceSystem::new(
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
                .with_mul_cycles(128)
                .expect("valid"),
            MemoryHierarchy::no_sram(),
        );
        let binary = MultiInstanceSystem::new(
            SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
            MemoryHierarchy::no_sram(),
        );
        let layer = conv_layer();
        let u_max = unary.max_instances(&layer, 0.9, 128);
        let b_max = binary.max_instances(&layer, 0.9, 128);
        assert!(
            u_max >= 8 * b_max,
            "unary sustains {u_max} instances vs binary {b_max}"
        );
    }

    #[test]
    fn efficiency_degrades_monotonically_past_the_wall() {
        let sys = MultiInstanceSystem::new(
            SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
            MemoryHierarchy::no_sram(),
        );
        let layer = conv_layer();
        let mut last = f64::INFINITY;
        for n in [1usize, 2, 4, 8, 16] {
            let r = sys.scale(&layer, n);
            assert!(r.scaling_efficiency <= last + 1e-9, "n={n}");
            last = r.scaling_efficiency;
        }
        assert!(sys.scale(&layer, 16).dram_limited);
    }

    #[test]
    fn aggregate_throughput_never_decreases_with_instances() {
        let sys = MultiInstanceSystem::new(
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8),
            MemoryHierarchy::no_sram(),
        );
        let layer = conv_layer();
        let mut last = 0.0;
        for n in 1..=8 {
            let r = sys.scale(&layer, n);
            assert!(r.aggregate_throughput >= last, "n={n}");
            last = r.aggregate_throughput;
        }
    }

    #[test]
    fn battery_lifetime_arithmetic() {
        let r = battery_lifetime(2.0e-3, 0.5, 10.0);
        assert!((r.inferences - 5000.0).abs() < 1e-9);
        assert!((r.lifetime_s - 2500.0).abs() < 1e-9);
        let none = battery_lifetime(0.0, 1.0, 10.0);
        assert_eq!(none.inferences, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn zero_instances_rejected() {
        let sys = MultiInstanceSystem::new(
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8),
            MemoryHierarchy::no_sram(),
        );
        let _ = sys.scale(&conv_layer(), 0);
    }
}
