//! Memory trace generation — the "trace profiling" widget of the
//! evaluation framework (Fig. 8: bandwidth and throughput are "calculated
//! by profiling memory traces modelled with a customized systolic array
//! simulator").
//!
//! [`TraceGenerator`] emits the cycle-stamped memory accesses of a
//! weight-stationary execution (weight preloads, IFM element reads at
//! every window start, OFM partial-sum reads/writes at every top-row
//! M-end). The generated trace is cross-validated against the analytic
//! models: its byte totals equal [`crate::traffic::layer_traffic`] and its
//! last cycle matches [`crate::runtime::ideal_cycles`].

use crate::memory::Variable;
use usystolic_core::{SystolicConfig, TileMapping};
use usystolic_gemm::GemmConfig;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Memory read.
    Read,
    /// Memory write.
    Write,
}

/// One memory access of the execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Issue cycle.
    pub cycle: u64,
    /// Which GEMM variable's region is accessed.
    pub variable: Variable,
    /// Read or write.
    pub access: Access,
    /// Byte address within a flat per-variable region.
    pub address: u64,
    /// Transfer size in bytes.
    pub bytes: u32,
}

/// Base address of the IFM region in the flat trace address space.
pub const IFM_BASE: u64 = 0x1000_0000;
/// Base address of the weight region.
pub const WEIGHT_BASE: u64 = 0x2000_0000;
/// Base address of the OFM region.
pub const OFM_BASE: u64 = 0x3000_0000;

/// Generates cycle-stamped memory traces for one layer on one array.
///
/// # Example
///
/// ```
/// use usystolic_core::{ComputingScheme, SystolicConfig};
/// use usystolic_sim::trace::TraceGenerator;
/// use usystolic_gemm::GemmConfig;
///
/// let cfg = SystolicConfig::new(4, 3, ComputingScheme::UnaryRate, 8)?;
/// let gemm = GemmConfig::matmul(2, 8, 3)?;
/// let trace = TraceGenerator::new(cfg, gemm).generate();
/// assert!(trace.windows(2).all(|w| w[0].cycle <= w[1].cycle));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TraceGenerator {
    config: SystolicConfig,
    gemm: GemmConfig,
}

impl TraceGenerator {
    /// Creates a generator for one array/layer pair.
    #[must_use]
    pub fn new(config: SystolicConfig, gemm: GemmConfig) -> Self {
        Self { config, gemm }
    }

    /// Generates the complete trace, in issue order.
    ///
    /// Element addresses follow the lowered layout: IFM element `(p, k)`
    /// sits at `IFM_BASE + (p·K + k)·bytes`, weight `(k, n)` at
    /// `WEIGHT_BASE + (k·N + n)·bytes`, OFM `(p, n)` at
    /// `OFM_BASE + (p·N + n)·out_bytes`.
    #[must_use]
    pub fn generate(&self) -> Vec<TraceEvent> {
        let map = TileMapping::new(&self.gemm, self.config.rows(), self.config.cols());
        let in_bytes = crate::traffic::input_elem_bytes(self.config.bitwidth()) as u32;
        let out_bytes = crate::traffic::output_elem_bytes(&self.config) as u32;
        let mac = self.config.mac_cycles();
        let (k, n) = (map.k() as u64, map.n() as u64);
        let m = map.m() as u64;
        let mut events = Vec::new();
        let mut base_cycle = 0u64;

        for cf in 0..map.col_folds() {
            let n0 = (cf * self.config.cols()) as u64;
            let tile_cols = map.cols_in_fold(cf) as u64;
            for rf in 0..map.row_folds() {
                let k0 = (rf * self.config.rows()) as u64;
                let tile_rows = map.rows_in_fold(rf) as u64;
                // Weight preload: one tile row per cycle, `tile_cols` wide.
                for pr in 0..tile_rows {
                    for c in 0..tile_cols {
                        events.push(TraceEvent {
                            cycle: base_cycle + pr,
                            variable: Variable::Weight,
                            access: Access::Read,
                            address: WEIGHT_BASE + ((k0 + pr) * n + n0 + c) * u64::from(in_bytes),
                            bytes: in_bytes,
                        });
                    }
                }
                let stream_start = base_cycle + tile_rows;
                // IFM element reads at each row's window start
                // (bottom-first skew).
                for p in 0..m {
                    for r in 0..tile_rows {
                        events.push(TraceEvent {
                            cycle: stream_start + (tile_rows - 1 - r) + p * mac,
                            variable: Variable::Ifm,
                            access: Access::Read,
                            address: IFM_BASE + (p * k + k0 + r) * u64::from(in_bytes),
                            bytes: in_bytes,
                        });
                    }
                }
                // OFM: top-row M-end per column and vector; row folds
                // after the first read the old partial back first.
                for p in 0..m {
                    for c in 0..tile_cols {
                        let cycle = stream_start + (tile_rows - 1) + c + p * mac + mac - 1;
                        let address = OFM_BASE + (p * n + n0 + c) * u64::from(out_bytes);
                        if rf > 0 {
                            events.push(TraceEvent {
                                cycle,
                                variable: Variable::Ofm,
                                access: Access::Read,
                                address,
                                bytes: out_bytes,
                            });
                        }
                        events.push(TraceEvent {
                            cycle,
                            variable: Variable::Ofm,
                            access: Access::Write,
                            address,
                            bytes: out_bytes,
                        });
                    }
                }
                // Next tile starts after this tile fully drains.
                base_cycle = stream_start + (tile_rows - 1) + (tile_cols - 1) + m * mac;
            }
        }
        events.sort_by_key(|e| e.cycle);
        events
    }

    /// Total traced bytes per variable — must equal the analytic
    /// streamed-traffic model.
    #[must_use]
    pub fn byte_totals(&self) -> (u64, u64, u64) {
        let mut ifm = 0u64;
        let mut weight = 0u64;
        let mut ofm = 0u64;
        for e in self.generate() {
            match e.variable {
                Variable::Ifm => ifm += u64::from(e.bytes),
                Variable::Weight => weight += u64::from(e.bytes),
                Variable::Ofm => ofm += u64::from(e.bytes),
            }
        }
        (ifm, weight, ofm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryHierarchy;
    use crate::runtime::ideal_cycles;
    use crate::traffic::layer_traffic;
    use usystolic_core::ComputingScheme;

    fn case() -> (SystolicConfig, GemmConfig) {
        (
            SystolicConfig::new(4, 3, ComputingScheme::UnaryRate, 8)
                .expect("valid test configuration"),
            GemmConfig::conv(5, 5, 2, 2, 2, 1, 5).expect("valid test shape"),
        )
    }

    #[test]
    fn trace_bytes_match_analytic_traffic() {
        let (cfg, gemm) = case();
        let (ifm, weight, ofm) = TraceGenerator::new(cfg, gemm).byte_totals();
        let analytic = layer_traffic(&gemm, &cfg, &MemoryHierarchy::no_sram());
        assert_eq!(ifm, analytic.dram.ifm);
        assert_eq!(weight, analytic.dram.weight);
        assert_eq!(ofm, analytic.dram.ofm);
    }

    #[test]
    fn trace_span_matches_ideal_cycles() {
        let (cfg, gemm) = case();
        let events = TraceGenerator::new(cfg, gemm).generate();
        let last = events
            .iter()
            .map(|e| e.cycle)
            .max()
            .expect("non-empty trace");
        let ideal = ideal_cycles(&gemm, &cfg);
        let diff = (last + 1).abs_diff(ideal);
        let tiles = TileMapping::new(&gemm, cfg.rows(), cfg.cols()).tiles() as u64;
        assert!(diff <= tiles, "trace span {} vs ideal {ideal}", last + 1);
    }

    #[test]
    fn trace_is_cycle_sorted_and_region_separated() {
        let (cfg, gemm) = case();
        let events = TraceGenerator::new(cfg, gemm).generate();
        assert!(events.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        for e in &events {
            let (base, limit) = match e.variable {
                Variable::Ifm => (IFM_BASE, WEIGHT_BASE),
                Variable::Weight => (WEIGHT_BASE, OFM_BASE),
                Variable::Ofm => (OFM_BASE, u64::MAX),
            };
            assert!(e.address >= base && e.address < limit);
        }
    }

    #[test]
    fn every_weight_read_exactly_once() {
        let (cfg, gemm) = case();
        let events = TraceGenerator::new(cfg, gemm).generate();
        let mut weight_addrs: Vec<u64> = events
            .iter()
            .filter(|e| e.variable == Variable::Weight)
            .map(|e| e.address)
            .collect();
        let before = weight_addrs.len();
        weight_addrs.sort_unstable();
        weight_addrs.dedup();
        assert_eq!(
            before,
            weight_addrs.len(),
            "weights are preloaded exactly once"
        );
        assert_eq!(before as u64, gemm.weight_elems());
    }

    #[test]
    fn partial_sum_reads_only_after_first_row_fold() {
        // A single-row-fold GEMM has no OFM reads at all.
        let cfg = SystolicConfig::new(8, 5, ComputingScheme::BinaryParallel, 8)
            .expect("valid configuration");
        let gemm = GemmConfig::matmul(3, 8, 5).expect("valid"); // K=8 fits: 1 fold
        let events = TraceGenerator::new(cfg, gemm).generate();
        assert!(!events
            .iter()
            .any(|e| e.variable == Variable::Ofm && e.access == Access::Read));
        // A folded GEMM has them.
        let folded = GemmConfig::matmul(3, 20, 5).expect("valid");
        let events = TraceGenerator::new(cfg, folded).generate();
        assert!(events
            .iter()
            .any(|e| e.variable == Variable::Ofm && e.access == Access::Read));
    }

    #[test]
    fn unary_traces_are_sparser_in_time() {
        // Same layer, same events, but the unary trace spreads over a
        // ~33x longer window — the byte-crawling picture.
        let gemm = GemmConfig::matmul(8, 4, 3).expect("valid");
        let bp = SystolicConfig::new(4, 3, ComputingScheme::BinaryParallel, 8).expect("valid");
        let ur = SystolicConfig::new(4, 3, ComputingScheme::UnaryRate, 8)
            .expect("valid")
            .with_mul_cycles(128)
            .expect("valid EBT");
        let span = |cfg| {
            let e = TraceGenerator::new(cfg, gemm).generate();
            e.last().expect("non-empty").cycle + 1
        };
        let bp_span = span(bp);
        let ur_span = span(ur);
        assert!(
            ur_span > 20 * bp_span,
            "unary span {ur_span} vs binary {bp_span}"
        );
    }
}
