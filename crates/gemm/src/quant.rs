//! Fixed-point quantisation: the paper's FXP comparison schemes.
//!
//! Section V-A compares uSystolic against two fixed-point binary designs
//! derived from the FP32 model by quantising all variables:
//!
//! * **FXP-o-res(n)** — the *output* resolution is `n` bits, so the two MAC
//!   inputs get `n/2` bits each (for odd `n`, `(n+1)/2` and `n/2`,
//!   whichever pairing is more accurate);
//! * **FXP-i-res(n)** — the *inputs* are `n` bits, producing a `2n`-bit
//!   output.
//!
//! uSystolic with EBT `n` keeps both input and output at `n` bits and lands
//! between the two.

use crate::config::GemmConfig;
use crate::loopnest::gemm_with_mac;
use crate::tensor::{FeatureMap, WeightSet};
use crate::GemmError;

/// A symmetric signed linear quantiser mapping `[-max_abs, max_abs]` onto
/// integer levels `[-(2^(bits-1) - 1), 2^(bits-1) - 1]`.
///
/// The top level is `2^(bits-1) - 1`, not `2^(bits-1)`: `+2^(bits-1)` is
/// not representable in `bits`-bit two's complement, so `±max_abs` (and
/// anything beyond) clamps to the symmetric representable extreme at one
/// quantisation step of error.
///
/// # Example
///
/// ```
/// use usystolic_gemm::Quantizer;
///
/// let q = Quantizer::from_max(8, 2.0);
/// let level = q.quantize(1.0);
/// assert_eq!(level, 64);
/// assert!((q.dequantize(level) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    bits: u32,
    scale: f64,
}

impl Quantizer {
    /// Creates a quantiser for `bits`-bit signed data spanning
    /// `[-max_abs, max_abs]`.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 2` or `max_abs` is not a positive finite number.
    #[must_use]
    pub fn from_max(bits: u32, max_abs: f64) -> Self {
        assert!(bits >= 2, "need at least 2 bits");
        assert!(
            max_abs.is_finite() && max_abs > 0.0,
            "max_abs must be positive and finite"
        );
        Self {
            bits,
            scale: (1u64 << (bits - 1)) as f64 / max_abs,
        }
    }

    /// Creates a quantiser covering the maximum absolute value of `data`
    /// (per-tensor calibration). Non-finite samples (NaN, ±∞) are ignored;
    /// falls back to 1.0 when no finite non-zero sample exists.
    #[must_use]
    pub fn calibrated(bits: u32, data: &[f64]) -> Self {
        let max = data
            .iter()
            .map(|x| x.abs())
            .filter(|a| a.is_finite())
            .fold(0.0f64, f64::max);
        Self::from_max(bits, if max > 0.0 { max } else { 1.0 })
    }

    /// Quantises a value to its integer level, rounding to nearest and
    /// clamping the magnitude to the representable range
    /// `±(2^(bits-1) - 1)`. NaN maps to level 0.
    #[must_use]
    pub fn quantize(&self, x: f64) -> i64 {
        let max = (1i64 << (self.bits - 1)) - 1;
        ((x * self.scale).round() as i64).clamp(-max, max)
    }

    /// Recovers the real value of an integer level.
    #[must_use]
    pub fn dequantize(&self, level: i64) -> f64 {
        level as f64 / self.scale
    }

    /// The data bitwidth.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The scale factor (levels per unit).
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

/// One of the paper's fixed-point comparison formats at effective bitwidth
/// `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FxpFormat {
    /// FXP-o-res: the output is `n` bits; inputs split `n` between them.
    OutputRes(u32),
    /// FXP-i-res: inputs are `n` bits; the output is `2n` bits.
    InputRes(u32),
}

impl FxpFormat {
    /// The `(weight_bits, input_bits)` pair this format assigns to the MAC
    /// inputs.
    ///
    /// For odd `n` in FXP-o-res, the extra bit goes to the weight (the
    /// paper picks whichever is more accurate; weights typically have the
    /// wider dynamic range in CNNs).
    #[must_use]
    pub fn input_bits(&self) -> (u32, u32) {
        match *self {
            FxpFormat::OutputRes(n) => (n.div_ceil(2).max(2), (n / 2).max(2)),
            FxpFormat::InputRes(n) => (n, n),
        }
    }

    /// The output resolution in bits.
    #[must_use]
    pub fn output_bits(&self) -> u32 {
        match *self {
            FxpFormat::OutputRes(n) => n,
            FxpFormat::InputRes(n) => 2 * n,
        }
    }

    /// The nominal effective bitwidth `n` this format is parameterised by.
    #[must_use]
    pub fn effective_bitwidth(&self) -> u32 {
        match *self {
            FxpFormat::OutputRes(n) | FxpFormat::InputRes(n) => n,
        }
    }
}

impl core::fmt::Display for FxpFormat {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FxpFormat::OutputRes(n) => write!(f, "FXP-o-res({n})"),
            FxpFormat::InputRes(n) => write!(f, "FXP-i-res({n})"),
        }
    }
}

/// Quantises a whole feature map with a calibrated quantiser, returning
/// the integer tensor and the quantiser used.
///
/// # Example
///
/// ```
/// use usystolic_gemm::quant::quantize_feature_map;
/// use usystolic_gemm::FeatureMap;
///
/// let fm = FeatureMap::from_fn(1, 1, 4, |_, _, c| c as f64 / 2.0 - 1.0);
/// let (int, q) = quantize_feature_map(&fm, 8);
/// assert_eq!(int[(0, 0, 0)], q.quantize(-1.0));
/// ```
#[must_use]
pub fn quantize_feature_map(fm: &FeatureMap<f64>, bits: u32) -> (FeatureMap<i64>, Quantizer) {
    let q = Quantizer::calibrated(bits, fm.as_slice());
    let int = FeatureMap::from_fn(fm.height(), fm.width(), fm.channels(), |h, w, c| {
        q.quantize(fm[(h, w, c)])
    });
    (int, q)
}

/// Quantises a whole weight set with a calibrated quantiser.
#[must_use]
pub fn quantize_weight_set(ws: &WeightSet<f64>, bits: u32) -> (WeightSet<i64>, Quantizer) {
    let q = Quantizer::calibrated(bits, ws.as_slice());
    let int = WeightSet::from_fn(
        ws.out_channels(),
        ws.height(),
        ws.width(),
        ws.in_channels(),
        |oc, wh, www, ic| q.quantize(ws[(oc, wh, www, ic)]),
    );
    (int, q)
}

/// Executes a GEMM under fixed-point quantisation and returns the
/// dequantised `f64` result, for accuracy comparison against
/// [`gemm_reference`](crate::loopnest::gemm_reference).
///
/// Inputs and weights are calibrated per-tensor; the integer accumulation
/// is exact (binary accumulators do not saturate in the paper's FXP
/// baselines — resolution is only constrained at the *data* interfaces,
/// which this models by re-quantising the output to
/// [`FxpFormat::output_bits`]).
///
/// # Errors
///
/// Returns [`GemmError::ShapeMismatch`] if the tensors do not match the
/// configuration.
pub fn fxp_gemm(
    config: &GemmConfig,
    input: &FeatureMap<f64>,
    weights: &WeightSet<f64>,
    format: FxpFormat,
) -> Result<FeatureMap<f64>, GemmError> {
    let (w_bits, i_bits) = format.input_bits();
    let qw = Quantizer::calibrated(w_bits, weights.as_slice());
    let qi = Quantizer::calibrated(i_bits, input.as_slice());

    let w_int = WeightSet::from_fn(
        weights.out_channels(),
        weights.height(),
        weights.width(),
        weights.in_channels(),
        |oc, wh, ww, ic| qw.quantize(weights[(oc, wh, ww, ic)]),
    );
    let i_int = FeatureMap::from_fn(
        input.height(),
        input.width(),
        input.channels(),
        |h, w, c| qi.quantize(input[(h, w, c)]),
    );

    let int_out = gemm_with_mac(config, &i_int, &w_int, 0i64, |acc, &w, &i| acc + w * i)?;

    // Dequantise, then clamp precision to the format's output resolution by
    // re-quantising the output tensor.
    let real: Vec<f64> = int_out
        .as_slice()
        .iter()
        .map(|&v| v as f64 / (qw.scale() * qi.scale()))
        .collect();
    let qo = Quantizer::calibrated(format.output_bits(), &real);
    let mut idx = 0;
    let out = FeatureMap::from_fn(
        int_out.height(),
        int_out.width(),
        int_out.channels(),
        |_, _, _| {
            let v = qo.dequantize(qo.quantize(real[idx]));
            idx += 1;
            v
        },
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopnest::gemm_reference;
    use crate::stats::ErrorStats;

    #[test]
    fn quantizer_roundtrip_within_half_step() {
        // Strictly inside the range, rounding is the only error source.
        let q = Quantizer::from_max(8, 1.0);
        for &x in &[-0.99, -0.37, 0.0, 0.5, 0.99] {
            let err = (q.dequantize(q.quantize(x)) - x).abs();
            assert!(err <= 0.5 / 128.0 + 1e-12, "x={x} err={err}");
        }
    }

    #[test]
    fn quantizer_roundtrip_at_extremes() {
        // ±max_abs would round to ±2^(bits-1), which two's complement
        // cannot represent — they clamp to ±(2^(bits-1) − 1) and round
        // trip within one full step instead of a half step.
        let q = Quantizer::from_max(8, 1.0);
        assert_eq!(q.quantize(1.0), 127);
        assert_eq!(q.quantize(-1.0), -127);
        for &x in &[1.0, -1.0] {
            let err = (q.dequantize(q.quantize(x)) - x).abs();
            assert!(err <= 1.0 / 128.0 + 1e-12, "x={x} err={err}");
        }
        // Values just above the range clamp to the same extreme level.
        assert_eq!(q.quantize(1.0 + 1e-9), 127);
        assert_eq!(q.quantize(-1.0 - 1e-9), -127);
        // The last exactly-representable level round trips losslessly.
        let top = q.dequantize(127);
        assert_eq!(q.quantize(top), 127);
        assert!((q.dequantize(q.quantize(top)) - top).abs() < 1e-12);
    }

    #[test]
    fn quantizer_clamps() {
        let q = Quantizer::from_max(8, 1.0);
        assert_eq!(q.quantize(5.0), 127);
        assert_eq!(q.quantize(-5.0), -127);
        assert_eq!(q.quantize(f64::INFINITY), 127);
        assert_eq!(q.quantize(f64::NEG_INFINITY), -127);
        assert_eq!(q.quantize(f64::NAN), 0);
    }

    #[test]
    fn calibrated_covers_data() {
        let q = Quantizer::calibrated(8, &[-3.0, 1.0, 2.5]);
        assert_eq!(q.quantize(3.0), 127);
        let q0 = Quantizer::calibrated(8, &[0.0, 0.0]);
        assert_eq!(q0.quantize(0.0), 0);
    }

    #[test]
    fn calibration_ignores_non_finite_samples() {
        // NaN/∞ samples must not poison (or panic) the calibration: the
        // scale comes from the finite samples only.
        let q = Quantizer::calibrated(8, &[f64::NAN, -2.0, f64::INFINITY, 1.0]);
        assert_eq!(q.quantize(2.0), 127);
        assert_eq!(q.quantize(-2.0), -127);
        assert_eq!(q.quantize(1.0), 64);
        // All-non-finite data falls back to max_abs = 1.0.
        let q1 = Quantizer::calibrated(8, &[f64::NAN, f64::INFINITY]);
        assert_eq!(q1.quantize(0.5), 64);
        assert_eq!(q1.quantize(1.0), 127);
    }

    #[test]
    fn format_bit_allocation() {
        assert_eq!(FxpFormat::OutputRes(8).input_bits(), (4, 4));
        assert_eq!(FxpFormat::OutputRes(7).input_bits(), (4, 3));
        assert_eq!(FxpFormat::InputRes(8).input_bits(), (8, 8));
        assert_eq!(FxpFormat::OutputRes(8).output_bits(), 8);
        assert_eq!(FxpFormat::InputRes(8).output_bits(), 16);
        assert_eq!(FxpFormat::InputRes(6).effective_bitwidth(), 6);
        assert_eq!(FxpFormat::OutputRes(8).to_string(), "FXP-o-res(8)");
    }

    fn random_case() -> (GemmConfig, FeatureMap<f64>, WeightSet<f64>) {
        let cfg = GemmConfig::conv(6, 6, 3, 3, 3, 1, 4).unwrap();
        let input = FeatureMap::from_fn(6, 6, 3, |h, w, c| {
            ((h * 17 + w * 5 + c * 3) % 11) as f64 / 11.0 - 0.5
        });
        let weights = WeightSet::from_fn(4, 3, 3, 3, |oc, wh, ww, ic| {
            ((oc * 7 + wh * 13 + ww * 3 + ic) % 13) as f64 / 13.0 - 0.4
        });
        (cfg, input, weights)
    }

    #[test]
    fn i_res_is_more_accurate_than_o_res() {
        // The paper's ranking: error(FXP-i-res) < error(FXP-o-res) at the
        // same nominal n, because i-res gives each input the full n bits.
        let (cfg, input, weights) = random_case();
        let reference = gemm_reference(&cfg, &input, &weights).unwrap();
        let o_res = fxp_gemm(&cfg, &input, &weights, FxpFormat::OutputRes(8)).unwrap();
        let i_res = fxp_gemm(&cfg, &input, &weights, FxpFormat::InputRes(8)).unwrap();
        let e_o = ErrorStats::compare(reference.as_slice(), o_res.as_slice()).unwrap();
        let e_i = ErrorStats::compare(reference.as_slice(), i_res.as_slice()).unwrap();
        assert!(
            e_i.rmse() < e_o.rmse(),
            "i-res rmse {} should beat o-res rmse {}",
            e_i.rmse(),
            e_o.rmse()
        );
    }

    #[test]
    fn more_bits_reduce_error() {
        let (cfg, input, weights) = random_case();
        let reference = gemm_reference(&cfg, &input, &weights).unwrap();
        let mut last = f64::INFINITY;
        for n in [4u32, 6, 8, 10] {
            let got = fxp_gemm(&cfg, &input, &weights, FxpFormat::InputRes(n)).unwrap();
            let e = ErrorStats::compare(reference.as_slice(), got.as_slice()).unwrap();
            assert!(e.rmse() <= last + 1e-12, "n={n}: {} > {}", e.rmse(), last);
            last = e.rmse();
        }
        assert!(last < 1e-3);
    }
}
